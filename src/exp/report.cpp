#include "exp/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace radiocast::exp {

namespace {

const JsonValue& require(const JsonObject& o, std::string_view key,
                         std::string_view ctx) {
  const JsonValue* v = o.find(key);
  if (v == nullptr)
    throw JsonError(std::string(ctx) + ": missing \"" + std::string(key) + "\"");
  return *v;
}

std::string fmt_cell(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      return "-";
    case JsonValue::Kind::kBool:
      return v.as_bool() ? "yes" : "NO";
    case JsonValue::Kind::kString:
      return v.as_string();
    default:
      break;
  }
  if (v.is_number()) {
    const double d = v.as_double();
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
      return std::to_string(static_cast<std::int64_t>(d));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", d);
    return buf;
  }
  return "?";  // arrays/objects have no tabular rendering
}

/// Short display name for a metric column header.
std::string display_name(const std::string& field) {
  if (field == "r_per_pkt" || field == "rounds_per_pkt") return "r/pkt";
  return field;
}

void emit_table(std::string& out, const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
  out += "|";
  for (const std::string& h : headers) out += " " + h + " |";
  out += "\n|";
  for (std::size_t i = 0; i < headers.size(); ++i) out += "---|";
  out += "\n";
  for (const auto& row : rows) {
    out += "|";
    for (const std::string& cell : row) out += " " + cell + " |";
    out += "\n";
  }
}

struct Ratio {
  std::string num, den, field;
  bool valid = false;
};

Ratio parse_ratio(const std::string& spec) {
  Ratio r;
  const std::size_t slash = spec.find('/');
  const std::size_t colon = spec.find(':');
  if (slash == std::string::npos || colon == std::string::npos || colon < slash)
    return r;
  r.num = spec.substr(0, slash);
  r.den = spec.substr(slash + 1, colon - slash - 1);
  r.field = spec.substr(colon + 1);
  r.valid = !r.num.empty() && !r.den.empty() && !r.field.empty();
  return r;
}

}  // namespace

std::string render_report(const JsonValue& results) {
  const JsonObject& doc = results.as_object("results");
  const std::string format = require(doc, "format", "results").as_string("results.format");
  if (format != "radiocast-results-v1")
    throw JsonError("results: unsupported format \"" + format + "\"");

  const std::string id = require(doc, "scenario", "results").as_string("results.scenario");
  const std::string title =
      doc.contains("title") ? doc.find("title")->as_string("results.title") : "";
  const std::string claim =
      doc.contains("claim") ? doc.find("claim")->as_string("results.claim") : "";
  const JsonObject& meta = require(doc, "meta", "results").as_object("results.meta");
  const JsonObject& axes = require(doc, "axes", "results").as_object("results.axes");
  const auto& rows_json = require(doc, "rows", "results").as_array("results.rows");
  const JsonObject& report =
      require(doc, "report", "results").as_object("results.report");

  std::string out;
  out += "### " + id;
  if (!title.empty()) out += " — " + title;
  out += "\n\n";
  if (!claim.empty()) out += claim + "\n\n";

  const auto meta_str = [&meta](std::string_view key) -> std::string {
    const JsonValue* v = meta.find(key);
    return v == nullptr ? std::string("?") : fmt_cell(*v);
  };
  out += "- graph: " + meta_str("graph") + " (D̂=" + meta_str("d_hat") +
         ", log n=" + meta_str("log_n") + ", logΔ=" + meta_str("log_delta") + ")\n";
  out += "- placement: " + meta_str("placement") + ", knowledge: " +
         meta_str("knowledge") + ", mode: " + meta_str("mode") + "\n";
  out += "- seeds: " + meta_str("seeds") + " (seed_base " + meta_str("seed_base") +
         ")\n";
  if (doc.contains("spec_digest"))
    out += "- spec: " + doc.find("spec_digest")->as_string("results.spec_digest") + "\n";
  out += "\n";

  // Axes whose value set has more than one element become row-key columns.
  std::vector<std::string> varying;
  for (const auto& [name, values] : axes.members()) {
    if (values.as_array("results.axes." + name).size() > 1) varying.push_back(name);
  }

  const std::string pivot =
      report.contains("pivot") ? report.find("pivot")->as_string("report.pivot") : "";
  const bool pivot_mode = !pivot.empty() && axes.contains(pivot);

  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> table;

  if (pivot_mode) {
    // --- pivot mode: one row per non-pivot key, one column group per label.
    std::vector<std::string> key_axes;
    for (const std::string& a : varying)
      if (a != pivot) key_axes.push_back(a);
    if (key_axes.empty()) {
      // Degenerate single-key grid: key on the first non-pivot axis so the
      // table still has a leading identity column.
      for (const auto& [name, values] : axes.members()) {
        if (name != pivot) {
          key_axes.push_back(name);
          break;
        }
      }
    }

    std::vector<std::string> labels;
    for (const JsonValue& l : axes.find(pivot)->as_array("results.axes"))
      labels.push_back(fmt_cell(l));

    std::vector<std::string> values;
    if (report.contains("values")) {
      for (const JsonValue& v : report.find("values")->as_array("report.values"))
        values.push_back(v.as_string("report.values"));
    }
    if (values.empty()) values.push_back("r_per_pkt");

    const Ratio ratio = parse_ratio(
        report.contains("ratio") ? report.find("ratio")->as_string("report.ratio") : "");

    headers = key_axes;
    for (const std::string& label : labels)
      for (const std::string& field : values)
        headers.push_back(label + " " + display_name(field));
    if (ratio.valid) headers.push_back(ratio.num + "/" + ratio.den);

    // Group rows by key tuple in first-appearance order.
    std::vector<std::string> group_keys;
    std::vector<std::vector<const JsonObject*>> groups;  // per group: label-indexed
    for (const JsonValue& row_val : rows_json) {
      const JsonObject& row = row_val.as_object("results.rows[]");
      std::string key;
      for (const std::string& a : key_axes)
        key += fmt_cell(require(row, a, "results.rows[]")) + "\x1f";
      auto it = std::find(group_keys.begin(), group_keys.end(), key);
      std::size_t gi;
      if (it == group_keys.end()) {
        gi = group_keys.size();
        group_keys.push_back(key);
        groups.emplace_back(labels.size(), nullptr);
      } else {
        gi = static_cast<std::size_t>(it - group_keys.begin());
      }
      const std::string label = fmt_cell(require(row, pivot, "results.rows[]"));
      const auto li = std::find(labels.begin(), labels.end(), label);
      if (li != labels.end())
        groups[gi][static_cast<std::size_t>(li - labels.begin())] = &row;
    }

    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      std::vector<std::string> cells;
      // Re-split the group key (fields never contain the separator).
      std::string key = group_keys[gi];
      std::size_t pos = 0;
      for (std::size_t i = 0; i < key_axes.size(); ++i) {
        const std::size_t end = key.find('\x1f', pos);
        cells.push_back(key.substr(pos, end - pos));
        pos = end + 1;
      }
      for (std::size_t li = 0; li < labels.size(); ++li) {
        for (const std::string& field : values) {
          const JsonObject* row = groups[gi][li];
          const JsonValue* v = row == nullptr ? nullptr : row->find(field);
          cells.push_back(v == nullptr ? "-" : fmt_cell(*v));
        }
      }
      if (ratio.valid) {
        const auto find_label = [&](const std::string& l) -> const JsonObject* {
          const auto it = std::find(labels.begin(), labels.end(), l);
          return it == labels.end() ? nullptr
                                    : groups[gi][static_cast<std::size_t>(
                                          it - labels.begin())];
        };
        const JsonObject* num = find_label(ratio.num);
        const JsonObject* den = find_label(ratio.den);
        double r = 0;
        if (num != nullptr && den != nullptr && num->contains(ratio.field) &&
            den->contains(ratio.field)) {
          const double d = den->find(ratio.field)->as_double();
          if (d != 0) r = num->find(ratio.field)->as_double() / d;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", r);
        cells.emplace_back(buf);
      }
      table.push_back(std::move(cells));
    }
  } else {
    // --- plain mode: one row per cell; varying axes + metric columns.
    std::vector<std::string> metric_cols;
    if (report.contains("columns")) {
      for (const JsonValue& c : report.find("columns")->as_array("report.columns"))
        metric_cols.push_back(c.as_string("report.columns"));
    }
    if (metric_cols.empty()) {
      // Default: every results column that is not an axis.
      for (const JsonValue& c : require(doc, "columns", "results").as_array()) {
        const std::string name = c.as_string("results.columns");
        if (!axes.contains(name)) metric_cols.push_back(name);
      }
    }

    headers = varying;
    for (const std::string& c : metric_cols) headers.push_back(display_name(c));

    for (const JsonValue& row_val : rows_json) {
      const JsonObject& row = row_val.as_object("results.rows[]");
      std::vector<std::string> cells;
      for (const std::string& a : varying)
        cells.push_back(fmt_cell(require(row, a, "results.rows[]")));
      for (const std::string& c : metric_cols) {
        const JsonValue* v = row.find(c);
        cells.push_back(v == nullptr ? "-" : fmt_cell(*v));
      }
      table.push_back(std::move(cells));
    }
  }

  emit_table(out, headers, table);
  return out;
}

}  // namespace radiocast::exp
