// Shared environment-variable spec parsing for benches and the CLI.
//
// Historically each bench binary parsed RADIOCAST_BENCH_* itself
// (bench/bench_util.hpp); the CLI shares the same knobs, so the parsing
// lives here and benchutil delegates. All helpers are total: malformed
// values fall back to the default instead of aborting a long sweep.
#pragma once

#include <cstdlib>
#include <string>

namespace radiocast::exp {

/// Integer env var; `fallback` when unset, empty, or not a positive
/// integer.
inline int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const int v = std::atoi(env);
  return v > 0 ? v : fallback;
}

/// String env var; `fallback` when unset.
inline std::string env_string(const char* name, const std::string& fallback = {}) {
  const char* env = std::getenv(name);
  return (env == nullptr || *env == '\0') ? fallback : std::string(env);
}

/// The bench/CLI seed-grid width: RADIOCAST_BENCH_SEEDS.
inline int bench_seeds_from_env(int default_seeds = 3) {
  return env_int("RADIOCAST_BENCH_SEEDS", default_seeds);
}

}  // namespace radiocast::exp
