#include "exp/manifest.hpp"

#include <cstdio>

namespace radiocast::exp {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string digest_string(std::string_view bytes) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "fnv1a64:%016llx",
                static_cast<unsigned long long>(fnv1a64(bytes)));
  return std::string(buf);
}

std::string digest_json(const JsonValue& v) { return digest_string(json_serialize(v)); }

#ifndef RADIOCAST_GIT_DESCRIBE
#define RADIOCAST_GIT_DESCRIBE "unknown"
#endif
#ifndef RADIOCAST_BUILD_TYPE
#define RADIOCAST_BUILD_TYPE "unknown"
#endif
#ifndef RADIOCAST_CXX_FLAGS
#define RADIOCAST_CXX_FLAGS ""
#endif

BuildInfo build_info() {
  BuildInfo b;
  b.git_describe = RADIOCAST_GIT_DESCRIBE;
#if defined(__clang__)
  b.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  b.compiler = std::string("gcc ") + __VERSION__;
#else
  b.compiler = "unknown";
#endif
  b.build_type = RADIOCAST_BUILD_TYPE;
  b.cxx_flags = RADIOCAST_CXX_FLAGS;
  return b;
}

JsonValue build_info_json() {
  const BuildInfo b = build_info();
  JsonObject o;
  o.set("git_describe", b.git_describe);
  o.set("compiler", b.compiler);
  o.set("build_type", b.build_type);
  o.set("cxx_flags", b.cxx_flags);
  return JsonValue(std::move(o));
}

JsonValue make_manifest(JsonObject deterministic, JsonObject environment) {
  const std::string digest = digest_json(JsonValue(deterministic));
  deterministic.set("manifest_digest", digest);
  deterministic.set("environment", JsonValue(std::move(environment)));
  return JsonValue(std::move(deterministic));
}

std::string manifest_digest(const JsonValue& manifest) {
  const JsonValue* d = manifest.as_object("manifest").find("manifest_digest");
  return d != nullptr ? d->as_string("manifest.manifest_digest") : std::string();
}

}  // namespace radiocast::exp
