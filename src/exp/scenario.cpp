#include "exp/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <initializer_list>

#include "graph/generators.hpp"
#include "stream/arrivals.hpp"
#include "stream/queue.hpp"

namespace radiocast::exp {

namespace {

/// Rejects members of `obj` outside `allowed`; `ctx` prefixes the error.
void reject_unknown_keys(const JsonObject& obj, std::string_view ctx,
                         std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : obj.members()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw JsonError(std::string(ctx) + ": unknown key \"" + key + "\"");
    }
  }
}

std::string path(std::string_view ctx, std::string_view key) {
  return std::string(ctx) + "." + std::string(key);
}

template <typename T, typename Fn>
void opt(const JsonObject& obj, std::string_view ctx, std::string_view key, T& out,
         Fn&& get) {
  const JsonValue* v = obj.find(key);
  if (v != nullptr) out = get(*v, path(ctx, key));
}

void opt_string(const JsonObject& o, std::string_view ctx, std::string_view key,
                std::string& out) {
  opt(o, ctx, key, out,
      [](const JsonValue& v, const std::string& p) { return v.as_string(p); });
}
void opt_u32(const JsonObject& o, std::string_view ctx, std::string_view key,
             std::uint32_t& out) {
  opt(o, ctx, key, out, [](const JsonValue& v, const std::string& p) {
    const std::uint64_t x = v.as_uint(p);
    if (x > UINT32_MAX) throw JsonError(p + ": value too large");
    return static_cast<std::uint32_t>(x);
  });
}
void opt_u64(const JsonObject& o, std::string_view ctx, std::string_view key,
             std::uint64_t& out) {
  opt(o, ctx, key, out,
      [](const JsonValue& v, const std::string& p) { return v.as_uint(p); });
}
void opt_int(const JsonObject& o, std::string_view ctx, std::string_view key, int& out) {
  opt(o, ctx, key, out, [](const JsonValue& v, const std::string& p) {
    const std::int64_t x = v.as_int(p);
    if (x < INT32_MIN || x > INT32_MAX) throw JsonError(p + ": value out of range");
    return static_cast<int>(x);
  });
}
void opt_double(const JsonObject& o, std::string_view ctx, std::string_view key,
                double& out) {
  opt(o, ctx, key, out,
      [](const JsonValue& v, const std::string& p) { return v.as_double(p); });
}
void opt_bool(const JsonObject& o, std::string_view ctx, std::string_view key, bool& out) {
  opt(o, ctx, key, out,
      [](const JsonValue& v, const std::string& p) { return v.as_bool(p); });
}

/// String list that may be empty (report.values / report.columns — these
/// are presentation hints, not grid axes).
void opt_string_list(const JsonObject& o, std::string_view ctx, std::string_view key,
                     std::vector<std::string>& out) {
  const JsonValue* v = o.find(key);
  if (v == nullptr) return;
  const std::string p = path(ctx, key);
  out.clear();
  if (v->is_string()) {
    out.push_back(v->as_string(p));
    return;
  }
  for (const JsonValue& e : v->as_array(p)) out.push_back(e.as_string(p));
}

/// Array-or-scalar axis: "k": 16 and "k": [16, 32] both parse.
template <typename T, typename Fn>
void opt_axis(const JsonObject& o, std::string_view ctx, std::string_view key,
              std::vector<T>& out, Fn&& get) {
  const JsonValue* v = o.find(key);
  if (v == nullptr) return;
  const std::string p = path(ctx, key);
  out.clear();
  if (v->is_array()) {
    if (v->as_array().empty()) throw JsonError(p + ": axis must not be empty");
    std::size_t i = 0;
    for (const JsonValue& e : v->as_array()) {
      out.push_back(get(e, p + "[" + std::to_string(i) + "]"));
      ++i;
    }
  } else {
    out.push_back(get(*v, p));
  }
}

TopologySpec parse_topology(const JsonValue& v, std::string_view ctx) {
  const JsonObject& o = v.as_object(ctx);
  reject_unknown_keys(o, ctx, {"family", "n", "seed", "radius", "p", "clique_size"});
  TopologySpec t;
  opt_string(o, ctx, "family", t.family);
  opt_u32(o, ctx, "n", t.n);
  opt_u64(o, ctx, "seed", t.seed);
  opt_double(o, ctx, "radius", t.radius);
  opt_double(o, ctx, "p", t.p);
  opt_u32(o, ctx, "clique_size", t.clique_size);
  return t;
}

KnowledgeSpec parse_knowledge(const JsonValue& v, std::string_view ctx) {
  KnowledgeSpec k;
  if (v.is_string()) {  // shorthand: "knowledge": "exact"
    k.mode = v.as_string(ctx);
    return k;
  }
  const JsonObject& o = v.as_object(ctx);
  reject_unknown_keys(o, ctx, {"mode", "poly_power", "d_factor"});
  opt_string(o, ctx, "mode", k.mode);
  opt_double(o, ctx, "poly_power", k.poly_power);
  opt_double(o, ctx, "d_factor", k.d_factor);
  return k;
}

ReportSpec parse_report(const JsonValue& v, std::string_view ctx) {
  const JsonObject& o = v.as_object(ctx);
  reject_unknown_keys(o, ctx, {"pivot", "values", "ratio", "columns"});
  ReportSpec r;
  opt_string(o, ctx, "pivot", r.pivot);
  opt_string_list(o, ctx, "values", r.values);
  opt_string(o, ctx, "ratio", r.ratio);
  opt_string_list(o, ctx, "columns", r.columns);
  return r;
}

TelemetrySpec parse_telemetry(const JsonValue& v, std::string_view ctx) {
  TelemetrySpec t;
  if (v.is_bool()) {  // shorthand: "telemetry": true
    t.enabled = v.as_bool(ctx);
    return t;
  }
  const JsonObject& o = v.as_object(ctx);
  reject_unknown_keys(o, ctx,
                      {"enabled", "flight_paths", "ledger_rounds", "max_flight_events"});
  opt_bool(o, ctx, "enabled", t.enabled);
  opt_bool(o, ctx, "flight_paths", t.flight_paths);
  opt_u64(o, ctx, "ledger_rounds", t.ledger_rounds);
  opt_u64(o, ctx, "max_flight_events", t.max_flight_events);
  return t;
}

StreamSpec parse_stream(const JsonValue& v, std::string_view ctx) {
  const JsonObject& o = v.as_object(ctx);
  reject_unknown_keys(o, ctx,
                      {"rate", "process", "buffer", "policy", "batch_capacity",
                       "horizon_epochs", "saturation_window",
                       "saturation_min_growth"});
  StreamSpec s;
  opt_axis(o, ctx, "rate", s.rate,
           [](const JsonValue& e, const std::string& p) { return e.as_double(p); });
  opt_string(o, ctx, "process", s.process);
  opt_axis(o, ctx, "buffer", s.buffer,
           [](const JsonValue& e, const std::string& p) {
             const std::uint64_t x = e.as_uint(p);
             if (x > UINT32_MAX) throw JsonError(p + ": value too large");
             return static_cast<std::uint32_t>(x);
           });
  opt_axis(o, ctx, "policy", s.policy,
           [](const JsonValue& e, const std::string& p) { return e.as_string(p); });
  opt_u32(o, ctx, "batch_capacity", s.batch_capacity);
  opt_u32(o, ctx, "horizon_epochs", s.horizon_epochs);
  opt_u32(o, ctx, "saturation_window", s.saturation_window);
  opt_u64(o, ctx, "saturation_min_growth", s.saturation_min_growth);
  return s;
}

DynamicSpec parse_dynamic(const JsonValue& v, std::string_view ctx) {
  const JsonObject& o = v.as_object(ctx);
  reject_unknown_keys(o, ctx, {"load", "batch_capacity", "arrival_epochs"});
  DynamicSpec d;
  opt_axis(o, ctx, "load", d.load,
           [](const JsonValue& e, const std::string& p) { return e.as_double(p); });
  opt_u32(o, ctx, "batch_capacity", d.batch_capacity);
  opt_u32(o, ctx, "arrival_epochs", d.arrival_epochs);
  return d;
}

JsonValue axis_to_json(const std::vector<std::string>& a) {
  std::vector<JsonValue> out(a.begin(), a.end());
  return JsonValue(std::move(out));
}
JsonValue axis_to_json(const std::vector<std::uint32_t>& a) {
  std::vector<JsonValue> out;
  for (const std::uint32_t v : a) out.emplace_back(static_cast<std::uint64_t>(v));
  return JsonValue(std::move(out));
}
JsonValue axis_to_json(const std::vector<double>& a) {
  std::vector<JsonValue> out;
  for (const double v : a) out.emplace_back(v);
  return JsonValue(std::move(out));
}
JsonValue axis_to_json(const std::vector<bool>& a) {
  std::vector<JsonValue> out;
  for (const bool v : a) out.emplace_back(v);
  return JsonValue(std::move(out));
}

}  // namespace

ScenarioSpec parse_scenario(std::string_view json_text) {
  const JsonValue doc = json_parse(json_text);
  const JsonObject& o = doc.as_object("scenario");
  reject_unknown_keys(
      o, "scenario",
      {"id", "title", "claim", "mode", "topology", "knowledge", "placement",
       "payload_bytes", "algos", "k", "loss", "collision_detection", "seeds",
       "seed_base", "max_rounds", "audit", "engine", "threads", "shards",
       "telemetry", "dynamic", "stream", "report"});

  ScenarioSpec s;
  opt_string(o, "scenario", "id", s.id);
  opt_string(o, "scenario", "title", s.title);
  opt_string(o, "scenario", "claim", s.claim);
  opt_string(o, "scenario", "mode", s.mode);
  if (const JsonValue* v = o.find("topology"))
    s.topology = parse_topology(*v, "scenario.topology");
  if (const JsonValue* v = o.find("knowledge"))
    s.knowledge = parse_knowledge(*v, "scenario.knowledge");
  opt_axis(o, "scenario", "placement", s.placement,
           [](const JsonValue& e, const std::string& p) { return e.as_string(p); });
  opt_u32(o, "scenario", "payload_bytes", s.payload_bytes);
  opt_axis(o, "scenario", "algos", s.algos,
           [](const JsonValue& e, const std::string& p) { return e.as_string(p); });
  opt_axis(o, "scenario", "k", s.k, [](const JsonValue& e, const std::string& p) {
    const std::uint64_t x = e.as_uint(p);
    if (x > UINT32_MAX) throw JsonError(p + ": value too large");
    return static_cast<std::uint32_t>(x);
  });
  opt_axis(o, "scenario", "loss", s.loss,
           [](const JsonValue& e, const std::string& p) { return e.as_double(p); });
  opt_axis(o, "scenario", "collision_detection", s.collision_detection,
           [](const JsonValue& e, const std::string& p) { return e.as_bool(p); });
  opt_int(o, "scenario", "seeds", s.seeds);
  opt_u64(o, "scenario", "seed_base", s.seed_base);
  opt_u64(o, "scenario", "max_rounds", s.max_rounds);
  opt_bool(o, "scenario", "audit", s.audit);
  opt_string(o, "scenario", "engine", s.engine);
  opt_int(o, "scenario", "threads", s.threads);
  opt_int(o, "scenario", "shards", s.shards);
  if (const JsonValue* v = o.find("telemetry"))
    s.telemetry = parse_telemetry(*v, "scenario.telemetry");
  if (const JsonValue* v = o.find("dynamic"))
    s.dynamic = parse_dynamic(*v, "scenario.dynamic");
  if (const JsonValue* v = o.find("stream")) {
    // Only legal in stream mode: the block is not serialized elsewhere
    // (see scenario_to_json), so accepting it in other modes would break
    // the parse(serialize(s)) == s round trip.
    if (s.mode != "stream")
      throw JsonError("scenario.stream: only allowed with mode \"stream\"");
    s.stream = parse_stream(*v, "scenario.stream");
  }
  if (const JsonValue* v = o.find("report")) s.report = parse_report(*v, "scenario.report");

  validate_scenario(s);
  return s;
}

JsonValue scenario_to_json(const ScenarioSpec& s) {
  JsonObject topo;
  topo.set("family", s.topology.family);
  topo.set("n", static_cast<std::uint64_t>(s.topology.n));
  topo.set("seed", s.topology.seed);
  topo.set("radius", s.topology.radius);
  topo.set("p", s.topology.p);
  topo.set("clique_size", static_cast<std::uint64_t>(s.topology.clique_size));

  JsonObject know;
  know.set("mode", s.knowledge.mode);
  know.set("poly_power", s.knowledge.poly_power);
  know.set("d_factor", s.knowledge.d_factor);

  JsonObject dyn;
  dyn.set("load", axis_to_json(s.dynamic.load));
  dyn.set("batch_capacity", static_cast<std::uint64_t>(s.dynamic.batch_capacity));
  dyn.set("arrival_epochs", static_cast<std::uint64_t>(s.dynamic.arrival_epochs));

  JsonObject report;
  report.set("pivot", s.report.pivot);
  report.set("values", axis_to_json(s.report.values));
  report.set("ratio", s.report.ratio);
  report.set("columns", axis_to_json(s.report.columns));

  JsonObject telem;
  telem.set("enabled", s.telemetry.enabled);
  telem.set("flight_paths", s.telemetry.flight_paths);
  telem.set("ledger_rounds", s.telemetry.ledger_rounds);
  telem.set("max_flight_events", s.telemetry.max_flight_events);

  JsonObject o;
  o.set("id", s.id);
  o.set("title", s.title);
  o.set("claim", s.claim);
  o.set("mode", s.mode);
  o.set("topology", JsonValue(std::move(topo)));
  o.set("knowledge", JsonValue(std::move(know)));
  o.set("placement", axis_to_json(s.placement));
  o.set("payload_bytes", static_cast<std::uint64_t>(s.payload_bytes));
  o.set("algos", axis_to_json(s.algos));
  o.set("k", axis_to_json(s.k));
  o.set("loss", axis_to_json(s.loss));
  o.set("collision_detection", axis_to_json(s.collision_detection));
  o.set("seeds", static_cast<std::int64_t>(s.seeds));
  o.set("seed_base", s.seed_base);
  o.set("max_rounds", s.max_rounds);
  o.set("audit", s.audit);
  // "engine" IS part of the spec identity (unlike "threads"): the round
  // kernel is pinned result-identical across modes, but provenance must
  // record which kernel produced a table, so changing it changes every
  // digest (see docs/experiments.md).
  o.set("engine", s.engine);
  // "threads" and "shards" are deliberately absent: both are execution
  // knobs, not part of the experiment's identity (shard-count invariance
  // is pinned bit for bit by the shard oracle tests), so neither may
  // perturb spec digests.
  o.set("telemetry", JsonValue(std::move(telem)));
  o.set("dynamic", JsonValue(std::move(dyn)));
  // The "stream" block is emitted only in stream mode — a deliberate
  // asymmetry with the always-emitted "dynamic" block: the key arrived
  // after digests of kbroadcast/dynamic scenarios were pinned in CI
  // baselines and published tables, and emitting it unconditionally would
  // change every one of them. parse_scenario enforces the same rule on
  // input, keeping parse(serialize(s)) == s.
  if (s.mode == "stream") {
    JsonObject stream;
    stream.set("rate", axis_to_json(s.stream.rate));
    stream.set("process", s.stream.process);
    stream.set("buffer", axis_to_json(s.stream.buffer));
    stream.set("policy", axis_to_json(s.stream.policy));
    stream.set("batch_capacity", static_cast<std::uint64_t>(s.stream.batch_capacity));
    stream.set("horizon_epochs", static_cast<std::uint64_t>(s.stream.horizon_epochs));
    stream.set("saturation_window",
               static_cast<std::uint64_t>(s.stream.saturation_window));
    stream.set("saturation_min_growth", s.stream.saturation_min_growth);
    o.set("stream", JsonValue(std::move(stream)));
  }
  o.set("report", JsonValue(std::move(report)));
  return JsonValue(std::move(o));
}

std::string serialize_scenario(const ScenarioSpec& spec) {
  return json_serialize(scenario_to_json(spec), 2);
}

void validate_scenario(const ScenarioSpec& s) {
  const auto fail = [](const std::string& msg) { throw JsonError("scenario: " + msg); };

  if (s.id.empty()) fail("\"id\" is required");
  for (const char c : s.id) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-'))
      fail("\"id\" must be [A-Za-z0-9_-] (got \"" + s.id + "\")");
  }
  if (s.mode != "kbroadcast" && s.mode != "dynamic" && s.mode != "stream")
    fail("mode must be \"kbroadcast\", \"dynamic\" or \"stream\"");

  const auto& families = graph::named_families();
  if (std::find(families.begin(), families.end(), s.topology.family) == families.end())
    fail("unknown topology.family \"" + s.topology.family + "\"");
  if (s.topology.n < 2) fail("topology.n must be >= 2");
  if (s.topology.radius < 0 || s.topology.radius > 2.0) fail("topology.radius out of range");
  if (s.topology.p < 0 || s.topology.p > 1.0) fail("topology.p out of range");

  if (s.knowledge.mode != "exact" && s.knowledge.mode != "padded")
    fail("knowledge.mode must be \"exact\" or \"padded\"");
  if (s.knowledge.mode == "padded" &&
      (s.knowledge.poly_power < 1.0 || s.knowledge.poly_power > 4.0))
    fail("knowledge.poly_power must be in [1, 4]");

  if (s.placement.empty()) fail("placement axis must not be empty");
  for (const std::string& p : s.placement) {
    if (p != "random" && p != "single_source" && p != "spread_even")
      fail("placement must be random | single_source | spread_even");
  }
  if (s.payload_bytes == 0 || s.payload_bytes > 4096)
    fail("payload_bytes must be in [1, 4096]");

  if (s.seeds < 1) fail("seeds must be >= 1");
  if (s.threads < 0) fail("threads must be >= 0");
  if (s.shards < 0) fail("shards must be >= 0");
  if (s.engine != "scalar" && s.engine != "bitset")
    fail("engine must be \"scalar\" or \"bitset\"");

  if (s.telemetry.enabled) {
    if (s.telemetry.ledger_rounds == 0) fail("telemetry.ledger_rounds must be >= 1");
    if (s.telemetry.max_flight_events == 0)
      fail("telemetry.max_flight_events must be >= 1");
    if (s.mode == "dynamic") fail("telemetry is not supported in dynamic mode");
    // Stream telemetry is backlog/latency only; the per-packet flight log
    // is a closed-run (kbroadcast) artifact.
    if (s.mode == "stream" && s.telemetry.flight_paths)
      fail("telemetry.flight_paths is not supported in stream mode");
  }

  if (s.mode == "kbroadcast") {
    if (s.algos.empty()) fail("algos must not be empty");
    bool needs_sweep_engine = false;
    for (const std::string& a : s.algos) {
      if (a == "coded" || a == "uncoded") continue;
      if (a == "seq_bgi" || a == "gossip") {
        needs_sweep_engine = true;
        continue;
      }
      fail("unknown algo \"" + a + "\" (coded | uncoded | seq_bgi | gossip)");
    }
    if (s.k.empty()) fail("k axis must not be empty");
    for (const std::uint32_t k : s.k)
      if (k == 0) fail("k values must be >= 1");
    for (const double l : s.loss)
      if (l < 0 || l >= 1.0) fail("loss values must be in [0, 1)");
    // seq_bgi/gossip run through the plain run_algo entry point, which has
    // no fault/CD/audit taps — restrict the ablation axes to the pipeline
    // algorithms rather than silently ignoring them.
    const bool has_faults = std::any_of(s.loss.begin(), s.loss.end(),
                                        [](double l) { return l > 0; });
    const bool has_cd =
        std::any_of(s.collision_detection.begin(), s.collision_detection.end(),
                    [](bool b) { return b; });
    if (needs_sweep_engine && (has_faults || has_cd || s.audit))
      fail("loss > 0, collision_detection and audit require algos within "
           "{coded, uncoded}");
    // Same restriction for the engine knob: seq_bgi/gossip run through the
    // plain run_algo entry point, which always uses the scalar kernel.
    if (needs_sweep_engine && s.engine != "scalar")
      fail("engine \"bitset\" requires algos within {coded, uncoded}");
  } else if (s.mode == "dynamic") {
    if (s.dynamic.load.empty()) fail("dynamic.load must not be empty");
    for (const double l : s.dynamic.load)
      if (l <= 0 || l > 16) fail("dynamic.load values must be in (0, 16]");
    if (s.audit) fail("audit is not supported in dynamic mode");
    if (s.engine != "scalar") fail("engine \"bitset\" is not supported in dynamic mode");
  } else {  // stream
    if (s.stream.rate.empty()) fail("stream.rate must not be empty");
    for (const double r : s.stream.rate)
      if (r <= 0 || r > 16) fail("stream.rate values must be in (0, 16]");
    stream::ArrivalKind kind;
    if (!stream::arrival_kind_from_string(s.stream.process, kind))
      fail("stream.process must be \"poisson\" or \"periodic\"");
    if (s.stream.buffer.empty()) fail("stream.buffer must not be empty");
    for (const std::uint32_t b : s.stream.buffer)
      if (b == 0) fail("stream.buffer values must be >= 1");
    if (s.stream.policy.empty()) fail("stream.policy must not be empty");
    for (const std::string& p : s.stream.policy) {
      stream::BufferPolicy policy;
      if (!stream::buffer_policy_from_string(p, policy))
        fail("stream.policy must be drop_new | drop_old | backpressure");
    }
    if (s.stream.horizon_epochs == 0) fail("stream.horizon_epochs must be >= 1");
    if (s.stream.saturation_window == 0)
      fail("stream.saturation_window must be >= 1");
    // The protocol nodes run the scalar round kernel in this mode (as in
    // dynamic mode); the CD/fault ablations are closed-run axes.
    if (s.engine != "scalar") fail("engine \"bitset\" is not supported in stream mode");
    const bool has_faults =
        std::any_of(s.loss.begin(), s.loss.end(), [](double l) { return l > 0; });
    const bool has_cd =
        std::any_of(s.collision_detection.begin(), s.collision_detection.end(),
                    [](bool b) { return b; });
    if (has_faults || has_cd)
      fail("loss > 0 and collision_detection are not supported in stream mode");
  }
}

std::uint64_t placement_seed(const ScenarioSpec& spec, int trial) {
  return spec.seed_base + 17 * static_cast<std::uint64_t>(trial);
}
std::uint64_t run_seed(const ScenarioSpec& spec, int trial) {
  return spec.seed_base + 1000 + static_cast<std::uint64_t>(trial);
}
std::uint64_t fault_seed(const ScenarioSpec& spec, int trial) {
  return spec.seed_base + 555 + static_cast<std::uint64_t>(trial);
}
std::uint64_t arrival_seed(const ScenarioSpec& spec, int trial) {
  return spec.seed_base + 777 + static_cast<std::uint64_t>(trial);
}

}  // namespace radiocast::exp
