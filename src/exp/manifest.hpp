// Reproducible run manifests + the content digests they are built from.
//
// Every `radiocast run` emits, next to its results JSON, a manifest that
// pins *everything* needed to reproduce the run and to detect that a
// reproduction diverged:
//
//   * the resolved scenario spec (canonical serialization) + its digest,
//   * the build (git describe, compiler, build type, CXX flags),
//   * the fully-expanded seed grid (a pure function of seed_base),
//   * one digest per trial (over the trial's RunResult, counters included)
//     grouped per grid cell, plus a whole-results digest,
//   * a manifest digest over all of the above.
//
// The only non-deterministic content is the trailing "environment" object
// (thread budget, wall-clock timestamp, elapsed seconds); it is excluded
// from manifest_digest, so two runs of the same spec on the same build
// produce byte-identical manifests outside that object — at *any* thread
// count, because core::montecarlo reduces trials in trial order. Pinned by
// tests/exp/manifest_test.cpp.
//
// Digests are 64-bit FNV-1a over canonical JSON bytes, printed as
// "fnv1a64:<16 hex digits>" — collision-resistant enough for regression
// detection (they gate equality, not adversaries), cheap enough to digest
// every trial.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "exp/jsonval.hpp"

namespace radiocast::exp {

/// 64-bit FNV-1a over a byte string.
std::uint64_t fnv1a64(std::string_view bytes);

/// "fnv1a64:<16 lowercase hex digits>".
std::string digest_string(std::string_view bytes);

/// Digest of a JSON value's canonical (compact) serialization.
std::string digest_json(const JsonValue& v);

/// Build provenance baked in at compile/configure time (src/CMakeLists.txt
/// injects the RADIOCAST_* definitions; "unknown" when unavailable).
struct BuildInfo {
  std::string git_describe;
  std::string compiler;
  std::string build_type;
  std::string cxx_flags;
};

/// The running binary's build info.
BuildInfo build_info();

/// `build` section of the manifest.
JsonValue build_info_json();

/// Assembles the manifest document. `deterministic` must hold every
/// reproducible section (scenario, seed_grid, cells, results_digest, ...);
/// this function digests it, appends "manifest_digest", then appends the
/// digest-excluded "environment" object.
JsonValue make_manifest(JsonObject deterministic, JsonObject environment);

/// The manifest's own digest field (recomputable by stripping
/// "manifest_digest" and "environment" and re-digesting — what the CI
/// schema check and the determinism tests do).
std::string manifest_digest(const JsonValue& manifest);

}  // namespace radiocast::exp
