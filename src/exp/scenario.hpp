// Declarative experiment scenarios (the spec half of the orchestration
// layer — docs/experiments.md documents the schema this file implements).
//
// A scenario is a JSON document describing one experiment grid: a topology
// family, a workload (k, placement, payload), the algorithm set, optional
// fault / collision-detection ablation axes, and the seed grid. The
// executor (exp/run.hpp) expands the cross product of the swept axes into
// cells and runs every cell through core::montecarlo, so "new workload"
// means "new JSON file", not "new bench main()".
//
// Parsing is strict: unknown keys are rejected at every nesting level
// (typos fail loudly instead of silently running the default), duplicate
// keys are a parse error, and every value is range-checked by validate().
// serialize() emits the *resolved* spec — all defaults filled in, fields
// in schema order — which is the canonical form embedded in manifests and
// digested for reproducibility.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/jsonval.hpp"

namespace radiocast::exp {

/// Topology axis: a named graph family plus the shape knobs the scenario
/// may steer. Families without an explicit knob here take the bench
/// defaults of graph::make_named.
struct TopologySpec {
  std::string family = "geometric";
  std::uint32_t n = 64;
  std::uint64_t seed = 7;
  /// geometric only: connection radius (0 = make_named default).
  double radius = 0;
  /// gnp only: edge probability (0 = make_named default 2·ln n / n).
  double p = 0;
  /// cluster_chain only: clique size (0 = make_named default).
  std::uint32_t clique_size = 0;
};

/// What the nodes are told about (n̂, Δ̂, D̂) — see radio::Knowledge.
struct KnowledgeSpec {
  std::string mode = "exact";  ///< "exact" or "padded"
  double poly_power = 2.0;     ///< padded: n̂, Δ̂ exponent
  double d_factor = 2.0;       ///< padded: D̂ multiplier
};

/// How `radiocast report` renders the results of this scenario.
struct ReportSpec {
  /// Optional pivot axis ("algo"): one output row per remaining-axis
  /// combination, one column group per pivot label. Empty = plain mode,
  /// one output row per grid cell.
  std::string pivot;
  /// Metric fields emitted per pivot label (pivot mode only).
  std::vector<std::string> values;
  /// Optional ratio column "num/den:field" (e.g. "uncoded/coded:r_per_pkt").
  std::string ratio;
  /// Plain mode: metric columns after the axis columns (empty = default
  /// set rounds, r_per_pkt, phases, delivered, ok).
  std::vector<std::string> columns;
};

/// Per-packet lifecycle telemetry (obs/packet_trace.hpp): when enabled,
/// every pipeline-algorithm trial gets a PacketTracer and a channel-
/// utilization ledger, and the run emits a `radiocast-telemetry-v1` JSONL
/// artifact (digested into the manifest). Tracing is read-only — traced
/// results are byte-identical to untraced ones — so this block, like
/// `threads`, never perturbs the outcome, but unlike `threads` it *is*
/// part of the spec identity because it changes the artifact set.
struct TelemetrySpec {
  bool enabled = false;
  /// Record the per-packet flight log (event-ordered reception edges);
  /// adds the `flight` line type and the Chrome-trace export.
  bool flight_paths = false;
  /// Per-trial cap on retained ledger rows (aggregates are exact beyond
  /// the cap; per-round rows past it are dropped and counted).
  std::uint64_t ledger_rounds = 4096;
  /// Per-trial cap on retained flight events (dropped-event count is
  /// reported when exceeded).
  std::uint64_t max_flight_events = 1u << 20;
};

/// Dynamic-arrival scenarios (mode == "dynamic"): the open-problem
/// extension of core/dynamic.hpp, swept over offered load.
struct DynamicSpec {
  /// Offered load axis: packets per epoch relative to batch capacity.
  std::vector<double> load{0.5, 1.0, 2.0};
  /// Packets per dissemination window (0 = capacity derived from x₀).
  std::uint32_t batch_capacity = 32;
  /// Arrival window length in epochs.
  std::uint32_t arrival_epochs = 4;
};

/// Open-system streaming scenarios (mode == "stream"): packets arrive
/// continuously at every node and flow through bounded source buffers into
/// the pipelined epochs of src/stream/. The `stream` key is only legal —
/// and only serialized — when mode == "stream" (see scenario_to_json).
struct StreamSpec {
  /// Offered-load axis relative to pipeline capacity: 1.0 = the batch
  /// capacity arriving network-wide per nominal epoch.
  std::vector<double> rate{0.5, 1.0, 2.0};
  std::string process = "poisson";  ///< poisson | periodic
  /// Per-node bounded source-buffer axis (packets).
  std::vector<std::uint32_t> buffer{64};
  /// Full-buffer policy axis: drop_new | drop_old | backpressure.
  std::vector<std::string> policy{"drop_new"};
  /// Packets per dissemination window (0 = capacity derived from x₀).
  std::uint32_t batch_capacity = 32;
  /// Round budget, in nominal-epoch multiples.
  std::uint32_t horizon_epochs = 8;
  /// Saturation detector: backlog samples per sliding window, and the
  /// minimum growth across a window that latches "saturated".
  std::uint32_t saturation_window = 4;
  std::uint64_t saturation_min_growth = 8;
};

/// One fully-described experiment. Vector-valued fields are grid axes;
/// everything else is shared by all cells.
struct ScenarioSpec {
  std::string id;     ///< file-name-safe identifier (required)
  std::string title;  ///< human heading for the report
  std::string claim;  ///< the paper claim / question the scenario probes

  /// "kbroadcast" (static k-broadcast, the default), "dynamic" (finite
  /// arrival window) or "stream" (open system, continuous arrivals).
  std::string mode = "kbroadcast";

  TopologySpec topology;
  KnowledgeSpec knowledge;

  std::uint32_t payload_bytes = 16;

  // --- grid axes (kbroadcast mode) ---
  std::vector<std::string> algos{"coded"};  ///< coded|uncoded|seq_bgi|gossip
  /// random | single_source | spread_even (axis: E19 sweeps it).
  std::vector<std::string> placement{"random"};
  std::vector<std::uint32_t> k{16};
  std::vector<double> loss{0.0};              ///< fault model: reception loss
  std::vector<bool> collision_detection{false};  ///< engine CD ablation

  // --- seed grid ---
  int seeds = 3;                   ///< trials per cell
  std::uint64_t seed_base = 1000;  ///< root of all derived seeds

  std::uint64_t max_rounds = 0;  ///< 0 = schedule-derived bound
  bool audit = false;  ///< attach a ModelAuditor to every trial
  /// Round kernel: "scalar" (reference) or "bitset" (bit-parallel, result-
  /// identical). Part of the spec identity — changing it changes every
  /// digest, so tables always record which kernel produced them.
  std::string engine = "scalar";
  int threads = 0;     ///< 0 = RADIOCAST_BENCH_THREADS / hardware
  /// Intra-run shard count (radio::Network::set_shards). Like `threads`
  /// an execution knob — results are shard-count invariant bit for bit —
  /// so it is excluded from spec/manifest digests. 0 = resolve from
  /// RADIOCAST_BENCH_SHARDS (default 1 = unsharded).
  int shards = 0;

  TelemetrySpec telemetry;
  DynamicSpec dynamic;
  StreamSpec stream;
  ReportSpec report;
};

/// Parses and validates a scenario document. Throws JsonError on syntax
/// errors, unknown keys, type mismatches, or out-of-range values.
ScenarioSpec parse_scenario(std::string_view json_text);

/// The resolved spec as a canonical JSON tree (schema order, defaults
/// materialized). parse(serialize(s)) == s.
JsonValue scenario_to_json(const ScenarioSpec& spec);

/// Canonical serialized form (pretty-printed, 2-space indent).
std::string serialize_scenario(const ScenarioSpec& spec);

/// Range/consistency checks beyond per-field types; throws JsonError.
/// parse_scenario calls this, so hand-built specs only need it when
/// constructed programmatically.
void validate_scenario(const ScenarioSpec& spec);

/// Derived seeds — the whole seed grid is a pure function of seed_base, so
/// manifests can list it and two runs of one spec agree byte-for-byte.
/// The formulas match the historical bench_util ones, so CLI-run scenarios
/// are comparable with old hand-run bench numbers at equal seed_base.
std::uint64_t placement_seed(const ScenarioSpec& spec, int trial);
std::uint64_t run_seed(const ScenarioSpec& spec, int trial);
std::uint64_t fault_seed(const ScenarioSpec& spec, int trial);
/// Root of the dedicated arrival stream (mode == "stream" only): arrivals
/// draw from their own RNG so closed runs stay draw-for-draw unchanged.
std::uint64_t arrival_seed(const ScenarioSpec& spec, int trial);

}  // namespace radiocast::exp
