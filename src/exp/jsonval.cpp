#include "exp/jsonval.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"

namespace radiocast::exp {

// --- JsonObject ---

JsonValue& JsonObject::set(std::string key, JsonValue value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return members_.back().second;
}

const JsonValue* JsonObject::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue* JsonObject::find(std::string_view key) {
  for (auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonObject::operator==(const JsonObject& other) const {
  // Order-insensitive equality: two objects are equal iff they hold the
  // same key set with equal values (round-trip tests should not depend on
  // author key order vs canonical order).
  if (members_.size() != other.members_.size()) return false;
  for (const auto& [k, v] : members_) {
    const JsonValue* o = other.find(k);
    if (o == nullptr || !(*o == v)) return false;
  }
  return true;
}

// --- JsonValue accessors ---

namespace {
[[noreturn]] void type_error(std::string_view ctx, const char* want) {
  throw JsonError(std::string(ctx) + ": expected " + want);
}
}  // namespace

bool JsonValue::as_bool(std::string_view ctx) const {
  if (kind_ != Kind::kBool) type_error(ctx, "a boolean");
  return bool_;
}

double JsonValue::as_double(std::string_view ctx) const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      type_error(ctx, "a number");
  }
}

std::int64_t JsonValue::as_int(std::string_view ctx) const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUint:
      if (uint_ > static_cast<std::uint64_t>(INT64_MAX)) type_error(ctx, "an int64");
      return static_cast<std::int64_t>(uint_);
    case Kind::kDouble:
      if (double_ != std::floor(double_) || std::fabs(double_) > 9.0e18)
        type_error(ctx, "an integer");
      return static_cast<std::int64_t>(double_);
    default:
      type_error(ctx, "an integer");
  }
}

std::uint64_t JsonValue::as_uint(std::string_view ctx) const {
  switch (kind_) {
    case Kind::kUint:
      return uint_;
    case Kind::kInt:
      if (int_ < 0) type_error(ctx, "a non-negative integer");
      return static_cast<std::uint64_t>(int_);
    case Kind::kDouble:
      if (double_ != std::floor(double_) || double_ < 0 || double_ > 1.8e19)
        type_error(ctx, "a non-negative integer");
      return static_cast<std::uint64_t>(double_);
    default:
      type_error(ctx, "a non-negative integer");
  }
}

const std::string& JsonValue::as_string(std::string_view ctx) const {
  if (kind_ != Kind::kString) type_error(ctx, "a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array(std::string_view ctx) const {
  if (kind_ != Kind::kArray) type_error(ctx, "an array");
  return array_;
}

const JsonObject& JsonValue::as_object(std::string_view ctx) const {
  if (kind_ != Kind::kObject) type_error(ctx, "an object");
  return object_;
}

JsonObject& JsonValue::as_object(std::string_view ctx) {
  if (kind_ != Kind::kObject) type_error(ctx, "an object");
  return object_;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (is_number() && other.is_number()) {
    // Numeric equality across representations (3 == 3.0 == 3u), so a value
    // that re-parses as a different numeric kind still compares equal.
    return as_double() == other.as_double();
  }
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return array_ == other.array_;
    case Kind::kObject:
      return object_ == other.object_;
    default:
      return false;  // numbers handled above
  }
}

// --- parser ---

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    // Recompute line:column from the offset — errors are rare.
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("json parse error at " + std::to_string(line) + ":" +
                    std::to_string(col) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (obj.contains(key)) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          append_utf8(parse_hex4(), out);
          break;
        default:
          fail("invalid escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    return v;
  }

  void append_utf8(std::uint32_t cp, std::string& out) {
    // Surrogate pair: a high surrogate must be followed by \uDC00-\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
        fail("unpaired high surrogate");
      pos_ += 2;
      const std::uint32_t lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_integer = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integer = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("invalid number");
    if (is_integer) {
      // Exact integer when it fits; uint64 for large positives.
      if (tok[0] == '-') {
        std::int64_t v = 0;
        const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (ec == std::errc() && p == tok.data() + tok.size()) return JsonValue(v);
      } else {
        std::uint64_t v = 0;
        const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (ec == std::errc() && p == tok.data() + tok.size()) {
          if (v <= static_cast<std::uint64_t>(INT64_MAX))
            return JsonValue(static_cast<std::int64_t>(v));
          return JsonValue(v);
        }
      }
      // Fall through to double on overflow.
    }
    double d = 0;
    const std::string tmp(tok);
    char* end = nullptr;
    d = std::strtod(tmp.c_str(), &end);
    if (end != tmp.c_str() + tmp.size()) fail("invalid number");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void serialize_to(const JsonValue& v, obs::JsonWriter& w);

void serialize_object(const JsonObject& o, obs::JsonWriter& w) {
  w.begin_object();
  for (const auto& [k, val] : o.members()) {
    w.key(k);
    serialize_to(val, w);
  }
  w.end_object();
}

void serialize_to(const JsonValue& v, obs::JsonWriter& w) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      // JsonWriter has no null primitive; reuse the double path, which
      // prints nulls for non-finite values.
      w.value(std::nan(""));
      break;
    case JsonValue::Kind::kBool:
      w.value(v.as_bool());
      break;
    case JsonValue::Kind::kInt:
      w.value(v.as_int());
      break;
    case JsonValue::Kind::kUint:
      w.value(v.as_uint());
      break;
    case JsonValue::Kind::kDouble:
      w.value(v.as_double());
      break;
    case JsonValue::Kind::kString:
      w.value(v.as_string());
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& e : v.as_array()) serialize_to(e, w);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      serialize_object(v.as_object(), w);
      break;
  }
}

/// Re-indents compact JSON produced by JsonWriter. Operating on the
/// already-escaped byte stream keeps the two formats trivially consistent:
/// pretty output differs from canonical output only in inserted whitespace.
std::string pretty_print(const std::string& compact, int indent) {
  std::string out;
  out.reserve(compact.size() * 2);
  int depth = 0;
  bool in_string = false;
  const auto newline = [&] {
    out += '\n';
    out.append(static_cast<std::size_t>(depth * indent), ' ');
  };
  for (std::size_t i = 0; i < compact.size(); ++i) {
    const char c = compact[i];
    if (in_string) {
      out += c;
      if (c == '\\' && i + 1 < compact.size()) {
        out += compact[++i];
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        out += c;
        break;
      case '{':
      case '[':
        out += c;
        // Keep empty containers on one line.
        if (i + 1 < compact.size() && (compact[i + 1] == '}' || compact[i + 1] == ']')) {
          out += compact[++i];
        } else {
          ++depth;
          newline();
        }
        break;
      case '}':
      case ']':
        --depth;
        newline();
        out += c;
        break;
      case ',':
        out += c;
        newline();
        break;
      case ':':
        out += ": ";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

JsonValue json_parse(std::string_view text) { return Parser(text).parse_document(); }

std::string json_serialize(const JsonValue& v, int indent) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  serialize_to(v, w);
  const std::string compact = os.str();
  if (indent <= 0) return compact;
  return pretty_print(compact, indent);
}

}  // namespace radiocast::exp
