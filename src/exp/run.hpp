// Scenario executor: expands a ScenarioSpec's grid into cells and runs
// every cell through the Monte Carlo driver.
//
// Cell order is the deterministic cross product algos × k × loss × cd (or
// the load axis in dynamic mode); within a cell, trials use the seed grid
// of exp/scenario.hpp. The executor produces two documents:
//
//   * results — the rendered experiment: one row per cell with median
//     statistics (the same reductions the historical benches printed) plus
//     a per-cell digest; `radiocast report` turns this into markdown.
//   * manifest — the reproducibility record (exp/manifest.hpp): resolved
//     spec, build info, seed grid, per-trial digests.
//
// Statistics reduce in trial order (core::montecarlo's contract), so both
// documents are independent of the thread budget.
#pragma once

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "exp/jsonval.hpp"
#include "exp/scenario.hpp"

namespace radiocast::exp {

/// Digest of everything a reproduction of one trial must match
/// bit-for-bit: delivery outcome, all round counts, and the engine's
/// channel counters. These are the per-trial digests pinned in manifests;
/// public so invariance tests (engine modes, shard counts) can compare
/// fresh runs against pinned literals.
std::string digest_run(const core::RunResult& r);

/// Everything one scenario execution produced.
struct ScenarioOutcome {
  JsonValue results;   ///< results document (see docs/experiments.md)
  JsonValue manifest;  ///< manifest document (exp/manifest.hpp)
  /// False iff spec.audit was set and any trial's ModelAuditor reported a
  /// violation; the summaries then hold one line per dirty trial.
  bool audit_clean = true;
  std::vector<std::string> audit_violations;
  /// True iff every trial in every cell delivered all packets.
  bool all_delivered = true;
  /// Per-packet lifecycle telemetry (`radiocast-telemetry-v1` JSONL, one
  /// JSON object per line; see docs/observability.md). Empty unless
  /// spec.telemetry.enabled. Its digest is the manifest's
  /// "telemetry_digest", so the document is byte-identical at any thread
  /// count.
  std::string telemetry;
  /// Chrome trace_event export of the first pipeline cell's trial-0
  /// flight log. Empty unless telemetry.flight_paths was enabled.
  std::string flight_trace;
  /// Engine trace events discarded across all trials (sum of
  /// core::RunResult::dropped_trace_events; also in the manifest's
  /// environment block). Nonzero means per-event artifacts are truncated.
  std::uint64_t dropped_trace_events = 0;
};

/// Runs the (validated) scenario. Throws JsonError on spec inconsistencies
/// that only surface at execution time.
ScenarioOutcome run_scenario(const ScenarioSpec& spec);

}  // namespace radiocast::exp
