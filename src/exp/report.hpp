// Markdown rendering of scenario results — `radiocast report`.
//
// Turns a results document (exp/run.hpp) into the markdown the repo's
// EXPERIMENTS.md tables are written in, so every hand-maintained table is
// regenerable with one command. Two shapes, selected by the scenario's
// embedded "report" section:
//
//   * plain — one table row per grid cell; columns are the grid axes that
//     actually vary plus the selected metric columns;
//   * pivot — one row per combination of the non-pivot axes, one column
//     group per pivot label (e.g. per algorithm), plus an optional ratio
//     column ("num/den:field") — the E1 "uncoded/coded" shape.
//
// Rendering is deterministic: axis order comes from the results document,
// numbers format integral-as-integer / else two decimals, booleans as
// yes/NO. Golden-pinned by tests/exp/report_test.cpp.
#pragma once

#include <string>

#include "exp/jsonval.hpp"

namespace radiocast::exp {

/// Renders the markdown report for a results document. Throws JsonError
/// on malformed documents (wrong "format", missing sections).
std::string render_report(const JsonValue& results);

}  // namespace radiocast::exp
