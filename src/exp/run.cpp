#include "exp/run.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "audit/model_auditor.hpp"
#include "baselines/uncoded_pipeline.hpp"
#include "common/stats.hpp"
#include "core/dynamic.hpp"
#include "core/montecarlo.hpp"
#include "core/schedule.hpp"
#include "exp/manifest.hpp"
#include "gf2/simd.hpp"
#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/packet_trace.hpp"
#include "stream/driver.hpp"

namespace radiocast::exp {

namespace {

graph::Graph build_topology(const TopologySpec& t) {
  Rng rng(t.seed);
  if (t.family == "geometric" && t.radius > 0)
    return graph::make_random_geometric(t.n, t.radius, rng);
  if (t.family == "gnp" && t.p > 0) return graph::make_gnp_connected(t.n, t.p, rng);
  if (t.family == "cluster_chain" && t.clique_size > 0) {
    const std::uint32_t cliques = std::max<std::uint32_t>(1, t.n / t.clique_size);
    return graph::make_cluster_chain(cliques, t.clique_size);
  }
  return graph::make_named(t.family, t.n, rng);
}

radio::Knowledge build_knowledge(const KnowledgeSpec& k, const graph::Graph& g) {
  if (k.mode == "padded")
    return radio::Knowledge::padded(g, k.poly_power, k.d_factor);
  return radio::Knowledge::exact(g);
}

core::PlacementMode placement_mode(const std::string& s) {
  if (s == "single_source") return core::PlacementMode::kSingleSource;
  if (s == "spread_even") return core::PlacementMode::kSpreadEven;
  return core::PlacementMode::kRandom;
}

baselines::Algo algo_from_string(const std::string& s) {
  if (s == "coded") return baselines::Algo::kCoded;
  if (s == "uncoded") return baselines::Algo::kUncodedPipeline;
  if (s == "seq_bgi") return baselines::Algo::kSequentialBgi;
  if (s == "gossip") return baselines::Algo::kGossipFlood;
  throw JsonError("unknown algo \"" + s + "\"");
}

JsonValue counters_json(const radio::TraceCounters& c) {
  JsonObject o;
  o.set("transmissions", c.transmissions);
  o.set("deliveries", c.deliveries);
  o.set("collision_slots", c.collision_slots);
  o.set("deaf_slots", c.deaf_slots);
  o.set("fault_drops", c.fault_drops);
  o.set("bits_transmitted", c.bits_transmitted);
  o.set("bits_delivered", c.bits_delivered);
  o.set("wakeups", c.wakeups);
  return JsonValue(std::move(o));
}

}  // namespace

std::string digest_run(const core::RunResult& r) {
  JsonObject o;
  o.set("delivered_all", r.delivered_all);
  o.set("timed_out", r.timed_out);
  o.set("nodes_complete", static_cast<std::uint64_t>(r.nodes_complete));
  o.set("total_rounds", r.total_rounds);
  o.set("stage1", r.stage1_rounds);
  o.set("stage2", r.stage2_rounds);
  o.set("stage3", r.stage3_rounds);
  o.set("stage4", r.stage4_rounds);
  o.set("phases", static_cast<std::uint64_t>(r.collection_phases));
  o.set("final_estimate", r.final_estimate);
  o.set("counters", counters_json(r.counters));
  return digest_json(JsonValue(std::move(o)));
}

namespace {

std::string digest_dynamic(const core::DynamicRunResult& r) {
  JsonObject o;
  o.set("n", static_cast<std::uint64_t>(r.n));
  o.set("k", static_cast<std::uint64_t>(r.k));
  o.set("horizon", r.horizon);
  o.set("delivered_everywhere", static_cast<std::uint64_t>(r.delivered_everywhere));
  o.set("latency_mean", r.latency_mean);
  o.set("latency_max", r.latency_max);
  o.set("counters", counters_json(r.counters));
  return digest_json(JsonValue(std::move(o)));
}

struct Cell {
  std::string algo;
  std::string placement;
  std::uint32_t k = 0;
  double loss = 0;
  bool cd = false;
};

/// One compact JSONL line (the telemetry document is line-oriented so the
/// schema checker and jq can stream it).
std::string telemetry_line(JsonObject o) {
  return json_serialize(JsonValue(std::move(o)), 0);
}

/// Shared latency-summary fields of "latency" and "packet" lines.
void set_latency_stats(JsonObject& o, const obs::LogHistogram& h) {
  o.set("count", h.count());
  o.set("mean", h.mean());
  o.set("p50", h.p50());
  o.set("p90", h.p90());
  o.set("p99", h.p99());
  o.set("min", h.min());
  o.set("max", h.max());
}

/// Nonzero histogram buckets as [[bucket, count], ...].
JsonValue buckets_json(const obs::LogHistogram& h) {
  std::vector<JsonValue> out;
  for (std::size_t i = 0; i < obs::LogHistogram::kNumBuckets; ++i) {
    if (h.buckets()[i] == 0) continue;
    std::vector<JsonValue> pair;
    pair.emplace_back(static_cast<std::uint64_t>(i));
    pair.emplace_back(h.buckets()[i]);
    out.emplace_back(std::move(pair));
  }
  return JsonValue(std::move(out));
}

/// Shared scaffolding both modes fill in.
struct Builder {
  const ScenarioSpec& spec;
  int resolved_threads;
  int resolved_shards;

  std::vector<std::string> columns = {};
  std::vector<JsonValue> rows = {};            // results rows
  std::vector<JsonValue> manifest_cells = {};  // manifest cells (with digests)
  JsonObject axes = {};
  bool all_delivered = true;
  bool audit_clean = true;
  std::vector<std::string> audit_violations = {};

  // Telemetry accumulation (cells append lines; finish() wraps them in
  // header/summary lines and digests the document).
  std::vector<std::string> telemetry_lines = {};
  std::string flight_trace = {};
  std::uint64_t packets_tracked = 0;
  std::uint64_t dropped_flight_events = 0;
  std::uint64_t dropped_ledger_rows = 0;
  std::uint64_t dropped_trace_events = 0;

  JsonValue meta_common(const graph::Graph& g, const radio::Knowledge& know) const {
    JsonObject meta;
    meta.set("graph", g.summary());
    meta.set("n_hat", static_cast<std::uint64_t>(know.n_hat));
    meta.set("delta_hat", static_cast<std::uint64_t>(know.delta_hat));
    meta.set("d_hat", static_cast<std::uint64_t>(know.d_hat));
    meta.set("log_n", static_cast<std::uint64_t>(know.log_n()));
    meta.set("log_delta", static_cast<std::uint64_t>(know.log_delta()));
    meta.set("mode", spec.mode);
    {
      std::string joined;
      for (const std::string& p : spec.placement)
        joined += (joined.empty() ? "" : ",") + p;
      meta.set("placement", joined);
    }
    meta.set("knowledge", spec.knowledge.mode);
    meta.set("seeds", static_cast<std::int64_t>(spec.seeds));
    meta.set("seed_base", spec.seed_base);
    meta.set("audit", spec.audit);
    return JsonValue(std::move(meta));
  }

  ScenarioOutcome finish(const graph::Graph& g, const radio::Knowledge& know,
                         double elapsed_seconds) {
    const JsonValue spec_json = scenario_to_json(spec);
    const std::string spec_digest = digest_json(spec_json);

    JsonObject results;
    results.set("format", "radiocast-results-v1");
    results.set("scenario", spec.id);
    results.set("title", spec.title);
    results.set("claim", spec.claim);
    results.set("spec_digest", spec_digest);
    results.set("meta", meta_common(g, know));
    results.set("axes", JsonValue(axes));
    {
      std::vector<JsonValue> cols(columns.begin(), columns.end());
      results.set("columns", JsonValue(std::move(cols)));
    }
    results.set("rows", JsonValue(rows));
    {
      JsonObject report;
      report.set("pivot", spec.report.pivot);
      std::vector<JsonValue> values(spec.report.values.begin(), spec.report.values.end());
      report.set("values", JsonValue(std::move(values)));
      report.set("ratio", spec.report.ratio);
      std::vector<JsonValue> cols(spec.report.columns.begin(), spec.report.columns.end());
      report.set("columns", JsonValue(std::move(cols)));
      results.set("report", JsonValue(std::move(report)));
    }
    const JsonValue results_doc{results};

    JsonObject det;
    det.set("format", "radiocast-manifest-v1");
    det.set("scenario", spec_json);
    det.set("spec_digest", spec_digest);
    det.set("build", build_info_json());
    {
      JsonObject grid;
      grid.set("seeds", static_cast<std::int64_t>(spec.seeds));
      grid.set("seed_base", spec.seed_base);
      std::vector<JsonValue> ps, rs, fs;
      for (int t = 0; t < spec.seeds; ++t) {
        ps.emplace_back(placement_seed(spec, t));
        rs.emplace_back(run_seed(spec, t));
        fs.emplace_back(fault_seed(spec, t));
      }
      grid.set("placement_seeds", JsonValue(std::move(ps)));
      grid.set("run_seeds", JsonValue(std::move(rs)));
      grid.set("fault_seeds", JsonValue(std::move(fs)));
      if (spec.mode == "stream") {
        // Emitted only in stream mode so closed-run manifests keep their
        // pinned byte-identical shape (same rule as the spec's "stream"
        // block in scenario_to_json).
        std::vector<JsonValue> as;
        for (int t = 0; t < spec.seeds; ++t) as.emplace_back(arrival_seed(spec, t));
        grid.set("arrival_seeds", JsonValue(std::move(as)));
      }
      det.set("seed_grid", JsonValue(std::move(grid)));
    }
    det.set("cells", JsonValue(manifest_cells));
    det.set("results_digest", digest_json(results_doc));
    det.set("audit_clean", audit_clean);

    // Assemble the telemetry document (header + cell lines + summary).
    // "telemetry_digest" is always present — the empty string when
    // telemetry is disabled — so the manifest shape is schema-stable.
    std::string telemetry;
    if (spec.telemetry.enabled) {
      JsonObject header;
      header.set("type", "header");
      header.set("format", "radiocast-telemetry-v1");
      header.set("scenario", spec.id);
      header.set("spec_digest", spec_digest);
      header.set("trials", static_cast<std::int64_t>(spec.seeds));
      header.set("flight_paths", spec.telemetry.flight_paths);
      telemetry += telemetry_line(std::move(header)) + "\n";
      for (const std::string& line : telemetry_lines) telemetry += line + "\n";
      JsonObject summary;
      summary.set("type", "summary");
      summary.set("packets", packets_tracked);
      summary.set("dropped_flight_events", dropped_flight_events);
      summary.set("dropped_ledger_rows", dropped_ledger_rows);
      summary.set("dropped_trace_events", dropped_trace_events);
      telemetry += telemetry_line(std::move(summary)) + "\n";
    }
    det.set("telemetry_digest",
            spec.telemetry.enabled ? digest_string(telemetry) : std::string());

    JsonObject env;
    env.set("engine", spec.engine);
    env.set("simd", std::string(gf2::simd_kernel_name()));
    env.set("threads", static_cast<std::int64_t>(resolved_threads));
    env.set("shards", static_cast<std::int64_t>(resolved_shards));
    env.set("timestamp_utc", "");  // filled by the CLI; excluded from digests
    env.set("elapsed_seconds", elapsed_seconds);
    env.set("dropped_trace_events", dropped_trace_events);

    ScenarioOutcome out;
    out.results = results_doc;
    out.manifest = make_manifest(std::move(det), std::move(env));
    out.audit_clean = audit_clean;
    out.audit_violations = audit_violations;
    out.all_delivered = all_delivered;
    out.telemetry = std::move(telemetry);
    out.flight_trace = std::move(flight_trace);
    out.dropped_trace_events = dropped_trace_events;
    return out;
  }
};

void run_kbroadcast_cells(Builder& b, const graph::Graph& g,
                          const radio::Knowledge& know) {
  const ScenarioSpec& spec = b.spec;
  core::montecarlo::Options opts;
  opts.threads = b.resolved_threads;

  const bool telemetry = spec.telemetry.enabled;

  b.columns = {"algo",   "placement", "k",      "loss",   "cd",
               "rounds", "r_per_pkt", "stage1", "stage2", "stage3",
               "stage4", "phases",    "delivered", "ok"};
  if (telemetry) {
    // Per-packet delivery-latency percentiles (pooled over packets, nodes
    // and trials; null for non-pipeline algos, which have no tracer).
    b.columns.insert(b.columns.end(), {"lat_p50", "lat_p90", "lat_p99", "lat_max"});
  }
  b.axes.set("algo", JsonValue(std::vector<JsonValue>(spec.algos.begin(), spec.algos.end())));
  b.axes.set("placement", JsonValue(std::vector<JsonValue>(spec.placement.begin(),
                                                           spec.placement.end())));
  {
    std::vector<JsonValue> ks, ls, cds;
    for (const std::uint32_t k : spec.k) ks.emplace_back(static_cast<std::uint64_t>(k));
    for (const double l : spec.loss) ls.emplace_back(l);
    for (const bool c : spec.collision_detection) cds.emplace_back(c);
    b.axes.set("k", JsonValue(std::move(ks)));
    b.axes.set("loss", JsonValue(std::move(ls)));
    b.axes.set("cd", JsonValue(std::move(cds)));
  }

  std::vector<Cell> cells;
  for (const std::string& algo : spec.algos)
    for (const std::string& placement : spec.placement)
      for (const std::uint32_t k : spec.k)
        for (const double loss : spec.loss)
          for (const bool cd : spec.collision_detection)
            cells.push_back({algo, placement, k, loss, cd});

  for (const Cell& cell : cells) {
    const baselines::Algo algo = algo_from_string(cell.algo);
    const bool pipeline =
        algo == baselines::Algo::kCoded || algo == baselines::Algo::kUncodedPipeline;

    std::vector<core::RunResult> results;
    std::vector<std::unique_ptr<audit::ModelAuditor>> auditors;
    std::vector<std::unique_ptr<obs::PacketTracer>> tracers;
    std::vector<std::unique_ptr<obs::RunObserver>> observers;
    if (pipeline) {
      core::montecarlo::KBroadcastSweep sweep;
      sweep.graph = &g;
      sweep.cfg = algo == baselines::Algo::kCoded
                      ? baselines::coded_config(know)
                      : baselines::uncoded_pipeline_config(know);
      sweep.k = cell.k;
      sweep.placement = placement_mode(cell.placement);
      sweep.payload_bytes = spec.payload_bytes;
      sweep.placement_seed = [&spec](int t) { return placement_seed(spec, t); };
      sweep.run_seed = [&spec](int t) { return run_seed(spec, t); };
      sweep.max_rounds = spec.max_rounds;
      sweep.collision_detection = cell.cd;
      sweep.engine = spec.engine == "bitset" ? radio::EngineMode::kBitset
                                             : radio::EngineMode::kScalar;
      sweep.shards = b.resolved_shards;
      if (cell.loss > 0) {
        sweep.faults = [&spec, &cell](int t) {
          radio::FaultModel f;
          f.reception_loss_probability = cell.loss;
          f.seed = fault_seed(spec, t);
          return f;
        };
      }
      if (spec.audit) {
        auditors.resize(static_cast<std::size_t>(spec.seeds));
        for (auto& a : auditors) a = std::make_unique<audit::ModelAuditor>();
        sweep.auditor = [&auditors](int t) -> core::RunAuditor* {
          return auditors[static_cast<std::size_t>(t)].get();
        };
      }
      if (telemetry) {
        // One tracer + one ledger-bearing observer per trial (the sweep
        // may run them concurrently); merged below in trial order.
        obs::PacketTracer::Options topts;
        topts.flight_paths = spec.telemetry.flight_paths;
        topts.max_flight_events =
            static_cast<std::size_t>(spec.telemetry.max_flight_events);
        obs::RunObserver::Options oopts;
        oopts.channel_ledger = true;
        oopts.ledger_max_rounds =
            static_cast<std::size_t>(spec.telemetry.ledger_rounds);
        tracers.resize(static_cast<std::size_t>(spec.seeds));
        observers.resize(static_cast<std::size_t>(spec.seeds));
        for (auto& tr : tracers) tr = std::make_unique<obs::PacketTracer>(topts);
        for (auto& ob : observers) ob = std::make_unique<obs::RunObserver>(oopts);
        sweep.tracer = [&tracers](int t) {
          return tracers[static_cast<std::size_t>(t)].get();
        };
        sweep.observer = [&observers](int t) {
          return observers[static_cast<std::size_t>(t)].get();
        };
      }
      results = core::montecarlo::run_kbroadcast_sweep(sweep, spec.seeds, opts);
    } else {
      // seq_bgi / gossip go through the uniform baseline entry point
      // (validate_scenario already rejected fault/CD/audit axes for them).
      results = core::montecarlo::run(
          spec.seeds,
          [&](int t) {
            Rng prng(placement_seed(spec, t));
            const core::Placement placement = core::make_placement(
                g.num_nodes(), cell.k, placement_mode(cell.placement),
                spec.payload_bytes, prng);
            return baselines::run_algo(algo, g, know, placement, run_seed(spec, t),
                                       spec.max_rounds);
          },
          opts);
    }

    SampleSet rounds, rpp, s1, s2, s3, s4, phases;
    int delivered = 0;
    std::vector<std::string> trial_digests;
    for (const core::RunResult& r : results) {
      b.dropped_trace_events += r.dropped_trace_events;
      if (r.delivered_all) ++delivered;
      rounds.add(static_cast<double>(r.total_rounds));
      rpp.add(r.amortized_rounds_per_packet());
      s1.add(static_cast<double>(r.stage1_rounds));
      s2.add(static_cast<double>(r.stage2_rounds));
      s3.add(static_cast<double>(r.stage3_rounds));
      s4.add(static_cast<double>(r.stage4_rounds));
      phases.add(static_cast<double>(r.collection_phases));
      trial_digests.push_back(digest_run(r));
    }
    for (std::size_t t = 0; t < auditors.size(); ++t) {
      if (!auditors[t]->clean()) {
        b.audit_clean = false;
        b.audit_violations.push_back(
            "cell algo=" + cell.algo + " k=" + std::to_string(cell.k) + " trial " +
            std::to_string(t) + ": " + auditors[t]->summary());
      }
    }
    b.all_delivered = b.all_delivered && delivered == spec.seeds;

    // --- Telemetry emission (pipeline cells only: seq_bgi/gossip run
    // through run_algo, which has no audit tap to trace). Every reduction
    // below walks trials in trial order, so the document is byte-identical
    // at any thread count.
    obs::LogHistogram cell_latency;
    if (telemetry && pipeline) {
      JsonObject cl;
      cl.set("type", "cell");
      cl.set("algo", cell.algo);
      cl.set("placement", cell.placement);
      cl.set("k", static_cast<std::uint64_t>(cell.k));
      cl.set("loss", cell.loss);
      cl.set("cd", cell.cd);
      b.telemetry_lines.push_back(telemetry_line(std::move(cl)));

      for (const auto& tr : tracers) cell_latency.merge(tr->all_latencies());
      {
        JsonObject l;
        l.set("type", "latency");
        set_latency_stats(l, cell_latency);
        l.set("buckets", buckets_json(cell_latency));
        b.telemetry_lines.push_back(telemetry_line(std::move(l)));
      }

      // Per-packet lines: index = position in truth order, which is the
      // stable cross-trial identity (concrete packet ids differ per trial).
      const std::uint32_t n = tracers.front()->num_nodes();
      for (std::uint32_t p = 0; p < cell.k; ++p) {
        obs::LogHistogram h;
        std::uint64_t undelivered = 0;
        std::uint64_t max_depth = 0;
        for (const auto& tr : tracers) {
          h.merge(tr->packet_latencies(p));
          undelivered += tr->undelivered(p);
          for (radio::NodeId v = 0; v < n; ++v) {
            if (tr->held(p, v))
              max_depth = std::max<std::uint64_t>(max_depth, tr->hop_depth(p, v));
          }
        }
        JsonObject pl;
        pl.set("type", "packet");
        pl.set("index", static_cast<std::uint64_t>(p));
        set_latency_stats(pl, h);
        pl.set("undelivered", undelivered);
        pl.set("max_depth", max_depth);
        b.telemetry_lines.push_back(telemetry_line(std::move(pl)));
      }
      b.packets_tracked += cell.k;

      // Channel-utilization aggregates, merged across trials in trial
      // order (first-seen (stage, epoch) order of the earliest trial).
      std::vector<obs::ChannelLedger::Aggregate> merged;
      for (const auto& ob : observers) {
        const obs::ChannelLedger* led = ob->ledger();
        b.dropped_ledger_rows += led->dropped_rows();
        for (const obs::ChannelLedger::Aggregate& a : led->aggregates()) {
          const auto it =
              std::find_if(merged.begin(), merged.end(),
                           [&a](const obs::ChannelLedger::Aggregate& m) {
                             return m.stage == a.stage && m.epoch == a.epoch;
                           });
          if (it == merged.end()) {
            merged.push_back(a);
            continue;
          }
          it->rounds += a.rounds;
          it->awake += a.awake;
          it->transmissions += a.transmissions;
          it->deliveries += a.deliveries;
          it->collisions += a.collisions;
          it->deaf += a.deaf;
          it->faults += a.faults;
          it->silent += a.silent;
        }
      }
      for (const obs::ChannelLedger::Aggregate& a : merged) {
        JsonObject lg;
        lg.set("type", "ledger");
        lg.set("stage", a.stage);
        lg.set("epoch", a.epoch);
        lg.set("rounds", a.rounds);
        lg.set("awake", a.awake);
        lg.set("transmissions", a.transmissions);
        lg.set("deliveries", a.deliveries);
        lg.set("collisions", a.collisions);
        lg.set("deaf", a.deaf);
        lg.set("faults", a.faults);
        lg.set("silent", a.silent);
        b.telemetry_lines.push_back(telemetry_line(std::move(lg)));
      }

      // Per-round utilization timeline of trial 0 (one representative
      // trial; the whole-grid totals are in the "ledger" lines above).
      const obs::ChannelLedger* led0 = observers.front()->ledger();
      for (const obs::ChannelLedger::Row& r : led0->rows()) {
        JsonObject lr;
        lr.set("type", "ledger_round");
        lr.set("round", r.round);
        lr.set("stage", led0->stage_names()[r.stage]);
        lr.set("epoch", led0->epoch_names()[r.epoch]);
        lr.set("awake", static_cast<std::uint64_t>(r.awake));
        lr.set("transmissions", static_cast<std::uint64_t>(r.transmissions));
        lr.set("deliveries", static_cast<std::uint64_t>(r.deliveries));
        lr.set("collisions", static_cast<std::uint64_t>(r.collisions));
        lr.set("deaf", static_cast<std::uint64_t>(r.deaf));
        lr.set("faults", static_cast<std::uint64_t>(r.faults));
        lr.set("silent", static_cast<std::uint64_t>(r.silent));
        b.telemetry_lines.push_back(telemetry_line(std::move(lr)));
      }

      for (const auto& tr : tracers)
        b.dropped_flight_events += tr->dropped_flight_events();
      if (spec.telemetry.flight_paths) {
        // Flight log of trial 0 (chronological first-hold records).
        const obs::PacketTracer& tr0 = *tracers.front();
        for (const obs::PacketTracer::FlightEvent& e : tr0.flight_events()) {
          JsonObject fl;
          fl.set("type", "flight");
          fl.set("packet", static_cast<std::uint64_t>(e.packet));
          fl.set("node", static_cast<std::uint64_t>(e.node));
          fl.set("from", static_cast<std::uint64_t>(e.from));
          fl.set("latency", e.latency);
          fl.set("depth", static_cast<std::uint64_t>(e.depth));
          fl.set("via", obs::PacketTracer::via_name(e.via));
          b.telemetry_lines.push_back(telemetry_line(std::move(fl)));
        }
        if (b.flight_trace.empty()) {
          std::ostringstream os;
          obs::write_flight_chrome_trace(os, tr0);
          b.flight_trace = os.str();
        }
      }
    }

    JsonObject row;
    row.set("algo", cell.algo);
    row.set("placement", cell.placement);
    row.set("k", static_cast<std::uint64_t>(cell.k));
    row.set("loss", cell.loss);
    row.set("cd", cell.cd);
    row.set("rounds", rounds.median());
    row.set("r_per_pkt", rpp.median());
    row.set("stage1", s1.median());
    row.set("stage2", s2.median());
    row.set("stage3", s3.median());
    row.set("stage4", s4.median());
    row.set("phases", phases.median());
    row.set("delivered",
            std::to_string(delivered) + "/" + std::to_string(spec.seeds));
    row.set("ok", delivered == spec.seeds);
    if (telemetry) {
      row.set("lat_p50", pipeline ? JsonValue(cell_latency.p50()) : JsonValue());
      row.set("lat_p90", pipeline ? JsonValue(cell_latency.p90()) : JsonValue());
      row.set("lat_p99", pipeline ? JsonValue(cell_latency.p99()) : JsonValue());
      row.set("lat_max", pipeline ? JsonValue(cell_latency.max()) : JsonValue());
    }
    b.rows.emplace_back(std::move(row));

    JsonObject mcell;
    mcell.set("algo", cell.algo);
    mcell.set("placement", cell.placement);
    mcell.set("k", static_cast<std::uint64_t>(cell.k));
    mcell.set("loss", cell.loss);
    mcell.set("cd", cell.cd);
    {
      std::vector<JsonValue> td(trial_digests.begin(), trial_digests.end());
      mcell.set("trial_digests", JsonValue(std::move(td)));
    }
    b.manifest_cells.emplace_back(std::move(mcell));
  }
}

void run_dynamic_cells(Builder& b, const graph::Graph& g,
                       const radio::Knowledge& know) {
  const ScenarioSpec& spec = b.spec;
  core::montecarlo::Options opts;
  opts.threads = b.resolved_threads;

  core::KBroadcastConfig kcfg;
  kcfg.know = know;
  core::DynamicConfig cfg;
  cfg.rc = core::resolve(kcfg);
  cfg.batch_capacity = spec.dynamic.batch_capacity;

  const std::uint64_t epoch_estimate =
      core::collection_phase_rounds(cfg.rc.initial_estimate, cfg.rc) +
      cfg.dissemination_window();
  const std::uint64_t spread =
      cfg.rc.stage3_start() + spec.dynamic.arrival_epochs * epoch_estimate;

  b.columns = {"load",
               "k",
               "delivered",
               "latency_mean_epochs",
               "latency_max_epochs",
               "rounds_per_pkt"};
  {
    std::vector<JsonValue> loads;
    for (const double l : spec.dynamic.load) loads.emplace_back(l);
    b.axes.set("load", JsonValue(std::move(loads)));
  }

  for (const double load : spec.dynamic.load) {
    const auto k = static_cast<std::uint32_t>(load * cfg.resolved_capacity() *
                                              spec.dynamic.arrival_epochs);
    const std::uint64_t horizon =
        spread + (4 + static_cast<std::uint64_t>(2 * load)) * epoch_estimate;

    const std::vector<core::DynamicRunResult> results = core::montecarlo::run(
        spec.seeds,
        [&](int t) {
          Rng arng(placement_seed(spec, t));
          std::vector<core::Arrival> arrivals = core::make_arrivals(
              g.num_nodes(), k, spread, spec.payload_bytes, arng);
          return core::run_dynamic_broadcast(g, cfg, std::move(arrivals), horizon,
                                             run_seed(spec, t));
        },
        opts);

    SampleSet lat_mean, lat_max, rppkt;
    std::uint32_t delivered = 0, offered = 0;
    std::vector<std::string> trial_digests;
    for (const core::DynamicRunResult& r : results) {
      delivered += r.delivered_everywhere;
      offered += r.k;
      lat_mean.add(r.latency_mean / static_cast<double>(epoch_estimate));
      lat_max.add(r.latency_max / static_cast<double>(epoch_estimate));
      if (r.delivered_everywhere > 0) {
        rppkt.add(static_cast<double>(r.horizon - cfg.rc.stage3_start()) /
                  r.delivered_everywhere);
      }
      trial_digests.push_back(digest_dynamic(r));
    }
    b.all_delivered = b.all_delivered && delivered == offered;

    JsonObject row;
    row.set("load", load);
    row.set("k", static_cast<std::uint64_t>(k));
    row.set("delivered",
            std::to_string(delivered) + "/" + std::to_string(offered));
    row.set("latency_mean_epochs", lat_mean.median());
    row.set("latency_max_epochs", lat_max.median());
    row.set("rounds_per_pkt", rppkt.median());
    b.rows.emplace_back(std::move(row));

    JsonObject mcell;
    mcell.set("load", load);
    mcell.set("k", static_cast<std::uint64_t>(k));
    {
      std::vector<JsonValue> td(trial_digests.begin(), trial_digests.end());
      mcell.set("trial_digests", JsonValue(std::move(td)));
    }
    b.manifest_cells.emplace_back(std::move(mcell));
  }
}

std::string digest_stream(const stream::StreamResult& r) {
  JsonObject o;
  o.set("n", static_cast<std::uint64_t>(r.n));
  o.set("horizon", r.horizon);
  o.set("arrivals", r.arrivals_scheduled);
  o.set("delivered_everywhere", r.delivered_everywhere);
  o.set("offered", r.queue.offered);
  o.set("admitted", r.queue.admitted);
  o.set("dropped", r.queue.dropped);
  o.set("backpressured", r.queue.backpressured);
  o.set("peak_depth", r.queue.peak_depth);
  o.set("epochs", static_cast<std::uint64_t>(r.epochs_completed));
  o.set("in_system_end", r.in_system_end);
  o.set("saturated", r.saturated);
  o.set("saturation_onset", r.saturation_onset_round);
  o.set("latency_count", r.latency.count());
  o.set("latency_sum", r.latency.sum());
  o.set("latency_max", r.latency.max());
  o.set("counters", counters_json(r.counters));
  return digest_json(JsonValue(std::move(o)));
}

void run_stream_cells(Builder& b, const graph::Graph& g,
                      const radio::Knowledge& know) {
  const ScenarioSpec& spec = b.spec;
  core::montecarlo::Options opts;
  opts.threads = b.resolved_threads;

  core::KBroadcastConfig kcfg;
  kcfg.know = know;
  core::DynamicConfig dyn;
  dyn.rc = core::resolve(kcfg);
  dyn.batch_capacity = spec.stream.batch_capacity;

  const std::uint64_t epoch_estimate = stream::epoch_estimate_rounds(dyn);
  // Arrivals start at round 0 and buffer through the one-time setup
  // (Stage 1 + Stage 2); the round budget grants the full horizon_epochs
  // of pipelined epochs after it.
  const std::uint64_t horizon =
      dyn.rc.stage3_start() + spec.stream.horizon_epochs * epoch_estimate;

  stream::ArrivalKind kind = stream::ArrivalKind::kPoisson;
  stream::arrival_kind_from_string(spec.stream.process, kind);

  b.columns = {"rate",       "buffer",    "policy",  "arrivals", "delivered",
               "tput",       "tput_epoch", "norm_tput", "lat_p50", "lat_p90",
               "lat_p99",    "lat_max",   "dropped", "backpressured",
               "peak_depth", "in_system_end", "saturated"};
  {
    std::vector<JsonValue> rates, buffers;
    for (const double r : spec.stream.rate) rates.emplace_back(r);
    for (const std::uint32_t v : spec.stream.buffer)
      buffers.emplace_back(static_cast<std::uint64_t>(v));
    b.axes.set("rate", JsonValue(std::move(rates)));
    b.axes.set("buffer", JsonValue(std::move(buffers)));
    b.axes.set("policy", JsonValue(std::vector<JsonValue>(spec.stream.policy.begin(),
                                                          spec.stream.policy.end())));
  }

  for (const double rate : spec.stream.rate) {
    for (const std::uint32_t buffer : spec.stream.buffer) {
      for (const std::string& policy_name : spec.stream.policy) {
        stream::BufferPolicy policy = stream::BufferPolicy::kDropNew;
        stream::buffer_policy_from_string(policy_name, policy);

        stream::StreamConfig cfg;
        cfg.dyn = dyn;
        cfg.arrivals.kind = kind;
        cfg.arrivals.rate = stream::per_node_rate(dyn, g.num_nodes(), rate);
        cfg.arrivals.payload_bytes = spec.payload_bytes;
        cfg.buffer_capacity = buffer;
        cfg.policy = policy;
        cfg.saturation.window = spec.stream.saturation_window;
        cfg.saturation.min_growth = spec.stream.saturation_min_growth;
        cfg.horizon = horizon;
        cfg.shards = static_cast<std::uint32_t>(b.resolved_shards);
        cfg.audit = spec.audit;
        cfg.ledger_max_rows =
            static_cast<std::size_t>(spec.telemetry.ledger_rounds);

        const std::vector<stream::StreamResult> results = core::montecarlo::run(
            spec.seeds,
            [&](int t) {
              stream::StreamConfig trial_cfg = cfg;
              trial_cfg.arrivals.seed = arrival_seed(spec, t);
              trial_cfg.seed = run_seed(spec, t);
              return stream::run_stream(g, trial_cfg);
            },
            opts);

        // All reductions walk trials in trial order: histogram merges are
        // bucket-wise integer sums and counters are integer sums, so the
        // document is byte-identical at any thread (and shard) count.
        obs::LogHistogram latency;
        SampleSet tput, norm, in_system;
        std::uint64_t arrivals = 0, delivered = 0, peak_depth = 0;
        stream::QueueStats queue;
        int saturated_trials = 0;
        std::vector<std::string> trial_digests;
        for (const stream::StreamResult& r : results) {
          latency.merge(r.latency);
          tput.add(r.throughput);
          norm.add(r.normalized_throughput);
          in_system.add(static_cast<double>(r.in_system_end));
          arrivals += r.arrivals_scheduled;
          delivered += r.delivered_everywhere;
          queue.merge(r.queue);
          peak_depth = std::max(peak_depth, r.queue.peak_depth);
          if (r.saturated) ++saturated_trials;
          trial_digests.push_back(digest_stream(r));
          if (r.audited && r.audit_violations > 0) {
            b.audit_clean = false;
            b.audit_violations.push_back(
                "cell rate=" + std::to_string(rate) + " buffer=" +
                std::to_string(buffer) + " policy=" + policy_name + ": " +
                r.audit_summary);
          }
        }

        if (spec.telemetry.enabled) {
          JsonObject cl;
          cl.set("type", "cell");
          cl.set("rate", rate);
          cl.set("buffer", static_cast<std::uint64_t>(buffer));
          cl.set("policy", policy_name);
          b.telemetry_lines.push_back(telemetry_line(std::move(cl)));
          {
            JsonObject l;
            l.set("type", "latency");
            set_latency_stats(l, latency);
            l.set("buckets", buckets_json(latency));
            b.telemetry_lines.push_back(telemetry_line(std::move(l)));
          }
          {
            // Whole-cell backlog totals (exact regardless of the row cap).
            JsonObject q;
            q.set("type", "queue");
            q.set("offered", queue.offered);
            q.set("admitted", queue.admitted);
            q.set("dropped", queue.dropped);
            q.set("backpressured", queue.backpressured);
            q.set("peak_depth", peak_depth);
            q.set("saturated_trials",
                  static_cast<std::uint64_t>(saturated_trials));
            b.telemetry_lines.push_back(telemetry_line(std::move(q)));
          }
          // Backlog timeline of trial 0 (one representative trial, one row
          // per epoch boundary), mirroring the kbroadcast "ledger_round"
          // convention.
          const obs::QueueLedger& led0 = results.front().ledger;
          b.dropped_ledger_rows += led0.dropped_rows();
          for (const obs::QueueLedger::Row& r : led0.rows()) {
            JsonObject qr;
            qr.set("type", "queue_round");
            qr.set("round", r.round);
            qr.set("buffered", r.buffered);
            qr.set("held_back", r.held_back);
            qr.set("in_flight", r.in_flight);
            qr.set("offered", r.offered);
            qr.set("admitted", r.admitted);
            qr.set("dropped", r.dropped);
            qr.set("backpressured", r.backpressured);
            qr.set("delivered", r.delivered);
            b.telemetry_lines.push_back(telemetry_line(std::move(qr)));
          }
          b.packets_tracked += delivered;
        }

        JsonObject row;
        row.set("rate", rate);
        row.set("buffer", static_cast<std::uint64_t>(buffer));
        row.set("policy", policy_name);
        row.set("arrivals", arrivals);
        row.set("delivered", delivered);
        row.set("tput", tput.median());
        // Delivered packets per nominal epoch — directly comparable to the
        // batch capacity, so the saturation knee reads off the table.
        row.set("tput_epoch", tput.median() * static_cast<double>(epoch_estimate));
        row.set("norm_tput", norm.median());
        row.set("lat_p50", latency.p50());
        row.set("lat_p90", latency.p90());
        row.set("lat_p99", latency.p99());
        row.set("lat_max", latency.max());
        row.set("dropped", queue.dropped);
        row.set("backpressured", queue.backpressured);
        row.set("peak_depth", peak_depth);
        row.set("in_system_end", in_system.median());
        row.set("saturated", std::to_string(saturated_trials) + "/" +
                                 std::to_string(spec.seeds));
        b.rows.emplace_back(std::move(row));

        JsonObject mcell;
        mcell.set("rate", rate);
        mcell.set("buffer", static_cast<std::uint64_t>(buffer));
        mcell.set("policy", policy_name);
        {
          std::vector<JsonValue> td(trial_digests.begin(), trial_digests.end());
          mcell.set("trial_digests", JsonValue(std::move(td)));
        }
        b.manifest_cells.emplace_back(std::move(mcell));
      }
    }
  }
}

}  // namespace

ScenarioOutcome run_scenario(const ScenarioSpec& spec) {
  validate_scenario(spec);
  const auto start = std::chrono::steady_clock::now();

  const graph::Graph g = build_topology(spec.topology);
  const radio::Knowledge know = build_knowledge(spec.knowledge, g);

  Builder b{.spec = spec,
            .resolved_threads = spec.threads > 0
                                    ? spec.threads
                                    : core::montecarlo::threads_from_env(),
            .resolved_shards = spec.shards > 0
                                   ? spec.shards
                                   : core::montecarlo::shards_from_env()};
  if (spec.mode == "dynamic") {
    run_dynamic_cells(b, g, know);
  } else if (spec.mode == "stream") {
    run_stream_cells(b, g, know);
  } else {
    run_kbroadcast_cells(b, g, know);
  }

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return b.finish(g, know, elapsed);
}

}  // namespace radiocast::exp
