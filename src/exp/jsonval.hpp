// Recursive JSON document tree + parser for the experiment layer.
//
// The observability side of the library only ever *writes* JSON
// (obs::JsonWriter streams documents with no intermediate tree). The
// scenario layer needs the opposite direction: scenario specs, manifests
// and results files are read back, validated, and re-serialized. This
// module provides the minimal value tree both directions share:
//
//   * a strict RFC-8259 parser (UTF-8 passthrough, \uXXXX escapes decoded,
//     no comments, no trailing commas) that reports line/column on error;
//   * a canonical serializer: object members in insertion order, numbers
//     printed via the same round-trippable formatting as obs::JsonWriter —
//     so parse(serialize(v)) == v and serialized bytes are stable enough
//     to digest (manifest determinism rests on this);
//   * typed accessors that throw JsonError with a dotted path on type or
//     key mismatch, which is what gives scenario parsing its "unknown key
//     / wrong type" error messages.
//
// Objects preserve insertion order (specs re-serialize in the order the
// author wrote) and reject duplicate keys at parse time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace radiocast::exp {

/// Error thrown by the parser (with 1-based line:column) and by the typed
/// accessors (with the offending dotted path).
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue;

/// Order-preserving string -> JsonValue map (JSON object). Lookup is
/// linear — scenario documents are tiny.
class JsonObject {
 public:
  /// Inserts or overwrites; insertion order is serialization order.
  JsonValue& set(std::string key, JsonValue value);
  /// Pointer to the member, or nullptr when absent.
  const JsonValue* find(std::string_view key) const;
  JsonValue* find(std::string_view key);
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  std::size_t size() const { return members_.size(); }

  bool operator==(const JsonObject&) const;

 private:
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// One JSON value: null, bool, number (double or exact int64/uint64),
/// string, array, or object. Integers that fit are kept exact so that
/// 64-bit seeds and round counts survive a round trip bit-for-bit.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(int v) : JsonValue(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned v) : JsonValue(static_cast<std::uint64_t>(v)) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}
  JsonValue(std::vector<JsonValue> a) : kind_(Kind::kArray), array_(std::move(a)) {}
  JsonValue(JsonObject o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; `ctx` names the value in thrown errors (dotted path).
  bool as_bool(std::string_view ctx = "value") const;
  /// Any numeric kind, as double.
  double as_double(std::string_view ctx = "value") const;
  /// Integral kinds only (doubles with integral value accepted); throws on
  /// fractional values or overflow.
  std::int64_t as_int(std::string_view ctx = "value") const;
  std::uint64_t as_uint(std::string_view ctx = "value") const;
  const std::string& as_string(std::string_view ctx = "value") const;
  const std::vector<JsonValue>& as_array(std::string_view ctx = "value") const;
  const JsonObject& as_object(std::string_view ctx = "value") const;
  JsonObject& as_object(std::string_view ctx = "value");

  bool operator==(const JsonValue& other) const;

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  JsonObject object_;
};

/// Parses one complete JSON document (trailing whitespace allowed, any
/// other trailing content is an error). Throws JsonError with line:column.
JsonValue json_parse(std::string_view text);

/// Canonical serialization: insertion-order objects, obs::JsonWriter
/// number formatting. `indent` > 0 pretty-prints with that many spaces.
std::string json_serialize(const JsonValue& v, int indent = 0);

}  // namespace radiocast::exp
