// InterceptingProtocol — a transparent NodeProtocol wrapper for testing
// and instrumentation.
//
// Wraps an inner protocol and invokes user callbacks on every transmit
// decision and delivery, without changing behaviour. Tests use it to
// assert message discipline (e.g. "no Stage-3 unicast traffic during
// dissemination"), build per-round histograms, or inject observation
// points into end-to-end runs that the runners set up.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "radio/node.hpp"

namespace radiocast::radio {

class InterceptingProtocol final : public NodeProtocol {
 public:
  /// Called after the inner protocol's transmit decision; may observe (not
  /// alter) the outcome.
  using TransmitHook =
      std::function<void(Round, const std::optional<MessageBody>&)>;
  /// Called before the inner protocol's on_receive.
  using ReceiveHook = std::function<void(Round, const Message&)>;
  using WakeHook = std::function<void(Round)>;
  /// Called before the inner protocol's on_collision (fires only under the
  /// collision-detection ablation, like the callback it observes).
  using CollisionHook = std::function<void(Round)>;

  explicit InterceptingProtocol(std::unique_ptr<NodeProtocol> inner)
      : inner_(std::move(inner)) {
    RC_ASSERT(inner_ != nullptr);
  }

  void set_transmit_hook(TransmitHook hook) { on_transmit_ = std::move(hook); }
  void set_receive_hook(ReceiveHook hook) { on_receive_ = std::move(hook); }
  void set_wake_hook(WakeHook hook) { on_wake_ = std::move(hook); }
  void set_collision_hook(CollisionHook hook) { on_collision_ = std::move(hook); }

  void on_wake(Round round) override {
    if (on_wake_) on_wake_(round);
    inner_->on_wake(round);
  }

  std::optional<MessageBody> on_transmit(Round round) override {
    std::optional<MessageBody> out = inner_->on_transmit(round);
    if (on_transmit_) on_transmit_(round, out);
    return out;
  }

  void on_receive(Round round, const Message& msg) override {
    if (on_receive_) on_receive_(round, msg);
    inner_->on_receive(round, msg);
  }

  void on_collision(Round round) override {
    if (on_collision_) on_collision_(round);
    inner_->on_collision(round);
  }

  bool done() const override { return inner_->done(); }

  NodeProtocol& inner() { return *inner_; }
  const NodeProtocol& inner() const { return *inner_; }

 private:
  std::unique_ptr<NodeProtocol> inner_;
  TransmitHook on_transmit_;
  ReceiveHook on_receive_;
  WakeHook on_wake_;
  CollisionHook on_collision_;
};

}  // namespace radiocast::radio
