#include "radio/message.hpp"

#include "common/assert.hpp"

namespace radiocast::radio {

namespace {
struct KindVisitor {
  std::string operator()(const BfsConstructMsg&) const { return "bfs"; }
  std::string operator()(const AlarmMsg&) const { return "alarm"; }
  std::string operator()(const DataMsg&) const { return "data"; }
  std::string operator()(const AckMsg&) const { return "ack"; }
  std::string operator()(const PlainPacketMsg&) const { return "plain"; }
  std::string operator()(const CodedMsg&) const { return "coded"; }
};
}  // namespace

std::string message_kind(const MessageBody& body) {
  return std::visit(KindVisitor{}, body);
}

const std::array<const char*, kNumMessageKinds>& message_kind_names() {
  static const std::array<const char*, kNumMessageKinds> kNames = {
      "bfs", "alarm", "data", "ack", "plain", "coded"};
  return kNames;
}

std::string message_kind_name(std::size_t kind_index) {
  RC_ASSERT(kind_index < kNumMessageKinds);
  return message_kind_names()[kind_index];
}

}  // namespace radiocast::radio
