#include "radio/message.hpp"

#include "common/assert.hpp"

namespace radiocast::radio {

namespace {
struct SizeVisitor {
  std::size_t operator()(const BfsConstructMsg&) const { return 64; }
  std::size_t operator()(const AlarmMsg&) const { return 1; }
  std::size_t operator()(const DataMsg& m) const {
    return 64 /*packet id*/ + 32 /*to*/ + m.packet.payload.size() * 8;
  }
  std::size_t operator()(const AckMsg&) const { return 64 + 32; }
  std::size_t operator()(const PlainPacketMsg& m) const {
    return 64 + 96 /*group header*/ + m.packet.payload.size() * 8;
  }
  std::size_t operator()(const CodedMsg& m) const {
    return 96 /*group header*/ + m.group_size /*coefficient bitmap*/ +
           m.payload.size() * 8;
  }
};

struct KindVisitor {
  std::string operator()(const BfsConstructMsg&) const { return "bfs"; }
  std::string operator()(const AlarmMsg&) const { return "alarm"; }
  std::string operator()(const DataMsg&) const { return "data"; }
  std::string operator()(const AckMsg&) const { return "ack"; }
  std::string operator()(const PlainPacketMsg&) const { return "plain"; }
  std::string operator()(const CodedMsg&) const { return "coded"; }
};
}  // namespace

std::size_t message_size_bits(const MessageBody& body) {
  return std::visit(SizeVisitor{}, body);
}

std::string message_kind(const MessageBody& body) {
  return std::visit(KindVisitor{}, body);
}

const std::array<const char*, kNumMessageKinds>& message_kind_names() {
  static const std::array<const char*, kNumMessageKinds> kNames = {
      "bfs", "alarm", "data", "ack", "plain", "coded"};
  return kNames;
}

std::string message_kind_name(std::size_t kind_index) {
  RC_ASSERT(kind_index < kNumMessageKinds);
  return message_kind_names()[kind_index];
}

}  // namespace radiocast::radio
