// The synchronous radio-network simulation engine.
//
// Implements exactly the model of the paper: in each round every awake node
// may transmit one message; a node receives a message iff exactly one of
// its neighbors transmitted and the node itself did not transmit. There is
// no collision detection: nodes observe only successful receptions.
//
// The engine owns one NodeProtocol per vertex of the topology graph.
// Protocols for sleeping nodes exist from the start but get no callbacks
// until woken (round 0 for initially-awake nodes, or on first reception).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gf2/bitvec.hpp"
#include "graph/graph.hpp"
#include "graph/packed.hpp"
#include "graph/partition.hpp"
#include "obs/observer.hpp"
#include "radio/audit_hook.hpp"
#include "radio/node.hpp"
#include "radio/payload_arena.hpp"
#include "radio/trace.hpp"

namespace radiocast::radio {

/// Which round-kernel implementation executes step().
///
/// kScalar is the node-at-a-time engine (the reference semantics; every
/// historical digest was produced by it). kBitset keeps the transmit and
/// awake sets as packed uint64_t bit vectors and computes reception with
/// word-wise AND/popcount sweeps over CSR rows — same model, same results,
/// ~word-parallel speed on large graphs. See docs/performance.md.
enum class EngineMode : std::uint8_t { kScalar, kBitset };

/// "scalar" / "bitset" (stable names: scenario schema + manifests).
const char* engine_mode_name(EngineMode mode);

/// Inverse of engine_mode_name; nullopt for unknown names.
std::optional<EngineMode> parse_engine_mode(std::string_view name);

/// Optional bulk transmit-decision provider for the bitset engine.
///
/// The scalar engine asks every awake node's protocol for a decision via
/// the virtual NodeProtocol::on_transmit; at n = 10^6 those virtual calls
/// dominate the round. A protocol family whose per-round decision is a
/// simple predicate (the paper's one-bit Decay/alarm regimes) can instead
/// register a PackedTransmitSource: the engine requests the whole round's
/// decisions as one bit vector and only materialises a Message for
/// transmitters somebody actually hears.
///
/// Contract: fill_transmit_words writes one bit per node id (bit i of
/// words[i / 64]) — set iff node i would transmit this round if awake. The
/// engine ANDs the result with the awake set and ignores bits at or beyond
/// num_nodes, so the source does not need to know who is awake. Within one
/// round every packed_body() must have the same message kind and wire size
/// (the engine computes round totals from one representative body). The
/// source must agree with the protocols' own on_transmit so scalar runs of
/// the same system remain comparable; the differential oracle tests pin
/// this for the in-tree sources. Honored only when the engine mode is
/// kBitset; the scalar engine always uses on_transmit.
class PackedTransmitSource {
 public:
  virtual ~PackedTransmitSource() = default;

  /// Writes the round's would-transmit set (one bit per node).
  /// `num_words` = ceil(num_nodes / 64); words beyond the node count are
  /// masked off by the engine.
  virtual void fill_transmit_words(Round round, std::uint64_t* words,
                                   std::size_t num_words) = 0;

  /// The message node `from` transmits this round (same kind and wire
  /// size for every `from` within one round).
  virtual MessageBody packed_body(Round round, NodeId from) = 0;
};

/// Optional fault injection, beyond the paper's model: models external
/// interference (jamming, thermal noise) as independent per-reception
/// erasures. A successful slot (exactly one transmitting neighbor, and a
/// receiver that is not itself transmitting) is erased with
/// `reception_loss_probability`; the receiver observes silence, exactly as
/// it would for a collision — there is still no detection.
///
/// RNG stream discipline: the fault RNG is consumed by *successful slots
/// only*, one draw per successful slot, in receiver-touch order. Collision
/// and deaf slots never consume a draw, and with
/// `reception_loss_probability == 0` no draw ever happens. The stream is
/// therefore a pure function of the successful-slot sequence — two runs
/// whose protocols produce the same transmissions up to some round consume
/// draws at identical positions regardless of the loss rate, which keeps
/// traces comparable across loss-rate sweeps. Pinned by
/// Faults.ErasureDrawsConsumeRngOnlyOnSuccessfulSlots.
struct FaultModel {
  double reception_loss_probability = 0.0;
  std::uint64_t seed = 0x5eedf001u;
};

/// Test-only engine mutations. Each flag seeds one deliberate violation of
/// the radio model so the audit tests can prove the ModelAuditor catches
/// it (see tests/audit/mutation_test.cpp). All flags are false in every
/// production configuration; the flags cost one predictable branch on the
/// slots they guard and nothing anywhere else.
struct EngineMutations {
  /// Deliver the first reaching message even when >= 2 reached (breaks
  /// "collision means silence").
  bool deliver_on_collision = false;
  /// Deliver to a receiver that is itself transmitting (breaks the
  /// half-duplex rule).
  bool deliver_while_transmitting = false;
  /// Deliver to sleeping nodes without waking them (breaks wake-on-first-
  /// reception).
  bool skip_wake_on_receive = false;
  /// Sharded engines only: reduce per-shard touched lists by shard
  /// concatenation instead of the deterministic (first-reacher, node-id)
  /// merge (breaks the scalar receiver-touch order the fault-RNG stream
  /// and every order-sensitive hook are defined by). Inert at 1 shard.
  bool shard_wrong_reduction_order = false;
  /// Sharded engines only: each shard applies only the transmissions whose
  /// sender lies inside the shard — the frontier/transmit-set exchange at
  /// the round boundary is skipped, so every cut-edge reception is lost
  /// (flagged by the ModelAuditor's re-derived outcomes). Inert at 1 shard.
  bool shard_skip_frontier_exchange = false;
};

class Network {
 public:
  /// The graph must be finalized and outlive the network.
  explicit Network(const graph::Graph& graph);

  NodeId num_nodes() const { return graph_.num_nodes(); }
  const graph::Graph& topology() const { return graph_; }

  /// Installs the protocol for node `id`. Must be called for every node
  /// before the first step; calling it after the simulation started would
  /// silently desynchronize done-tracking and protocol state, so it fails
  /// loudly instead.
  void set_protocol(NodeId id, std::unique_ptr<NodeProtocol> protocol);

  /// Non-owning overload: the protocol lives in external storage
  /// (typically a ProtocolSlab, see radio/protocol_slab.hpp) that must
  /// outlive the network. Same timing rules as the owning overload.
  void set_protocol(NodeId id, NodeProtocol* protocol);

  NodeProtocol& protocol(NodeId id);
  const NodeProtocol& protocol(NodeId id) const;

  /// The run's payload-recycling pool: spent transmission buffers are
  /// harvested back into it every round, and set_protocol wires it into
  /// each protocol (see NodeProtocol::payload_arena). Heap-held so its
  /// address — cached by every protocol — survives moving the Network.
  PayloadArena& payload_arena() { return *payload_arena_; }

  /// Marks a node as awake from the start (on_wake fires at the first
  /// step, with the then-current round).
  void wake_at_start(NodeId id);

  /// Installs a fault model (default: no faults). Must be set before the
  /// first step.
  void set_fault_model(const FaultModel& model);

  /// Model ablation: when enabled, a listening node whose neighborhood
  /// carried >= 2 simultaneous transmissions gets an on_collision callback
  /// (it can now distinguish collision from silence). The paper's model —
  /// and the library default — is OFF; the flag exists to quantify what
  /// the collision-detection *emulation* of Stage 1 costs relative to
  /// hardware CD. Must be set before the first step.
  void enable_collision_detection(bool on);
  bool collision_detection() const { return collision_detection_; }

  bool is_awake(NodeId id) const { return awake_[id] != 0; }
  std::size_t num_awake() const { return awake_list_.size(); }

  Round current_round() const { return round_; }

  /// Executes one synchronous round.
  void step();

  /// Runs until all protocols report done() or `max_rounds` elapse.
  /// Returns true iff all nodes were done at exit.
  bool run_until_done(Round max_rounds);

  /// Runs until `predicate()` is true or `max_rounds` elapse; the
  /// predicate is evaluated after each round. Returns true iff the
  /// predicate fired.
  bool run_until(Round max_rounds, const std::function<bool()>& predicate);

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  /// Attaches a flight-recorder sink (nullptr detaches). When attached,
  /// step() reports every round's channel-activity deltas via
  /// obs::RunObserver::on_round; when detached the only per-round cost is
  /// one branch. The observer must outlive the network (or be detached).
  void set_observer(obs::RunObserver* observer) { observer_ = observer; }
  obs::RunObserver* observer() const { return observer_; }

  /// Attaches a model-conformance auditor (nullptr detaches). The hook
  /// sees the raw transmission set and every reception outcome of every
  /// round (see radio/audit_hook.hpp); it is read-only, so an audited run
  /// is bit-identical to an unaudited one. Must be attached before the
  /// first step so the auditor sees the initial wake set; must outlive
  /// the network (or be detached).
  void set_auditor(NetworkAuditHook* auditor);
  NetworkAuditHook* auditor() const { return auditor_; }

  /// Installs test-only engine mutations (see EngineMutations). Must be
  /// called before the first step.
  void set_test_mutations(const EngineMutations& mutations);

  /// Selects the round kernel (default kScalar). Must be called before
  /// the first step; the two engines produce identical simulations (the
  /// bitset engine is pinned to the scalar one by the differential oracle
  /// tests and the audited corpus).
  void set_engine(EngineMode mode);
  EngineMode engine() const { return engine_; }

  /// Registers a bulk transmit-decision source (nullptr detaches). Only
  /// honored by the bitset engine — see PackedTransmitSource. Must be set
  /// before the first step; must outlive the network (or be detached).
  void set_packed_source(PackedTransmitSource* source);
  PackedTransmitSource* packed_source() const { return packed_source_; }

  /// Partitions each round's reception sweep over `shards` contiguous node
  /// shards run on an internal thread pool (see docs/performance.md,
  /// "Graph sharding"). Results are shard-count invariant bit for bit:
  /// shard-local sweeps write disjoint state, a barrier closes the sweep,
  /// and a deterministic (first-reacher, node-id) merge reconstructs the
  /// exact scalar receiver-touch order before any protocol callback, trace
  /// event, audit hook, or fault-RNG draw fires — so `shards` is an
  /// execution knob like the Monte Carlo thread budget, never part of a
  /// result. 1 (the default) bypasses sharding entirely (the legacy
  /// single-threaded path, bit-identical by construction). Must be called
  /// before the first step. The effective count is clamped by the
  /// partitioner (bitset shards align to 64-node blocks so packed words
  /// never straddle shards); tiny graphs may collapse to one shard.
  void set_shards(std::uint32_t shards);
  std::uint32_t shards() const { return shards_requested_; }

 private:
  void wake(NodeId id);
  /// One round of the node-at-a-time reference kernel.
  void round_scalar();
  /// One round of the bit-parallel kernel (see docs/performance.md). The
  /// exact sub-path replays the scalar engine's observable order
  /// (fault-RNG draws, auditor callbacks, trace events) bit for bit; the
  /// fast sub-path, taken when nothing order-sensitive is attached, only
  /// promises identical end-of-round state and counters.
  void round_bitset();
  /// Allocates the packed per-round sets on the first bitset step.
  void ensure_bitset_buffers();
  /// Builds the shard plan, worker pool, and per-shard scratch on the
  /// first sharded step (the engine mode fixes the boundary alignment).
  void ensure_shard_state();
  /// True once ensure_shard_state built a plan with >= 2 shards (tiny
  /// graphs collapse to one shard and keep the legacy paths).
  bool sharding_active() const { return shard_ready_ && shard_plan_.num_shards() > 1; }
  /// Runs task(s) for every shard s — shards 1..S-1 on the pool, shard 0
  /// inline — and blocks until all finished (the round-boundary barrier).
  void run_sharded(const std::function<void(std::uint32_t)>& task);
  /// Shard-parallel scalar Phase 2: fills reach_ and the per-shard touched
  /// regions, then merges them into touched_; returns the touched count.
  std::size_t sharded_scalar_sweep();
  /// Shard-parallel bitset exact scatter: fills once/twice and the
  /// per-shard touched/first-src regions, then merges into touched_ and
  /// first_src_; returns the touched count.
  std::size_t sharded_bitset_exact_scatter();
  /// Shard-parallel bitset fast sweep: scatter + word classification +
  /// first-hit sender resolution per shard, then a sequential replay of
  /// the per-shard ordered reception events (which reproduces the
  /// unsharded word-sweep order exactly, because shards are ascending
  /// word ranges). Accumulates into the caller's round counters.
  void sharded_bitset_fast_sweep(
      std::uint64_t& deliveries_acc, std::uint64_t& bits_rx_acc,
      std::uint64_t& collision_acc, std::uint64_t& deaf_acc,
      std::array<std::uint64_t, kNumMessageKinds>& rx_kind_acc);
  /// Deterministic k-way merge of the shard-local touched lists by
  /// (first-reaching transmission index, node id) — the key the scalar
  /// receiver-touch order is lexicographic in. Writes node ids to
  /// touched_ and, when `src_out` is non-null, the matching transmission
  /// indices. Subverted by the shard_wrong_reduction_order mutation.
  std::size_t merge_shard_touched(std::uint32_t* src_out);
  /// Materialises (lazily, once per round per transmitter) the Message a
  /// packed-source transmitter put on the air; returns its index in
  /// transmissions_.
  std::uint32_t materialize_packed_tx(NodeId from);
  /// Fills round_stats_ with this round's deltas and feeds the observer.
  void report_round(std::uint64_t round);
  /// Advances the completion counter past newly-done protocols; returns
  /// true iff all protocols are done (see done_count_ below).
  bool advance_done_count();

  const graph::Graph& graph_;
  /// Non-owning protocol table — the round loop indexes this flat array.
  /// Slab-placed protocols (pointer overload of set_protocol) are owned
  /// by their slab; unique_ptr-installed ones are parked in owned_ purely
  /// for lifetime.
  std::vector<NodeProtocol*> protocols_;
  std::vector<std::unique_ptr<NodeProtocol>> owned_;
  /// Byte-vector (not vector<bool>) — this is the hottest per-round
  /// branch and byte loads beat bit-twiddling there, matching the
  /// transmitting_ idiom below.
  std::vector<std::uint8_t> awake_;
  /// Dense list of awake node ids. Phase 1 iterates this instead of
  /// scanning all n nodes, so a round costs O(awake + touched). Kept in
  /// ascending id order (re-sorted lazily after wake-ups) so protocol
  /// callbacks fire in exactly the order of the historical full scan.
  std::vector<NodeId> awake_list_;
  bool awake_list_dirty_ = false;
  /// Nodes flagged awake before the first step; on_wake fires lazily.
  std::vector<NodeId> pending_initial_wakes_;
  bool started_ = false;
  Round round_ = 0;
  Trace trace_;

  /// Protocol-completion counter for run_until_done. Nodes [0,
  /// done_count_) are known done; because done() is monotone (see
  /// NodeProtocol::done) they never need re-checking, so the counter only
  /// ever advances — once on each completion transition it observes. The
  /// per-round check is therefore O(1 + #transitions) virtual calls,
  /// replacing the historical all-n sweep (each node's done()==true is
  /// evaluated exactly once over the whole run). Reset on every
  /// run_until_done call so external protocol mutation between runs stays
  /// visible.
  NodeId done_count_ = 0;

  FaultModel fault_model_;
  Rng fault_rng_;
  bool collision_detection_ = false;
  EngineMutations mutations_;

  obs::RunObserver* observer_ = nullptr;
  NetworkAuditHook* auditor_ = nullptr;
  /// Counter values at the start of the current round; the per-round
  /// deltas reported to the observer are computed against these.
  TraceCounters round_base_;
  /// Awake-node count when the round's transmissions were decided.
  std::uint32_t round_awake_base_ = 0;
  /// Scratch per-kind delta arrays pointed to by the RoundStats we pass
  /// to the observer (keeps on_round allocation-free).
  std::array<std::uint32_t, kNumMessageKinds> round_tx_by_kind_{};
  std::array<std::uint32_t, kNumMessageKinds> round_rx_by_kind_{};

  // Scratch buffers reused across rounds to avoid per-round allocation
  // (all sized/reserved in the constructor so the first round allocates
  // like every other round). Transmissions are stored as ready-to-deliver
  // Messages: the body is moved in once at transmit time and every
  // receiver gets a const reference, so a gf2::Payload is never copied
  // inside the engine no matter how many neighbors hear it. When a
  // round's transmissions are retired their payload buffers are recycled
  // into payload_arena_ for the next round's on_transmit calls.
  std::vector<Message> transmissions_;
  /// Per-transmission wire size and kind index, computed once in Phase 1
  /// (parallel to transmissions_). Deliveries are the hot consumers —
  /// several receivers per transmission — and read these instead of
  /// re-visiting the message variant per receiver.
  struct TxMeta {
    std::uint32_t size_bits;
    std::uint32_t kind;
  };
  std::vector<TxMeta> tx_meta_;
  /// Sender ids only (parallel to transmissions_): the Phase-2 reach walk
  /// streams these 4-byte entries instead of striding across Messages.
  std::vector<NodeId> tx_from_;
  std::vector<std::uint8_t> transmitting_;
  /// Per-node reach bookkeeping, merged into one 8-byte record so the
  /// random-access walks of Phases 2 and 3 touch one cache line per node
  /// instead of two parallel arrays. `source` (an index into
  /// transmissions_) is the first transmission that reached the node this
  /// round; it is only meaningful while `count > 0`.
  struct ReachSlot {
    std::uint32_t count;
    std::uint32_t source;
  };
  std::vector<ReachSlot> reach_;
  std::vector<NodeId> touched_;
  std::unique_ptr<PayloadArena> payload_arena_;

  // --- bitset engine state (allocated on the first bitset step) --------
  EngineMode engine_ = EngineMode::kScalar;
  PackedTransmitSource* packed_source_ = nullptr;
  bool bitset_ready_ = false;
  /// This round's transmit set, one bit per node.
  gf2::BitVec tx_bits_;
  /// Reached-by-at-least-one / at-least-two carry-save pair: a
  /// transmitter's neighborhood mask m updates a word as
  /// twice |= once & m; once |= m. After the scatter,
  /// once & ~twice & ~tx is exactly the successful-reception set.
  gf2::BitVec once_bits_;
  gf2::BitVec twice_bits_;
  /// Awake set as bits (mirrors awake_; maintained by wake() once the
  /// bitset buffers exist) — the packed-source AND mask.
  gf2::BitVec awake_bits_;
  /// node id -> index into transmissions_ this round (kInvalidTx when not
  /// materialised); reset via the transmissions_ list at round end.
  static constexpr std::uint32_t kInvalidTx = 0xffffffffu;
  std::vector<std::uint32_t> tx_index_of_;
  /// Exact sub-path only: first-reaching transmission index, parallel to
  /// touched_ (scalar keeps the same datum inside ReachSlot::source).
  std::vector<std::uint32_t> first_src_;
  /// Optional word-grouped adjacency (built iff the topology compresses;
  /// rows group on the fly from CSR otherwise — see graph/packed.hpp).
  graph::PackedRows packed_rows_;

  // --- graph-sharding state (see set_shards; built lazily by
  // ensure_shard_state on the first step, once the engine mode — and
  // therefore the boundary alignment — is final) ------------------------
  std::uint32_t shards_requested_ = 1;
  bool shard_ready_ = false;
  graph::ShardPlan shard_plan_;
  /// Workers for shards 1..S-1; shard 0 always runs on the stepping
  /// thread, so a 2-shard run spawns exactly one worker.
  std::unique_ptr<ThreadPool> shard_pool_;
  /// Prefix offsets into shard_touched_/shard_src_: shard s's region is
  /// [shard_base_[s], shard_base_[s+1]) — its node span plus one slack
  /// slot for the branchless unconditional cursor write.
  std::vector<std::size_t> shard_base_;
  /// Shard-local first-touch lists (node id / first-reaching transmission
  /// index pairs), each naturally sorted by that (reacher, id) key — the
  /// inputs of merge_shard_touched.
  std::vector<NodeId> shard_touched_;
  std::vector<std::uint32_t> shard_src_;
  /// Entries used in each shard's region this round.
  std::vector<std::size_t> shard_counts_;
  /// Merge cursors (merge_shard_touched scratch, reused across rounds).
  std::vector<std::size_t> shard_cursor_;
  /// Fast bitset sub-path only: per-shard ordered reception events,
  /// recorded word-ascending inside the parallel sweep and replayed
  /// sequentially in shard order (== the unsharded word-sweep order).
  /// `from` is the resolved sender, or kShardCollision for a
  /// collision-detection callback slot.
  struct ShardEvent {
    NodeId v;
    NodeId from;
  };
  static constexpr NodeId kShardCollision = 0xffffffffu;
  /// One flat n-sized buffer; shard s records at node_begin(s) (each node
  /// yields at most one event, so regions cannot overflow).
  std::vector<ShardEvent> shard_events_;
  std::vector<std::size_t> shard_event_counts_;
  /// Per-shard deaf/collision popcount tallies from the fast sweep.
  struct ShardTally {
    std::uint64_t deaf = 0;
    std::uint64_t collision = 0;
  };
  std::vector<ShardTally> shard_tallies_;
};

}  // namespace radiocast::radio
