#include "radio/analysis.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace radiocast::radio {

ActivityTimeline build_timeline(const Trace& trace, std::uint64_t total_rounds,
                                std::uint64_t bucket_rounds) {
  RC_ASSERT(bucket_rounds >= 1);
  ActivityTimeline tl;
  tl.bucket_rounds = bucket_rounds;
  const std::size_t buckets =
      static_cast<std::size_t>((total_rounds + bucket_rounds - 1) / bucket_rounds);
  tl.deliveries_by_kind.assign(buckets, {});
  tl.collisions.assign(buckets, 0);
  tl.deliveries_total.assign(buckets, 0);

  // Map kind tags back to indices once.
  for (const TraceEvent& event : trace.events()) {
    const auto bucket = static_cast<std::size_t>(event.round / bucket_rounds);
    if (bucket >= buckets) continue;
    switch (event.kind) {
      case TraceEvent::Kind::kDelivered: {
        ++tl.deliveries_total[bucket];
        for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
          if (message_kind_name(k) == event.message_kind) {
            ++tl.deliveries_by_kind[bucket][k];
            break;
          }
        }
        break;
      }
      case TraceEvent::Kind::kCollision:
        ++tl.collisions[bucket];
        break;
      case TraceEvent::Kind::kDeaf:
        break;  // not part of the channel-activity picture
    }
  }
  return tl;
}

std::string sparkline(const std::vector<std::uint64_t>& counts) {
  static const char kLevels[] = " .:-=+*#%@";
  constexpr int kNumLevels = 10;
  std::uint64_t max = 0;
  for (std::uint64_t c : counts) max = std::max(max, c);
  std::string out;
  out.reserve(counts.size());
  for (std::uint64_t c : counts) {
    if (max == 0 || c == 0) {
      out.push_back(' ');
      continue;
    }
    const int level = 1 + static_cast<int>((c * (kNumLevels - 2)) / max);
    out.push_back(kLevels[std::min(level, kNumLevels - 1)]);
  }
  return out;
}

}  // namespace radiocast::radio
