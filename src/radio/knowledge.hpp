// What every node knows about the network — the paper's ad-hoc assumption.
//
// Nodes know only their own ID plus estimates (n̂, Δ̂, D̂): polynomial upper
// bounds on n and Δ and a linear upper bound on D. Every protocol schedule
// in the library is computed from a Knowledge value, never from the true
// topology, so over-estimation experiments (robustness of the bounds) are a
// matter of passing padded values.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/math_util.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace radiocast::radio {

struct Knowledge {
  std::uint32_t n_hat = 2;      ///< upper bound on the number of nodes
  std::uint32_t delta_hat = 1;  ///< upper bound on the maximum degree
  std::uint32_t d_hat = 1;      ///< upper bound on the diameter

  /// ⌈log n̂⌉, at least 1 (group sizes / header widths must be positive).
  std::uint32_t log_n() const { return log2_at_least_one(n_hat); }
  /// ⌈log Δ̂⌉, at least 1 (a Decay epoch has at least one round).
  std::uint32_t log_delta() const { return log2_at_least_one(std::max(2u, delta_hat)); }

  /// Exact parameters of a connected finalized graph.
  static Knowledge exact(const graph::Graph& g) {
    Knowledge k;
    k.n_hat = std::max<std::uint32_t>(2, g.num_nodes());
    k.delta_hat = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(g.max_degree()));
    k.d_hat = std::max<std::uint32_t>(1, graph::diameter(g));
    return k;
  }

  /// Over-estimated parameters: n̂ and Δ̂ raised to `poly_power` (the paper
  /// allows any polynomial bound), D̂ scaled by `d_factor` (linear bound).
  static Knowledge padded(const graph::Graph& g, double poly_power = 2.0,
                          double d_factor = 2.0) {
    const Knowledge e = exact(g);
    Knowledge k;
    auto pow_clamped = [](std::uint32_t v, double p) {
      const double x = std::pow(static_cast<double>(v), p);
      return static_cast<std::uint32_t>(std::min(x, 1.0e9));
    };
    k.n_hat = pow_clamped(e.n_hat, poly_power);
    k.delta_hat = pow_clamped(e.delta_hat, poly_power);
    k.d_hat = static_cast<std::uint32_t>(
        std::min(static_cast<double>(e.d_hat) * d_factor + 1.0, 1.0e9));
    return k;
  }

  bool operator==(const Knowledge&) const = default;
};

}  // namespace radiocast::radio
