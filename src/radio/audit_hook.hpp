// NetworkAuditHook — the engine-side tap of the model-conformance auditor.
//
// A hook installed via Network::set_auditor sees, every round, the raw
// transmission set (after the engine collected all on_transmit decisions)
// followed by one event per reception outcome the engine produced. The
// hook is strictly an observer: it owns no RNG draws and cannot alter the
// round, so an audited run is bit-identical to an unaudited one. When no
// hook is installed the only per-round cost is a handful of null checks.
//
// The intended consumer is audit::ModelAuditor, which recomputes every
// outcome independently from the transmission set and the topology and
// cross-checks the engine (see src/audit/). The interface lives in the
// radio layer so the engine never depends on the audit subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "radio/message.hpp"
#include "radio/node.hpp"

namespace radiocast::radio {

class NetworkAuditHook {
 public:
  virtual ~NetworkAuditHook() = default;

  /// Fired once, inside the first step() before any protocol callback,
  /// with the ids flagged by wake_at_start (ascending order not
  /// guaranteed). All other nodes are asleep at this point.
  virtual void on_sim_start(const std::vector<NodeId>& initially_awake) = 0;

  /// The complete transmission set of round `round`, in ascending
  /// transmitter-id order, exactly as the engine will apply the collision
  /// rule to it. The vector is owned by the engine and valid until the
  /// end of the current step() only.
  virtual void on_transmissions(Round round, const std::vector<Message>& txs) = 0;

  /// Node `receiver` got `msg` delivered (`tx_index` indexes into this
  /// round's transmission set). Fired before the receiver's wake /
  /// on_receive callbacks.
  virtual void on_deliver(Round round, NodeId receiver, std::uint32_t tx_index,
                          const Message& msg) = 0;

  /// Node `receiver` was reached by `reached` >= 2 transmissions and lost
  /// the slot to collision. `cd_callback` reports whether the engine is
  /// about to fire on_collision (true only under the collision-detection
  /// ablation).
  virtual void on_collision_slot(Round round, NodeId receiver, std::uint32_t reached,
                                 bool cd_callback) = 0;

  /// Node `receiver` was reached while itself transmitting (half-duplex
  /// deafness; `reached` >= 1).
  virtual void on_deaf_slot(Round round, NodeId receiver, std::uint32_t reached) = 0;

  /// A successful slot at `receiver` was erased by the fault model
  /// (`tx_index` is the transmission that would have been delivered).
  virtual void on_fault_drop(Round round, NodeId receiver,
                             std::uint32_t tx_index) = 0;

  /// Node `node` transitions from asleep to awake this round (first
  /// reception, or first collision under the CD ablation). Initial wakes
  /// are reported via on_sim_start, not here.
  virtual void on_node_wake(Round round, NodeId node) = 0;

  /// All outcomes of round `round` have been reported.
  virtual void on_round_end(Round round) = 0;
};

/// Fan-out: forwards every event to two hooks, in construction order. The
/// engine has exactly one auditor slot (one null check on the hot path);
/// composing sinks — e.g. a ModelAuditor plus an obs::PacketTracer — is
/// the tee's job, not the engine's. Both hooks may be null.
class AuditHookTee final : public NetworkAuditHook {
 public:
  AuditHookTee(NetworkAuditHook* first, NetworkAuditHook* second)
      : first_(first), second_(second) {}

  void on_sim_start(const std::vector<NodeId>& initially_awake) override {
    if (first_ != nullptr) first_->on_sim_start(initially_awake);
    if (second_ != nullptr) second_->on_sim_start(initially_awake);
  }
  void on_transmissions(Round round, const std::vector<Message>& txs) override {
    if (first_ != nullptr) first_->on_transmissions(round, txs);
    if (second_ != nullptr) second_->on_transmissions(round, txs);
  }
  void on_deliver(Round round, NodeId receiver, std::uint32_t tx_index,
                  const Message& msg) override {
    if (first_ != nullptr) first_->on_deliver(round, receiver, tx_index, msg);
    if (second_ != nullptr) second_->on_deliver(round, receiver, tx_index, msg);
  }
  void on_collision_slot(Round round, NodeId receiver, std::uint32_t reached,
                         bool cd_callback) override {
    if (first_ != nullptr) first_->on_collision_slot(round, receiver, reached, cd_callback);
    if (second_ != nullptr) second_->on_collision_slot(round, receiver, reached, cd_callback);
  }
  void on_deaf_slot(Round round, NodeId receiver, std::uint32_t reached) override {
    if (first_ != nullptr) first_->on_deaf_slot(round, receiver, reached);
    if (second_ != nullptr) second_->on_deaf_slot(round, receiver, reached);
  }
  void on_fault_drop(Round round, NodeId receiver, std::uint32_t tx_index) override {
    if (first_ != nullptr) first_->on_fault_drop(round, receiver, tx_index);
    if (second_ != nullptr) second_->on_fault_drop(round, receiver, tx_index);
  }
  void on_node_wake(Round round, NodeId node) override {
    if (first_ != nullptr) first_->on_node_wake(round, node);
    if (second_ != nullptr) second_->on_node_wake(round, node);
  }
  void on_round_end(Round round) override {
    if (first_ != nullptr) first_->on_round_end(round);
    if (second_ != nullptr) second_->on_round_end(round);
  }

 private:
  NetworkAuditHook* first_;
  NetworkAuditHook* second_;
};

}  // namespace radiocast::radio
