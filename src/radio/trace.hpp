// Simulation trace: counters and (optionally) per-round event records.
//
// Counters are always on (they are what benches report); the event log is
// opt-in because end-to-end runs span millions of node-rounds.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "radio/message.hpp"

namespace radiocast::radio {

struct TraceCounters {
  std::uint64_t rounds = 0;
  std::uint64_t transmissions = 0;
  /// Successful deliveries (node-rounds with exactly one reaching message).
  std::uint64_t deliveries = 0;
  /// Node-rounds where >= 2 neighbors transmitted (lost to collision).
  std::uint64_t collision_slots = 0;
  /// Node-rounds where a message reached a node that was itself
  /// transmitting (lost to half-duplex deafness).
  std::uint64_t deaf_slots = 0;
  /// Receptions erased by the injected fault model (0 without faults).
  std::uint64_t fault_drops = 0;
  /// Total bits put on the air.
  std::uint64_t bits_transmitted = 0;
  /// Total bits successfully delivered (summed over receivers).
  std::uint64_t bits_delivered = 0;
  std::uint64_t wakeups = 0;
  /// Per-message-kind breakdowns (indexed by message_kind_index).
  std::array<std::uint64_t, kNumMessageKinds> transmissions_by_kind{};
  std::array<std::uint64_t, kNumMessageKinds> deliveries_by_kind{};

  bool operator==(const TraceCounters&) const = default;
};

/// One delivered-or-lost reception opportunity, recorded only when event
/// logging is enabled.
struct TraceEvent {
  std::uint64_t round = 0;
  NodeId node = 0;  // the receiver-side node
  enum class Kind : std::uint8_t { kDelivered, kCollision, kDeaf } kind = Kind::kDelivered;
  std::string message_kind;  // empty for collisions
  NodeId from = 0;
};

class Trace {
 public:
  /// Default cap on the event log. A long end-to-end run produces one
  /// event per reception opportunity, so an unbounded log is an OOM risk;
  /// events past the cap are counted in dropped_events() instead of kept.
  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

  const TraceCounters& counters() const { return counters_; }
  TraceCounters& counters() { return counters_; }

  void enable_events(bool on) { events_enabled_ = on; }
  bool events_enabled() const { return events_enabled_; }
  /// Caps the event log at `cap` entries (0 keeps the current events but
  /// drops all further ones). Configuration, like enable_events.
  void set_max_events(std::size_t cap) { max_events_ = cap; }
  std::size_t max_events() const { return max_events_; }
  /// Events discarded because the log was full.
  std::uint64_t dropped_events() const { return dropped_events_; }

  void record(TraceEvent event);
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear();

 private:
  TraceCounters counters_;
  bool events_enabled_ = false;
  std::size_t max_events_ = kDefaultMaxEvents;
  std::uint64_t dropped_events_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace radiocast::radio
