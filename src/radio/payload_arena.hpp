// Round-scoped payload buffer recycling for the simulation engine.
//
// Every transmitted PlainPacketMsg / DataMsg / CodedMsg carries a
// gf2::Payload (a heap byte vector). Without recycling, each transmission
// costs one malloc in the protocol's on_transmit and one free when the
// engine clears its per-round transmission buffer — at sweep scale that
// is millions of allocator round-trips whose only purpose is to hand the
// same few dozen bytes back and forth.
//
// PayloadArena breaks the cycle: the Network owns one arena per run and,
// when a round's transmissions are retired, harvests their payload
// buffers back into a free pool (`recycle_body`); protocols acquire
// buffers from the pool when building outgoing messages (`acquire` /
// `acquire_copy`). After the first round of a steady workload every
// payload is bump-served from recycled capacity — the pool's high-water
// mark is the maximum number of simultaneous transmissions, i.e. at most
// n buffers of the largest payload size.
//
// Determinism: an acquired buffer is always handed out logically empty
// (size 0) and fully overwritten by the caller, so payload *bytes* on the
// air are bit-identical with and without an arena; no RNG is involved.
// Protocols therefore treat the arena as a pure allocation hint: every
// call site falls back to a plain heap vector when no arena is attached
// (protocols driven outside a Network, unit tests).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "radio/message.hpp"

namespace radiocast::radio {

/// Per-run free pool of payload buffers (see file comment for the cycle).
class PayloadArena {
 public:
  PayloadArena() = default;
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;
  PayloadArena(PayloadArena&&) = default;
  PayloadArena& operator=(PayloadArena&&) = default;

  /// An empty payload, reusing pooled capacity when available. The caller
  /// fills it completely (append/resize only — contents start empty).
  gf2::Payload acquire() {
    if (pool_.empty()) {
      ++misses_;
      return {};
    }
    ++hits_;
    gf2::Payload buf = std::move(pool_.back());
    pool_.pop_back();
    buf.clear();
    return buf;
  }

  /// A payload holding a copy of `src`, reusing pooled capacity.
  gf2::Payload acquire_copy(const gf2::Payload& src) {
    gf2::Payload buf = acquire();
    buf.assign(src.begin(), src.end());
    return buf;
  }

  /// A copy of `src` whose payload buffer (if any) comes from the pool;
  /// payload-free message kinds are copied verbatim. Byte-identical to a
  /// plain `MessageBody out = src`.
  MessageBody copy_body(const MessageBody& src) {
    if (const auto* plain = std::get_if<PlainPacketMsg>(&src)) {
      PlainPacketMsg out;
      out.packet.id = plain->packet.id;
      out.packet.payload = acquire_copy(plain->packet.payload);
      out.group_id = plain->group_id;
      out.group_count = plain->group_count;
      out.index_in_group = plain->index_in_group;
      out.group_size = plain->group_size;
      return out;
    }
    if (const auto* coded = std::get_if<CodedMsg>(&src)) {
      CodedMsg out;
      out.group_id = coded->group_id;
      out.group_count = coded->group_count;
      out.group_size = coded->group_size;
      out.coeffs = coded->coeffs;
      out.payload = acquire_copy(coded->payload);
      return out;
    }
    if (const auto* data = std::get_if<DataMsg>(&src)) {
      DataMsg out;
      out.packet.id = data->packet.id;
      out.packet.payload = acquire_copy(data->packet.payload);
      out.to = data->to;
      return out;
    }
    return src;
  }

  /// Returns a spent buffer to the pool (no-op for capacity-free buffers).
  void recycle(gf2::Payload&& buf) {
    if (buf.capacity() == 0) return;
    pool_.push_back(std::move(buf));
  }

  /// Returns a batch of spent buffers to the pool — e.g. the drained wire
  /// images of a completed IncrementalDecoder (take_packets) after the
  /// packets have been parsed out of them.
  void recycle_all(std::vector<gf2::Payload>&& bufs) {
    for (gf2::Payload& buf : bufs) recycle(std::move(buf));
  }

  /// Harvests the payload buffer (if any) out of a retired message body.
  /// The body is left with an empty payload; callers must be done with it.
  void recycle_body(MessageBody& body) {
    switch (body.index()) {
      case 2:  // DataMsg
        recycle(std::move(std::get_if<DataMsg>(&body)->packet.payload));
        return;
      case 4:  // PlainPacketMsg
        recycle(std::move(std::get_if<PlainPacketMsg>(&body)->packet.payload));
        return;
      case 5:  // CodedMsg
        recycle(std::move(std::get_if<CodedMsg>(&body)->payload));
        return;
      default:  // payload-free kinds
        return;
    }
  }

  /// Buffers currently idle in the pool.
  std::size_t pooled() const { return pool_.size(); }
  /// Acquire calls served from the pool / from the heap (observability).
  std::uint64_t hits() const { return hits_; }
  /// Acquire calls that fell back to a fresh heap buffer.
  std::uint64_t misses() const { return misses_; }

 private:
  std::vector<gf2::Payload> pool_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace radiocast::radio
