#include "radio/trace.hpp"

namespace radiocast::radio {

void Trace::record(TraceEvent event) {
  if (events_enabled_) events_.push_back(std::move(event));
}

void Trace::clear() {
  counters_ = TraceCounters{};
  events_.clear();
}

}  // namespace radiocast::radio
