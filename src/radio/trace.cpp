#include "radio/trace.hpp"

namespace radiocast::radio {

void Trace::record(TraceEvent event) {
  if (!events_enabled_) return;
  if (events_.size() >= max_events_) {
    ++dropped_events_;
    return;
  }
  events_.push_back(std::move(event));
}

void Trace::clear() {
  counters_ = TraceCounters{};
  events_.clear();
  dropped_events_ = 0;
  // events_enabled_ and max_events_ survive: they are configuration.
}

}  // namespace radiocast::radio
