// Post-hoc trace analysis helpers: bucketed activity timelines over a
// simulation's event log. Used by the stage_timeline example and by tests
// that assert activity patterns (e.g. "the channel goes quiet between an
// OSPG's up window and its ack window").
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "radio/trace.hpp"

namespace radiocast::radio {

/// Per-bucket activity counts over [0, rounds), bucketed into fixed-width
/// windows.
struct ActivityTimeline {
  std::uint64_t bucket_rounds = 1;
  /// deliveries[b] = successful receptions in bucket b; one vector per
  /// message kind plus aggregate collisions.
  std::vector<std::array<std::uint64_t, kNumMessageKinds>> deliveries_by_kind;
  std::vector<std::uint64_t> collisions;
  std::vector<std::uint64_t> deliveries_total;

  std::size_t num_buckets() const { return deliveries_total.size(); }
};

/// Builds a timeline from a trace's event log (events must be enabled on
/// the trace before the run). `bucket_rounds` >= 1.
ActivityTimeline build_timeline(const Trace& trace, std::uint64_t total_rounds,
                                std::uint64_t bucket_rounds);

/// Renders one row of a timeline as an ASCII sparkline: each bucket maps
/// to ' .:-=+*#%@' by its count relative to the row maximum.
std::string sparkline(const std::vector<std::uint64_t>& counts);

}  // namespace radiocast::radio
