#include "radio/network.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace radiocast::radio {

const char* engine_mode_name(EngineMode mode) {
  switch (mode) {
    case EngineMode::kScalar:
      return "scalar";
    case EngineMode::kBitset:
      return "bitset";
  }
  return "scalar";
}

std::optional<EngineMode> parse_engine_mode(std::string_view name) {
  if (name == "scalar") return EngineMode::kScalar;
  if (name == "bitset") return EngineMode::kBitset;
  return std::nullopt;
}

Network::Network(const graph::Graph& graph)
    : graph_(graph),
      protocols_(graph.num_nodes(), nullptr),
      awake_(graph.num_nodes(), 0),
      transmitting_(graph.num_nodes(), 0),
      reach_(graph.num_nodes(), ReachSlot{0, 0}),
      payload_arena_(std::make_unique<PayloadArena>()) {
  RC_ASSERT_MSG(graph.finalized(), "Network requires a finalized graph");
  // Sized up front so the first round allocates like every other round
  // (touched_ is a fixed-size scratch buffer — at most one entry per node
  // plus one slack slot for Phase 2's unconditional cursor write once all
  // nodes are touched; a modest transmission reserve absorbs typical
  // rounds and grows at most O(log n) times otherwise).
  touched_.resize(static_cast<std::size_t>(graph.num_nodes()) + 1);
  transmissions_.reserve(std::min<std::size_t>(graph.num_nodes(), 64));
  tx_meta_.reserve(std::min<std::size_t>(graph.num_nodes(), 64));
  tx_from_.reserve(std::min<std::size_t>(graph.num_nodes(), 64));
}

void Network::set_protocol(NodeId id, std::unique_ptr<NodeProtocol> protocol) {
  set_protocol(id, protocol.get());
  owned_.push_back(std::move(protocol));
}

void Network::set_protocol(NodeId id, NodeProtocol* protocol) {
  RC_ASSERT_MSG(id < num_nodes(), "set_protocol on an out-of-range id");
  RC_ASSERT(protocol != nullptr);
  RC_ASSERT_MSG(!started_, "set_protocol after the simulation started");
  protocol->set_payload_arena(payload_arena_.get());
  protocols_[id] = protocol;
}

NodeProtocol& Network::protocol(NodeId id) {
  RC_ASSERT(id < num_nodes() && protocols_[id] != nullptr);
  return *protocols_[id];
}

const NodeProtocol& Network::protocol(NodeId id) const {
  RC_ASSERT(id < num_nodes() && protocols_[id] != nullptr);
  return *protocols_[id];
}

void Network::wake_at_start(NodeId id) {
  RC_ASSERT_MSG(id < num_nodes(), "wake_at_start on an out-of-range id");
  RC_ASSERT_MSG(!started_, "wake_at_start after the simulation started");
  if (!awake_[id]) {
    awake_[id] = 1;
    awake_list_.push_back(id);
    awake_list_dirty_ = true;
    pending_initial_wakes_.push_back(id);
  }
}

void Network::set_fault_model(const FaultModel& model) {
  RC_ASSERT_MSG(!started_, "set_fault_model after the simulation started");
  RC_ASSERT(model.reception_loss_probability >= 0.0 &&
            model.reception_loss_probability <= 1.0);
  fault_model_ = model;
  fault_rng_.reseed(model.seed);
}

void Network::enable_collision_detection(bool on) {
  RC_ASSERT_MSG(!started_, "enable_collision_detection after the simulation started");
  collision_detection_ = on;
}

void Network::set_auditor(NetworkAuditHook* auditor) {
  RC_ASSERT_MSG(!started_ || auditor == nullptr,
                "set_auditor after the simulation started");
  auditor_ = auditor;
}

void Network::set_test_mutations(const EngineMutations& mutations) {
  RC_ASSERT_MSG(!started_, "set_test_mutations after the simulation started");
  mutations_ = mutations;
}

void Network::set_engine(EngineMode mode) {
  RC_ASSERT_MSG(!started_, "set_engine after the simulation started");
  engine_ = mode;
}

void Network::set_packed_source(PackedTransmitSource* source) {
  RC_ASSERT_MSG(!started_ || source == nullptr,
                "set_packed_source after the simulation started");
  packed_source_ = source;
}

void Network::set_shards(std::uint32_t shards) {
  RC_ASSERT_MSG(!started_, "set_shards after the simulation started");
  RC_ASSERT(shards >= 1);
  shards_requested_ = shards;
}

void Network::ensure_shard_state() {
  if (shard_ready_) return;
  // The bitset engine updates (once, twice) a 64-bit word at a time, so
  // shard boundaries must not split a word; the scalar engine writes
  // per-node slots and shards at node granularity.
  const std::uint32_t align = engine_ == EngineMode::kBitset ? 64 : 1;
  shard_plan_ = graph::ShardPlan::build(graph_, shards_requested_, align);
  const std::uint32_t S = shard_plan_.num_shards();
  if (S > 1) {
    shard_pool_ = std::make_unique<ThreadPool>(S - 1);
    shard_base_.resize(S + 1);
    std::size_t off = 0;
    for (std::uint32_t s = 0; s < S; ++s) {
      shard_base_[s] = off;
      off += static_cast<std::size_t>(shard_plan_.node_end(s)) -
             shard_plan_.node_begin(s) + 1;
    }
    shard_base_[S] = off;
    shard_touched_.resize(off);
    shard_src_.resize(off);
    shard_counts_.resize(S);
    shard_cursor_.resize(S);
    if (engine_ == EngineMode::kBitset) {
      shard_events_.resize(num_nodes());
      shard_event_counts_.resize(S);
      shard_tallies_.resize(S);
    }
  }
  shard_ready_ = true;
}

void Network::run_sharded(const std::function<void(std::uint32_t)>& task) {
  const std::uint32_t S = shard_plan_.num_shards();
  for (std::uint32_t s = 1; s < S; ++s) {
    shard_pool_->submit([&task, s] { task(s); });
  }
  task(0);
  shard_pool_->wait_idle();
}

std::size_t Network::merge_shard_touched(std::uint32_t* src_out) {
  const std::uint32_t S = shard_plan_.num_shards();
  NodeId* const out = touched_.data();
  std::size_t total = 0;
  if (mutations_.shard_wrong_reduction_order) {
    // Seeded bug: concatenate the shard-local lists in shard order. End
    // state is untouched (the same receivers still receive the same
    // messages) but every order-sensitive observable — fault-RNG draw
    // positions, audit-hook and trace-event sequences — diverges from the
    // scalar receiver-touch order whenever two shards interleave.
    for (std::uint32_t s = 0; s < S; ++s) {
      const std::size_t base = shard_base_[s];
      const std::size_t c = shard_counts_[s];
      std::copy_n(shard_touched_.data() + base, c, out + total);
      if (src_out != nullptr) {
        std::copy_n(shard_src_.data() + base, c, src_out + total);
      }
      total += c;
    }
    return total;
  }
  // K-way merge by (first-reaching transmission index, node id) — the key
  // the legacy receiver-touch order is lexicographic in (transmissions
  // process in index order and CSR rows ascend), and each shard-local
  // list is already sorted by it. S is small, so a linear head scan per
  // output element beats heap bookkeeping.
  const NodeId* const st = shard_touched_.data();
  const std::uint32_t* const ss = shard_src_.data();
  for (std::uint32_t s = 0; s < S; ++s) shard_cursor_[s] = 0;
  while (true) {
    std::uint64_t best_key = ~0ull;
    std::uint32_t best = S;
    for (std::uint32_t s = 0; s < S; ++s) {
      const std::size_t i = shard_cursor_[s];
      if (i >= shard_counts_[s]) continue;
      const std::size_t at = shard_base_[s] + i;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(ss[at]) << 32) | st[at];
      if (key < best_key) {
        best_key = key;
        best = s;
      }
    }
    if (best == S) break;
    const std::size_t at = shard_base_[best] + shard_cursor_[best]++;
    out[total] = st[at];
    if (src_out != nullptr) src_out[total] = ss[at];
    ++total;
  }
  return total;
}

std::size_t Network::sharded_scalar_sweep() {
  const std::uint32_t S = shard_plan_.num_shards();
  const std::size_t sp1 = S + 1;
  const std::uint32_t* const splits = shard_plan_.splits_data();
  const NodeId* const targets = graph_.csr_targets();
  ReachSlot* const reach = reach_.data();
  const NodeId* const tx_from = tx_from_.data();
  const auto tx_count = static_cast<std::uint32_t>(tx_from_.size());
  const bool skip_exchange = mutations_.shard_skip_frontier_exchange;
  run_sharded([&](std::uint32_t s) {
    NodeId* const touched = shard_touched_.data() + shard_base_[s];
    std::uint32_t* const srcs = shard_src_.data() + shard_base_[s];
    const NodeId lo = shard_plan_.node_begin(s);
    const NodeId hi = shard_plan_.node_end(s);
    std::size_t count = 0;
    for (std::uint32_t t = 0; t < tx_count; ++t) {
      const NodeId u = tx_from[t];
      // Seeded bug: drop the round-boundary transmit-set exchange — the
      // shard sees only its own transmitters, losing every cut-edge
      // reception (and the collisions they would have caused).
      if (skip_exchange && (u < lo || u >= hi)) continue;
      const std::uint32_t* const row = splits + static_cast<std::size_t>(u) * sp1;
      const std::uint32_t end = row[s + 1];
      // Same branchless slot update as the legacy Phase 2, restricted to
      // this shard's slice of the row; srcs gets the same unconditional
      // cursor-write treatment as touched (the first-touch value is the
      // one that survives).
      for (std::uint32_t e = row[s]; e < end; ++e) {
        const NodeId v = targets[e];
        std::uint64_t packed;
        std::memcpy(&packed, &reach[v], sizeof packed);
        const auto cnt = static_cast<std::uint32_t>(packed);
        const auto src = static_cast<std::uint32_t>(packed >> 32);
        const std::uint32_t is_new = cnt == 0 ? 1u : 0u;
        const std::uint32_t new_src = src ^ ((src ^ t) & (0u - is_new));
        packed = (static_cast<std::uint64_t>(new_src) << 32) |
                 static_cast<std::uint64_t>(cnt + 1);
        std::memcpy(&reach[v], &packed, sizeof packed);
        touched[count] = v;
        srcs[count] = t;
        count += is_new;
      }
    }
    shard_counts_[s] = count;
  });
  // Phase 3 reads first-reachers from reach_, so the merge only has to
  // reconstruct the touch order itself.
  return merge_shard_touched(nullptr);
}

std::size_t Network::sharded_bitset_exact_scatter() {
  const std::uint32_t S = shard_plan_.num_shards();
  const std::size_t sp1 = S + 1;
  const std::uint32_t* const splits = shard_plan_.splits_data();
  const NodeId* const targets = graph_.csr_targets();
  std::uint64_t* const once = once_bits_.words().data();
  std::uint64_t* const twice = twice_bits_.words().data();
  const NodeId* const tx_from = tx_from_.data();
  const auto tx_count = static_cast<std::uint32_t>(tx_from_.size());
  const bool skip_exchange = mutations_.shard_skip_frontier_exchange;
  run_sharded([&](std::uint32_t s) {
    NodeId* const touched = shard_touched_.data() + shard_base_[s];
    std::uint32_t* const srcs = shard_src_.data() + shard_base_[s];
    const NodeId lo = shard_plan_.node_begin(s);
    const NodeId hi = shard_plan_.node_end(s);
    std::size_t count = 0;
    for (std::uint32_t t = 0; t < tx_count; ++t) {
      const NodeId u = tx_from[t];
      if (skip_exchange && (u < lo || u >= hi)) continue;
      const std::uint32_t* const row = splits + static_cast<std::size_t>(u) * sp1;
      // Word-group the shard's slice of the row on the fly: 64-aligned
      // shard boundaries guarantee slices of different shards never share
      // a (once, twice) word, so the RMW below is race-free.
      graph::for_each_word_group(
          {targets + row[s], static_cast<std::size_t>(row[s + 1] - row[s])},
          [&](std::uint32_t w, std::uint64_t m) {
            const std::uint64_t old = once[w];
            twice[w] |= old & m;
            once[w] = old | m;
            std::uint64_t news = m & ~old;
            while (news != 0) {
              const auto b = static_cast<std::uint32_t>(std::countr_zero(news));
              news &= news - 1;
              touched[count] = (w << 6) + b;
              srcs[count] = t;
              ++count;
            }
          });
    }
    shard_counts_[s] = count;
  });
  // The exact Phase 3 reads first-reachers from first_src_, parallel to
  // touched_, so the merge emits both.
  return merge_shard_touched(first_src_.data());
}

void Network::sharded_bitset_fast_sweep(
    std::uint64_t& deliveries_acc, std::uint64_t& bits_rx_acc,
    std::uint64_t& collision_acc, std::uint64_t& deaf_acc,
    std::array<std::uint64_t, kNumMessageKinds>& rx_kind_acc) {
  const std::uint32_t S = shard_plan_.num_shards();
  const std::size_t sp1 = S + 1;
  const std::uint32_t* const splits = shard_plan_.splits_data();
  const std::size_t* const offsets = graph_.csr_offsets();
  const NodeId* const targets = graph_.csr_targets();
  const std::uint64_t* const tx = tx_bits_.words().data();
  std::uint64_t* const once = once_bits_.words().data();
  std::uint64_t* const twice = twice_bits_.words().data();
  const bool cd = collision_detection_;
  const bool grouped = packed_rows_.built();
  const bool skip_exchange = mutations_.shard_skip_frontier_exchange;
  // Transmitter ids come straight from the bit set (authoritative in both
  // Phase-1 branches; with a packed source the fast path materialises no
  // per-transmitter Message, so tx_from_ is not).
  const std::size_t nw = tx_bits_.num_words();
  // Fused per-shard task: every shard walks the full transmit set but
  // scatters only into its own (once, twice) words — shard word ranges
  // are disjoint (64-aligned boundaries) — so a shard's classification
  // depends on nothing but its own scatter and may follow it immediately,
  // with no intermediate barrier. Sender resolution only *reads* tx words,
  // wherever they live.
  run_sharded([&](std::uint32_t s) {
    const NodeId lo = shard_plan_.node_begin(s);
    const NodeId hi = shard_plan_.node_end(s);
    for (std::size_t w0 = 0; w0 < nw; ++w0) {
      std::uint64_t word = tx[w0];
      while (word != 0) {
        const auto u = static_cast<NodeId>((w0 << 6) + std::countr_zero(word));
        word &= word - 1;
        if (skip_exchange && (u < lo || u >= hi)) continue;
        const std::uint32_t* const row =
            splits + static_cast<std::size_t>(u) * sp1;
        graph::for_each_word_group(
            {targets + row[s], static_cast<std::size_t>(row[s + 1] - row[s])},
            [&](std::uint32_t w, std::uint64_t m) {
              twice[w] |= once[w] & m;
              once[w] |= m;
            });
      }
    }
    ShardEvent* const events = shard_events_.data() + lo;
    std::size_t ec = 0;
    std::uint64_t deaf = 0;
    std::uint64_t coll = 0;
    const std::size_t w_begin = lo >> 6;
    const std::size_t w_end = (static_cast<std::size_t>(hi) + 63) >> 6;
    for (std::size_t w0 = w_begin; w0 < w_end; ++w0) {
      const std::uint64_t o = once[w0];
      if (o == 0) continue;
      const std::uint64_t tw = twice[w0];
      const std::uint64_t txw = tx[w0];
      deaf += static_cast<std::uint64_t>(std::popcount(o & txw));
      const std::uint64_t collw = tw & ~txw;
      coll += static_cast<std::uint64_t>(std::popcount(collw));
      if (cd && collw != 0) {
        std::uint64_t cbits = collw;
        while (cbits != 0) {
          const auto v = static_cast<NodeId>((w0 << 6) + std::countr_zero(cbits));
          cbits &= cbits - 1;
          events[ec++] = {v, kShardCollision};
        }
      }
      std::uint64_t succ = o & ~tw & ~txw;
      while (succ != 0) {
        const auto v = static_cast<NodeId>((w0 << 6) + std::countr_zero(succ));
        succ &= succ - 1;
        NodeId from = 0;
        if (grouped) {
          for (const graph::WordGroup& g : packed_rows_.row(v)) {
            const std::uint64_t hits = tx[g.word] & g.mask;
            if (hits != 0) {
              from = static_cast<NodeId>((static_cast<std::size_t>(g.word) << 6) +
                                         std::countr_zero(hits));
              break;
            }
          }
        } else {
          const NodeId* const row = targets + offsets[v];
          const std::size_t len = offsets[v + 1] - offsets[v];
          std::size_t i = 0;
          while (i < len) {
            const std::uint32_t wd = row[i] >> 6;
            std::uint64_t mask = 0;
            do {
              mask |= 1ULL << (row[i] & 63);
              ++i;
            } while (i < len && (row[i] >> 6) == wd);
            const std::uint64_t hits = tx[wd] & mask;
            if (hits != 0) {
              from = static_cast<NodeId>((static_cast<std::size_t>(wd) << 6) +
                                         std::countr_zero(hits));
              break;
            }
          }
        }
        events[ec++] = {v, from};
      }
    }
    shard_event_counts_[s] = ec;
    shard_tallies_[s] = {deaf, coll};
  });
  // Sequential replay in ascending shard order — shards are ascending
  // word ranges and each shard recorded word-ascending, so this is
  // exactly the unsharded word-sweep callback order. Message
  // materialisation and every protocol callback stay on this thread.
  NodeProtocol* const* const protocols = protocols_.data();
  for (std::uint32_t s = 0; s < S; ++s) {
    deaf_acc += shard_tallies_[s].deaf;
    collision_acc += shard_tallies_[s].collision;
    const ShardEvent* const events =
        shard_events_.data() + shard_plan_.node_begin(s);
    const std::size_t ec = shard_event_counts_[s];
    for (std::size_t i = 0; i < ec; ++i) {
      const NodeId v = events[i].v;
      const NodeId from = events[i].from;
      if (from == kShardCollision) {
        wake(v);
        protocols[v]->on_collision(round_);
        continue;
      }
      std::uint32_t idx = tx_index_of_[from];
      if (idx == kInvalidTx) idx = materialize_packed_tx(from);
      const Message& txm = transmissions_[idx];
      const TxMeta meta = tx_meta_[idx];
      ++deliveries_acc;
      bits_rx_acc += meta.size_bits;
      ++rx_kind_acc[meta.kind];
      if (!awake_[v]) wake(v);
      protocols[v]->on_receive(round_, txm);
    }
  }
}

void Network::wake(NodeId id) {
  if (!awake_[id]) {
    awake_[id] = 1;
    if (bitset_ready_) awake_bits_.words()[id >> 6] |= 1ULL << (id & 63);
    awake_list_.push_back(id);
    awake_list_dirty_ = true;
    ++trace_.counters().wakeups;
    if (auditor_ != nullptr) auditor_->on_node_wake(round_, id);
    protocols_[id]->on_wake(round_);
  }
}

void Network::report_round(std::uint64_t round) {
  const TraceCounters& now = trace_.counters();
  obs::RoundStats stats;
  stats.round = round;
  stats.awake = round_awake_base_;
  stats.transmissions =
      static_cast<std::uint32_t>(now.transmissions - round_base_.transmissions);
  stats.deliveries =
      static_cast<std::uint32_t>(now.deliveries - round_base_.deliveries);
  stats.collision_slots =
      static_cast<std::uint32_t>(now.collision_slots - round_base_.collision_slots);
  stats.deaf_slots =
      static_cast<std::uint32_t>(now.deaf_slots - round_base_.deaf_slots);
  stats.fault_drops =
      static_cast<std::uint32_t>(now.fault_drops - round_base_.fault_drops);
  stats.wakeups = static_cast<std::uint32_t>(now.wakeups - round_base_.wakeups);
  for (std::size_t i = 0; i < kNumMessageKinds; ++i) {
    round_tx_by_kind_[i] = static_cast<std::uint32_t>(
        now.transmissions_by_kind[i] - round_base_.transmissions_by_kind[i]);
    round_rx_by_kind_[i] = static_cast<std::uint32_t>(
        now.deliveries_by_kind[i] - round_base_.deliveries_by_kind[i]);
  }
  stats.num_kinds = kNumMessageKinds;
  stats.kind_names = message_kind_names().data();
  stats.transmissions_by_kind = round_tx_by_kind_.data();
  stats.deliveries_by_kind = round_rx_by_kind_.data();
  observer_->on_round(stats);
}

void Network::step() {
  if (observer_ != nullptr) {
    round_base_ = trace_.counters();
    // Initially-awake nodes are already in awake_list_ (wake_at_start),
    // so this is the awake count Phase 1 will see even on round 0.
    round_awake_base_ = static_cast<std::uint32_t>(awake_list_.size());
  }
  if (!started_) {
    started_ = true;
    if (auditor_ != nullptr) auditor_->on_sim_start(pending_initial_wakes_);
    for (NodeId id : pending_initial_wakes_) {
      ++trace_.counters().wakeups;
      protocols_[id]->on_wake(round_);
    }
    pending_initial_wakes_.clear();
#ifndef NDEBUG
    for (NodeId id = 0; id < num_nodes(); ++id) {
      RC_ASSERT_MSG(protocols_[id] != nullptr, "every node needs a protocol");
    }
#endif
    if (engine_ == EngineMode::kBitset) ensure_bitset_buffers();
    if (shards_requested_ > 1) ensure_shard_state();
  }

  if (engine_ == EngineMode::kBitset) {
    round_bitset();
  } else {
    round_scalar();
  }

  if (auditor_ != nullptr) auditor_->on_round_end(round_);
  if (observer_ != nullptr) report_round(round_);
  ++round_;
  ++trace_.counters().rounds;
}

void Network::round_scalar() {
  // Phase 1: collect transmission decisions from awake nodes. The dense
  // awake list replaces the historical full-n scan; it is kept sorted so
  // on_transmit fires in the same ascending-id order as that scan did.
  // Last round's payload buffers go back to the arena first, so the
  // on_transmit calls below can reuse them instead of hitting the heap.
  const bool events = trace_.events_enabled();
  for (Message& spent : transmissions_) payload_arena_->recycle_body(spent.body);
  transmissions_.clear();
  tx_meta_.clear();
  tx_from_.clear();
  if (awake_list_dirty_) {
    std::sort(awake_list_.begin(), awake_list_.end());
    awake_list_dirty_ = false;
  }
  // Counter deltas accumulate in locals and flush once after the loop:
  // the virtual on_transmit calls would otherwise force a reload/store of
  // the trace structure per awake node. Observable state is unchanged —
  // nothing reads the counters until after the flush.
  std::uint64_t bits_tx_acc = 0;
  std::array<std::uint64_t, kNumMessageKinds> tx_kind_acc{};
  NodeProtocol* const* const tx_protocols = protocols_.data();
  std::uint8_t* const tx_transmitting = transmitting_.data();
  const Round round_now = round_;
  // awake_list_ cannot change inside this loop (wake() only fires on
  // reception, in Phase 3), so its bounds are hoisted past the virtual
  // calls.
  const NodeId* const awake_ids = awake_list_.data();
  const std::size_t awake_n = awake_list_.size();
  for (std::size_t i = 0; i < awake_n; ++i) {
    const NodeId id = awake_ids[i];
    std::optional<MessageBody> body = tx_protocols[id]->on_transmit(round_now);
    if (body.has_value()) {
      tx_transmitting[id] = 1;
      const auto bits = static_cast<std::uint32_t>(message_size_bits(*body));
      const auto kind = static_cast<std::uint32_t>(message_kind_index(*body));
      bits_tx_acc += bits;
      ++tx_kind_acc[kind];
      // emplace + move-assign: one variant move instead of the two a
      // `push_back({id, std::move(*body)})` temporary would cost.
      Message& slot = transmissions_.emplace_back();
      slot.from = id;
      slot.body = std::move(*body);
      tx_meta_.push_back({bits, kind});
      tx_from_.push_back(id);
    }
  }
  {
    TraceCounters& c = trace_.counters();
    c.transmissions += transmissions_.size();
    c.bits_transmitted += bits_tx_acc;
    for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
      c.transmissions_by_kind[k] += tx_kind_acc[k];
    }
  }
  if (auditor_ != nullptr) auditor_->on_transmissions(round_, transmissions_);

  // Phase 2: compute, per node, how many transmissions reached it. The
  // loop is branchless: whether a neighbor is newly touched is a random,
  // unpredictable bit, so the classical `if (first touch) append` form
  // mispredicts on a large fraction of the visits. Instead every visit
  // unconditionally writes the next free touched_ slot and the cursor
  // advances only on first touch (stale writes are overwritten or ignored),
  // and the first-reacher index is kept via a conditional move. touched_
  // ends up holding exactly the first-touch sequence, in the same order
  // the branching form produced.
  std::size_t touched_count = 0;
  if (sharding_active()) {
    touched_count = sharded_scalar_sweep();
  } else {
    const std::size_t tx_count = tx_from_.size();
    const std::size_t* const offsets = graph_.csr_offsets();
    const NodeId* const targets = graph_.csr_targets();
    ReachSlot* const reach = reach_.data();
    NodeId* const touched = touched_.data();
    for (std::uint32_t t = 0; t < tx_count; ++t) {
      const NodeId u = tx_from_[t];
      const std::size_t end = offsets[u + 1];
      for (std::size_t e = offsets[u]; e < end; ++e) {
        const NodeId v = targets[e];
        // Single 8-byte load/store of the packed slot, with the
        // first-reacher select done in mask arithmetic: written this way
        // (rather than with ?:) so the compiler cannot re-introduce a
        // first-touch branch — see the phase comment above.
        std::uint64_t packed;
        std::memcpy(&packed, &reach[v], sizeof packed);
        const std::uint32_t cnt = static_cast<std::uint32_t>(packed);
        const std::uint32_t src = static_cast<std::uint32_t>(packed >> 32);
        const std::uint32_t is_new = cnt == 0 ? 1u : 0u;
        const std::uint32_t new_src = src ^ ((src ^ t) & (0u - is_new));
        packed = (static_cast<std::uint64_t>(new_src) << 32) |
                 static_cast<std::uint64_t>(cnt + 1);
        std::memcpy(&reach[v], &packed, sizeof packed);
        touched[touched_count] = v;
        touched_count += is_new;
      }
    }
  }

  // Phase 3: deliveries — exactly one reaching message, receiver silent.
  // Scratch arrays go through hoisted pointers and counter deltas through
  // local accumulators (flushed after the loop): the on_receive virtual
  // calls would otherwise force per-receiver reloads of every member.
  // Nothing observes the counters until after the flush, so the batching
  // is invisible.
  const bool faults_on = fault_model_.reception_loss_probability > 0.0;
  {
    NodeProtocol* const* const protocols = protocols_.data();
    const std::uint8_t* const transmitting = transmitting_.data();
    ReachSlot* const reach = reach_.data();
    const Message* const txs = transmissions_.data();
    const TxMeta* const tx_meta = tx_meta_.data();
    std::uint64_t deliveries_acc = 0;
    std::uint64_t bits_rx_acc = 0;
    std::uint64_t collision_acc = 0;
    std::uint64_t deaf_acc = 0;
    std::uint64_t fault_acc = 0;
    std::array<std::uint64_t, kNumMessageKinds> rx_kind_acc{};
    const NodeId* const touched = touched_.data();
    for (std::size_t i = 0; i < touched_count; ++i) {
      const NodeId v = touched[i];
      const ReachSlot slot = reach[v];
      const std::uint32_t reached = slot.count;
      reach[v].count = 0;  // reset for the next round

      // Delivery path, shared by the model and by the seeded-bug mutations.
      // Force-inlined: it sits on the hot tail of the loop and the
      // compiler otherwise outlines it for the three rare mutation sites.
      // The awake_[v] guard is replicated here so the common
      // already-awake delivery skips the wake() call entirely (wake
      // re-checks, so semantics are untouched).
      const auto deliver = [&](std::uint32_t source) __attribute__((always_inline)) {
        const Message& tx = txs[source];
        const TxMeta meta = tx_meta[source];
        ++deliveries_acc;
        bits_rx_acc += meta.size_bits;
        ++rx_kind_acc[meta.kind];
        if (events) {
          trace_.record({round_, v, TraceEvent::Kind::kDelivered,
                         message_kind(tx.body), tx.from});
        }
        if (auditor_ != nullptr) auditor_->on_deliver(round_, v, source, tx);
        if (!mutations_.skip_wake_on_receive && !awake_[v]) wake(v);
        protocols[v]->on_receive(round_, tx);
      };

      if (transmitting[v]) {
        ++deaf_acc;
        if (events) trace_.record({round_, v, TraceEvent::Kind::kDeaf, {}, 0});
        if (auditor_ != nullptr) auditor_->on_deaf_slot(round_, v, reached);
        if (mutations_.deliver_while_transmitting) deliver(slot.source);
        continue;
      }
      if (reached >= 2) {
        ++collision_acc;
        if (events) trace_.record({round_, v, TraceEvent::Kind::kCollision, {}, 0});
        if (auditor_ != nullptr) {
          auditor_->on_collision_slot(round_, v, reached, collision_detection_);
        }
        if (collision_detection_) {
          wake(v);
          protocols[v]->on_collision(round_);
        }
        if (mutations_.deliver_on_collision) deliver(slot.source);
        continue;
      }
      if (faults_on && fault_rng_.next_bool(fault_model_.reception_loss_probability)) {
        // Injected interference: the receiver observes silence.
        ++fault_acc;
        if (auditor_ != nullptr) auditor_->on_fault_drop(round_, v, slot.source);
        continue;
      }
      deliver(slot.source);
    }
    TraceCounters& c = trace_.counters();
    c.deliveries += deliveries_acc;
    c.bits_delivered += bits_rx_acc;
    c.collision_slots += collision_acc;
    c.deaf_slots += deaf_acc;
    c.fault_drops += fault_acc;
    for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
      c.deliveries_by_kind[k] += rx_kind_acc[k];
    }
  }
  for (const NodeId from : tx_from_) transmitting_[from] = 0;
}

void Network::ensure_bitset_buffers() {
  if (bitset_ready_) return;
  const std::size_t n = num_nodes();
  tx_bits_.resize(n);
  once_bits_.resize(n);
  twice_bits_.resize(n);
  awake_bits_.resize(n);
  tx_index_of_.assign(n, kInvalidTx);
  first_src_.resize(n + 1);
  for (const NodeId id : awake_list_) {
    awake_bits_.words()[id >> 6] |= 1ULL << (id & 63);
  }
  packed_rows_ = graph::PackedRows::build(graph_);
  bitset_ready_ = true;
}

std::uint32_t Network::materialize_packed_tx(NodeId from) {
  const auto idx = static_cast<std::uint32_t>(transmissions_.size());
  Message& slot = transmissions_.emplace_back();
  slot.from = from;
  slot.body = packed_source_->packed_body(round_, from);
  tx_meta_.push_back({static_cast<std::uint32_t>(message_size_bits(slot.body)),
                      static_cast<std::uint32_t>(message_kind_index(slot.body))});
  tx_from_.push_back(from);
  tx_index_of_[from] = idx;
  return idx;
}

void Network::round_bitset() {
  const bool events = trace_.events_enabled();
  const bool faults_on = fault_model_.reception_loss_probability > 0.0;
  // The shard mutations count as order-sensitive: the wrong-reduction bug
  // only exists where a merge happens (the exact path), so they force it.
  const bool mutations_on = mutations_.deliver_on_collision ||
                            mutations_.deliver_while_transmitting ||
                            mutations_.skip_wake_on_receive ||
                            mutations_.shard_wrong_reduction_order ||
                            mutations_.shard_skip_frontier_exchange;
  // The exact sub-path replays the scalar engine's receiver-touch order:
  // the fault RNG stream is defined by that order (see FaultModel), and
  // auditors, the event log, and the seeded-bug mutations all observe it.
  // With none of those attached, per-node outcomes are order-independent
  // (protocols only interact through the channel, which this round's
  // transmit set already fixes), so the fast sub-path may classify
  // receivers word-wise in id order and still reach the identical
  // end-of-round state — pinned by the differential oracle tests.
  const bool exact = auditor_ != nullptr || faults_on || events || mutations_on;

  for (Message& spent : transmissions_) payload_arena_->recycle_body(spent.body);
  transmissions_.clear();
  tx_meta_.clear();
  tx_from_.clear();
  if (awake_list_dirty_) {
    std::sort(awake_list_.begin(), awake_list_.end());
    awake_list_dirty_ = false;
  }

  const std::size_t nw = tx_bits_.num_words();
  std::uint64_t* const tx = tx_bits_.words().data();
  std::uint64_t* const once = once_bits_.words().data();
  std::uint64_t* const twice = twice_bits_.words().data();
  std::fill_n(once, nw, 0);
  std::fill_n(twice, nw, 0);

  // Phase 1: this round's transmit set, as bits. With a packed source the
  // whole round is one bulk fill + awake mask; otherwise the scalar
  // engine's sorted awake scan runs unchanged (same virtual calls, same
  // order) and additionally sets the bits.
  if (packed_source_ != nullptr) {
    packed_source_->fill_transmit_words(round_, tx, nw);
    const std::uint64_t* const aw = awake_bits_.words().data();
    for (std::size_t w = 0; w < nw; ++w) tx[w] &= aw[w];
    tx_bits_.clear_excess_bits();
    std::size_t tx_count = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      tx_count += static_cast<std::size_t>(std::popcount(tx[w]));
    }
    if (exact) {
      // Materialise every transmission, ascending by id — the order the
      // scalar engine's sorted awake scan emits.
      std::uint64_t bits_tx_acc = 0;
      std::array<std::uint64_t, kNumMessageKinds> tx_kind_acc{};
      for (std::size_t w = 0; w < nw; ++w) {
        std::uint64_t word = tx[w];
        while (word != 0) {
          const auto from =
              static_cast<NodeId>((w << 6) + std::countr_zero(word));
          word &= word - 1;
          const std::uint32_t idx = materialize_packed_tx(from);
          bits_tx_acc += tx_meta_[idx].size_bits;
          ++tx_kind_acc[tx_meta_[idx].kind];
        }
      }
      TraceCounters& c = trace_.counters();
      c.transmissions += transmissions_.size();
      c.bits_transmitted += bits_tx_acc;
      for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
        c.transmissions_by_kind[k] += tx_kind_acc[k];
      }
    } else if (tx_count > 0) {
      // One representative body yields the round's uniform kind/size (the
      // PackedTransmitSource contract); nobody-heard transmitters are
      // never materialised.
      std::size_t w = 0;
      while (tx[w] == 0) ++w;
      const auto from = static_cast<NodeId>((w << 6) + std::countr_zero(tx[w]));
      const std::uint32_t idx = materialize_packed_tx(from);
      TraceCounters& c = trace_.counters();
      c.transmissions += tx_count;
      c.bits_transmitted +=
          static_cast<std::uint64_t>(tx_meta_[idx].size_bits) * tx_count;
      c.transmissions_by_kind[tx_meta_[idx].kind] += tx_count;
    }
  } else {
    // The packed branch overwrites every tx word; this branch only ORs
    // bits in, so last round's set must be cleared first.
    std::fill_n(tx, nw, 0);
    std::uint64_t bits_tx_acc = 0;
    std::array<std::uint64_t, kNumMessageKinds> tx_kind_acc{};
    NodeProtocol* const* const tx_protocols = protocols_.data();
    const Round round_now = round_;
    const NodeId* const awake_ids = awake_list_.data();
    const std::size_t awake_n = awake_list_.size();
    for (std::size_t i = 0; i < awake_n; ++i) {
      const NodeId id = awake_ids[i];
      std::optional<MessageBody> body = tx_protocols[id]->on_transmit(round_now);
      if (body.has_value()) {
        tx[id >> 6] |= 1ULL << (id & 63);
        const auto bits = static_cast<std::uint32_t>(message_size_bits(*body));
        const auto kind = static_cast<std::uint32_t>(message_kind_index(*body));
        bits_tx_acc += bits;
        ++tx_kind_acc[kind];
        tx_index_of_[id] = static_cast<std::uint32_t>(transmissions_.size());
        Message& slot = transmissions_.emplace_back();
        slot.from = id;
        slot.body = std::move(*body);
        tx_meta_.push_back({bits, kind});
        tx_from_.push_back(id);
      }
    }
    TraceCounters& c = trace_.counters();
    c.transmissions += transmissions_.size();
    c.bits_transmitted += bits_tx_acc;
    for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
      c.transmissions_by_kind[k] += tx_kind_acc[k];
    }
  }
  if (auditor_ != nullptr) auditor_->on_transmissions(round_, transmissions_);

  // Row access for the scatter/resolve sweeps: the word-grouped index when
  // the topology compressed, else on-the-fly grouping of the sorted CSR
  // row (same group stream either way).
  const bool grouped = packed_rows_.built();
  const std::size_t* const offsets = graph_.csr_offsets();
  const NodeId* const targets = graph_.csr_targets();
  const auto for_row = [&](NodeId u, auto&& fn) {
    if (grouped) {
      for (const graph::WordGroup& g : packed_rows_.row(u)) fn(g.word, g.mask);
    } else {
      graph::for_each_word_group(
          {targets + offsets[u], offsets[u + 1] - offsets[u]}, fn);
    }
  };

  // Phase 2: carry-save scatter. Each transmitter ORs its neighborhood
  // masks into the (once, twice) pair word-wise; afterwards once & ~twice
  // is the exactly-one set. The exact sub-path additionally extracts each
  // group's first-touch bits (mask & ~old_once, ascending within the word
  // = ascending CSR order) to reproduce the scalar engine's touched_
  // sequence and first-reacher attribution.
  std::size_t touched_count = 0;
  NodeId* const touched = touched_.data();
  std::uint32_t* const first_src = first_src_.data();
  const bool sharded = sharding_active();
  if (exact && sharded) {
    touched_count = sharded_bitset_exact_scatter();
  } else if (exact) {
    const std::size_t tc = tx_from_.size();
    for (std::uint32_t t = 0; t < tc; ++t) {
      for_row(tx_from_[t], [&](std::uint32_t w, std::uint64_t m) {
        const std::uint64_t old = once[w];
        twice[w] |= old & m;
        once[w] = old | m;
        std::uint64_t news = m & ~old;
        while (news != 0) {
          const auto b = static_cast<std::uint32_t>(std::countr_zero(news));
          news &= news - 1;
          touched[touched_count] = (w << 6) + b;
          first_src[touched_count] = t;
          ++touched_count;
        }
      });
    }
  } else if (!sharded) {
    // (The sharded fast sub-path fuses its scatter into the per-shard
    // sweep below.)
    for (std::size_t w0 = 0; w0 < nw; ++w0) {
      std::uint64_t word = tx[w0];
      while (word != 0) {
        const auto u = static_cast<NodeId>((w0 << 6) + std::countr_zero(word));
        word &= word - 1;
        for_row(u, [&](std::uint32_t w, std::uint64_t m) {
          twice[w] |= once[w] & m;
          once[w] |= m;
        });
      }
    }
  }

  // Phase 3.
  NodeProtocol* const* const protocols = protocols_.data();
  std::uint64_t deliveries_acc = 0;
  std::uint64_t bits_rx_acc = 0;
  std::uint64_t collision_acc = 0;
  std::uint64_t deaf_acc = 0;
  std::uint64_t fault_acc = 0;
  std::array<std::uint64_t, kNumMessageKinds> rx_kind_acc{};
  if (exact) {
    // Same control flow as the scalar Phase 3, receiver-touch order and
    // all; only the per-node lookups differ (bit tests instead of the
    // transmitting_/reach_ arrays).
    for (std::size_t i = 0; i < touched_count; ++i) {
      const NodeId v = touched[i];
      const std::uint32_t source = first_src[i];
      // The audit hooks report the exact reach count; without an auditor
      // only the 1-vs-many distinction matters and the twice bit has it.
      std::uint32_t reached = 1 + ((twice[v >> 6] >> (v & 63)) & 1u);
      if (auditor_ != nullptr) {
        std::uint32_t full = 0;
        for_row(v, [&](std::uint32_t w, std::uint64_t m) {
          full += static_cast<std::uint32_t>(std::popcount(tx[w] & m));
        });
        reached = full;
      }

      const auto deliver = [&](std::uint32_t src) __attribute__((always_inline)) {
        const Message& txm = transmissions_[src];
        const TxMeta meta = tx_meta_[src];
        ++deliveries_acc;
        bits_rx_acc += meta.size_bits;
        ++rx_kind_acc[meta.kind];
        if (events) {
          trace_.record({round_, v, TraceEvent::Kind::kDelivered,
                         message_kind(txm.body), txm.from});
        }
        if (auditor_ != nullptr) auditor_->on_deliver(round_, v, src, txm);
        if (!mutations_.skip_wake_on_receive && !awake_[v]) wake(v);
        protocols[v]->on_receive(round_, txm);
      };

      if ((tx[v >> 6] >> (v & 63)) & 1u) {
        ++deaf_acc;
        if (events) trace_.record({round_, v, TraceEvent::Kind::kDeaf, {}, 0});
        if (auditor_ != nullptr) auditor_->on_deaf_slot(round_, v, reached);
        if (mutations_.deliver_while_transmitting) deliver(source);
        continue;
      }
      if (reached >= 2) {
        ++collision_acc;
        if (events) trace_.record({round_, v, TraceEvent::Kind::kCollision, {}, 0});
        if (auditor_ != nullptr) {
          auditor_->on_collision_slot(round_, v, reached, collision_detection_);
        }
        if (collision_detection_) {
          wake(v);
          protocols[v]->on_collision(round_);
        }
        if (mutations_.deliver_on_collision) deliver(source);
        continue;
      }
      if (faults_on && fault_rng_.next_bool(fault_model_.reception_loss_probability)) {
        ++fault_acc;
        if (auditor_ != nullptr) auditor_->on_fault_drop(round_, v, source);
        continue;
      }
      deliver(source);
    }
  } else if (sharded) {
    sharded_bitset_fast_sweep(deliveries_acc, bits_rx_acc, collision_acc,
                              deaf_acc, rx_kind_acc);
  } else {
    // Fast sub-path: classify all 64 receivers of a word at once.
    //   deaf      = once &  tx          (heard something while sending)
    //   collision = twice & ~tx         (>= 2 reached, silent)
    //   success   = once & ~twice & ~tx (exactly 1 reached, silent)
    // Deaf and collision slots are pure popcounts; only successes (and,
    // under the CD ablation, collisions) walk their bits.
    for (std::size_t w0 = 0; w0 < nw; ++w0) {
      const std::uint64_t o = once[w0];
      if (o == 0) continue;
      const std::uint64_t tw = twice[w0];
      const std::uint64_t txw = tx[w0];
      deaf_acc += static_cast<std::uint64_t>(std::popcount(o & txw));
      const std::uint64_t coll = tw & ~txw;
      collision_acc += static_cast<std::uint64_t>(std::popcount(coll));
      if (collision_detection_ && coll != 0) {
        std::uint64_t cbits = coll;
        while (cbits != 0) {
          const auto v = static_cast<NodeId>((w0 << 6) + std::countr_zero(cbits));
          cbits &= cbits - 1;
          wake(v);
          protocols[v]->on_collision(round_);
        }
      }
      std::uint64_t succ = o & ~tw & ~txw;
      while (succ != 0) {
        const auto v = static_cast<NodeId>((w0 << 6) + std::countr_zero(succ));
        succ &= succ - 1;
        // Exactly one transmitter reached v, so the first nonzero
        // row-word intersection pins it (first-hit trick).
        NodeId from = 0;
        if (grouped) {
          for (const graph::WordGroup& g : packed_rows_.row(v)) {
            const std::uint64_t hits = tx[g.word] & g.mask;
            if (hits != 0) {
              from = static_cast<NodeId>((static_cast<std::size_t>(g.word) << 6) +
                                         std::countr_zero(hits));
              break;
            }
          }
        } else {
          const NodeId* const row = targets + offsets[v];
          const std::size_t len = offsets[v + 1] - offsets[v];
          std::size_t i = 0;
          while (i < len) {
            const std::uint32_t wd = row[i] >> 6;
            std::uint64_t mask = 0;
            do {
              mask |= 1ULL << (row[i] & 63);
              ++i;
            } while (i < len && (row[i] >> 6) == wd);
            const std::uint64_t hits = tx[wd] & mask;
            if (hits != 0) {
              from = static_cast<NodeId>((static_cast<std::size_t>(wd) << 6) +
                                         std::countr_zero(hits));
              break;
            }
          }
        }
        std::uint32_t idx = tx_index_of_[from];
        if (idx == kInvalidTx) idx = materialize_packed_tx(from);
        const Message& txm = transmissions_[idx];
        const TxMeta meta = tx_meta_[idx];
        ++deliveries_acc;
        bits_rx_acc += meta.size_bits;
        ++rx_kind_acc[meta.kind];
        if (!awake_[v]) wake(v);
        protocols[v]->on_receive(round_, txm);
      }
    }
  }
  {
    TraceCounters& c = trace_.counters();
    c.deliveries += deliveries_acc;
    c.bits_delivered += bits_rx_acc;
    c.collision_slots += collision_acc;
    c.deaf_slots += deaf_acc;
    c.fault_drops += fault_acc;
    for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
      c.deliveries_by_kind[k] += rx_kind_acc[k];
    }
  }
  for (const Message& m : transmissions_) tx_index_of_[m.from] = kInvalidTx;
}

bool Network::advance_done_count() {
  while (done_count_ < num_nodes() && protocols_[done_count_]->done()) ++done_count_;
  return done_count_ == num_nodes();
}

bool Network::run_until_done(Round max_rounds) {
  done_count_ = 0;  // re-verify from scratch: protocols may have been swapped
  if (advance_done_count()) return true;
  for (Round r = 0; r < max_rounds; ++r) {
    step();
    if (advance_done_count()) return true;
  }
  return false;
}

bool Network::run_until(Round max_rounds, const std::function<bool()>& predicate) {
  if (predicate()) return true;
  for (Round r = 0; r < max_rounds; ++r) {
    step();
    if (predicate()) return true;
  }
  return false;
}

}  // namespace radiocast::radio
