#include "radio/network.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace radiocast::radio {

Network::Network(const graph::Graph& graph)
    : graph_(graph),
      protocols_(graph.num_nodes()),
      awake_(graph.num_nodes(), 0),
      reach_count_(graph.num_nodes(), 0),
      reach_source_(graph.num_nodes(), 0) {
  RC_ASSERT_MSG(graph.finalized(), "Network requires a finalized graph");
}

void Network::set_protocol(NodeId id, std::unique_ptr<NodeProtocol> protocol) {
  RC_ASSERT_MSG(id < num_nodes(), "set_protocol on an out-of-range id");
  RC_ASSERT(protocol != nullptr);
  RC_ASSERT_MSG(!started_, "set_protocol after the simulation started");
  protocols_[id] = std::move(protocol);
}

NodeProtocol& Network::protocol(NodeId id) {
  RC_ASSERT(id < num_nodes() && protocols_[id] != nullptr);
  return *protocols_[id];
}

const NodeProtocol& Network::protocol(NodeId id) const {
  RC_ASSERT(id < num_nodes() && protocols_[id] != nullptr);
  return *protocols_[id];
}

void Network::wake_at_start(NodeId id) {
  RC_ASSERT_MSG(id < num_nodes(), "wake_at_start on an out-of-range id");
  RC_ASSERT_MSG(!started_, "wake_at_start after the simulation started");
  if (!awake_[id]) {
    awake_[id] = 1;
    awake_list_.push_back(id);
    awake_list_dirty_ = true;
    pending_initial_wakes_.push_back(id);
  }
}

void Network::set_fault_model(const FaultModel& model) {
  RC_ASSERT_MSG(!started_, "set_fault_model after the simulation started");
  RC_ASSERT(model.reception_loss_probability >= 0.0 &&
            model.reception_loss_probability <= 1.0);
  fault_model_ = model;
  fault_rng_.reseed(model.seed);
}

void Network::enable_collision_detection(bool on) {
  RC_ASSERT_MSG(!started_, "enable_collision_detection after the simulation started");
  collision_detection_ = on;
}

void Network::set_auditor(NetworkAuditHook* auditor) {
  RC_ASSERT_MSG(!started_ || auditor == nullptr,
                "set_auditor after the simulation started");
  auditor_ = auditor;
}

void Network::set_test_mutations(const EngineMutations& mutations) {
  RC_ASSERT_MSG(!started_, "set_test_mutations after the simulation started");
  mutations_ = mutations;
}

void Network::wake(NodeId id) {
  if (!awake_[id]) {
    awake_[id] = 1;
    awake_list_.push_back(id);
    awake_list_dirty_ = true;
    ++trace_.counters().wakeups;
    if (auditor_ != nullptr) auditor_->on_node_wake(round_, id);
    protocols_[id]->on_wake(round_);
  }
}

void Network::report_round(std::uint64_t round) {
  const TraceCounters& now = trace_.counters();
  obs::RoundStats stats;
  stats.round = round;
  stats.transmissions =
      static_cast<std::uint32_t>(now.transmissions - round_base_.transmissions);
  stats.deliveries =
      static_cast<std::uint32_t>(now.deliveries - round_base_.deliveries);
  stats.collision_slots =
      static_cast<std::uint32_t>(now.collision_slots - round_base_.collision_slots);
  stats.deaf_slots =
      static_cast<std::uint32_t>(now.deaf_slots - round_base_.deaf_slots);
  stats.fault_drops =
      static_cast<std::uint32_t>(now.fault_drops - round_base_.fault_drops);
  stats.wakeups = static_cast<std::uint32_t>(now.wakeups - round_base_.wakeups);
  for (std::size_t i = 0; i < kNumMessageKinds; ++i) {
    round_tx_by_kind_[i] = static_cast<std::uint32_t>(
        now.transmissions_by_kind[i] - round_base_.transmissions_by_kind[i]);
    round_rx_by_kind_[i] = static_cast<std::uint32_t>(
        now.deliveries_by_kind[i] - round_base_.deliveries_by_kind[i]);
  }
  stats.num_kinds = kNumMessageKinds;
  stats.kind_names = message_kind_names().data();
  stats.transmissions_by_kind = round_tx_by_kind_.data();
  stats.deliveries_by_kind = round_rx_by_kind_.data();
  observer_->on_round(stats);
}

void Network::step() {
  if (observer_ != nullptr) round_base_ = trace_.counters();
  if (!started_) {
    started_ = true;
    if (auditor_ != nullptr) auditor_->on_sim_start(pending_initial_wakes_);
    for (NodeId id : pending_initial_wakes_) {
      ++trace_.counters().wakeups;
      protocols_[id]->on_wake(round_);
    }
    pending_initial_wakes_.clear();
#ifndef NDEBUG
    for (NodeId id = 0; id < num_nodes(); ++id) {
      RC_ASSERT_MSG(protocols_[id] != nullptr, "every node needs a protocol");
    }
#endif
  }

  // Phase 1: collect transmission decisions from awake nodes. The dense
  // awake list replaces the historical full-n scan; it is kept sorted so
  // on_transmit fires in the same ascending-id order as that scan did.
  const bool events = trace_.events_enabled();
  transmissions_.clear();
  if (transmitting_.size() != num_nodes()) transmitting_.assign(num_nodes(), 0);
  if (awake_list_dirty_) {
    std::sort(awake_list_.begin(), awake_list_.end());
    awake_list_dirty_ = false;
  }
  for (NodeId id : awake_list_) {
    std::optional<MessageBody> body = protocols_[id]->on_transmit(round_);
    if (body.has_value()) {
      transmitting_[id] = 1;
      trace_.counters().bits_transmitted += message_size_bits(*body);
      ++trace_.counters().transmissions_by_kind[message_kind_index(*body)];
      transmissions_.push_back({id, std::move(*body)});
    }
  }
  trace_.counters().transmissions += transmissions_.size();
  if (auditor_ != nullptr) auditor_->on_transmissions(round_, transmissions_);

  // Phase 2: compute, per node, how many transmissions reached it.
  for (std::uint32_t t = 0; t < transmissions_.size(); ++t) {
    for (NodeId v : graph_.neighbors(transmissions_[t].from)) {
      if (reach_count_[v]++ == 0) {
        reach_source_[v] = t;
        touched_.push_back(v);
      }
    }
  }

  // Phase 3: deliveries — exactly one reaching message, receiver silent.
  const bool faults_on = fault_model_.reception_loss_probability > 0.0;
  for (NodeId v : touched_) {
    const std::uint32_t reached = reach_count_[v];
    reach_count_[v] = 0;  // reset for the next round

    // Delivery path, shared by the model and by the seeded-bug mutations.
    const auto deliver = [&](std::uint32_t source) {
      const Message& tx = transmissions_[source];
      ++trace_.counters().deliveries;
      trace_.counters().bits_delivered += message_size_bits(tx.body);
      ++trace_.counters().deliveries_by_kind[message_kind_index(tx.body)];
      if (events) {
        trace_.record({round_, v, TraceEvent::Kind::kDelivered, message_kind(tx.body),
                       tx.from});
      }
      if (auditor_ != nullptr) auditor_->on_deliver(round_, v, source, tx);
      if (!mutations_.skip_wake_on_receive) wake(v);
      protocols_[v]->on_receive(round_, tx);
    };

    if (transmitting_[v]) {
      ++trace_.counters().deaf_slots;
      if (events) trace_.record({round_, v, TraceEvent::Kind::kDeaf, {}, 0});
      if (auditor_ != nullptr) auditor_->on_deaf_slot(round_, v, reached);
      if (mutations_.deliver_while_transmitting) deliver(reach_source_[v]);
      continue;
    }
    if (reached >= 2) {
      ++trace_.counters().collision_slots;
      if (events) trace_.record({round_, v, TraceEvent::Kind::kCollision, {}, 0});
      if (auditor_ != nullptr) {
        auditor_->on_collision_slot(round_, v, reached, collision_detection_);
      }
      if (collision_detection_) {
        wake(v);
        protocols_[v]->on_collision(round_);
      }
      if (mutations_.deliver_on_collision) deliver(reach_source_[v]);
      continue;
    }
    if (faults_on && fault_rng_.next_bool(fault_model_.reception_loss_probability)) {
      // Injected interference: the receiver observes silence.
      ++trace_.counters().fault_drops;
      if (auditor_ != nullptr) auditor_->on_fault_drop(round_, v, reach_source_[v]);
      continue;
    }
    deliver(reach_source_[v]);
  }
  touched_.clear();
  for (const Message& tx : transmissions_) transmitting_[tx.from] = 0;

  if (auditor_ != nullptr) auditor_->on_round_end(round_);
  if (observer_ != nullptr) report_round(round_);
  ++round_;
  ++trace_.counters().rounds;
}

bool Network::advance_done_count() {
  while (done_count_ < num_nodes() && protocols_[done_count_]->done()) ++done_count_;
  return done_count_ == num_nodes();
}

bool Network::run_until_done(Round max_rounds) {
  done_count_ = 0;  // re-verify from scratch: protocols may have been swapped
  if (advance_done_count()) return true;
  for (Round r = 0; r < max_rounds; ++r) {
    step();
    if (advance_done_count()) return true;
  }
  return false;
}

bool Network::run_until(Round max_rounds, const std::function<bool()>& predicate) {
  if (predicate()) return true;
  for (Round r = 0; r < max_rounds; ++r) {
    step();
    if (predicate()) return true;
  }
  return false;
}

}  // namespace radiocast::radio
