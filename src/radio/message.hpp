// Message taxonomy for the radio-network protocols.
//
// The simulator transports opaque Message values; the collision semantics
// never look inside. The taxonomy covers every protocol in the library:
// BFS construction messages, one-bit alarms, unicast data + acks (Stage 3),
// plain packets (root injection / uncoded baselines) and coded packets
// (Stage 4 network coding).
//
// Each message knows its approximate on-air size in bits; the trace
// accumulates these so benches can report bit-cost as well as round-cost.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "gf2/solver.hpp"
#include "graph/graph.hpp"

namespace radiocast::radio {

using graph::NodeId;
using PacketId = std::uint64_t;

/// Packet ids are (origin << 32) | sequence — globally unique without
/// coordination, as in the paper's assumption that packets carry an ID.
constexpr PacketId make_packet_id(NodeId origin, std::uint32_t seq) {
  return (static_cast<PacketId>(origin) << 32) | seq;
}
constexpr NodeId packet_origin(PacketId id) { return static_cast<NodeId>(id >> 32); }
constexpr std::uint32_t packet_seq(PacketId id) {
  return static_cast<std::uint32_t>(id & 0xffffffffu);
}

/// An application packet to be broadcast to every node.
struct Packet {
  PacketId id = 0;
  gf2::Payload payload;

  bool operator==(const Packet&) const = default;
};

/// Stage 2 BFS construction message: "<id> is at distance <dist>".
struct BfsConstructMsg {
  NodeId id = 0;
  std::uint32_t dist = 0;
};

/// One-bit alarm (ALARM sub-routine, CD-emulation probes).
struct AlarmMsg {};

/// Stage 3 unicast step: `packet` addressed to BFS parent `to`.
struct DataMsg {
  Packet packet;
  NodeId to = 0;
};

/// Stage 3 acknowledgment travelling from the root back to the origin.
struct AckMsg {
  PacketId packet_id = 0;
  NodeId to = 0;
};

/// An uncoded packet transmission carrying dissemination bookkeeping
/// (root injection rounds, uncoded baselines, sequential BGI).
struct PlainPacketMsg {
  Packet packet;
  std::uint32_t group_id = 0;
  std::uint32_t group_count = 0;
  /// Position of this packet inside its group.
  std::uint16_t index_in_group = 0;
  std::uint16_t group_size = 0;
};

/// Stage 4 coded transmission: payload = XOR of the subset of the group
/// selected by `coeffs` (bit i => packet i of the group). The header fits
/// the paper's ⌈log n⌉-bit budget plus O(log n) bookkeeping bits.
struct CodedMsg {
  std::uint32_t group_id = 0;
  std::uint32_t group_count = 0;
  std::uint16_t group_size = 0;
  std::uint64_t coeffs = 0;
  gf2::Payload payload;
};

using MessageBody =
    std::variant<BfsConstructMsg, AlarmMsg, DataMsg, AckMsg, PlainPacketMsg, CodedMsg>;

// Hot paths (message_size_bits, PayloadArena::recycle_body) switch on the
// raw variant index; pin the alternative order they assume.
static_assert(std::is_same_v<std::variant_alternative_t<0, MessageBody>, BfsConstructMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<1, MessageBody>, AlarmMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<2, MessageBody>, DataMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<3, MessageBody>, AckMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<4, MessageBody>, PlainPacketMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<5, MessageBody>, CodedMsg>);

struct Message {
  /// Filled in by the network when the message is delivered.
  NodeId from = 0;
  MessageBody body;
};

/// Approximate on-air size in bits (headers + payload). Inline: the
/// engine calls this once per transmission on the round loop's hot path.
inline std::size_t message_size_bits(const MessageBody& body) {
  switch (body.index()) {
    case 0:  // BfsConstructMsg
      return 64;
    case 1:  // AlarmMsg
      return 1;
    case 2: {  // DataMsg: packet id + to + payload
      const auto& m = *std::get_if<DataMsg>(&body);
      return 64 + 32 + m.packet.payload.size() * 8;
    }
    case 3:  // AckMsg
      return 64 + 32;
    case 4: {  // PlainPacketMsg: packet id + group header + payload
      const auto& m = *std::get_if<PlainPacketMsg>(&body);
      return 64 + 96 + m.packet.payload.size() * 8;
    }
    default: {  // CodedMsg: group header + coefficient bitmap + payload
      const auto& m = *std::get_if<CodedMsg>(&body);
      return 96 + m.group_size + m.payload.size() * 8;
    }
  }
}

/// Short human-readable tag ("bfs", "alarm", "data", "ack", "plain",
/// "coded") for traces and debugging.
std::string message_kind(const MessageBody& body);

/// Number of message kinds (== std::variant_size_v<MessageBody>).
inline constexpr std::size_t kNumMessageKinds = std::variant_size_v<MessageBody>;

/// Stable index of a message's kind (its variant alternative).
inline std::size_t message_kind_index(const MessageBody& body) {
  return body.index();
}

/// Name for a kind index (same tags as message_kind).
std::string message_kind_name(std::size_t kind_index);

/// The same names as static storage — one `const char*` per kind, indexed
/// by variant alternative. Used by allocation-free instrumentation paths.
const std::array<const char*, kNumMessageKinds>& message_kind_names();

}  // namespace radiocast::radio
