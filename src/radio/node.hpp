// Per-node protocol interface.
//
// A NodeProtocol is a synchronous state machine driven by the Network: at
// every round the engine first collects transmission decisions from all
// awake nodes (on_transmit), then applies the radio collision rule and
// delivers at most one message per listening node (on_receive).
//
// Model contract (matches the paper's Section 1 model):
//  * a node that transmits in a round hears nothing that round;
//  * a node receives iff exactly one of its neighbors transmits;
//  * there is no collision detection — a node cannot distinguish silence
//    from collision, and the engine never exposes that difference;
//  * sleeping nodes never transmit but do receive; the first successful
//    reception wakes them (on_wake fires before on_receive).
#pragma once

#include <cstdint>
#include <optional>

#include "radio/message.hpp"
#include "radio/payload_arena.hpp"

namespace radiocast::radio {

using Round = std::uint64_t;

class NodeProtocol {
 public:
  virtual ~NodeProtocol() = default;

  /// Payload-buffer recycling pool, wired by Network::set_protocol (null
  /// for protocols driven outside a Network). Purely an allocation hint:
  /// message bytes are identical with or without it, so protocols use it
  /// opportunistically — `arena ? arena->acquire_copy(p) : p`.
  void set_payload_arena(PayloadArena* arena) { payload_arena_ = arena; }
  PayloadArena* payload_arena() const { return payload_arena_; }

  /// Fired when the node wakes: either at round 0 (initially awake nodes)
  /// or on first reception. Guaranteed to fire before any other callback.
  virtual void on_wake(Round /*round*/) {}

  /// Transmission decision for the current round. Called exactly once per
  /// round for every awake node. Returning a message transmits it to all
  /// neighbors (subject to collisions at each receiver).
  virtual std::optional<MessageBody> on_transmit(Round round) = 0;

  /// Delivery of a successfully received message (exactly one transmitting
  /// neighbor, and this node did not transmit this round).
  virtual void on_receive(Round round, const Message& msg) = 0;

  /// Fired instead of on_receive when >= 2 neighbors transmitted AND the
  /// network was built with collision detection enabled (an ablation of
  /// the paper's model, which explicitly has no such feedback — see
  /// Network::enable_collision_detection). Never fired in the default
  /// model.
  virtual void on_collision(Round /*round*/) {}

  /// Optional completion signal used by runners to stop the simulation
  /// early once all nodes report done. Must be monotone (once true, stays
  /// true).
  virtual bool done() const { return false; }

 private:
  PayloadArena* payload_arena_ = nullptr;
};

}  // namespace radiocast::radio
