// Contiguous typed storage for per-node protocol state machines.
//
// A Network drives one NodeProtocol per vertex, and the Phase-1 loop
// calls on_transmit on every awake node every round. With one
// individually heap-allocated protocol per node (the unique_ptr overload
// of Network::set_protocol), those calls chase n scattered allocations;
// a ProtocolSlab<T> instead placement-constructs all n protocols of a run
// back to back in one arena, so the round loop walks protocol state in
// address order. The slab owns the objects; the Network is handed plain
// non-owning pointers (the pointer overload of set_protocol) and the slab
// must outlive it.
//
// Storage never reallocates (capacity is fixed at construction), so
// pointers and references returned by emplace() are stable for the
// slab's lifetime — the property the Network wiring relies on.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "common/assert.hpp"

namespace radiocast::radio {

/// Fixed-capacity placement-construction arena for one run's protocols.
template <typename T>
class ProtocolSlab {
 public:
  /// A slab with room for exactly `capacity` protocols.
  explicit ProtocolSlab(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ != 0) {
      storage_ = static_cast<T*>(
          ::operator new(capacity_ * sizeof(T), std::align_val_t(alignof(T))));
    }
  }

  ProtocolSlab(const ProtocolSlab&) = delete;
  ProtocolSlab& operator=(const ProtocolSlab&) = delete;

  ~ProtocolSlab() {
    for (std::size_t i = size_; i > 0; --i) storage_[i - 1].~T();
    if (storage_ != nullptr) {
      ::operator delete(storage_, std::align_val_t(alignof(T)));
    }
  }

  /// Constructs the next protocol in place and returns it. The reference
  /// stays valid until the slab is destroyed.
  template <typename... Args>
  T& emplace(Args&&... args) {
    RC_ASSERT_MSG(size_ < capacity_, "ProtocolSlab capacity exhausted");
    T* slot = new (storage_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// The i-th constructed protocol (bounds-checked in debug builds).
  T& operator[](std::size_t i) {
    RC_DCHECK(i < size_);
    return storage_[i];
  }
  const T& operator[](std::size_t i) const {
    RC_DCHECK(i < size_);
    return storage_[i];
  }

  /// Protocols constructed so far.
  std::size_t size() const { return size_; }
  /// Fixed construction-time capacity (storage never reallocates).
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  T* storage_ = nullptr;
};

}  // namespace radiocast::radio
