// Runtime-dispatched bulk XOR kernels and aligned storage for bit-packed
// data.
//
// The bit-parallel round engine and the network-coding layer both reduce to
// long XOR/AND sweeps over word arrays. This header centralises the one
// primitive worth tuning — `dst ^= src` over a byte range — behind a single
// function pointer resolved once at startup: an AVX2 path (compiled with a
// target attribute, so the baseline ISA of the rest of the build is
// unchanged) when the CPU and build flags allow it, and a portable 4-way
// unrolled word loop otherwise. Callers never branch on the ISA.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace radiocast::gf2 {

/// dst[0..n) ^= src[0..n). Alignment-free (memcpy-based word access on the
/// portable path, unaligned loads on the AVX2 path); endian-agnostic
/// because XOR is bytewise. Regions must not partially overlap.
void xor_bytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

/// dst[0..n) = a[0..n) ^ b[0..n): the out-of-place variant, one fused pass
/// instead of copy-then-xor_bytes. Used by the table encoder's chunk-table
/// construction (entry = parent entry ^ packet). `dst` must not partially
/// overlap either source; dst == a or dst == b is allowed (degenerates to
/// the in-place kernel's access pattern).
void xor_bytes_to(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                  std::size_t n);

/// dst[0..n) ^= a[0..n) ^ b[0..n): dual-source accumulate, one pass over
/// `dst` per two sources. The packed decoder uses it to halve the memory
/// traffic of a row's pivot-absorption chain (XOR is commutative and
/// associative, so pairing absorptions is byte-exact). `dst` must not
/// partially overlap either source.
void xor_accum2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::size_t n);

/// dst[0..n) ^= a ^ b ^ c ^ d: quad-source accumulate, one pass over `dst`
/// per four sources. Same contract as xor_accum2.
void xor_accum4(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                const std::uint8_t* c, const std::uint8_t* d, std::size_t n);

/// Word-array convenience wrapper over xor_bytes.
inline void xor_words(std::uint64_t* dst, const std::uint64_t* src, std::size_t n_words) {
  xor_bytes(reinterpret_cast<std::uint8_t*>(dst),
            reinterpret_cast<const std::uint8_t*>(src), n_words * sizeof(std::uint64_t));
}

/// Name of the kernel the dispatcher resolved to ("avx2" or "portable") —
/// surfaced in `radiocast version` and the manifest environment block so
/// benchmark provenance records which kernel produced the numbers.
const char* simd_kernel_name();

/// Minimal aligned allocator so BitVec word storage starts on a cache-line
/// boundary (vector-width-friendly for the dispatched kernels).
template <typename T, std::size_t Align = 64>
struct AlignedAlloc {
  using value_type = T;
  // Required explicitly: allocator_traits cannot auto-rebind through the
  // non-type Align parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0);

  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAlloc<U, Align>&) const noexcept {
    return true;
  }
};

}  // namespace radiocast::gf2
