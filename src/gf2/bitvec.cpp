#include "gf2/bitvec.hpp"

#include <algorithm>
#include <bit>

namespace radiocast::gf2 {

BitVec BitVec::from_bits(std::size_t size, const std::vector<std::size_t>& ones) {
  BitVec v(size);
  for (std::size_t i : ones) v.set(i, true);
  return v;
}

BitVec BitVec::random(std::size_t size, Rng& rng) {
  BitVec v(size);
  for (auto& word : v.words_) word = rng();
  v.trim();
  return v;
}

BitVec BitVec::bernoulli(std::size_t size, double p, Rng& rng) {
  BitVec v(size);
  for (std::size_t i = 0; i < size; ++i) v.set(i, rng.next_bool(p));
  return v;
}

BitVec BitVec::unit(std::size_t size, std::size_t i) {
  BitVec v(size);
  v.set(i, true);
  return v;
}

namespace {

/// Index one past the highest nonzero word (0 if all words are zero).
std::size_t nonzero_word_limit(const std::uint64_t* words, std::size_t n) {
  while (n > 0 && words[n - 1] == 0) --n;
  return n;
}

}  // namespace

BitVec& BitVec::operator^=(const BitVec& other) {
  RC_ASSERT(size_ == other.size_);
  xor_words(words_.data(), other.words_.data(), words_.size());
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  RC_ASSERT(size_ == other.size_);
  // Words past either operand's highest nonzero word contribute nothing;
  // clear ours and only combine the live prefix.
  const std::size_t limit =
      std::min(nonzero_word_limit(words_.data(), words_.size()),
               nonzero_word_limit(other.words_.data(), other.words_.size()));
  for (std::size_t w = limit; w < words_.size(); ++w) words_[w] = 0;
  for (std::size_t w = 0; w < limit; ++w) words_[w] &= other.words_[w];
  return *this;
}

bool BitVec::is_zero() const {
  for (std::uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

std::size_t BitVec::popcount() const {
  const std::size_t limit = nonzero_word_limit(words_.data(), words_.size());
  std::size_t total = 0;
  for (std::size_t w = 0; w < limit; ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  return total;
}

std::optional<std::size_t> BitVec::find_single_bit() const {
  std::optional<std::size_t> found;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t word = words_[w];
    if (word == 0) continue;
    if (found || (word & (word - 1)) != 0) return std::nullopt;  // >= 2 bits
    found = (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
  }
  return found;
}

std::size_t BitVec::lowest_set_bit() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::size_t BitVec::highest_set_bit() const {
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0) {
      return (w << 6) + 63 - static_cast<std::size_t>(std::countl_zero(words_[w]));
    }
  }
  return size_;
}

std::vector<std::size_t> BitVec::ones() const {
  std::vector<std::size_t> out;
  out.reserve(popcount());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      out.push_back((w << 6) + bit);
      word &= word - 1;
    }
  }
  return out;
}

bool BitVec::dot(const BitVec& other) const {
  RC_ASSERT(size_ == other.size_);
  std::uint64_t parity = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    parity ^= words_[w] & other.words_[w];
  }
  return (std::popcount(parity) & 1) != 0;
}

std::uint64_t BitVec::to_word() const {
  if (words_.empty()) return 0;
  std::uint64_t word = words_[0];
  if (size_ < 64) word &= (size_ == 0) ? 0 : ((~0ULL) >> (64 - size_));
  return word;
}

BitVec BitVec::from_word(std::size_t size, std::uint64_t word) {
  RC_ASSERT(size <= 64);
  BitVec v(size);
  if (size > 0) {
    v.words_[0] = word & ((size == 64) ? ~0ULL : ((1ULL << size) - 1));
  }
  return v;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

void BitVec::resize(std::size_t bits) {
  words_.resize(word_count(bits), 0);
  size_ = bits;
  trim();  // shrinking within the last word leaves stale tail bits
}

void BitVec::trim() {
  const std::size_t extra = words_.size() * 64 - size_;
  if (extra > 0 && !words_.empty()) {
    words_.back() &= (~0ULL) >> extra;
  }
}

}  // namespace radiocast::gf2
