#include "gf2/matrix.hpp"

#include <utility>

namespace radiocast::gf2 {

Matrix::Matrix(std::size_t rows, std::size_t cols) : cols_(cols) {
  rows_.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) rows_.emplace_back(cols);
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m;
  m.cols_ = cols;
  m.rows_.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) m.rows_.push_back(BitVec::random(cols, rng));
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

void Matrix::append_row(BitVec row) {
  if (rows_.empty() && cols_ == 0) {
    cols_ = row.size();
  }
  RC_ASSERT(row.size() == cols_);
  rows_.push_back(std::move(row));
}

std::size_t Matrix::rank() const {
  std::vector<BitVec> work = rows_;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < work.size(); ++col) {
    // Find a pivot row with a 1 in this column.
    std::size_t pivot = rank;
    while (pivot < work.size() && !work[pivot].get(col)) ++pivot;
    if (pivot == work.size()) continue;
    std::swap(work[rank], work[pivot]);
    for (std::size_t r = 0; r < work.size(); ++r) {
      if (r != rank && work[r].get(col)) work[r] ^= work[rank];
    }
    ++rank;
  }
  return rank;
}

BitVec Matrix::multiply(const BitVec& x) const {
  RC_ASSERT(x.size() == cols_);
  BitVec out(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out.set(r, rows_[r].dot(x));
  }
  return out;
}

std::optional<BitVec> Matrix::solve(const BitVec& b) const {
  RC_ASSERT(b.size() == rows_.size());
  // Augmented elimination: carry the rhs bit alongside each row.
  std::vector<BitVec> work = rows_;
  std::vector<bool> rhs(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) rhs[r] = b.get(r);

  std::vector<std::size_t> pivot_col_of_row;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < work.size(); ++col) {
    std::size_t pivot = rank;
    while (pivot < work.size() && !work[pivot].get(col)) ++pivot;
    if (pivot == work.size()) continue;
    std::swap(work[rank], work[pivot]);
    const bool tmp = rhs[rank];
    rhs[rank] = rhs[pivot];
    rhs[pivot] = tmp;
    for (std::size_t r = 0; r < work.size(); ++r) {
      if (r != rank && work[r].get(col)) {
        work[r] ^= work[rank];
        rhs[r] = rhs[r] != rhs[rank];
      }
    }
    pivot_col_of_row.push_back(col);
    ++rank;
  }

  // Inconsistent iff some zero row has rhs 1.
  for (std::size_t r = rank; r < work.size(); ++r) {
    if (work[r].is_zero() && rhs[r]) return std::nullopt;
  }

  BitVec x(cols_);
  for (std::size_t r = 0; r < rank; ++r) {
    if (rhs[r]) x.set(pivot_col_of_row[r], true);
  }
  return x;
}

}  // namespace radiocast::gf2
