// Random linear network coding over GF(2) — the encoder side of Stage 4.
//
// The paper's FORWARD sub-routine has each transmitting node draw a uniform
// random subset of the current packet group, XOR the selected packets, and
// transmit the sum with a ⌈log n⌉-bit header identifying the subset. This
// module implements that encoding against a decoded group held by the node.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "gf2/solver.hpp"

namespace radiocast::gf2 {

/// A fully known packet group (payloads in group order) that a node can
/// encode from. In the protocol, the root knows the group outright and
/// relay layers obtain it from their IncrementalDecoder.
class GroupEncoder {
 public:
  explicit GroupEncoder(std::vector<Payload> packets);

  std::size_t width() const { return packets_.size(); }
  const std::vector<Payload>& group() const { return packets_; }

  /// Encodes the subset given by `coeffs` (bit i selects packet i).
  CodedRow encode(const BitVec& coeffs) const;

  /// Same sum, accumulated into a caller-provided payload buffer (cleared
  /// first, so `out` may carry recycled capacity from a PayloadArena).
  /// Byte-identical to encode(coeffs).payload.
  void encode_into(const BitVec& coeffs, Payload& out) const;

  /// Draws a uniform random subset (each packet independently w.p. 1/2) and
  /// encodes it — exactly the paper's transmission rule. The all-zero
  /// subset is permitted (it conveys no information but is what the
  /// uniform rule produces with probability 2^-w; the decoder simply
  /// counts it as redundant).
  CodedRow encode_random(Rng& rng) const;

 private:
  std::vector<Payload> packets_;
};

/// Convenience check used by tests: feeds `rows` to a fresh decoder and
/// reports whether they decode to exactly `expected`.
bool decodes_to(std::size_t width, const std::vector<CodedRow>& rows,
                const std::vector<Payload>& expected);

}  // namespace radiocast::gf2
