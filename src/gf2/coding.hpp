// Random linear network coding over GF(2) — the encoder side of Stage 4.
//
// The paper's FORWARD sub-routine has each transmitting node draw a uniform
// random subset of the current packet group, XOR the selected packets, and
// transmit the sum with a ⌈log n⌉-bit header identifying the subset. This
// module implements that encoding against a decoded group held by the node.
//
// The encoder is table-driven (method of four Russians, window = 4): at
// construction the group is cut into ⌈w/4⌉ chunks of four packets and all
// 15 non-empty XOR combinations of each chunk are precomputed. An encode
// then XORs one precomputed entry per nonzero nibble of the coefficient
// vector — ~w/4 wide gf2::xor_bytes sweeps instead of ~w/2 per-packet
// calls — and is byte-identical to the naive subset XOR (associativity;
// zero-extension padding commutes), which tests/gf2/coding_oracle_test.cpp
// pins across widths and ragged payload lengths. The random-subset draw
// discipline is unchanged: encode_random and encode_random_word_into
// consume exactly the draws BitVec::random always consumed, so RNG streams
// and on-air bytes match the pre-table encoder bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "gf2/solver.hpp"

namespace radiocast::gf2 {

/// A fully known packet group (payloads in group order) that a node can
/// encode from. In the protocol, the root knows the group outright and
/// relay layers obtain it from their IncrementalDecoder.
class GroupEncoder {
 public:
  explicit GroupEncoder(std::vector<Payload> packets);

  std::size_t width() const { return packets_.size(); }
  const std::vector<Payload>& group() const { return packets_; }

  /// Encodes the subset given by `coeffs` (bit i selects packet i).
  CodedRow encode(const BitVec& coeffs) const;

  /// Same sum, accumulated into a caller-provided payload buffer (cleared
  /// first, so `out` may carry recycled capacity from a PayloadArena).
  /// Byte-identical to encode(coeffs).payload.
  void encode_into(const BitVec& coeffs, Payload& out) const;

  /// Packed-header variant (width <= 64): bit i of `coeffs` selects packet
  /// i, exactly the CodedMsg wire format. Byte-identical to encode_into
  /// with the equivalent BitVec.
  void encode_word_into(std::uint64_t coeffs, Payload& out) const;

  /// Draws a uniform random subset (each packet independently w.p. 1/2) and
  /// encodes it — exactly the paper's transmission rule. The all-zero
  /// subset is permitted (it conveys no information but is what the
  /// uniform rule produces with probability 2^-w; the decoder simply
  /// counts it as redundant).
  CodedRow encode_random(Rng& rng) const;

  /// Allocation-free encode_random for width <= 64: draws the same single
  /// rng() word BitVec::random(width) would draw, encodes into `out` (an
  /// arena-recycled buffer), and returns the coefficient word for the
  /// CodedMsg header. Stream- and byte-identical to encode_random.
  std::uint64_t encode_random_word_into(Rng& rng, Payload& out) const;

 private:
  /// Entry for the `mask` subset (1 <= mask <= 15) of chunk `c`.
  const Payload& entry(std::size_t c, std::uint32_t mask) const {
    return table_[c * 15 + mask - 1];
  }
  void build_table();

  std::vector<Payload> packets_;
  /// Four-Russians chunk tables: chunk c covers packets [4c, 4c+4);
  /// table_[c*15 + m - 1] = XOR of the packets selected by nibble m
  /// (sized to the longest selected packet, like any XOR sum here).
  /// Entries whose mask selects past width() stay empty and are never
  /// addressed, because coefficient vectors never set those bits.
  std::vector<Payload> table_;
};

/// Convenience check used by tests: feeds `rows` to a fresh decoder and
/// reports whether they decode to exactly `expected`.
bool decodes_to(std::size_t width, const std::vector<CodedRow>& rows,
                const std::vector<Payload>& expected);

}  // namespace radiocast::gf2
