#include "gf2/solver.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "gf2/simd.hpp"

namespace radiocast::gf2 {

void xor_into(Payload& dst, const Payload& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  xor_bytes(dst.data(), src.data(), src.size());
}

void xor_payloads(Payload& dst, const Payload& a, const Payload& b) {
  const Payload& longer = a.size() >= b.size() ? a : b;
  const Payload& shorter = a.size() >= b.size() ? b : a;
  dst.resize(longer.size());
  xor_bytes_to(dst.data(), longer.data(), shorter.data(), shorter.size());
  std::copy(longer.begin() + static_cast<std::ptrdiff_t>(shorter.size()), longer.end(),
            dst.begin() + static_cast<std::ptrdiff_t>(shorter.size()));
}

IncrementalDecoder::IncrementalDecoder(std::size_t width) : width_(width) {
  RC_ASSERT(width > 0);
  if (packed()) {
    mask_basis_.assign(width, 0);
    mask_payload_.resize(width);
  } else {
    basis_.resize(width);
    has_pivot_.assign(width, false);
  }
}

bool IncrementalDecoder::add_row(CodedRow row) {
  RC_ASSERT(row.coeffs.size() == width_);
  if (packed()) return add_row_packed(row.coeffs.to_word(), row.payload);
  ++rows_seen_;
  // Reduce against existing pivots until the row is zero or introduces a
  // new pivot.
  while (true) {
    const std::size_t lead = row.coeffs.lowest_set_bit();
    if (lead == width_) {
      ++redundant_rows_;
      return false;  // linearly dependent
    }
    if (!has_pivot_[lead]) {
      basis_[lead] = std::move(row);
      has_pivot_[lead] = true;
      ++rank_;
      solved_ = false;
      return true;
    }
    row.coeffs ^= basis_[lead].coeffs;
    xor_into(row.payload, basis_[lead].payload);
  }
}

bool IncrementalDecoder::add_row_packed(std::uint64_t coeffs, Payload& payload) {
  RC_ASSERT(packed());
  RC_ASSERT(width_ == 64 || (coeffs >> width_) == 0);
  ++rows_seen_;
  // Mask-only reduction first: record which pivots get absorbed instead of
  // XORing payload bytes inside the loop. Redundancy is then decided
  // without touching the payload at all, and an innovative row applies its
  // absorptions pairwise with the dual-source kernel (XOR commutes, so the
  // regrouping is byte-exact). Each pivot is absorbed at most once — the
  // mask's lowest set bit strictly increases through the reduction — so a
  // bitmask captures the chain losslessly.
  std::uint64_t absorbed = 0;
  std::uint64_t reduced = 0;
  const std::size_t pivot = reduce_pivot_mask(
      coeffs, mask_basis_.data(), [&](std::size_t p) { absorbed |= 1ULL << p; },
      &reduced);
  if (pivot == kNoPivot) {
    ++redundant_rows_;
    return false;  // payload untouched; the caller keeps/recycles the buffer
  }
  if (absorbed != 0) absorb_payloads(payload, absorbed);
  mask_basis_[pivot] = reduced;
  mask_payload_[pivot] = std::move(payload);
  ++rank_;
  solved_ = false;
  return true;
}

void IncrementalDecoder::absorb_payloads(Payload& payload, std::uint64_t absorbed) {
  // Grow once to the longest operand (the same zero-extension xor_into
  // applies progressively), then sweep the sources four / two at a time —
  // one pass over `payload` per batch instead of one per source.
  const Payload* srcs[64];
  std::size_t k = 0;
  std::size_t maxlen = payload.size();
  for (std::uint64_t m = absorbed; m != 0; m &= m - 1) {
    const Payload& p = mask_payload_[std::countr_zero(m)];
    srcs[k++] = &p;
    maxlen = std::max(maxlen, p.size());
  }
  payload.resize(maxlen, 0);
  std::size_t i = 0;
  // Quad sweeps while the next four sources share one length — the common
  // case, since payloads in a group converge to the group's max size.
  while (i + 4 <= k && srcs[i]->size() == srcs[i + 1]->size() &&
         srcs[i]->size() == srcs[i + 2]->size() &&
         srcs[i]->size() == srcs[i + 3]->size()) {
    xor_accum4(payload.data(), srcs[i]->data(), srcs[i + 1]->data(),
               srcs[i + 2]->data(), srcs[i + 3]->data(), srcs[i]->size());
    i += 4;
  }
  for (; i + 2 <= k; i += 2) {
    const Payload& a = *srcs[i];
    const Payload& b = *srcs[i + 1];
    const std::size_t common = std::min(a.size(), b.size());
    xor_accum2(payload.data(), a.data(), b.data(), common);
    const Payload& longer = a.size() >= b.size() ? a : b;
    xor_bytes(payload.data() + common, longer.data() + common, longer.size() - common);
  }
  if (i < k) xor_bytes(payload.data(), srcs[i]->data(), srcs[i]->size());
}

void IncrementalDecoder::back_substitute() {
  RC_ASSERT_MSG(complete(), "decoder is not full rank yet");
  // Eliminate upwards so each basis row becomes a unit vector; the payload
  // of row c is then exactly packet c. The decoded payloads are MOVED out
  // of the basis (no copies); the unit masks stay behind so a late
  // redundant add_row still reduces to zero against them.
  decoded_.clear();
  decoded_.reserve(width_);
  if (packed()) {
    // Row-major descending order: when row r is processed every row above
    // its pivot (c > r) is already a unit vector, so the whole chain
    // mask_basis_[r] & ~e_r can be absorbed at once, pairwise. Same XOR
    // multiset as the classic column-major sweep (a unit row's absorption
    // only clears its own bit), hence byte-identical packets.
    for (std::size_t r = width_; r-- > 0;) {
      const std::uint64_t absorbed = mask_basis_[r] & ~(1ULL << r);
      if (absorbed != 0) absorb_payloads(mask_payload_[r], absorbed);
      mask_basis_[r] = 1ULL << r;
    }
    for (std::size_t c = 0; c < width_; ++c) {
      decoded_.push_back(std::move(mask_payload_[c]));
    }
  } else {
    for (std::size_t c = width_; c-- > 0;) {
      for (std::size_t r = 0; r < c; ++r) {
        if (basis_[r].coeffs.get(c)) {
          basis_[r].coeffs ^= basis_[c].coeffs;
          xor_into(basis_[r].payload, basis_[c].payload);
        }
      }
    }
    for (std::size_t c = 0; c < width_; ++c) {
      RC_ASSERT(basis_[c].coeffs.popcount() == 1 && basis_[c].coeffs.get(c));
      decoded_.push_back(std::move(basis_[c].payload));
    }
  }
  solved_ = true;
}

const Payload& IncrementalDecoder::packet(std::size_t index) {
  RC_ASSERT(index < width_);
  if (!solved_) back_substitute();
  RC_ASSERT_MSG(decoded_.size() == width_, "decoder drained by take_packets");
  return decoded_[index];
}

const std::vector<Payload>& IncrementalDecoder::packets() {
  if (!solved_) back_substitute();
  return decoded_;
}

std::vector<Payload> IncrementalDecoder::take_packets() {
  if (!solved_) back_substitute();
  RC_ASSERT_MSG(decoded_.size() == width_, "decoder already drained");
  return std::move(decoded_);
}

MaskRank::MaskRank(std::size_t width) : width_(width) {
  RC_ASSERT(width >= 1 && width <= 64);
}

bool MaskRank::add(std::uint64_t coeffs) {
  RC_ASSERT(width_ == 64 || (coeffs >> width_) == 0);
  // Same elimination as IncrementalDecoder's packed path — literally the
  // shared reduce_pivot_mask routine, with a payload-free absorb.
  std::uint64_t reduced = 0;
  const std::size_t pivot =
      reduce_pivot_mask(coeffs, basis_.data(), [](std::size_t) {}, &reduced);
  if (pivot == kNoPivot) return false;
  basis_[pivot] = reduced;
  ++rank_;
  return true;
}

}  // namespace radiocast::gf2
