#include "gf2/solver.hpp"

#include <bit>
#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "gf2/simd.hpp"

namespace radiocast::gf2 {

void xor_into(Payload& dst, const Payload& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  xor_bytes(dst.data(), src.data(), src.size());
}

IncrementalDecoder::IncrementalDecoder(std::size_t width)
    : width_(width), basis_(width), has_pivot_(width, false) {
  RC_ASSERT(width > 0);
}

bool IncrementalDecoder::add_row(CodedRow row) {
  RC_ASSERT(row.coeffs.size() == width_);
  ++rows_seen_;
  // Reduce against existing pivots until the row is zero or introduces a
  // new pivot.
  while (true) {
    const std::size_t lead = row.coeffs.lowest_set_bit();
    if (lead == width_) {
      ++redundant_rows_;
      return false;  // linearly dependent
    }
    if (!has_pivot_[lead]) {
      basis_[lead] = std::move(row);
      has_pivot_[lead] = true;
      ++rank_;
      solved_ = false;
      return true;
    }
    row.coeffs ^= basis_[lead].coeffs;
    xor_into(row.payload, basis_[lead].payload);
  }
}

void IncrementalDecoder::back_substitute() {
  RC_ASSERT_MSG(complete(), "decoder is not full rank yet");
  // Eliminate upwards so each basis row becomes a unit vector; the payload
  // of row c is then exactly packet c.
  for (std::size_t c = width_; c-- > 0;) {
    for (std::size_t r = 0; r < c; ++r) {
      if (basis_[r].coeffs.get(c)) {
        basis_[r].coeffs ^= basis_[c].coeffs;
        xor_into(basis_[r].payload, basis_[c].payload);
      }
    }
  }
  decoded_.clear();
  decoded_.reserve(width_);
  for (std::size_t c = 0; c < width_; ++c) {
    RC_ASSERT(basis_[c].coeffs.popcount() == 1 && basis_[c].coeffs.get(c));
    decoded_.push_back(basis_[c].payload);
  }
  solved_ = true;
}

const Payload& IncrementalDecoder::packet(std::size_t index) {
  RC_ASSERT(index < width_);
  if (!solved_) back_substitute();
  return decoded_[index];
}

const std::vector<Payload>& IncrementalDecoder::packets() {
  if (!solved_) back_substitute();
  return decoded_;
}

MaskRank::MaskRank(std::size_t width) : width_(width) {
  RC_ASSERT(width >= 1 && width <= 64);
}

bool MaskRank::add(std::uint64_t coeffs) {
  RC_ASSERT(width_ == 64 || (coeffs >> width_) == 0);
  // Same elimination order as IncrementalDecoder::add_row: reduce against
  // the basis row pivoted on the mask's lowest set bit until the mask is
  // empty (redundant) or lands on a free pivot (innovative).
  while (coeffs != 0) {
    const auto pivot = static_cast<std::size_t>(std::countr_zero(coeffs));
    if (basis_[pivot] == 0) {
      basis_[pivot] = coeffs;
      ++rank_;
      return true;
    }
    coeffs ^= basis_[pivot];
  }
  return false;
}

}  // namespace radiocast::gf2
