// Incremental Gaussian decoder over GF(2).
//
// Stage 4 of the paper has every receiver accumulate random XOR
// combinations of a group of w = ⌈log n⌉ packets until the coefficient
// matrix reaches full rank (Lemma 3 guarantees this after O(log n)
// receptions w.h.p.), then solve for the original packets. The decoder here
// performs that elimination online: every received row is reduced against
// the current basis in O(w) vector operations, so rank is always known and
// decoding finishes the moment the last pivot appears.
//
// Payloads ride along with the coefficient vectors: XORing two rows XORs
// both their coefficients and their payload bytes, which is exactly the
// field addition the paper uses (packets as elements of GF(2^b)).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gf2/bitvec.hpp"

namespace radiocast::gf2 {

/// Raw packet payload bytes.
using Payload = std::vector<std::uint8_t>;

/// XOR-accumulates `src` into `dst`. If `src` is longer than `dst`, `dst`
/// is zero-extended first (packets in one group may differ in size; XOR in
/// GF(2^b) pads with zeros).
void xor_into(Payload& dst, const Payload& src);

/// One received coded message: payload = XOR of the group's packets
/// selected by `coeffs`.
struct CodedRow {
  BitVec coeffs;
  Payload payload;
};

class IncrementalDecoder {
 public:
  /// Decoder for a group of `width` packets.
  explicit IncrementalDecoder(std::size_t width);

  std::size_t width() const { return width_; }

  /// Current rank of the received coefficient matrix.
  std::size_t rank() const { return rank_; }

  /// True once every packet of the group is recoverable.
  bool complete() const { return rank_ == width_; }

  /// Number of rows offered via add_row (including redundant ones).
  std::size_t rows_seen() const { return rows_seen_; }

  /// Number of rows that were linearly dependent on earlier rows.
  std::size_t redundant_rows() const { return redundant_rows_; }

  /// Feeds one coded message into the decoder. Returns true if the row
  /// increased the rank (was innovative).
  bool add_row(CodedRow row);

  /// Recovers packet `index` of the group. Must only be called when
  /// `complete()`; the first call performs back-substitution, subsequent
  /// calls are O(1) lookups.
  const Payload& packet(std::size_t index);

  /// Recovers all packets (requires `complete()`).
  const std::vector<Payload>& packets();

 private:
  void back_substitute();

  std::size_t width_;
  std::size_t rank_ = 0;
  std::size_t rows_seen_ = 0;
  std::size_t redundant_rows_ = 0;
  bool solved_ = false;
  /// basis_[c] holds the row whose lowest set coefficient is column c
  /// (or an empty coeff vector if that pivot has not been seen yet).
  std::vector<CodedRow> basis_;
  std::vector<bool> has_pivot_;
  std::vector<Payload> decoded_;
};

/// Payload-free rank tracker over GF(2) for groups of <= 64 packets,
/// with coefficient vectors packed into one uint64 (exactly the CodedMsg
/// wire format). Performs the same lowest-set-bit pivot elimination as
/// IncrementalDecoder, so fed with the same row stream it reaches
/// `complete()` in the same step — this is the decode-event tap the
/// telemetry layer (obs::PacketTracer) uses to timestamp rank-complete
/// events without duplicating payload arithmetic.
class MaskRank {
 public:
  /// Tracker for a group of `width` packets; 1 <= width <= 64.
  explicit MaskRank(std::size_t width);

  std::size_t width() const { return width_; }
  std::size_t rank() const { return rank_; }
  bool complete() const { return rank_ == width_; }

  /// Reduces one coefficient mask against the basis. Returns true iff the
  /// row was innovative (increased the rank). Bits >= width must be 0.
  bool add(std::uint64_t coeffs);

 private:
  std::size_t width_;
  std::size_t rank_ = 0;
  /// basis_[c] is the reduced row whose lowest set bit is c (0 = empty).
  std::array<std::uint64_t, 64> basis_{};
};

}  // namespace radiocast::gf2
