// Incremental Gaussian decoder over GF(2).
//
// Stage 4 of the paper has every receiver accumulate random XOR
// combinations of a group of w = ⌈log n⌉ packets until the coefficient
// matrix reaches full rank (Lemma 3 guarantees this after O(log n)
// receptions w.h.p.), then solve for the original packets. The decoder here
// performs that elimination online: every received row is reduced against
// the current basis, so rank is always known and decoding finishes the
// moment the last pivot appears.
//
// Payloads ride along with the coefficient vectors: XORing two rows XORs
// both their coefficients and their payload bytes, which is exactly the
// field addition the paper uses (packets as elements of GF(2^b)).
//
// Two basis representations, one elimination order:
//
//   * width <= 64 (every group the protocol's uint64 wire header can
//     express) — the PACKED fast path: coefficient vectors are single
//     uint64 masks, the basis is a flat mask array plus a flat payload
//     array, and rows enter through `add_row_packed` without ever
//     materializing a BitVec. Payload buffers move, never copy, and a
//     redundant row hands its (reduced) buffer back to the caller for
//     arena recycling.
//   * width > 64 — the BitVec fallback: the historical CodedRow basis.
//
// Both run the same lowest-set-bit pivot elimination; the packed path and
// the payload-free MaskRank tracker literally share it (`reduce_pivot_mask`
// below), so the two can never drift apart. `add_row` on a packed-width
// decoder forwards to the packed path and is byte-identical to the
// historical BitVec elimination (pinned by tests/gf2/coding_oracle_test).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gf2/bitvec.hpp"

namespace radiocast::gf2 {

/// Raw packet payload bytes.
using Payload = std::vector<std::uint8_t>;

/// XOR-accumulates `src` into `dst`. If `src` is longer than `dst`, `dst`
/// is zero-extended first (packets in one group may differ in size; XOR in
/// GF(2^b) pads with zeros).
void xor_into(Payload& dst, const Payload& src);

/// dst = a ^ b with the same zero-extension rule (dst sized to the longer
/// operand, shorter operand padded with zeros). Single fused pass over the
/// common prefix via gf2::xor_bytes_to.
void xor_payloads(Payload& dst, const Payload& a, const Payload& b);

/// One received coded message: payload = XOR of the group's packets
/// selected by `coeffs`.
struct CodedRow {
  BitVec coeffs;
  Payload payload;
};

/// Sentinel returned by reduce_pivot_mask for a linearly dependent row.
inline constexpr std::size_t kNoPivot = 64;

/// The shared lowest-set-bit pivot-elimination step: reduces `mask`
/// against `basis` (basis[c] = reduced row whose lowest set bit is c,
/// 0 = empty slot) until it is zero or lands on a free pivot. Calls
/// `absorb(p)` every time basis row p is XORed into the mask — the packed
/// IncrementalDecoder mirrors each absorption on the payload bytes, the
/// payload-free MaskRank passes a no-op — and writes the fully reduced
/// mask to `*reduced`. Returns the free pivot index (the caller stores
/// `*reduced` there), or kNoPivot if the row was linearly dependent.
///
/// MaskRank and IncrementalDecoder's packed path both call this exact
/// routine, so their notion of "innovative" can never diverge (the
/// lock-step property obs::PacketTracer's decode tap rests on).
template <typename Absorb>
inline std::size_t reduce_pivot_mask(std::uint64_t mask, const std::uint64_t* basis,
                                     Absorb&& absorb, std::uint64_t* reduced) {
  while (mask != 0) {
    const auto pivot = static_cast<std::size_t>(std::countr_zero(mask));
    if (basis[pivot] == 0) {
      *reduced = mask;
      return pivot;
    }
    mask ^= basis[pivot];
    absorb(pivot);
  }
  return kNoPivot;
}

class IncrementalDecoder {
 public:
  /// Decoder for a group of `width` packets.
  explicit IncrementalDecoder(std::size_t width);

  std::size_t width() const { return width_; }

  /// Current rank of the received coefficient matrix.
  std::size_t rank() const { return rank_; }

  /// True once every packet of the group is recoverable.
  bool complete() const { return rank_ == width_; }

  /// Number of rows offered via add_row (including redundant ones).
  std::size_t rows_seen() const { return rows_seen_; }

  /// Number of rows that were linearly dependent on earlier rows.
  std::size_t redundant_rows() const { return redundant_rows_; }

  /// Feeds one coded message into the decoder. Returns true if the row
  /// increased the rank (was innovative).
  bool add_row(CodedRow row);

  /// Packed fast path (width <= 64 only): feeds one row whose coefficients
  /// are the low `width` bits of `coeffs` (higher bits must be 0 — the
  /// CodedMsg wire format). On an innovative row the payload is reduced in
  /// place, then the buffer is MOVED into the basis and `payload` is left
  /// moved-from. On a redundant row — decided by a mask-only reduction, so
  /// no payload byte is ever touched — the buffer stays with the caller,
  /// untouched and capacity intact, for recycling into a PayloadArena.
  /// Counter accounting is identical to add_row.
  bool add_row_packed(std::uint64_t coeffs, Payload& payload);

  /// Recovers packet `index` of the group. Must only be called when
  /// `complete()`; the first call performs back-substitution, subsequent
  /// calls are O(1) lookups.
  const Payload& packet(std::size_t index);

  /// Recovers all packets (requires `complete()`).
  const std::vector<Payload>& packets();

  /// Moves the decoded payload buffers out (requires `complete()`),
  /// leaving the decoder drained: the caller keeps or recycles the
  /// buffers and must not call packet()/packets() afterwards. This is the
  /// allocation-free hand-off DisseminationState uses before resetting
  /// the decoder.
  std::vector<Payload> take_packets();

 private:
  bool packed() const { return width_ <= 64; }
  void back_substitute();
  /// Applies one reduction chain to `payload`: XORs in mask_payload_[p]
  /// for every set bit p of `absorbed`, pairwise via gf2::xor_accum2.
  void absorb_payloads(Payload& payload, std::uint64_t absorbed);

  std::size_t width_;
  std::size_t rank_ = 0;
  std::size_t rows_seen_ = 0;
  std::size_t redundant_rows_ = 0;
  bool solved_ = false;
  /// Packed basis (width <= 64): mask_basis_[c] is the reduced
  /// coefficient mask whose lowest set bit is c (0 = empty slot, valid
  /// because a stored row always contains its own pivot bit), and
  /// mask_payload_[c] the matching payload. Back-substitution recycles
  /// these buffers into decoded_ by move; the masks stay behind so
  /// late redundant rows still reduce correctly (their payload bytes are
  /// then meaningless, but redundancy is a mask-only fact and the buffer
  /// is discarded or recycled either way).
  std::vector<std::uint64_t> mask_basis_;
  std::vector<Payload> mask_payload_;
  /// BitVec fallback basis (width > 64): basis_[c] holds the row whose
  /// lowest set coefficient is column c.
  std::vector<CodedRow> basis_;
  std::vector<bool> has_pivot_;
  std::vector<Payload> decoded_;
};

/// Payload-free rank tracker over GF(2) for groups of <= 64 packets,
/// with coefficient vectors packed into one uint64 (exactly the CodedMsg
/// wire format). Runs the same reduce_pivot_mask elimination as
/// IncrementalDecoder's packed path, so fed with the same row stream it
/// reaches `complete()` in the same step — this is the decode-event tap
/// the telemetry layer (obs::PacketTracer) uses to timestamp
/// rank-complete events without duplicating payload arithmetic.
class MaskRank {
 public:
  /// Tracker for a group of `width` packets; 1 <= width <= 64.
  explicit MaskRank(std::size_t width);

  std::size_t width() const { return width_; }
  std::size_t rank() const { return rank_; }
  bool complete() const { return rank_ == width_; }

  /// Reduces one coefficient mask against the basis. Returns true iff the
  /// row was innovative (increased the rank). Bits >= width must be 0.
  bool add(std::uint64_t coeffs);

 private:
  std::size_t width_;
  std::size_t rank_ = 0;
  /// basis_[c] is the reduced row whose lowest set bit is c (0 = empty).
  std::array<std::uint64_t, 64> basis_{};
};

}  // namespace radiocast::gf2
