#include "gf2/simd.hpp"

#include <cstring>

// The AVX2 path is compiled only when the build opts in
// (RADIOCAST_ENABLE_AVX2, set by CMake on x86-64) AND the compiler supports
// per-function target attributes. It is selected at runtime with
// __builtin_cpu_supports, so one binary runs correctly on any x86-64 CPU.
#if defined(RADIOCAST_ENABLE_AVX2) && defined(__x86_64__) && defined(__GNUC__)
#define RADIOCAST_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define RADIOCAST_HAVE_AVX2_KERNEL 0
#endif

namespace radiocast::gf2 {
namespace {

// Portable kernel: 4x8-byte unrolled, memcpy word access (alignment-safe,
// no strict-aliasing traps). Compilers auto-vectorise this loop with the
// baseline ISA; the explicit unroll keeps the scalar fallback respectable
// even at -O1.
void xor_bytes_portable(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t a0, a1, a2, a3;
    std::uint64_t b0, b1, b2, b3;
    std::memcpy(&a0, dst + i, 8);
    std::memcpy(&a1, dst + i + 8, 8);
    std::memcpy(&a2, dst + i + 16, 8);
    std::memcpy(&a3, dst + i + 24, 8);
    std::memcpy(&b0, src + i, 8);
    std::memcpy(&b1, src + i + 8, 8);
    std::memcpy(&b2, src + i + 16, 8);
    std::memcpy(&b3, src + i + 24, 8);
    a0 ^= b0;
    a1 ^= b1;
    a2 ^= b2;
    a3 ^= b3;
    std::memcpy(dst + i, &a0, 8);
    std::memcpy(dst + i + 8, &a1, 8);
    std::memcpy(dst + i + 16, &a2, 8);
    std::memcpy(dst + i + 24, &a3, 8);
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

#if RADIOCAST_HAVE_AVX2_KERNEL
__attribute__((target("avx2"))) void xor_bytes_avx2(std::uint8_t* dst, const std::uint8_t* src,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), _mm256_xor_si256(a1, b1));
  }
  for (; i + 32 <= n; i += 32) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(a, b));
  }
  xor_bytes_portable(dst + i, src + i, n - i);
}
#endif

using XorFn = void (*)(std::uint8_t*, const std::uint8_t*, std::size_t);

struct Dispatch {
  XorFn fn;
  const char* name;
};

Dispatch resolve() {
#if RADIOCAST_HAVE_AVX2_KERNEL
  if (__builtin_cpu_supports("avx2")) return {&xor_bytes_avx2, "avx2"};
#endif
  return {&xor_bytes_portable, "portable"};
}

const Dispatch& dispatch() {
  static const Dispatch d = resolve();
  return d;
}

}  // namespace

void xor_bytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  dispatch().fn(dst, src, n);
}

const char* simd_kernel_name() { return dispatch().name; }

}  // namespace radiocast::gf2
