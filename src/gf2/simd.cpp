#include "gf2/simd.hpp"

#include <cstring>

// The AVX2 path is compiled only when the build opts in
// (RADIOCAST_ENABLE_AVX2, set by CMake on x86-64) AND the compiler supports
// per-function target attributes. It is selected at runtime with
// __builtin_cpu_supports, so one binary runs correctly on any x86-64 CPU.
#if defined(RADIOCAST_ENABLE_AVX2) && defined(__x86_64__) && defined(__GNUC__)
#define RADIOCAST_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define RADIOCAST_HAVE_AVX2_KERNEL 0
#endif

namespace radiocast::gf2 {
namespace {

// Portable kernel: 4x8-byte unrolled, memcpy word access (alignment-safe,
// no strict-aliasing traps). Compilers auto-vectorise this loop with the
// baseline ISA; the explicit unroll keeps the scalar fallback respectable
// even at -O1.
void xor_bytes_portable(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t a0, a1, a2, a3;
    std::uint64_t b0, b1, b2, b3;
    std::memcpy(&a0, dst + i, 8);
    std::memcpy(&a1, dst + i + 8, 8);
    std::memcpy(&a2, dst + i + 16, 8);
    std::memcpy(&a3, dst + i + 24, 8);
    std::memcpy(&b0, src + i, 8);
    std::memcpy(&b1, src + i + 8, 8);
    std::memcpy(&b2, src + i + 16, 8);
    std::memcpy(&b3, src + i + 24, 8);
    a0 ^= b0;
    a1 ^= b1;
    a2 ^= b2;
    a3 ^= b3;
    std::memcpy(dst + i, &a0, 8);
    std::memcpy(dst + i + 8, &a1, 8);
    std::memcpy(dst + i + 16, &a2, 8);
    std::memcpy(dst + i + 24, &a3, 8);
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void xor_bytes_to_portable(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t a0, a1, a2, a3;
    std::uint64_t b0, b1, b2, b3;
    std::memcpy(&a0, a + i, 8);
    std::memcpy(&a1, a + i + 8, 8);
    std::memcpy(&a2, a + i + 16, 8);
    std::memcpy(&a3, a + i + 24, 8);
    std::memcpy(&b0, b + i, 8);
    std::memcpy(&b1, b + i + 8, 8);
    std::memcpy(&b2, b + i + 16, 8);
    std::memcpy(&b3, b + i + 24, 8);
    a0 ^= b0;
    a1 ^= b1;
    a2 ^= b2;
    a3 ^= b3;
    std::memcpy(dst + i, &a0, 8);
    std::memcpy(dst + i + 8, &a1, 8);
    std::memcpy(dst + i + 16, &a2, 8);
    std::memcpy(dst + i + 24, &a3, 8);
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t x, y;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    x ^= y;
    std::memcpy(dst + i, &x, 8);
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
}

void xor_accum2_portable(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t d0, d1, d2, d3;
    std::uint64_t a0, a1, a2, a3;
    std::uint64_t b0, b1, b2, b3;
    std::memcpy(&d0, dst + i, 8);
    std::memcpy(&d1, dst + i + 8, 8);
    std::memcpy(&d2, dst + i + 16, 8);
    std::memcpy(&d3, dst + i + 24, 8);
    std::memcpy(&a0, a + i, 8);
    std::memcpy(&a1, a + i + 8, 8);
    std::memcpy(&a2, a + i + 16, 8);
    std::memcpy(&a3, a + i + 24, 8);
    std::memcpy(&b0, b + i, 8);
    std::memcpy(&b1, b + i + 8, 8);
    std::memcpy(&b2, b + i + 16, 8);
    std::memcpy(&b3, b + i + 24, 8);
    d0 ^= a0 ^ b0;
    d1 ^= a1 ^ b1;
    d2 ^= a2 ^ b2;
    d3 ^= a3 ^ b3;
    std::memcpy(dst + i, &d0, 8);
    std::memcpy(dst + i + 8, &d1, 8);
    std::memcpy(dst + i + 16, &d2, 8);
    std::memcpy(dst + i + 24, &d3, 8);
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t d, x, y;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    d ^= x ^ y;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(dst[i] ^ a[i] ^ b[i]);
}

void xor_accum4_portable(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                         const std::uint8_t* c, const std::uint8_t* d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    std::uint64_t d0, d1, a0, a1, b0, b1, c0, c1, e0, e1;
    std::memcpy(&d0, dst + i, 8);
    std::memcpy(&d1, dst + i + 8, 8);
    std::memcpy(&a0, a + i, 8);
    std::memcpy(&a1, a + i + 8, 8);
    std::memcpy(&b0, b + i, 8);
    std::memcpy(&b1, b + i + 8, 8);
    std::memcpy(&c0, c + i, 8);
    std::memcpy(&c1, c + i + 8, 8);
    std::memcpy(&e0, d + i, 8);
    std::memcpy(&e1, d + i + 8, 8);
    d0 ^= (a0 ^ b0) ^ (c0 ^ e0);
    d1 ^= (a1 ^ b1) ^ (c1 ^ e1);
    std::memcpy(dst + i, &d0, 8);
    std::memcpy(dst + i + 8, &d1, 8);
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ a[i] ^ b[i] ^ c[i] ^ d[i]);
  }
}

#if RADIOCAST_HAVE_AVX2_KERNEL
__attribute__((target("avx2"))) void xor_bytes_to_avx2(std::uint8_t* dst, const std::uint8_t* a,
                                                       const std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 32));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), _mm256_xor_si256(a1, b1));
  }
  for (; i + 32 <= n; i += 32) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(x, y));
  }
  xor_bytes_to_portable(dst + i, a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void xor_bytes_avx2(std::uint8_t* dst, const std::uint8_t* src,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), _mm256_xor_si256(a1, b1));
  }
  for (; i + 32 <= n; i += 32) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(a, b));
  }
  xor_bytes_portable(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) void xor_accum2_avx2(std::uint8_t* dst, const std::uint8_t* a,
                                                     const std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 32));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, _mm256_xor_si256(a0, b0)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, _mm256_xor_si256(a1, b1)));
  }
  for (; i + 32 <= n; i += 32) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(x, y)));
  }
  xor_accum2_portable(dst + i, a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void xor_accum4_avx2(std::uint8_t* dst, const std::uint8_t* a,
                                                     const std::uint8_t* b,
                                                     const std::uint8_t* c,
                                                     const std::uint8_t* d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i vc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    acc = _mm256_xor_si256(acc, _mm256_xor_si256(_mm256_xor_si256(va, vb),
                                                 _mm256_xor_si256(vc, vd)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  xor_accum4_portable(dst + i, a + i, b + i, c + i, d + i, n - i);
}
#endif

using XorFn = void (*)(std::uint8_t*, const std::uint8_t*, std::size_t);
using XorToFn = void (*)(std::uint8_t*, const std::uint8_t*, const std::uint8_t*, std::size_t);
using XorAccum4Fn = void (*)(std::uint8_t*, const std::uint8_t*, const std::uint8_t*,
                             const std::uint8_t*, const std::uint8_t*, std::size_t);

struct Dispatch {
  XorFn fn;
  XorToFn to_fn;
  XorToFn accum2_fn;
  XorAccum4Fn accum4_fn;
  const char* name;
};

Dispatch resolve() {
#if RADIOCAST_HAVE_AVX2_KERNEL
  if (__builtin_cpu_supports("avx2")) {
    return {&xor_bytes_avx2, &xor_bytes_to_avx2, &xor_accum2_avx2, &xor_accum4_avx2, "avx2"};
  }
#endif
  return {&xor_bytes_portable, &xor_bytes_to_portable, &xor_accum2_portable,
          &xor_accum4_portable, "portable"};
}

const Dispatch& dispatch() {
  static const Dispatch d = resolve();
  return d;
}

}  // namespace

void xor_bytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  dispatch().fn(dst, src, n);
}

void xor_bytes_to(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                  std::size_t n) {
  dispatch().to_fn(dst, a, b, n);
}

void xor_accum2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::size_t n) {
  dispatch().accum2_fn(dst, a, b, n);
}

void xor_accum4(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                const std::uint8_t* c, const std::uint8_t* d, std::size_t n) {
  dispatch().accum4_fn(dst, a, b, c, d, n);
}

const char* simd_kernel_name() { return dispatch().name; }

}  // namespace radiocast::gf2
