// Dense matrices over GF(2), stored as rows of BitVec.
//
// Used to validate the paper's Lemma 3 (a random l x w binary matrix has
// full column rank w.h.p. once l >= 2(w+2) + 8 ln(1/eps)) and as the batch
// reference implementation against which the incremental decoder in
// solver.hpp is tested.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "gf2/bitvec.hpp"

namespace radiocast::gf2 {

class Matrix {
 public:
  Matrix() = default;
  /// Zero matrix with `rows` x `cols` entries.
  Matrix(std::size_t rows, std::size_t cols);

  /// Matrix with iid uniform {0,1} entries.
  static Matrix random(std::size_t rows, std::size_t cols, Rng& rng);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return cols_; }

  const BitVec& row(std::size_t r) const {
    RC_DCHECK(r < rows_.size());
    return rows_[r];
  }
  BitVec& row(std::size_t r) {
    RC_DCHECK(r < rows_.size());
    return rows_[r];
  }

  bool get(std::size_t r, std::size_t c) const { return row(r).get(c); }
  void set(std::size_t r, std::size_t c, bool v) { row(r).set(c, v); }

  /// Appends a row (must have `cols()` bits; sets the width if empty).
  void append_row(BitVec row);

  /// Rank by Gaussian elimination on a copy.
  std::size_t rank() const;

  /// True iff the matrix has full column rank (rank == cols).
  bool full_column_rank() const { return rank() == cols_; }

  /// Matrix-vector product over GF(2): returns A*x where x has cols() bits
  /// and the result has rows() bits.
  BitVec multiply(const BitVec& x) const;

  /// Solves A*x = b over GF(2) for x (b has rows() bits). Returns
  /// std::nullopt when the system is inconsistent; when the system is
  /// under-determined an arbitrary solution (free variables = 0) is
  /// returned.
  std::optional<BitVec> solve(const BitVec& b) const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t cols_ = 0;
  std::vector<BitVec> rows_;
};

}  // namespace radiocast::gf2
