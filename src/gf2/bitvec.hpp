// Bit-packed vectors over GF(2).
//
// The network-coding layer (Stage 4 of the paper) represents coefficient
// vectors of coded packets as elements of GF(2)^w with w = ⌈log n⌉. BitVec
// is a small dynamic bitset with the algebraic operations the decoder needs
// (XOR-accumulate, leading-bit queries) plus random sampling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "gf2/simd.hpp"

namespace radiocast::gf2 {

class BitVec {
 public:
  BitVec() = default;
  /// A zero vector of `size` bits.
  explicit BitVec(std::size_t size) : size_(size), words_(word_count(size), 0) {}

  /// Builds a vector from a list of set-bit positions.
  static BitVec from_bits(std::size_t size, const std::vector<std::size_t>& ones);

  /// Uniformly random vector: each bit set independently with probability 1/2.
  static BitVec random(std::size_t size, Rng& rng);

  /// Random vector where each bit is set with probability `p`.
  static BitVec bernoulli(std::size_t size, double p, Rng& rng);

  /// Unit vector e_i.
  static BitVec unit(std::size_t size, std::size_t i);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const {
    RC_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i, bool value) {
    RC_DCHECK(i < size_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void flip(std::size_t i) {
    RC_DCHECK(i < size_);
    words_[i >> 6] ^= 1ULL << (i & 63);
  }

  /// The 4-bit window [4i, 4i+4) as a value in [0, 16) — the table
  /// encoder's chunk selector (4 divides 64, so a nibble never straddles
  /// words; bits past size() read as 0 thanks to trim()).
  std::uint32_t nibble(std::size_t i) const {
    RC_DCHECK(i * 4 < size_);
    return static_cast<std::uint32_t>((words_[(i * 4) >> 6] >> ((i * 4) & 63)) & 0xfu);
  }

  /// In-place XOR (addition in GF(2)^size). Sizes must match.
  BitVec& operator^=(const BitVec& other);
  friend BitVec operator^(BitVec lhs, const BitVec& rhs) {
    lhs ^= rhs;
    return lhs;
  }

  /// In-place AND. Sizes must match. Short-circuits on trailing zero words:
  /// only words up to the shorter of the two operands' highest nonzero word
  /// are combined; the rest are cleared without reading `other`.
  BitVec& operator&=(const BitVec& other);
  friend BitVec operator&(BitVec lhs, const BitVec& rhs) {
    lhs &= rhs;
    return lhs;
  }

  bool operator==(const BitVec& other) const = default;

  /// True iff all bits are zero.
  bool is_zero() const;

  /// Number of set bits. Short-circuits on trailing zero words (common for
  /// sparse transmit sets whose population lives in a prefix of the words).
  std::size_t popcount() const;

  /// The index of the single set bit iff exactly one bit is set, otherwise
  /// nullopt. Used by the reception sweep's exactly-one-transmitter
  /// detector; early-exits on the first word with two hits.
  std::optional<std::size_t> find_single_bit() const;

  /// Index of the lowest set bit, or `size()` if the vector is zero.
  std::size_t lowest_set_bit() const;

  /// Index of the highest set bit, or `size()` if the vector is zero.
  std::size_t highest_set_bit() const;

  /// Positions of all set bits, ascending.
  std::vector<std::size_t> ones() const;

  /// Dot product over GF(2) (parity of AND). Sizes must match.
  bool dot(const BitVec& other) const;

  /// The low min(size, 64) bits packed into a word — used for compact
  /// message headers (the paper's ⌈log n⌉-bit coefficient header, which by
  /// assumption fits a machine word for any feasible simulation size).
  std::uint64_t to_word() const;

  /// Inverse of `to_word`: builds a vector of `size` bits (size <= 64).
  static BitVec from_word(std::size_t size, std::uint64_t word);

  /// "0101..." rendering, bit 0 first.
  std::string to_string() const;

  // --- word-span view -------------------------------------------------
  //
  // The bit-parallel round engine operates on BitVecs as raw uint64_t
  // arrays (AND/popcount sweeps over CSR rows). The span accessors expose
  // the packed words directly; callers that write through the mutable
  // span must call clear_excess_bits() before handing the vector back to
  // bit-level code, since bits past size() in the last word are otherwise
  // unspecified.

  /// Number of 64-bit words backing the vector (= ceil(size/64)).
  std::size_t num_words() const { return words_.size(); }

  /// The packed words, bit i of the vector at words()[i/64] >> (i%64).
  /// Storage is 64-byte aligned.
  std::span<std::uint64_t> words() { return {words_.data(), words_.size()}; }
  std::span<const std::uint64_t> words() const { return {words_.data(), words_.size()}; }

  /// Grows or shrinks to `bits`, zero-filling new bits and masking any
  /// now-out-of-range tail bits.
  void resize(std::size_t bits);

  /// Clears any bits beyond size() in the last word. Required after word-
  /// level writes through words() so ==, popcount, and ones stay honest.
  void clear_excess_bits() { trim(); }

  static std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }

 private:
  /// Clears any bits beyond `size_` in the last word (keeps == and
  /// popcount honest after word-level operations).
  void trim();

  std::size_t size_ = 0;
  std::vector<std::uint64_t, AlignedAlloc<std::uint64_t>> words_;
};

}  // namespace radiocast::gf2
