#include "gf2/coding.hpp"

#include <utility>

#include "common/assert.hpp"

namespace radiocast::gf2 {

GroupEncoder::GroupEncoder(std::vector<Payload> packets)
    : packets_(std::move(packets)) {
  RC_ASSERT(!packets_.empty());
}

CodedRow GroupEncoder::encode(const BitVec& coeffs) const {
  CodedRow row;
  row.coeffs = coeffs;
  encode_into(coeffs, row.payload);
  return row;
}

void GroupEncoder::encode_into(const BitVec& coeffs, Payload& out) const {
  RC_ASSERT(coeffs.size() == packets_.size());
  out.clear();
  for (std::size_t i = 0; i < packets_.size(); ++i) {
    if (coeffs.get(i)) xor_into(out, packets_[i]);
  }
}

CodedRow GroupEncoder::encode_random(Rng& rng) const {
  return encode(BitVec::random(packets_.size(), rng));
}

bool decodes_to(std::size_t width, const std::vector<CodedRow>& rows,
                const std::vector<Payload>& expected) {
  RC_ASSERT(expected.size() == width);
  IncrementalDecoder decoder(width);
  for (const CodedRow& row : rows) decoder.add_row(row);
  if (!decoder.complete()) return false;
  for (std::size_t i = 0; i < width; ++i) {
    // Compare modulo trailing zero padding: XOR arithmetic may have grown
    // payloads to the group's max size.
    const Payload& got = decoder.packet(i);
    const Payload& want = expected[i];
    const std::size_t common = std::min(got.size(), want.size());
    for (std::size_t b = 0; b < common; ++b) {
      if (got[b] != want[b]) return false;
    }
    for (std::size_t b = common; b < got.size(); ++b) {
      if (got[b] != 0) return false;
    }
    for (std::size_t b = common; b < want.size(); ++b) {
      if (want[b] != 0) return false;
    }
  }
  return true;
}

}  // namespace radiocast::gf2
