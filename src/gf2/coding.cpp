#include "gf2/coding.hpp"

#include <bit>
#include <utility>

#include "common/assert.hpp"

namespace radiocast::gf2 {

GroupEncoder::GroupEncoder(std::vector<Payload> packets)
    : packets_(std::move(packets)) {
  RC_ASSERT(!packets_.empty());
  build_table();
}

void GroupEncoder::build_table() {
  const std::size_t w = packets_.size();
  const std::size_t chunks = (w + 3) / 4;
  table_.assign(chunks * 15, Payload{});
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t base = 4 * c;
    const std::size_t span = std::min<std::size_t>(4, w - base);
    for (std::uint32_t m = 1; m < (1u << span); ++m) {
      Payload& dst = table_[c * 15 + m - 1];
      const auto bit = static_cast<std::size_t>(std::countr_zero(m));
      const Payload& add = packets_[base + bit];
      const std::uint32_t rest = m & (m - 1);  // m without its lowest bit
      if (rest == 0) {
        dst = add;
      } else {
        // dst = entry(rest) ^ add in one fused pass (already built:
        // popcount(rest) < popcount(m) and masks fill in mask order).
        xor_payloads(dst, entry(c, rest), add);
      }
    }
  }
}

CodedRow GroupEncoder::encode(const BitVec& coeffs) const {
  CodedRow row;
  row.coeffs = coeffs;
  encode_into(coeffs, row.payload);
  return row;
}

void GroupEncoder::encode_into(const BitVec& coeffs, Payload& out) const {
  RC_ASSERT(coeffs.size() == packets_.size());
  if (packets_.size() <= 64) {
    encode_word_into(coeffs.to_word(), out);
    return;
  }
  out.clear();
  const std::size_t nibbles = (packets_.size() + 3) / 4;
  bool first = true;
  for (std::size_t c = 0; c < nibbles; ++c) {
    const std::uint32_t nib = coeffs.nibble(c);
    if (nib == 0) continue;
    const Payload& e = entry(c, nib);
    if (first) {
      out.assign(e.begin(), e.end());
      first = false;
    } else {
      xor_into(out, e);
    }
  }
}

void GroupEncoder::encode_word_into(std::uint64_t coeffs, Payload& out) const {
  RC_ASSERT(packets_.size() <= 64);
  RC_ASSERT(packets_.size() == 64 || (coeffs >> packets_.size()) == 0);
  out.clear();
  bool first = true;
  for (std::size_t c = 0; coeffs != 0; ++c, coeffs >>= 4) {
    const auto nib = static_cast<std::uint32_t>(coeffs & 0xf);
    if (nib == 0) continue;
    const Payload& e = entry(c, nib);
    if (first) {
      // XOR into an empty accumulator is a copy; assign() reuses `out`'s
      // recycled capacity and skips the zero-extension pass.
      out.assign(e.begin(), e.end());
      first = false;
    } else {
      xor_into(out, e);
    }
  }
}

CodedRow GroupEncoder::encode_random(Rng& rng) const {
  return encode(BitVec::random(packets_.size(), rng));
}

std::uint64_t GroupEncoder::encode_random_word_into(Rng& rng, Payload& out) const {
  const std::size_t w = packets_.size();
  RC_ASSERT(w <= 64);
  // One rng() draw masked to w bits — exactly what BitVec::random(w, rng)
  // does for a one-word vector (draw, then trim), so the stream position
  // and the drawn subset are identical to the encode_random path.
  const std::uint64_t coeffs = rng() & (w == 64 ? ~0ULL : (1ULL << w) - 1);
  encode_word_into(coeffs, out);
  return coeffs;
}

bool decodes_to(std::size_t width, const std::vector<CodedRow>& rows,
                const std::vector<Payload>& expected) {
  RC_ASSERT(expected.size() == width);
  IncrementalDecoder decoder(width);
  for (const CodedRow& row : rows) decoder.add_row(row);
  if (!decoder.complete()) return false;
  for (std::size_t i = 0; i < width; ++i) {
    // Compare modulo trailing zero padding: XOR arithmetic may have grown
    // payloads to the group's max size.
    const Payload& got = decoder.packet(i);
    const Payload& want = expected[i];
    const std::size_t common = std::min(got.size(), want.size());
    for (std::size_t b = 0; b < common; ++b) {
      if (got[b] != want[b]) return false;
    }
    for (std::size_t b = common; b < got.size(); ++b) {
      if (got[b] != 0) return false;
    }
    for (std::size_t b = common; b < want.size(); ++b) {
      if (want[b] != 0) return false;
    }
  }
  return true;
}

}  // namespace radiocast::gf2
