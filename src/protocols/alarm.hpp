// One-bit alarm windows (the paper's ALARM sub-routine and the probe
// primitive of leader election).
//
// An alarm window is a multi-source BGI flood of the single-bit AlarmMsg:
// any number of sources arm the window; at the window's end every node
// knows — w.h.p. — whether at least one source armed it. Silence is
// indistinguishable from "no source", which is precisely the emulated
// collision-detection semantics the paper borrows from [3]: the channel
// answer is "someone signalled" vs "nobody signalled".
#pragma once

#include <cstdint>
#include <optional>

#include "protocols/bgi_broadcast.hpp"

namespace radiocast::protocols {

class AlarmWindow {
 public:
  AlarmWindow(std::uint32_t decay_epoch_length, Rng* rng)
      : flood_(decay_epoch_length, rng) {}

  /// Starts a fresh window; `armed` marks this node as a source.
  void reset(bool armed) {
    armed_ = armed;
    flood_.reset(armed ? std::optional<radio::MessageBody>(radio::AlarmMsg{})
                       : std::nullopt);
  }

  /// Transmit decision at a round relative to the window start.
  std::optional<radio::MessageBody> on_transmit(std::uint64_t rel_round) {
    return flood_.on_transmit(rel_round);
  }

  /// Feeds any received message; non-alarm bodies are ignored.
  void on_receive(const radio::MessageBody& body) {
    if (std::holds_alternative<radio::AlarmMsg>(body)) flood_.on_receive(body);
  }

  /// This node armed the current window itself.
  bool armed() const { return armed_; }
  /// An alarm reached this node by radio in the current window.
  bool heard() const { return flood_.received(); }
  /// The window's outcome from this node's perspective: it knows the alarm
  /// is up either because it armed it or because it heard it.
  bool positive() const { return armed_ || heard(); }

 private:
  BgiFlood flood_;
  bool armed_ = false;
};

/// Rounds in one alarm window given the number of Decay epochs.
inline std::uint64_t alarm_window_rounds(const radio::Knowledge& know,
                                         std::uint32_t epochs) {
  return static_cast<std::uint64_t>(epochs) * know.log_delta();
}

}  // namespace radiocast::protocols
