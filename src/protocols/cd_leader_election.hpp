// Leader election with NATIVE collision detection on a single-hop channel
// — the idealized primitive the paper's Stage 1 emulates.
//
// On a single-hop radio channel with collision detection, the classic
// deterministic binary search elects the maximum id in exactly
// ⌈log₂ N⌉ rounds: in each probe the candidates in the upper half of the
// current interval transmit, and every station classifies the round as
// "signal" (reception OR collision OR own transmission) or "silence".
//
// The paper's model has no collision detection and is multi-hop, so Stage
// 1 emulates each probe with a Θ((D+log n)·logΔ)-round one-bit flood (Fact
// 1). This protocol exists to *measure* that emulation overhead
// (bench_cd_ablation): it is only correct on single-hop topologies
// (complete graphs) with Network::enable_collision_detection(true).
#pragma once

#include <cstdint>
#include <optional>

#include "common/math_util.hpp"
#include "radio/knowledge.hpp"
#include "radio/node.hpp"

namespace radiocast::protocols {

class CdLeaderElectionNode final : public radio::NodeProtocol {
 public:
  CdLeaderElectionNode(const radio::Knowledge& know, radio::NodeId self,
                       bool participant)
      : self_(self), participant_(participant) {
    const std::uint64_t space = next_pow2(know.n_hat);
    probes_ = std::max<std::uint32_t>(1, ceil_log2(space));
    hi_ = space;
  }

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    finish_probe(round);  // fold in the previous round's channel outcome
    if (finished()) return std::nullopt;
    probe_round_ = round;
    const std::uint64_t mid = (lo_ + hi_) / 2;
    transmitted_ = participant_ && self_ >= mid;
    heard_ = false;
    armed_probe_ = true;
    if (transmitted_) return radio::MessageBody{radio::AlarmMsg{}};
    return std::nullopt;
  }

  void on_receive(radio::Round round, const radio::Message&) override {
    if (armed_probe_ && round == probe_round_) heard_ = true;
  }

  void on_collision(radio::Round round) override {
    // Collision = at least two candidates — still a "signal".
    if (armed_probe_ && round == probe_round_) heard_ = true;
  }

  bool done() const override { return finished(); }
  bool finished() const { return current_probe_ >= probes_; }

  /// Total rounds the election needs.
  std::uint32_t total_rounds() const { return probes_; }

  /// Valid once finished (all nodes on the single-hop channel agree).
  radio::NodeId leader_id() const { return static_cast<radio::NodeId>(lo_); }
  bool is_leader() const { return participant_ && finished() && leader_id() == self_; }

  /// Folds in the final probe once the schedule has moved past it.
  void finalize(radio::Round now) { finish_probe(now); }

 private:
  void finish_probe(radio::Round round) {
    if (!armed_probe_ || round <= probe_round_ || finished()) return;
    armed_probe_ = false;
    const std::uint64_t mid = (lo_ + hi_) / 2;
    if (transmitted_ || heard_) {
      lo_ = mid;
    } else {
      hi_ = mid;
    }
    ++current_probe_;
  }

  radio::NodeId self_;
  bool participant_;
  std::uint32_t probes_ = 1;
  std::uint32_t current_probe_ = 0;
  std::uint64_t lo_ = 0;
  std::uint64_t hi_ = 2;
  bool armed_probe_ = false;
  radio::Round probe_round_ = 0;
  bool transmitted_ = false;
  bool heard_ = false;
};

}  // namespace radiocast::protocols
