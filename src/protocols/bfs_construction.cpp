#include "protocols/bfs_construction.hpp"

namespace radiocast::protocols {

BfsBuildState::BfsBuildState(const Config& cfg, radio::NodeId self, bool is_root,
                             Rng* rng)
    : cfg_(cfg),
      self_(self),
      rng_(rng),
      decay_(cfg.know.log_delta()),
      parent_(self) {
  RC_ASSERT(rng != nullptr);
  RC_ASSERT(cfg.epochs_per_phase >= 1);
  phase_rounds_ =
      static_cast<std::uint64_t>(cfg.epochs_per_phase) * cfg_.know.log_delta();
  phases_ = cfg.know.d_hat + cfg.extra_phases;
  total_rounds_ = phases_ * phase_rounds_;
  if (is_root) dist_ = 0;
}

std::optional<radio::MessageBody> BfsBuildState::on_transmit(std::uint64_t rel_round) {
  if (!dist_.has_value() || rel_round >= total_rounds_) return std::nullopt;
  const std::uint64_t phase = rel_round / phase_rounds_;
  // In phase d, exactly the distance-d layer transmits.
  if (phase != *dist_) return std::nullopt;
  if (!decay_.decide(rel_round, *rng_)) return std::nullopt;
  return radio::BfsConstructMsg{self_, *dist_};
}

void BfsBuildState::on_receive(std::uint64_t /*rel_round*/, const radio::Message& msg) {
  if (dist_.has_value()) return;  // first construction message wins
  const auto* construct = std::get_if<radio::BfsConstructMsg>(&msg.body);
  if (construct == nullptr) return;
  dist_ = construct->dist + 1;
  parent_ = construct->id;
}

}  // namespace radiocast::protocols
