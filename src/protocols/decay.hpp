// The Decay transmission pacer (Bar-Yehuda, Goldreich, Itai 1992).
//
// Decay resolves contention among an unknown number (<= Δ) of co-located
// transmitters without collision detection: an epoch consists of
// ⌈log Δ⌉ rounds and in round s (1-based) every active node transmits
// independently with probability 2^-s. For any receiver with between 1 and
// Δ transmitting neighbors, some round of the epoch has success probability
// bounded below by a constant — the workhorse fact behind BGI broadcast,
// the paper's BFS construction, and the FORWARD sub-routine (whose
// probability sequence p_s = 1/2, 1/4, ..., 2^-⌈logΔ⌉ this module
// implements verbatim).
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace radiocast::protocols {

class Decay {
 public:
  /// An epoch has `epoch_length` rounds (the protocol stack passes
  /// ⌈log Δ̂⌉; must be >= 1).
  explicit Decay(std::uint32_t epoch_length) : epoch_length_(epoch_length) {
    RC_ASSERT(epoch_length >= 1);
  }

  std::uint32_t epoch_length() const { return epoch_length_; }

  /// Transmission probability for the round at offset `rel_round` from the
  /// start of the epoch grid: 2^-(s+1) where s = rel_round mod epoch_length.
  double probability(std::uint64_t rel_round) const {
    const auto s = static_cast<std::uint32_t>(rel_round % epoch_length_);
    return 1.0 / static_cast<double>(1ULL << (s + 1));
  }

  /// Draws the transmit decision for `rel_round` (relative to the epoch
  /// grid shared by all participants).
  bool decide(std::uint64_t rel_round, Rng& rng) const {
    return rng.next_bool(probability(rel_round));
  }

  /// Index of the epoch containing `rel_round`.
  std::uint64_t epoch_of(std::uint64_t rel_round) const {
    return rel_round / epoch_length_;
  }

 private:
  std::uint32_t epoch_length_;
};

/// The original Bar-Yehuda–Goldreich–Itai formulation of Decay: at the
/// start of each epoch a node draws a geometric "time to live"
/// G ∈ {1..epoch_length} (stop after each round with probability 1/2) and
/// transmits in the first G rounds of the epoch. Marginal per-round
/// transmission probabilities are 1, 1/2, 1/4, … (the independent version
/// uses 1/2, 1/4, …) and a node's rounds within an epoch are positively
/// correlated.
///
/// Both formulations give a receiver constant per-epoch success
/// probability; the library uses the independent version (what the paper's
/// FORWARD spells out) and keeps this one for the E9 ablation comparing
/// the two.
class PersistentDecay {
 public:
  explicit PersistentDecay(std::uint32_t epoch_length)
      : epoch_length_(epoch_length) {
    RC_ASSERT(epoch_length >= 1);
  }

  std::uint32_t epoch_length() const { return epoch_length_; }

  /// Transmit decision for `rel_round` on the shared epoch grid. The
  /// per-epoch TTL is drawn lazily on the first round of each epoch, so
  /// the caller must drive consecutive rounds of an epoch with the same
  /// object (skipping whole epochs is fine).
  bool decide(std::uint64_t rel_round, Rng& rng) {
    const std::uint64_t epoch = rel_round / epoch_length_;
    if (epoch != current_epoch_) {
      current_epoch_ = epoch;
      ttl_ = 1;
      while (ttl_ < epoch_length_ && rng.next_bit()) ++ttl_;
    }
    return (rel_round % epoch_length_) < ttl_;
  }

 private:
  std::uint32_t epoch_length_;
  std::uint64_t current_epoch_ = static_cast<std::uint64_t>(-1);
  std::uint32_t ttl_ = 0;
};

}  // namespace radiocast::protocols
