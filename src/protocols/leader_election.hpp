// Stage 1 — leader election among packet holders (the paper's Fact 1).
//
// Deterministic binary search over the id space, with each probe ("does any
// participant have id >= mid?") answered by an emulated
// collision-detection round: a multi-source one-bit alarm window (BGI
// flood). After ⌈log n̂⌉ probes of Θ((D̂+log n̂)·logΔ̂) rounds each, every
// participant knows the maximum participant id — total
// O((D+log n)·log n·logΔ) rounds, w.h.p., matching Fact 1.
//
// Only participants (nodes holding >= 1 packet, awake from round 0) track
// the search interval; nodes woken mid-election just relay probe floods.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "protocols/alarm.hpp"
#include "radio/knowledge.hpp"
#include "radio/node.hpp"

namespace radiocast::protocols {

/// Embeddable election state driven by rounds relative to stage start.
class LeaderElectionState {
 public:
  struct Config {
    radio::Knowledge know;
    /// Decay epochs per probe window.
    std::uint32_t probe_epochs = 1;
  };

  LeaderElectionState(const Config& cfg, radio::NodeId self, bool participant,
                      Rng* rng);

  std::optional<radio::MessageBody> on_transmit(std::uint64_t rel_round);
  void on_receive(std::uint64_t rel_round, const radio::Message& msg);

  /// Total rounds of the stage.
  std::uint64_t total_rounds() const { return total_rounds_; }

  /// Valid once rel_round has advanced past total_rounds() (the caller
  /// must push a final advance, which on_transmit does automatically on
  /// the first post-stage call) — or query via finalize().
  bool finished() const { return finished_; }

  /// Forces the final interval update (idempotent); used by owners who
  /// switch stages exactly at the boundary round.
  void finalize();

  /// The elected leader id (max participant id) as tracked by this node.
  /// Only meaningful for nodes awake through the whole stage.
  radio::NodeId leader_id() const { return static_cast<radio::NodeId>(lo_); }

  /// True iff this node is a participant and won the election.
  bool is_leader() const { return participant_ && finished_ && leader_id() == self_; }

  std::uint32_t probes() const { return probes_; }

 private:
  void advance(std::uint64_t rel_round);
  bool current_signal() const;

  Config cfg_;
  radio::NodeId self_;
  bool participant_;
  Rng* rng_;
  AlarmWindow alarm_;
  std::uint32_t probes_ = 0;          // number of probes B
  std::uint64_t probe_rounds_ = 0;    // rounds per probe window
  std::uint64_t total_rounds_ = 0;
  std::uint32_t current_probe_ = 0;   // index of the armed probe window
  std::uint64_t lo_ = 0;              // search invariant: max id in [lo, hi)
  std::uint64_t hi_ = 0;
  bool finished_ = false;
};

/// Standalone protocol wrapper for tests/benches (stage starts at round 0).
class LeaderElectionNode final : public radio::NodeProtocol {
 public:
  LeaderElectionNode(const LeaderElectionState::Config& cfg, radio::NodeId self,
                     bool participant, Rng rng)
      : rng_(rng), state_(cfg, self, participant, &rng_) {}

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    if (round >= state_.total_rounds()) {
      state_.finalize();
      return std::nullopt;
    }
    return state_.on_transmit(round);
  }

  void on_receive(radio::Round round, const radio::Message& msg) override {
    if (round < state_.total_rounds()) state_.on_receive(round, msg);
  }

  bool done() const override { return state_.finished(); }

  LeaderElectionState& state() { return state_; }
  const LeaderElectionState& state() const { return state_; }

 private:
  Rng rng_;
  LeaderElectionState state_;
};

}  // namespace radiocast::protocols
