// BGI randomized broadcast (Bar-Yehuda, Goldreich, Itai 1992).
//
// A message held by one or more sources is flooded through the network:
// every node that knows the message participates in synchronized Decay
// epochs; every node that receives it joins. With
// Θ(D + log n) epochs (each ⌈logΔ⌉ rounds) all nodes receive the message
// w.h.p. — the paper uses this as
//   * the ALARM sub-routine of Stage 3 (multi-source, one-bit message),
//   * the probe primitive of leader election (emulated collision
//     detection: "did anyone signal?"),
//   * the per-packet baseline broadcast we compare against.
//
// BgiFlood is the embeddable component (relative-round driven, no
// NodeProtocol inheritance) reused by the composite k-broadcast protocol;
// BgiBroadcastNode wraps it as a standalone NodeProtocol for tests and the
// single-message benches.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "protocols/decay.hpp"
#include "radio/knowledge.hpp"
#include "radio/node.hpp"

namespace radiocast::protocols {

/// Default number of Decay epochs for a BGI flood window so that the
/// message crosses d_hat hops and the per-node failure probability is
/// polynomially small: epochs = progress_factor * d_hat + whp_factor * log n.
std::uint32_t bgi_default_epochs(const radio::Knowledge& know,
                                 std::uint32_t progress_factor = 4,
                                 std::uint32_t whp_factor = 12);

/// Embeddable multi-source flood state. The owner drives it with rounds
/// relative to the flood window start; all participants must share that
/// origin so Decay epochs stay aligned.
class BgiFlood {
 public:
  BgiFlood(std::uint32_t decay_epoch_length, Rng* rng)
      : decay_(decay_epoch_length), rng_(rng) {
    RC_ASSERT(rng != nullptr);
  }

  /// (Re)arms the flood: sources pass the message; others pass nullopt.
  void reset(std::optional<radio::MessageBody> initial);

  /// Transmit decision at `rel_round` (relative to window start).
  std::optional<radio::MessageBody> on_transmit(std::uint64_t rel_round);

  /// Feeds a received flood message (the owner filters message kinds).
  void on_receive(const radio::MessageBody& body);

  /// True iff this node holds the message (source or received).
  bool has_message() const { return message_.has_value(); }

  /// True iff the message arrived by radio (excludes being a source).
  bool received() const { return received_; }

  /// Optional payload-buffer pool for the per-round transmission copies
  /// (usually the owner's NodeProtocol::payload_arena). Null =>
  /// heap-allocate, byte-identical either way.
  void set_payload_arena(radio::PayloadArena* arena) { arena_ = arena; }

  const radio::MessageBody* message() const {
    return message_.has_value() ? &*message_ : nullptr;
  }

 private:
  Decay decay_;
  Rng* rng_;
  radio::PayloadArena* arena_ = nullptr;
  std::optional<radio::MessageBody> message_;
  bool received_ = false;
};

/// Standalone BGI broadcast protocol: sources flood `body` for
/// `epochs * epoch_length` rounds starting at round `start_round`.
class BgiBroadcastNode final : public radio::NodeProtocol {
 public:
  struct Config {
    radio::Knowledge know;
    std::uint32_t epochs = 0;  ///< 0 => bgi_default_epochs(know)
    radio::Round start_round = 0;
  };

  BgiBroadcastNode(const Config& cfg, bool is_source,
                   std::optional<radio::MessageBody> body, Rng rng);

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override;
  void on_receive(radio::Round round, const radio::Message& msg) override;
  bool done() const override;

  bool has_message() const { return flood_.has_message(); }
  const radio::MessageBody* message() const { return flood_.message(); }
  radio::Round window_end() const { return end_round_; }

 private:
  Rng rng_;
  BgiFlood flood_;
  radio::Round start_round_;
  radio::Round end_round_;
};

}  // namespace radiocast::protocols
