// Stage 2 — distributed BFS-tree construction (the paper's Theorem 1,
// following Bar-Yehuda, Goldreich, Itai).
//
// The stage runs D̂ (+ slack) phases of Θ(log n̂) Decay epochs. In phase d
// exactly the nodes that adopted distance d transmit construction messages
// (id, d); a node that receives a construction message for the first time
// adopts the transmitter as its BFS parent and distance d+1. With the
// default epoch count each frontier informs all its neighbors w.h.p., so
// the adopted distances equal true BFS distances and the parent pointers
// form a tree rooted at the leader.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "protocols/decay.hpp"
#include "radio/knowledge.hpp"
#include "radio/node.hpp"

namespace radiocast::protocols {

class BfsBuildState {
 public:
  struct Config {
    radio::Knowledge know;
    std::uint32_t epochs_per_phase = 1;
    std::uint32_t extra_phases = 2;
  };

  BfsBuildState(const Config& cfg, radio::NodeId self, bool is_root, Rng* rng);

  std::optional<radio::MessageBody> on_transmit(std::uint64_t rel_round);
  void on_receive(std::uint64_t rel_round, const radio::Message& msg);

  std::uint64_t total_rounds() const { return total_rounds_; }

  bool has_distance() const { return dist_.has_value(); }
  /// BFS distance from the root (valid when has_distance()).
  std::uint32_t distance() const { return *dist_; }
  /// BFS parent (valid when has_distance(); the root is its own parent).
  radio::NodeId parent() const { return parent_; }

 private:
  Config cfg_;
  radio::NodeId self_;
  Rng* rng_;
  Decay decay_;
  std::uint64_t phase_rounds_ = 0;
  std::uint32_t phases_ = 0;
  std::uint64_t total_rounds_ = 0;
  std::optional<std::uint32_t> dist_;
  radio::NodeId parent_;
};

/// Standalone wrapper (stage starts at round 0); `done` means "joined the
/// tree", so run_until_done stops as soon as every node has a layer.
class BfsConstructionNode final : public radio::NodeProtocol {
 public:
  BfsConstructionNode(const BfsBuildState::Config& cfg, radio::NodeId self,
                      bool is_root, Rng rng)
      : rng_(rng), state_(cfg, self, is_root, &rng_) {}

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    if (round >= state_.total_rounds()) return std::nullopt;
    return state_.on_transmit(round);
  }

  void on_receive(radio::Round round, const radio::Message& msg) override {
    if (round < state_.total_rounds()) state_.on_receive(round, msg);
  }

  bool done() const override { return state_.has_distance(); }

  BfsBuildState& state() { return state_; }
  const BfsBuildState& state() const { return state_; }

 private:
  Rng rng_;
  BfsBuildState state_;
};

}  // namespace radiocast::protocols
