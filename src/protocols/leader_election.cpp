#include "protocols/leader_election.hpp"

#include "common/math_util.hpp"

namespace radiocast::protocols {

LeaderElectionState::LeaderElectionState(const Config& cfg, radio::NodeId self,
                                         bool participant, Rng* rng)
    : cfg_(cfg),
      self_(self),
      participant_(participant),
      rng_(rng),
      alarm_(cfg.know.log_delta(), rng) {
  RC_ASSERT(rng != nullptr);
  RC_ASSERT(cfg.probe_epochs >= 1);
  const std::uint64_t space = next_pow2(cfg_.know.n_hat);
  probes_ = std::max<std::uint32_t>(1, ceil_log2(space));
  probe_rounds_ = static_cast<std::uint64_t>(cfg.probe_epochs) * cfg_.know.log_delta();
  total_rounds_ = probes_ * probe_rounds_;
  lo_ = 0;
  hi_ = space;
  current_probe_ = 0;
  alarm_.reset(current_signal());
}

bool LeaderElectionState::current_signal() const {
  // Probe question: "is there a participant with id >= mid?"
  const std::uint64_t mid = (lo_ + hi_) / 2;
  return participant_ && self_ >= mid;
}

void LeaderElectionState::advance(std::uint64_t rel_round) {
  // Fold in results of all probe windows that ended at or before rel_round.
  while (!finished_) {
    const std::uint64_t window_end =
        static_cast<std::uint64_t>(current_probe_ + 1) * probe_rounds_;
    if (rel_round < window_end) break;
    const std::uint64_t mid = (lo_ + hi_) / 2;
    if (alarm_.positive()) {
      lo_ = mid;  // someone (possibly this node) has id >= mid
    } else {
      hi_ = mid;
    }
    ++current_probe_;
    if (current_probe_ >= probes_) {
      finished_ = true;
      break;
    }
    alarm_.reset(current_signal());
  }
}

std::optional<radio::MessageBody> LeaderElectionState::on_transmit(
    std::uint64_t rel_round) {
  advance(rel_round);
  if (finished_) return std::nullopt;
  const std::uint64_t window_start =
      static_cast<std::uint64_t>(current_probe_) * probe_rounds_;
  return alarm_.on_transmit(rel_round - window_start);
}

void LeaderElectionState::on_receive(std::uint64_t rel_round,
                                     const radio::Message& msg) {
  advance(rel_round);
  if (finished_) return;
  alarm_.on_receive(msg.body);
}

void LeaderElectionState::finalize() { advance(total_rounds_); }

}  // namespace radiocast::protocols
