#include "protocols/bgi_broadcast.hpp"

namespace radiocast::protocols {

std::uint32_t bgi_default_epochs(const radio::Knowledge& know,
                                 std::uint32_t progress_factor,
                                 std::uint32_t whp_factor) {
  return progress_factor * know.d_hat + whp_factor * know.log_n();
}

void BgiFlood::reset(std::optional<radio::MessageBody> initial) {
  message_ = std::move(initial);
  received_ = false;
}

std::optional<radio::MessageBody> BgiFlood::on_transmit(std::uint64_t rel_round) {
  if (!message_.has_value()) return std::nullopt;
  if (!decay_.decide(rel_round, *rng_)) return std::nullopt;
  if (arena_ != nullptr) return arena_->copy_body(*message_);
  return *message_;
}

void BgiFlood::on_receive(const radio::MessageBody& body) {
  if (!message_.has_value()) {
    message_ = body;
    received_ = true;
  }
}

BgiBroadcastNode::BgiBroadcastNode(const Config& cfg, bool is_source,
                                   std::optional<radio::MessageBody> body, Rng rng)
    : rng_(rng), flood_(cfg.know.log_delta(), &rng_), start_round_(cfg.start_round) {
  const std::uint32_t epochs = cfg.epochs != 0 ? cfg.epochs : bgi_default_epochs(cfg.know);
  end_round_ = start_round_ + static_cast<radio::Round>(epochs) * cfg.know.log_delta();
  flood_.reset(is_source ? std::move(body) : std::nullopt);
}

std::optional<radio::MessageBody> BgiBroadcastNode::on_transmit(radio::Round round) {
  if (round < start_round_ || round >= end_round_) return std::nullopt;
  flood_.set_payload_arena(payload_arena());
  return flood_.on_transmit(round - start_round_);
}

void BgiBroadcastNode::on_receive(radio::Round round, const radio::Message& msg) {
  if (round < start_round_ || round >= end_round_) return;
  flood_.on_receive(msg.body);
}

bool BgiBroadcastNode::done() const { return flood_.has_message(); }

}  // namespace radiocast::protocols
