// Exporters for the flight recorder: JSONL (one record per line, easy to
// grep/jq) and Chrome trace_event JSON (open in chrome://tracing or
// https://ui.perfetto.dev). See docs/observability.md for the formats.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace radiocast::obs {

class PacketTracer;
class RunObserver;

/// JSONL: one `{"type":"span",...}` line per span (in snapshot order) and
/// one `{"type":"counter"|"gauge"|"histogram",...}` line per metric.
void write_spans_jsonl(std::ostream& out, const std::vector<Span>& spans);
/// JSONL: one line per counter/gauge/histogram in the snapshot.
void write_metrics_jsonl(std::ostream& out, const MetricsSnapshot& metrics);

/// Everything the observer captured, preceded by a `{"type":"run",...}`
/// header line carrying `total_rounds`.
void write_run_jsonl(std::ostream& out, const RunObserver& observer,
                     std::uint64_t total_rounds);

/// Chrome trace_event format: each span becomes a complete ("ph":"X")
/// event with ts/dur in simulation rounds (1 round = 1 "microsecond");
/// span attributes land in "args". One metadata event names the process
/// "radiocast". The file opens directly in chrome://tracing and Perfetto.
void write_chrome_trace(std::ostream& out, const std::vector<Span>& spans);

/// Chrome trace_event export of one PacketTracer's flight log: every
/// first-hold record becomes an instant event ("ph":"i") at its latency
/// round on a per-packet thread track (tid = packet index + 1), with the
/// receiving node, delivering neighbor, hop depth and mechanism in "args".
/// Empty flight log (flight paths disabled) yields a valid empty trace.
void write_flight_chrome_trace(std::ostream& out, const PacketTracer& tracer);

}  // namespace radiocast::obs
