#include "obs/export.hpp"

#include "obs/json.hpp"
#include "obs/observer.hpp"
#include "obs/packet_trace.hpp"

namespace radiocast::obs {

namespace {

void write_labels(JsonWriter& w, const LabelSet& labels) {
  w.key("labels").begin_object();
  for (const auto& [k, v] : labels) w.kv(k, v);
  w.end_object();
}

void write_attrs(JsonWriter& w, std::string_view key,
                 const std::vector<SpanAttr>& attrs) {
  w.key(key).begin_object();
  for (const SpanAttr& a : attrs) w.kv(a.key, a.value);
  w.end_object();
}

}  // namespace

void write_spans_jsonl(std::ostream& out, const std::vector<Span>& spans) {
  for (const Span& s : spans) {
    JsonWriter w(out);
    w.begin_object()
        .kv("type", "span")
        .kv("id", s.id)
        .kv("parent", s.parent_id)
        .kv("depth", s.depth)
        .kv("cat", s.category)
        .kv("name", s.name)
        .kv("begin", s.begin_round)
        .kv("end", s.end_round)
        .kv("rounds", s.duration())
        .kv("closed", s.closed);
    write_attrs(w, "attrs", s.attrs);
    w.end_object().newline();
  }
}

void write_metrics_jsonl(std::ostream& out, const MetricsSnapshot& metrics) {
  for (const MetricSample& m : metrics) {
    JsonWriter w(out);
    w.begin_object();
    switch (m.type) {
      case MetricSample::Type::kCounter:
        w.kv("type", "counter").kv("name", m.name);
        write_labels(w, m.labels);
        w.kv("value", static_cast<std::uint64_t>(m.value));
        break;
      case MetricSample::Type::kGauge:
        w.kv("type", "gauge").kv("name", m.name);
        write_labels(w, m.labels);
        w.kv("value", m.value);
        break;
      case MetricSample::Type::kHistogram: {
        w.kv("type", "histogram").kv("name", m.name);
        write_labels(w, m.labels);
        w.kv("count", m.count).kv("sum", m.value);
        w.key("bounds").begin_array();
        for (const double b : m.bounds) w.value(b);
        w.end_array();
        w.key("counts").begin_array();
        for (const std::uint64_t c : m.counts) w.value(c);
        w.end_array();
        break;
      }
    }
    w.end_object().newline();
  }
}

void write_run_jsonl(std::ostream& out, const RunObserver& observer,
                     std::uint64_t total_rounds) {
  {
    JsonWriter w(out);
    w.begin_object()
        .kv("type", "run")
        .kv("total_rounds", total_rounds)
        .kv("dropped_spans", observer.recorder().dropped_spans())
        .kv("sampled_out_spans", observer.recorder().sampled_out_spans())
        .end_object()
        .newline();
  }
  write_spans_jsonl(out, observer.spans());
  write_metrics_jsonl(out, observer.metrics_snapshot());
}

void write_chrome_trace(std::ostream& out, const std::vector<Span>& spans) {
  JsonWriter w(out);
  w.begin_object().key("traceEvents").begin_array();
  // Process-name metadata event, so the track has a readable title.
  w.begin_object()
      .kv("name", "process_name")
      .kv("ph", "M")
      .kv("pid", std::uint64_t{1})
      .key("args")
      .begin_object()
      .kv("name", "radiocast")
      .end_object()
      .end_object();
  for (const Span& s : spans) {
    w.begin_object()
        .kv("name", s.name)
        .kv("cat", s.category)
        .kv("ph", "X")
        .kv("ts", s.begin_round)
        .kv("dur", s.duration())
        .kv("pid", std::uint64_t{1})
        .kv("tid", std::uint64_t{1});
    // trace_event puts per-event payload under "args".
    write_attrs(w, "args", s.attrs);
    w.end_object();
  }
  w.end_array().kv("displayTimeUnit", "ms").end_object();
  out << '\n';
}

void write_flight_chrome_trace(std::ostream& out, const PacketTracer& tracer) {
  JsonWriter w(out);
  w.begin_object().key("traceEvents").begin_array();
  w.begin_object()
      .kv("name", "process_name")
      .kv("ph", "M")
      .kv("pid", std::uint64_t{1})
      .key("args")
      .begin_object()
      .kv("name", "radiocast packet flights")
      .end_object()
      .end_object();
  // One thread track per packet that actually flew; named lazily at its
  // first event so an untouched packet leaves no empty track behind.
  std::vector<bool> named(tracer.num_packets(), false);
  for (const PacketTracer::FlightEvent& e : tracer.flight_events()) {
    const std::uint64_t tid = static_cast<std::uint64_t>(e.packet) + 1;
    if (!named[e.packet]) {
      named[e.packet] = true;
      w.begin_object()
          .kv("name", "thread_name")
          .kv("ph", "M")
          .kv("pid", std::uint64_t{1})
          .kv("tid", tid)
          .key("args")
          .begin_object()
          .kv("name", "packet " + std::to_string(e.packet))
          .end_object()
          .end_object();
    }
    w.begin_object()
        .kv("name", PacketTracer::via_name(e.via))
        .kv("cat", "flight")
        .kv("ph", "i")
        .kv("s", "t")
        .kv("ts", e.latency)
        .kv("pid", std::uint64_t{1})
        .kv("tid", tid)
        .key("args")
        .begin_object()
        .kv("node", e.node)
        .kv("from", e.from)
        .kv("depth", static_cast<std::uint64_t>(e.depth))
        .end_object()
        .end_object();
  }
  w.end_array().kv("displayTimeUnit", "ms").end_object();
  out << '\n';
}

}  // namespace radiocast::obs
