// Fixed-bucket log-scale histogram for cross-trial telemetry aggregation.
//
// The per-packet latency distributions the telemetry layer reports are
// reduced over a Monte Carlo seed grid, so the accumulator must merge
// deterministically: two LogHistograms merge by bucket-wise integer
// addition (commutative and associative), and every summary statistic is
// integer arithmetic over the bucket counts — no floating-point order
// sensitivity anywhere. That is what lets exp/run reduce telemetry in
// trial order and emit byte-identical documents at any thread count.
//
// Bucket layout (fixed, see docs/observability.md):
//   bucket 0        <- value 0
//   bucket i >= 1   <- values in [2^(i-1), 2^i - 1]
// i.e. bucket(v) = 1 + floor(log2 v) for v >= 1, giving 65 buckets that
// cover the whole uint64 range with factor-2 resolution. Exact min / max /
// sum / count ride alongside, so quantiles can clamp to the observed range.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace radiocast::obs {

class LogHistogram {
 public:
  /// Bucket 0 plus one bucket per possible floor(log2) of a uint64.
  static constexpr std::size_t kNumBuckets = 65;

  /// Bucket index of `value` (see the layout in the file comment).
  static std::size_t bucket_index(std::uint64_t value);
  /// Largest value a bucket covers (0 for bucket 0, 2^i - 1 otherwise).
  static std::uint64_t bucket_upper(std::size_t bucket);
  /// Smallest value a bucket covers (0 for bucket 0, 2^(i-1) otherwise).
  static std::uint64_t bucket_lower(std::size_t bucket);

  void add(std::uint64_t value, std::uint64_t count = 1);
  /// Bucket-wise sum; exact min/max/sum/count combine alongside.
  void merge(const LogHistogram& other);

  bool empty() const { return count_ == 0; }
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// Exact extremes of the added values (0 on an empty histogram).
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const;

  /// Nearest-rank quantile, resolved to the containing bucket's upper
  /// edge and clamped to [min, max]: an upper bound on the true order
  /// statistic within a factor of 2 (exact for values 0 and 1, and for
  /// q = 1, which always returns max()). q in [0, 1]; 0 on empty.
  std::uint64_t quantile(double q) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p90() const { return quantile(0.90); }
  std::uint64_t p99() const { return quantile(0.99); }

  const std::array<std::uint64_t, kNumBuckets>& buckets() const { return buckets_; }

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace radiocast::obs
