#include "obs/packet_trace.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/math_util.hpp"

namespace radiocast::obs {

const char* PacketTracer::via_name(Via via) {
  switch (via) {
    case Via::kOrigin: return "origin";
    case Via::kData: return "data";
    case Via::kPlain: return "plain";
    case Via::kDecode: return "decode";
  }
  return "?";
}

void PacketTracer::begin_trial(std::uint32_t num_nodes,
                               const std::vector<radio::Packet>& truth,
                               std::uint32_t group_size) {
  RC_ASSERT(num_nodes >= 1);
  RC_ASSERT(group_size >= 1 && group_size <= 64);
  n_ = num_nodes;
  k_ = static_cast<std::uint32_t>(truth.size());
  group_size_ = group_size;
  group_count_ = k_ == 0 ? 0 : static_cast<std::uint32_t>(ceil_div(k_, group_size));
  truth_ = truth;
  truth_ids_.clear();
  truth_ids_.reserve(truth_.size());
  for (const radio::Packet& p : truth_) truth_ids_.push_back(p.id);
  RC_ASSERT_MSG(std::is_sorted(truth_ids_.begin(), truth_ids_.end()),
                "begin_trial expects truth sorted by packet id");
  cells_.assign(static_cast<std::size_t>(k_) * n_, Cell{});
  trackers_.clear();
  trackers_.resize(static_cast<std::size_t>(n_) * group_count_);
  group_done_.assign(static_cast<std::size_t>(n_) * group_count_, 0);
  flights_.clear();
  dropped_flights_ = 0;
}

void PacketTracer::seed_packet(radio::PacketId id, radio::NodeId node) {
  const std::uint32_t p = packet_index(id);
  RC_ASSERT_MSG(p < k_, "seed_packet: id not in ground truth");
  record(p, node, 0, node, Via::kOrigin);
}

std::uint32_t PacketTracer::packet_index(radio::PacketId id) const {
  const auto it = std::lower_bound(truth_ids_.begin(), truth_ids_.end(), id);
  if (it == truth_ids_.end() || *it != id) return k_;
  return static_cast<std::uint32_t>(it - truth_ids_.begin());
}

std::uint32_t PacketTracer::group_width(std::uint32_t group_id) const {
  const std::uint64_t begin = static_cast<std::uint64_t>(group_id) * group_size_;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(k_, begin + group_size_) - begin);
}

void PacketTracer::record(std::uint32_t packet, radio::NodeId node,
                          std::uint64_t latency, radio::NodeId from, Via via) {
  Cell& c = cell(packet, node);
  if (c.latency_plus1 != 0) return;  // only the FIRST hold counts
  c.latency_plus1 = static_cast<std::uint32_t>(latency + 1);
  c.from = from;
  c.via = via;
  if (via == Via::kOrigin) {
    c.depth = 0;
  } else {
    // The sender held the packet when it transmitted (it either decoded or
    // relayed it), so its cell is set on every reachable path; depth 1
    // covers the defensive fallback.
    const Cell& sender = cell(packet, from);
    c.depth = sender.latency_plus1 != 0
                  ? static_cast<std::uint16_t>(sender.depth + 1)
                  : static_cast<std::uint16_t>(1);
  }
  if (!opts_.flight_paths) return;
  if (flights_.size() >= opts_.max_flight_events) {
    ++dropped_flights_;
    return;
  }
  flights_.push_back({latency, packet, node, from, c.depth, via});
}

void PacketTracer::feed_row(radio::NodeId node, std::uint32_t group_id,
                            std::uint64_t mask, std::uint64_t latency,
                            radio::NodeId from) {
  if (group_id >= group_count_ || mask == 0) return;
  const std::size_t slot = static_cast<std::size_t>(node) * group_count_ + group_id;
  if (group_done_[slot] != 0) return;  // mirrors DisseminationState's skip
  const std::uint32_t width = group_width(group_id);
  if (!trackers_[slot]) trackers_[slot] = std::make_unique<gf2::MaskRank>(width);
  gf2::MaskRank& tracker = *trackers_[slot];
  const std::uint64_t width_mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  tracker.add(mask & width_mask);
  if (!tracker.complete()) return;
  group_done_[slot] = 1;
  trackers_[slot].reset();
  const std::uint32_t begin = group_id * group_size_;
  for (std::uint32_t p = begin; p < begin + width; ++p) {
    record(p, node, latency, from, Via::kDecode);
  }
}

void PacketTracer::on_deliver(radio::Round round, radio::NodeId receiver,
                              std::uint32_t /*tx_index*/, const radio::Message& msg) {
  if (k_ == 0) return;
  const std::uint64_t latency = round + 1;  // held after round `round`
  switch (msg.body.index()) {
    case 2: {  // DataMsg — content reception, addressed or overheard
      const auto& m = *std::get_if<radio::DataMsg>(&msg.body);
      const std::uint32_t p = packet_index(m.packet.id);
      if (p < k_) record(p, receiver, latency, msg.from, Via::kData);
      break;
    }
    case 4: {  // PlainPacketMsg — direct hold plus a unit decoder row
      const auto& m = *std::get_if<radio::PlainPacketMsg>(&msg.body);
      const std::uint32_t p = packet_index(m.packet.id);
      if (p < k_) record(p, receiver, latency, msg.from, Via::kPlain);
      if (m.index_in_group < 64) {
        feed_row(receiver, m.group_id, std::uint64_t{1} << m.index_in_group,
                 latency, msg.from);
      }
      break;
    }
    case 5: {  // CodedMsg — one coefficient-mask row
      const auto& m = *std::get_if<radio::CodedMsg>(&msg.body);
      feed_row(receiver, m.group_id, m.coeffs, latency, msg.from);
      break;
    }
    default:
      break;  // bfs / alarm / ack carry no packet content
  }
}

bool PacketTracer::held(std::uint32_t packet, radio::NodeId node) const {
  return cell(packet, node).latency_plus1 != 0;
}

std::uint64_t PacketTracer::latency(std::uint32_t packet, radio::NodeId node) const {
  const Cell& c = cell(packet, node);
  if (c.latency_plus1 == 0) return ~std::uint64_t{0};
  return c.latency_plus1 - 1;
}

radio::NodeId PacketTracer::delivered_by(std::uint32_t packet,
                                         radio::NodeId node) const {
  return cell(packet, node).from;
}

std::uint16_t PacketTracer::hop_depth(std::uint32_t packet, radio::NodeId node) const {
  return cell(packet, node).depth;
}

PacketTracer::Via PacketTracer::via(std::uint32_t packet, radio::NodeId node) const {
  return cell(packet, node).via;
}

std::uint32_t PacketTracer::undelivered(std::uint32_t packet) const {
  std::uint32_t missing = 0;
  for (radio::NodeId v = 0; v < n_; ++v) {
    if (cell(packet, v).latency_plus1 == 0) ++missing;
  }
  return missing;
}

LogHistogram PacketTracer::packet_latencies(std::uint32_t packet) const {
  LogHistogram h;
  for (radio::NodeId v = 0; v < n_; ++v) {
    const Cell& c = cell(packet, v);
    if (c.latency_plus1 == 0 || c.via == Via::kOrigin) continue;
    h.add(c.latency_plus1 - 1);
  }
  return h;
}

LogHistogram PacketTracer::all_latencies() const {
  LogHistogram h;
  for (std::uint32_t p = 0; p < k_; ++p) h.merge(packet_latencies(p));
  return h;
}

std::vector<PacketTracer::FlightEvent> PacketTracer::flight_path(
    std::uint32_t packet) const {
  std::vector<FlightEvent> out;
  for (const FlightEvent& e : flights_) {
    if (e.packet == packet) out.push_back(e);
  }
  return out;
}

}  // namespace radiocast::obs
