// Queue-depth ledger for the open-system stream driver.
//
// Sibling of ChannelLedger: capped per-sample rows for telemetry, plus
// exact whole-run totals that are never capped. One row is appended per
// sampled round (the stream driver samples at every epoch boundary and at
// the horizon), aggregating the source buffers of ALL nodes — the ledger
// tracks the system backlog, not per-node detail. Rows beyond `max_rows`
// are dropped with an explicit count, never silently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace radiocast::obs {

class QueueLedger {
 public:
  /// One aggregate backlog sample. The counter fields are cumulative
  /// (monotone) run totals as of the sampled round, so consecutive rows
  /// can be differenced for per-epoch deltas.
  struct Row {
    std::uint64_t round = 0;
    std::uint64_t buffered = 0;       ///< packets in bounded buffers
    std::uint64_t held_back = 0;      ///< packets parked by backpressure
    std::uint64_t in_flight = 0;      ///< admitted, not yet network-wide
    std::uint64_t offered = 0;        ///< cumulative arrivals offered
    std::uint64_t admitted = 0;       ///< cumulative admissions
    std::uint64_t dropped = 0;        ///< cumulative drops
    std::uint64_t backpressured = 0;  ///< cumulative deferrals
    std::uint64_t delivered = 0;      ///< cumulative packets known network-wide
  };

  /// Whole-run totals; exact regardless of the row cap. "Depth" here is
  /// the number in system: buffered + held_back + in_flight.
  struct Totals {
    std::uint64_t samples = 0;
    std::uint64_t peak_depth = 0;  ///< max depth over samples
    std::uint64_t peak_round = 0;  ///< round of the first peak sample
    std::uint64_t sum_depth = 0;   ///< sum of depths (mean = /samples)
  };

  explicit QueueLedger(std::size_t max_rows) : max_rows_(max_rows) {}

  void sample(const Row& row);

  const std::vector<Row>& rows() const { return rows_; }
  std::uint64_t dropped_rows() const { return dropped_rows_; }
  const Totals& totals() const { return totals_; }

 private:
  std::size_t max_rows_;
  std::vector<Row> rows_;
  std::uint64_t dropped_rows_ = 0;
  Totals totals_;
};

}  // namespace radiocast::obs
