#include "obs/observer.hpp"

#include <utility>

#include "common/assert.hpp"

namespace radiocast::obs {

std::uint32_t ChannelLedger::silent_slots(const RoundStats& stats) {
  // Awake listeners minus the listener slots with a known outcome; see
  // the class comment for why this is a (clamped) lower bound. Wake-up
  // deliveries landed at nodes that were *asleep*, so they don't consume
  // listener slots — but the wakeups counter can exceed deliveries (the
  // first round folds the initial wake_at_start wakes in; CD collision
  // wakes have no delivery at all), so the correction is clamped.
  const std::int64_t listeners =
      static_cast<std::int64_t>(stats.awake) - stats.transmissions;
  const std::int64_t awake_deliveries = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(stats.deliveries) - stats.wakeups);
  const std::int64_t silent = listeners - awake_deliveries -
                              stats.collision_slots - stats.fault_drops;
  return silent > 0 ? static_cast<std::uint32_t>(silent) : 0;
}

std::uint32_t ChannelLedger::intern(std::vector<std::string>& names,
                                    const std::string& name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  }
  names.push_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

void ChannelLedger::on_round(const RoundStats& stats, const std::string& stage,
                             const std::string& epoch) {
  const std::uint32_t silent = silent_slots(stats);
  const std::uint32_t stage_id = intern(stage_names_, stage);
  const std::uint32_t epoch_id = intern(epoch_names_, epoch);
  if (rows_.size() < max_rounds_) {
    rows_.push_back({stats.round, stage_id, epoch_id, stats.awake,
                     stats.transmissions, stats.deliveries, stats.collision_slots,
                     stats.deaf_slots, stats.fault_drops, silent});
  } else {
    ++dropped_rows_;
  }

  if (last_aggregate_ >= aggregates_.size() ||
      aggregates_[last_aggregate_].stage != stage ||
      aggregates_[last_aggregate_].epoch != epoch) {
    last_aggregate_ = SIZE_MAX;
    for (std::size_t i = 0; i < aggregates_.size(); ++i) {
      if (aggregates_[i].stage == stage && aggregates_[i].epoch == epoch) {
        last_aggregate_ = i;
        break;
      }
    }
    if (last_aggregate_ == SIZE_MAX) {
      aggregates_.push_back({stage, epoch, 0, 0, 0, 0, 0, 0, 0, 0});
      last_aggregate_ = aggregates_.size() - 1;
    }
  }
  Aggregate& agg = aggregates_[last_aggregate_];
  ++agg.rounds;
  agg.awake += stats.awake;
  agg.transmissions += stats.transmissions;
  agg.deliveries += stats.deliveries;
  agg.collisions += stats.collision_slots;
  agg.deaf += stats.deaf_slots;
  agg.faults += stats.fault_drops;
  agg.silent += silent;
}

RunObserver::RunObserver(Options opts)
    : opts_(std::move(opts)), recorder_(opts_.recorder) {
  if (opts_.channel_ledger) {
    ledger_ = std::make_unique<ChannelLedger>(opts_.ledger_max_rounds);
  }
}

void RunObserver::rebind_stage_instruments() {
  const LabelSet stage_label = {{"stage", stage_name_}};
  rounds_ = &metrics_.counter("sim.rounds", stage_label);
  transmissions_ = &metrics_.counter("sim.transmissions", stage_label);
  deliveries_ = &metrics_.counter("sim.deliveries", stage_label);
  collisions_ = &metrics_.counter("sim.collision_slots", stage_label);
  deaf_ = &metrics_.counter("sim.deaf_slots", stage_label);
  fault_drops_ = &metrics_.counter("sim.fault_drops", stage_label);
  wakeups_ = &metrics_.counter("sim.wakeups", stage_label);
  if (opts_.round_histograms) {
    tx_per_round_ = &metrics_.histogram("sim.transmissions_per_round", stage_label,
                                        Histogram::pow2_bounds());
    rx_per_round_ = &metrics_.histogram("sim.deliveries_per_round", stage_label,
                                        Histogram::pow2_bounds());
  }
  tx_by_kind_.clear();
  rx_by_kind_.clear();
  if (opts_.per_kind_metrics) {
    for (const std::string& kind : kind_names_) {
      const LabelSet kl = {{"stage", stage_name_}, {"kind", kind}};
      tx_by_kind_.push_back(&metrics_.counter("sim.transmissions", kl));
      rx_by_kind_.push_back(&metrics_.counter("sim.deliveries", kl));
    }
  }
}

void RunObserver::on_round(const RoundStats& stats) {
  last_round_seen_ = stats.round;
  if (stage_name_.empty()) {
    // Rounds before the first stage hook (e.g. no observer-wired protocol):
    // attribute to a catch-all stage so nothing is silently lost.
    stage_name_ = "unattributed";
    rebind_stage_instruments();
  }
  if (kind_names_.empty() && stats.num_kinds > 0) {
    kind_names_.assign(stats.kind_names, stats.kind_names + stats.num_kinds);
    rebind_stage_instruments();
  }
  rounds_->inc();
  transmissions_->inc(stats.transmissions);
  deliveries_->inc(stats.deliveries);
  collisions_->inc(stats.collision_slots);
  deaf_->inc(stats.deaf_slots);
  fault_drops_->inc(stats.fault_drops);
  wakeups_->inc(stats.wakeups);
  if (tx_per_round_ != nullptr) {
    tx_per_round_->observe(static_cast<double>(stats.transmissions));
    rx_per_round_->observe(static_cast<double>(stats.deliveries));
  }
  if (!tx_by_kind_.empty()) {
    RC_ASSERT(tx_by_kind_.size() == stats.num_kinds);
    for (std::size_t i = 0; i < stats.num_kinds; ++i) {
      // Skip untouched kinds: most rounds carry one kind of traffic.
      if (stats.transmissions_by_kind[i] != 0) {
        tx_by_kind_[i]->inc(stats.transmissions_by_kind[i]);
      }
      if (stats.deliveries_by_kind[i] != 0) {
        rx_by_kind_[i]->inc(stats.deliveries_by_kind[i]);
      }
    }
  }
  if (ledger_) ledger_->on_round(stats, stage_name_, epoch_name_);
}

void RunObserver::close_epoch(std::uint64_t round) {
  if (epoch_span_ != 0) {
    recorder_.close(epoch_span_, round);
    epoch_span_ = 0;
  }
  epoch_name_.clear();
}

void RunObserver::close_phase(std::uint64_t round) {
  close_epoch(round);
  if (phase_span_ != 0) {
    recorder_.close(phase_span_, round);
    phase_span_ = 0;
  }
}

void RunObserver::close_stage(std::uint64_t round) {
  close_phase(round);
  if (stage_span_ != 0) {
    recorder_.close(stage_span_, round);
    stage_span_ = 0;
  }
}

void RunObserver::on_stage(std::uint32_t stage_index, const char* name,
                           std::uint64_t round) {
  close_stage(round);
  stage_name_ = name;
  stage_span_ = recorder_.open(name, "stage", round, {{"stage", stage_index}});
  rebind_stage_instruments();
}

void RunObserver::on_collection_phase_begin(std::uint32_t phase_index,
                                            std::uint64_t estimate,
                                            std::uint64_t round) {
  close_phase(round);
  phase_span_ = recorder_.open("phase", "phase", round,
                               {{"phase", phase_index}, {"estimate", estimate}});
  metrics_.gauge("collection.estimate").set(static_cast<double>(estimate));
  metrics_.counter("collection.phases").inc();
}

void RunObserver::on_collection_epoch(const char* kind, std::uint64_t slots,
                                      std::uint32_t copies, std::uint64_t round) {
  close_epoch(round);
  std::vector<SpanAttr> attrs;
  if (slots != 0) attrs.push_back({"slots", slots});
  if (copies > 1) attrs.push_back({"copies", copies});
  epoch_span_ = recorder_.open(kind, "epoch", round, std::move(attrs));
  epoch_name_ = kind;
  metrics_.counter("collection.epochs", {{"epoch", kind}}).inc();
}

void RunObserver::on_collection_phase_end(std::uint64_t round, bool alarmed) {
  if (phase_span_ != 0) {
    recorder_.add_attr(phase_span_, "alarmed", alarmed ? 1 : 0);
  }
  close_phase(round);
}

void RunObserver::finish(std::uint64_t end_round) {
  close_stage(end_round);
}

}  // namespace radiocast::obs
