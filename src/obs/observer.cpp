#include "obs/observer.hpp"

#include <utility>

#include "common/assert.hpp"

namespace radiocast::obs {

RunObserver::RunObserver(Options opts)
    : opts_(std::move(opts)), recorder_(opts_.recorder) {}

void RunObserver::rebind_stage_instruments() {
  const LabelSet stage_label = {{"stage", stage_name_}};
  rounds_ = &metrics_.counter("sim.rounds", stage_label);
  transmissions_ = &metrics_.counter("sim.transmissions", stage_label);
  deliveries_ = &metrics_.counter("sim.deliveries", stage_label);
  collisions_ = &metrics_.counter("sim.collision_slots", stage_label);
  deaf_ = &metrics_.counter("sim.deaf_slots", stage_label);
  fault_drops_ = &metrics_.counter("sim.fault_drops", stage_label);
  wakeups_ = &metrics_.counter("sim.wakeups", stage_label);
  if (opts_.round_histograms) {
    tx_per_round_ = &metrics_.histogram("sim.transmissions_per_round", stage_label,
                                        Histogram::pow2_bounds());
    rx_per_round_ = &metrics_.histogram("sim.deliveries_per_round", stage_label,
                                        Histogram::pow2_bounds());
  }
  tx_by_kind_.clear();
  rx_by_kind_.clear();
  if (opts_.per_kind_metrics) {
    for (const std::string& kind : kind_names_) {
      const LabelSet kl = {{"stage", stage_name_}, {"kind", kind}};
      tx_by_kind_.push_back(&metrics_.counter("sim.transmissions", kl));
      rx_by_kind_.push_back(&metrics_.counter("sim.deliveries", kl));
    }
  }
}

void RunObserver::on_round(const RoundStats& stats) {
  last_round_seen_ = stats.round;
  if (stage_name_.empty()) {
    // Rounds before the first stage hook (e.g. no observer-wired protocol):
    // attribute to a catch-all stage so nothing is silently lost.
    stage_name_ = "unattributed";
    rebind_stage_instruments();
  }
  if (kind_names_.empty() && stats.num_kinds > 0) {
    kind_names_.assign(stats.kind_names, stats.kind_names + stats.num_kinds);
    rebind_stage_instruments();
  }
  rounds_->inc();
  transmissions_->inc(stats.transmissions);
  deliveries_->inc(stats.deliveries);
  collisions_->inc(stats.collision_slots);
  deaf_->inc(stats.deaf_slots);
  fault_drops_->inc(stats.fault_drops);
  wakeups_->inc(stats.wakeups);
  if (tx_per_round_ != nullptr) {
    tx_per_round_->observe(static_cast<double>(stats.transmissions));
    rx_per_round_->observe(static_cast<double>(stats.deliveries));
  }
  if (!tx_by_kind_.empty()) {
    RC_ASSERT(tx_by_kind_.size() == stats.num_kinds);
    for (std::size_t i = 0; i < stats.num_kinds; ++i) {
      // Skip untouched kinds: most rounds carry one kind of traffic.
      if (stats.transmissions_by_kind[i] != 0) {
        tx_by_kind_[i]->inc(stats.transmissions_by_kind[i]);
      }
      if (stats.deliveries_by_kind[i] != 0) {
        rx_by_kind_[i]->inc(stats.deliveries_by_kind[i]);
      }
    }
  }
}

void RunObserver::close_epoch(std::uint64_t round) {
  if (epoch_span_ != 0) {
    recorder_.close(epoch_span_, round);
    epoch_span_ = 0;
  }
}

void RunObserver::close_phase(std::uint64_t round) {
  close_epoch(round);
  if (phase_span_ != 0) {
    recorder_.close(phase_span_, round);
    phase_span_ = 0;
  }
}

void RunObserver::close_stage(std::uint64_t round) {
  close_phase(round);
  if (stage_span_ != 0) {
    recorder_.close(stage_span_, round);
    stage_span_ = 0;
  }
}

void RunObserver::on_stage(std::uint32_t stage_index, const char* name,
                           std::uint64_t round) {
  close_stage(round);
  stage_name_ = name;
  stage_span_ = recorder_.open(name, "stage", round, {{"stage", stage_index}});
  rebind_stage_instruments();
}

void RunObserver::on_collection_phase_begin(std::uint32_t phase_index,
                                            std::uint64_t estimate,
                                            std::uint64_t round) {
  close_phase(round);
  phase_span_ = recorder_.open("phase", "phase", round,
                               {{"phase", phase_index}, {"estimate", estimate}});
  metrics_.gauge("collection.estimate").set(static_cast<double>(estimate));
  metrics_.counter("collection.phases").inc();
}

void RunObserver::on_collection_epoch(const char* kind, std::uint64_t slots,
                                      std::uint32_t copies, std::uint64_t round) {
  close_epoch(round);
  std::vector<SpanAttr> attrs;
  if (slots != 0) attrs.push_back({"slots", slots});
  if (copies > 1) attrs.push_back({"copies", copies});
  epoch_span_ = recorder_.open(kind, "epoch", round, std::move(attrs));
  metrics_.counter("collection.epochs", {{"epoch", kind}}).inc();
}

void RunObserver::on_collection_phase_end(std::uint64_t round, bool alarmed) {
  if (phase_span_ != 0) {
    recorder_.add_attr(phase_span_, "alarmed", alarmed ? 1 : 0);
  }
  close_phase(round);
}

void RunObserver::finish(std::uint64_t end_round) {
  close_stage(end_round);
}

}  // namespace radiocast::obs
