// Hierarchical span recorder — the trace half of the flight recorder
// (docs/observability.md).
//
// A span is a named interval of simulation rounds with a category
// ("stage", "phase", "epoch", ...), numeric attributes (e.g. the Stage-3
// estimate x), and a parent: spans open and close strictly LIFO, so the
// recorder maintains a single stack and every closed span knows its depth
// and parent id.
//
// Million-node-round runs stay cheap through two independent bounds:
//   * a ring buffer: at most `capacity` closed spans are retained; older
//     spans are evicted oldest-first and counted in dropped_spans();
//   * deterministic sampling: for categories listed in `sample_every`,
//     only every Nth opened span of that category is retained (counted in
//     sampled_out_spans()). Sampling is counter-based — the same run
//     produces the same retained set, with no RNG involved.
// Unsampled spans still occupy a stack slot while open, so nesting depths
// and parent ids of retained spans are unaffected.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace radiocast::obs {

/// One numeric key/value attached to a span (e.g. {"estimate", x}).
struct SpanAttr {
  std::string key;
  std::uint64_t value = 0;
};

/// A named interval of simulation rounds in the span tree.
struct Span {
  std::uint64_t id = 0;         ///< 1-based; 0 means "no span"
  std::uint64_t parent_id = 0;  ///< 0 for root spans
  std::uint32_t depth = 0;      ///< 0 for root spans
  std::string name;
  std::string category;
  std::uint64_t begin_round = 0;
  std::uint64_t end_round = 0;  ///< exclusive; == begin while still open
  bool closed = false;
  std::vector<SpanAttr> attrs;

  std::uint64_t duration() const { return end_round - begin_round; }
};

/// LIFO span stack + bounded retention (see the file comment).
class SpanRecorder {
 public:
  /// Retention bounds; defaults keep every span up to the ring capacity.
  struct Options {
    /// Max closed spans retained (ring buffer); older spans are evicted.
    std::size_t capacity = 8192;
    /// category -> N: retain every Nth span of that category (1 = all).
    std::map<std::string, std::uint32_t> sample_every;
  };

  SpanRecorder() : SpanRecorder(Options{}) {}
  explicit SpanRecorder(Options opts);

  /// Opens a child of the innermost open span. Returns the span id (also
  /// for unsampled spans — ids are assigned to every span).
  std::uint64_t open(std::string_view name, std::string_view category,
                     std::uint64_t round, std::vector<SpanAttr> attrs = {});

  /// Closes the innermost open span; `id` must match it (LIFO discipline).
  void close(std::uint64_t id, std::uint64_t end_round);

  /// Adds an attribute to a still-open span (no-op if `id` was sampled out).
  void add_attr(std::uint64_t id, std::string_view key, std::uint64_t value);

  /// Currently open (unclosed) spans.
  std::size_t open_depth() const { return stack_.size(); }
  /// Closed spans evicted by the ring buffer.
  std::uint64_t dropped_spans() const { return dropped_; }
  /// Spans discarded by category sampling.
  std::uint64_t sampled_out_spans() const { return sampled_out_; }

  /// All retained spans — closed ones in close order, then any still-open
  /// ones outermost-first. Open spans report end_round == begin_round.
  std::vector<Span> snapshot() const;

 private:
  struct OpenSpan {
    Span span;
    bool sampled = true;
  };

  Options opts_;
  std::vector<OpenSpan> stack_;
  std::deque<Span> closed_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::uint64_t sampled_out_ = 0;
  /// Per-category open() count, driving deterministic sampling.
  std::map<std::string, std::uint64_t> category_count_;
};

}  // namespace radiocast::obs
