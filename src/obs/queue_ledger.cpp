#include "obs/queue_ledger.hpp"

namespace radiocast::obs {

void QueueLedger::sample(const Row& row) {
  const std::uint64_t depth = row.buffered + row.held_back + row.in_flight;
  ++totals_.samples;
  totals_.sum_depth += depth;
  if (depth > totals_.peak_depth) {
    totals_.peak_depth = depth;
    totals_.peak_round = row.round;
  }
  if (rows_.size() < max_rows_) {
    rows_.push_back(row);
  } else {
    ++dropped_rows_;
  }
}

}  // namespace radiocast::obs
