#include "obs/recorder.hpp"

#include <utility>

#include "common/assert.hpp"

namespace radiocast::obs {

SpanRecorder::SpanRecorder(Options opts) : opts_(std::move(opts)) {
  RC_ASSERT(opts_.capacity > 0);
  for (const auto& [cat, n] : opts_.sample_every) {
    (void)cat;
    RC_ASSERT_MSG(n >= 1, "sample_every must be >= 1");
  }
}

std::uint64_t SpanRecorder::open(std::string_view name, std::string_view category,
                                 std::uint64_t round, std::vector<SpanAttr> attrs) {
  OpenSpan os;
  os.span.id = next_id_++;
  os.span.name = std::string(name);
  os.span.category = std::string(category);
  os.span.begin_round = round;
  os.span.end_round = round;
  os.span.attrs = std::move(attrs);
  if (!stack_.empty()) {
    os.span.parent_id = stack_.back().span.id;
    os.span.depth = stack_.back().span.depth + 1;
  }
  const auto rate = opts_.sample_every.find(os.span.category);
  if (rate != opts_.sample_every.end() && rate->second > 1) {
    const std::uint64_t seq = category_count_[os.span.category]++;
    os.sampled = (seq % rate->second) == 0;
    if (!os.sampled) ++sampled_out_;
  }
  stack_.push_back(std::move(os));
  return stack_.back().span.id;
}

void SpanRecorder::close(std::uint64_t id, std::uint64_t end_round) {
  RC_ASSERT_MSG(!stack_.empty(), "close with no open span");
  RC_ASSERT_MSG(stack_.back().span.id == id, "spans must close LIFO");
  OpenSpan os = std::move(stack_.back());
  stack_.pop_back();
  RC_ASSERT(end_round >= os.span.begin_round);
  if (!os.sampled) return;
  os.span.end_round = end_round;
  os.span.closed = true;
  if (closed_.size() == opts_.capacity) {
    closed_.pop_front();
    ++dropped_;
  }
  closed_.push_back(std::move(os.span));
}

void SpanRecorder::add_attr(std::uint64_t id, std::string_view key,
                            std::uint64_t value) {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->span.id == id) {
      if (it->sampled) it->span.attrs.push_back({std::string(key), value});
      return;
    }
  }
  RC_ASSERT_MSG(false, "add_attr on a span that is not open");
}

std::vector<Span> SpanRecorder::snapshot() const {
  std::vector<Span> out(closed_.begin(), closed_.end());
  for (const OpenSpan& os : stack_) {
    if (os.sampled) out.push_back(os.span);
  }
  return out;
}

}  // namespace radiocast::obs
