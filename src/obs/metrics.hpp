// Labelled metrics registry — the counter/gauge/histogram half of the
// flight recorder (docs/observability.md).
//
// Metrics are identified by a name plus a small set of key=value labels
// (stage, phase, epoch, message kind, ...). Lookup canonicalizes the label
// order, so `{"kind","data"},{"stage","s3"}` and the reverse address the
// same instrument. Instrument references returned by the registry are
// stable for the registry's lifetime — hot paths look an instrument up
// once and keep the pointer (see obs::RunObserver).
//
// The registry is deliberately simulation-agnostic: it depends on nothing
// above `common/`, so both the radio engine and the protocol layer can
// feed it without dependency cycles.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace radiocast::obs {

/// An (ordered) set of key=value labels. Kept tiny: metrics in this
/// library carry at most three labels.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins floating point metric.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first N buckets; one implicit overflow bucket catches the rest. Bounds
/// are fixed at creation — there is no rebucketing, so observation is O(#buckets)
/// worst case and allocation-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// counts()[i] observations fell in bucket i; counts().back() is the
  /// overflow bucket (x > bounds().back()).
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Default bucket edges for per-round event counts: 0,1,2,4,...,2^13.
  static std::vector<double> pow2_bounds(std::uint32_t max_exponent = 13);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// One exported metric in a snapshot (plain data, safe to copy into
/// RunResult after the registry is gone).
struct MetricSample {
  enum class Type { kCounter, kGauge, kHistogram };
  Type type = Type::kCounter;
  std::string name;
  LabelSet labels;
  double value = 0.0;  ///< counter/gauge value; histogram sum
  // Histogram-only payload.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
};

/// Deterministically ordered (by name, then labels) set of samples.
using MetricsSnapshot = std::vector<MetricSample>;

/// Owns every instrument; hands out lifetime-stable references.
class MetricsRegistry {
 public:
  /// Returns the instrument for (name, labels), creating it on first use.
  /// References stay valid until the registry is destroyed.
  Counter& counter(std::string_view name, LabelSet labels = {});
  Gauge& gauge(std::string_view name, LabelSet labels = {});
  /// `bounds` applies only on first creation; later lookups with the same
  /// key return the existing histogram unchanged.
  Histogram& histogram(std::string_view name, LabelSet labels,
                       std::vector<double> bounds);

  /// Number of distinct (name, labels) instruments created so far.
  std::size_t size() const { return instruments_.size(); }

  /// Copies every instrument into plain data, ordered by (name, labels).
  MetricsSnapshot snapshot() const;

 private:
  struct Instrument {
    std::string name;
    LabelSet labels;
    // Exactly one of these is set, per MetricSample::Type.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& find_or_create(std::string_view name, LabelSet labels);

  /// Keyed by "name|k1=v1|k2=v2" with labels sorted by key.
  std::map<std::string, Instrument> instruments_;
};

}  // namespace radiocast::obs
