// PacketTracer — per-packet lifecycle telemetry over the engine audit tap.
//
// Installed as a radio::NetworkAuditHook (tee'd with the ModelAuditor when
// both are requested, see core::run_kbroadcast), the tracer watches every
// delivery of a run and reconstructs, for each message m and node v, the
// round v first *held* m:
//
//   * origin nodes hold their packets from round 0 (latency 0);
//   * a DataMsg or PlainPacketMsg delivery carrying m hands it to the
//     receiver directly (overheard Stage-3 unicasts count: the bits
//     reached the node);
//   * for coded traffic the tracer mirrors the receiver's GF(2) decoder
//     with a payload-free gf2::MaskRank per (node, group) — fed the same
//     unit rows (PlainPacketMsg) and coefficient masks (CodedMsg) the
//     DisseminationState feeds its IncrementalDecoder. MaskRank and the
//     decoder's packed path share one pivot-elimination routine
//     (gf2::reduce_pivot_mask), so the tracker reaches rank completeness
//     in exactly the round the decoder does — that is the decode event
//     for every packet of the group.
//
// Each first-hold record keeps the delivering neighbor and a hop depth
// (depth of the sender when it transmitted, plus one), so the tracer can
// answer "along which hops did m travel" — the flight path — as well as
// produce per-packet delivery-latency vectors and LogHistograms.
//
// Contract (same as every audit hook): read-only, zero RNG draws, no
// effect on the run. All state is a pure function of the deterministic
// event stream, so traced outputs are reproducible byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gf2/solver.hpp"
#include "obs/histogram.hpp"
#include "radio/audit_hook.hpp"

namespace radiocast::obs {

class PacketTracer final : public radio::NetworkAuditHook {
 public:
  /// How node v came to hold a packet.
  enum class Via : std::uint8_t {
    kOrigin = 0,  ///< held at round 0 (v is the packet's origin)
    kData,        ///< Stage-3 DataMsg delivery (addressed or overheard)
    kPlain,       ///< uncoded PlainPacketMsg delivery
    kDecode,      ///< GF(2) rank-complete event of the packet's group
  };
  static const char* via_name(Via via);

  /// One first-hold record on a packet's flight path. `latency` is the
  /// number of rounds elapsed when the node first held the packet: 0 for
  /// origin seeds, r + 1 for a reception (or decode) in round r.
  struct FlightEvent {
    std::uint64_t latency = 0;
    std::uint32_t packet = 0;  ///< index into truth order (sorted by id)
    radio::NodeId node = 0;
    radio::NodeId from = 0;  ///< delivering neighbor (== node for origins)
    std::uint16_t depth = 0;  ///< hops from the origin along this path
    Via via = Via::kOrigin;
  };

  struct Options {
    /// Keep the per-event flight log (first-hold records in chronological
    /// order). Latency cells are always kept; only the log is optional.
    bool flight_paths = true;
    /// Cap on the flight log; events past it are counted, not kept.
    std::size_t max_flight_events = 1u << 20;
  };

  PacketTracer() : PacketTracer(Options{}) {}
  explicit PacketTracer(Options opts) : opts_(opts) {}

  /// Arms the tracer for one run: `truth` is the sorted-by-id ground truth
  /// (core::placement_packets) and `group_size` the protocol's coding
  /// group width (ResolvedConfig::group_size) used to map rank-complete
  /// events back to packet indices. Resets all prior state.
  void begin_trial(std::uint32_t num_nodes,
                   const std::vector<radio::Packet>& truth,
                   std::uint32_t group_size);

  /// Marks `node` as holding packet `id` from round 0 (initial placement).
  void seed_packet(radio::PacketId id, radio::NodeId node);

  // --- radio::NetworkAuditHook (only on_deliver carries information the
  // tracer needs; the rest are no-ops) ---
  void on_sim_start(const std::vector<radio::NodeId>&) override {}
  void on_transmissions(radio::Round, const std::vector<radio::Message>&) override {}
  void on_deliver(radio::Round round, radio::NodeId receiver,
                  std::uint32_t tx_index, const radio::Message& msg) override;
  void on_collision_slot(radio::Round, radio::NodeId, std::uint32_t, bool) override {}
  void on_deaf_slot(radio::Round, radio::NodeId, std::uint32_t) override {}
  void on_fault_drop(radio::Round, radio::NodeId, std::uint32_t) override {}
  void on_node_wake(radio::Round, radio::NodeId) override {}
  void on_round_end(radio::Round) override {}

  // --- Queries (valid after / during a trial) ---
  std::uint32_t num_nodes() const { return n_; }
  std::uint32_t num_packets() const { return k_; }
  const std::vector<radio::Packet>& truth() const { return truth_; }

  /// True iff `node` ever held packet `packet` (index into truth order).
  bool held(std::uint32_t packet, radio::NodeId node) const;
  /// Rounds elapsed when `node` first held `packet`; UINT64_MAX if never.
  std::uint64_t latency(std::uint32_t packet, radio::NodeId node) const;
  /// Delivering neighbor / hop depth / mechanism of the first hold.
  radio::NodeId delivered_by(std::uint32_t packet, radio::NodeId node) const;
  std::uint16_t hop_depth(std::uint32_t packet, radio::NodeId node) const;
  Via via(std::uint32_t packet, radio::NodeId node) const;

  /// Nodes that never held `packet`.
  std::uint32_t undelivered(std::uint32_t packet) const;

  /// All first-hold latencies of `packet` at non-origin nodes.
  LogHistogram packet_latencies(std::uint32_t packet) const;
  /// Same, pooled over every packet.
  LogHistogram all_latencies() const;

  /// Chronological first-hold log (empty unless Options::flight_paths).
  const std::vector<FlightEvent>& flight_events() const { return flights_; }
  /// The events of one packet, in chronological order.
  std::vector<FlightEvent> flight_path(std::uint32_t packet) const;
  /// Events discarded because the flight log was full.
  std::uint64_t dropped_flight_events() const { return dropped_flights_; }

 private:
  /// Latency cell: one per (packet, node). latency_plus1 == 0 means the
  /// node never held the packet; otherwise latency == latency_plus1 - 1.
  struct Cell {
    std::uint32_t latency_plus1 = 0;
    radio::NodeId from = 0;
    std::uint16_t depth = 0;
    Via via = Via::kOrigin;
  };

  Cell& cell(std::uint32_t packet, radio::NodeId node) {
    return cells_[static_cast<std::size_t>(packet) * n_ + node];
  }
  const Cell& cell(std::uint32_t packet, radio::NodeId node) const {
    return cells_[static_cast<std::size_t>(packet) * n_ + node];
  }

  /// Index of `id` in truth order; k_ if the id is not ground truth.
  std::uint32_t packet_index(radio::PacketId id) const;
  void record(std::uint32_t packet, radio::NodeId node, std::uint64_t latency,
              radio::NodeId from, Via via);
  /// Feeds one coefficient mask into (node, group)'s rank tracker; fires
  /// the group's decode events when it completes.
  void feed_row(radio::NodeId node, std::uint32_t group_id, std::uint64_t mask,
                std::uint64_t latency, radio::NodeId from);
  std::uint32_t group_width(std::uint32_t group_id) const;

  Options opts_;
  std::uint32_t n_ = 0;
  std::uint32_t k_ = 0;
  std::uint32_t group_size_ = 0;
  std::uint32_t group_count_ = 0;
  std::vector<radio::Packet> truth_;
  std::vector<radio::PacketId> truth_ids_;  ///< sorted, for id -> index
  std::vector<Cell> cells_;                 ///< k_ x n_, packet-major
  /// Per (node, group) decode state, node-major. A completed group drops
  /// its tracker and keeps only the done flag.
  std::vector<std::unique_ptr<gf2::MaskRank>> trackers_;
  std::vector<std::uint8_t> group_done_;
  std::vector<FlightEvent> flights_;
  std::uint64_t dropped_flights_ = 0;
};

}  // namespace radiocast::obs
