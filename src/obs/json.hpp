// Minimal streaming JSON writer shared by the observability exporters and
// the bench JSON reports.
//
// The writer emits syntactically valid JSON to any std::ostream with no
// intermediate document tree: objects and arrays are opened/closed
// explicitly and commas are inserted automatically. Numbers are printed in
// a locale-independent, round-trippable form so golden-output tests can
// compare bytes.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace radiocast::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes added).
std::string json_escape(std::string_view s);

/// Comma-managing streaming emitter (see the file comment for guarantees).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  /// Container delimiters; sibling commas are inserted automatically.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes the key of the next object member. Must be inside an object.
  JsonWriter& key(std::string_view k);

  /// Writes one scalar (an array element, or a member value after key()).
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(std::int32_t v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Ends the current line (for JSONL output between top-level values).
  JsonWriter& newline();

 private:
  /// Placed before any value or key: emits "," unless this is the first
  /// element of the enclosing container.
  void separator();

  std::ostream& out_;
  /// One entry per open container: true once it has at least one element.
  std::vector<bool> has_element_;
  /// True immediately after key() — the next value is a member value and
  /// must not emit a separator.
  bool after_key_ = false;
};

}  // namespace radiocast::obs
