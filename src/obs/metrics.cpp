#include "obs/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace radiocast::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  RC_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be sorted ascending");
  counts_.assign(bounds_.size() + 1, 0);  // +1: overflow bucket
}

void Histogram::observe(double x) {
  ++count_;
  sum_ += x;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
}

std::vector<double> Histogram::pow2_bounds(std::uint32_t max_exponent) {
  std::vector<double> b;
  b.push_back(0.0);
  for (std::uint32_t e = 0; e <= max_exponent; ++e) {
    b.push_back(static_cast<double>(std::uint64_t{1} << e));
  }
  return b;
}

namespace {

std::string instrument_key(std::string_view name, LabelSet& labels) {
  std::sort(labels.begin(), labels.end());
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '|';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

}  // namespace

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(std::string_view name,
                                                             LabelSet labels) {
  const std::string key = instrument_key(name, labels);
  auto [it, inserted] = instruments_.try_emplace(key);
  if (inserted) {
    it->second.name = std::string(name);
    it->second.labels = std::move(labels);
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, LabelSet labels) {
  Instrument& inst = find_or_create(name, std::move(labels));
  RC_ASSERT_MSG(!inst.gauge && !inst.histogram,
                "metric already registered with a different type");
  if (!inst.counter) inst.counter = std::make_unique<Counter>();
  return *inst.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, LabelSet labels) {
  Instrument& inst = find_or_create(name, std::move(labels));
  RC_ASSERT_MSG(!inst.counter && !inst.histogram,
                "metric already registered with a different type");
  if (!inst.gauge) inst.gauge = std::make_unique<Gauge>();
  return *inst.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, LabelSet labels,
                                      std::vector<double> bounds) {
  Instrument& inst = find_or_create(name, std::move(labels));
  RC_ASSERT_MSG(!inst.counter && !inst.gauge,
                "metric already registered with a different type");
  if (!inst.histogram) inst.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *inst.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.reserve(instruments_.size());
  // std::map iteration order == key order == (name, sorted labels): the
  // snapshot is deterministic, which the golden-output tests rely on.
  for (const auto& [key, inst] : instruments_) {
    MetricSample s;
    s.name = inst.name;
    s.labels = inst.labels;
    if (inst.counter) {
      s.type = MetricSample::Type::kCounter;
      s.value = static_cast<double>(inst.counter->value());
    } else if (inst.gauge) {
      s.type = MetricSample::Type::kGauge;
      s.value = inst.gauge->value();
    } else {
      RC_ASSERT(inst.histogram != nullptr);
      s.type = MetricSample::Type::kHistogram;
      s.value = inst.histogram->sum();
      s.bounds = inst.histogram->bounds();
      s.counts = inst.histogram->counts();
      s.count = inst.histogram->count();
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace radiocast::obs
