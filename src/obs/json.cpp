#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace radiocast::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ << ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ << '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RC_ASSERT(!has_element_.empty());
  has_element_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ << '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RC_ASSERT(!has_element_.empty());
  has_element_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separator();
  out_ << '"' << json_escape(k) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separator();
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out_ << "null";
    return *this;
  }
  // Integral doubles print without an exponent or trailing zeros so golden
  // outputs are stable; everything else uses round-trippable %.17g.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    out_ << static_cast<std::int64_t>(v);
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::newline() {
  RC_ASSERT_MSG(has_element_.empty(), "newline inside an open container");
  out_ << '\n';
  return *this;
}

}  // namespace radiocast::obs
