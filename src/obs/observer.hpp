// RunObserver — the flight recorder's sink, wired through an end-to-end
// run (core::run_kbroadcast) when observability is requested.
//
// Two producers feed it:
//   * radio::Network::step calls on_round() once per round with that
//     round's channel-activity deltas (allocation-free: the stats struct
//     points into scratch arrays owned by the network);
//   * the k-broadcast protocol state machines (on the expected leader
//     node only — stage schedules are global, so one node's view is the
//     run's view) call the on_stage / on_collection_* hooks at stage
//     transitions, collection-phase boundaries (each doubling of the
//     estimate x), and OSPG/MSPG/ALARM epoch boundaries.
//
// The observer turns these into (a) a hierarchical span tree
// stage > phase > epoch whose sibling spans tile their parent exactly —
// per-epoch round counts sum to the run's total_rounds — and (b) labelled
// metrics: per-stage round/transmission/delivery/collision counters split
// by message kind, plus per-round activity histograms.
//
// This header depends only on metrics.hpp/recorder.hpp (std-only), so the
// radio layer can include it without a dependency cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace radiocast::obs {

/// One round's channel activity, reported by the simulation engine. The
/// per-kind arrays are parallel to `kind_names` and live in scratch owned
/// by the caller — valid only for the duration of on_round().
struct RoundStats {
  std::uint64_t round = 0;
  /// Nodes awake when the round's transmission decisions were made.
  std::uint32_t awake = 0;
  std::uint32_t transmissions = 0;
  std::uint32_t deliveries = 0;
  std::uint32_t collision_slots = 0;
  std::uint32_t deaf_slots = 0;
  std::uint32_t fault_drops = 0;
  std::uint32_t wakeups = 0;
  std::size_t num_kinds = 0;
  const char* const* kind_names = nullptr;
  const std::uint32_t* transmissions_by_kind = nullptr;
  const std::uint32_t* deliveries_by_kind = nullptr;
};

/// Channel-utilization ledger: how every round's slot budget was spent,
/// attributed to the protocol stage (and collection epoch) open when the
/// round ran. Fed by RunObserver::on_round when enabled.
///
/// Slot taxonomy per round (counts straight from RoundStats):
///   transmissions | deliveries (single-transmit successes) | collisions |
///   deaf (half-duplex losses at transmitters) | faults (erased
///   successes) | silent — awake listeners that heard nothing, derived as
///   (awake - transmissions) - ((deliveries - wakeups) + collisions +
///   faults) clamped at zero. The derivation is a lower bound: collision
///   and fault slots at still-sleeping nodes are indistinguishable from
///   awake-listener ones in the per-round deltas, and under the CD
///   ablation wake-ups can stem from collisions. Per-round rows are kept
///   up to `max_rounds` (drops counted, never silent); per-(stage, epoch)
///   aggregates always cover the whole run.
class ChannelLedger {
 public:
  struct Row {
    std::uint64_t round = 0;
    std::uint32_t stage = 0;  ///< index into stage_names()
    std::uint32_t epoch = 0;  ///< index into epoch_names(); 0 = none
    std::uint32_t awake = 0;
    std::uint32_t transmissions = 0;
    std::uint32_t deliveries = 0;
    std::uint32_t collisions = 0;
    std::uint32_t deaf = 0;
    std::uint32_t faults = 0;
    std::uint32_t silent = 0;
  };
  /// Whole-run totals for one (stage, epoch-kind) slice, in first-seen
  /// (i.e. chronological) order.
  struct Aggregate {
    std::string stage;
    std::string epoch;  ///< "" outside collection epochs
    std::uint64_t rounds = 0;
    std::uint64_t awake = 0;  ///< sum of per-round awake counts
    std::uint64_t transmissions = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t collisions = 0;
    std::uint64_t deaf = 0;
    std::uint64_t faults = 0;
    std::uint64_t silent = 0;
  };

  explicit ChannelLedger(std::size_t max_rounds) : max_rounds_(max_rounds) {}

  /// The derived silent-slot count (see the class comment).
  static std::uint32_t silent_slots(const RoundStats& stats);

  void on_round(const RoundStats& stats, const std::string& stage,
                const std::string& epoch);

  const std::vector<Row>& rows() const { return rows_; }
  std::uint64_t dropped_rows() const { return dropped_rows_; }
  const std::vector<std::string>& stage_names() const { return stage_names_; }
  const std::vector<std::string>& epoch_names() const { return epoch_names_; }
  const std::vector<Aggregate>& aggregates() const { return aggregates_; }

 private:
  std::uint32_t intern(std::vector<std::string>& names, const std::string& name);

  std::size_t max_rounds_;
  std::vector<Row> rows_;
  std::uint64_t dropped_rows_ = 0;
  std::vector<std::string> stage_names_;
  std::vector<std::string> epoch_names_{""};  ///< index 0 = "no epoch"
  std::vector<Aggregate> aggregates_;
  /// Cache of the aggregate slot the last round landed in (rounds switch
  /// stage/epoch rarely, so the linear re-scan is off the common path).
  std::size_t last_aggregate_ = SIZE_MAX;
};

/// The flight recorder's sink: channel stats + protocol hooks in, span
/// tree + labelled metrics out (see the file comment).
class RunObserver {
 public:
  /// Knobs for what gets recorded (all on by default).
  struct Options {
    SpanRecorder::Options recorder;
    /// Split per-stage transmission/delivery counters by message kind.
    bool per_kind_metrics = true;
    /// Record per-round transmission/delivery histograms per stage.
    bool round_histograms = true;
    /// Keep a per-round channel-utilization ledger (off by default: the
    /// per-round rows are telemetry-sized, not metrics-sized).
    bool channel_ledger = false;
    /// Per-round row cap for the ledger (aggregates are never capped).
    std::size_t ledger_max_rounds = 1u << 16;
  };

  RunObserver() : RunObserver(Options{}) {}
  explicit RunObserver(Options opts);

  // --- Fed by radio::Network (every round) ---
  /// Folds one round's channel activity into the current stage's metrics.
  void on_round(const RoundStats& stats);

  // --- Fed by the protocol state machines (leader node) ---
  /// A new stage begins at `round`; closes the previous stage (and any
  /// open phase/epoch spans). `stage_index` is 1-based.
  void on_stage(std::uint32_t stage_index, const char* name, std::uint64_t round);
  /// A Stage-3 collection phase begins with estimate x.
  void on_collection_phase_begin(std::uint32_t phase_index, std::uint64_t estimate,
                                 std::uint64_t round);
  /// An epoch within the current phase begins ("ospg", "mspg", "alarm");
  /// closes the previous epoch. `slots`/`copies` describe the gather
  /// window (0 for alarm epochs).
  void on_collection_epoch(const char* kind, std::uint64_t slots,
                           std::uint32_t copies, std::uint64_t round);
  /// The current phase ends; `alarmed` is the alarm outcome that decides
  /// between doubling and finishing.
  void on_collection_phase_end(std::uint64_t round, bool alarmed);

  /// Closes every span still open (the run is over at `end_round`).
  void finish(std::uint64_t end_round);

  // --- Results ---
  /// Live access to the underlying registry / recorder.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  SpanRecorder& recorder() { return recorder_; }
  const SpanRecorder& recorder() const { return recorder_; }

  /// Point-in-time copies, safe to keep after the observer is destroyed.
  std::vector<Span> spans() const { return recorder_.snapshot(); }
  MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

  /// Name of the stage currently open ("" before the first on_stage).
  const std::string& current_stage() const { return stage_name_; }

  /// The channel-utilization ledger (nullptr unless Options enabled it).
  const ChannelLedger* ledger() const { return ledger_.get(); }

 private:
  /// Re-resolves the cached per-stage instrument pointers (called on every
  /// stage transition; lookups are off the per-round hot path).
  void rebind_stage_instruments();
  void close_epoch(std::uint64_t round);
  void close_phase(std::uint64_t round);
  void close_stage(std::uint64_t round);

  Options opts_;
  MetricsRegistry metrics_;
  SpanRecorder recorder_;

  std::string stage_name_;
  std::string epoch_name_;  ///< open collection epoch ("" outside epochs)
  std::unique_ptr<ChannelLedger> ledger_;
  std::uint64_t stage_span_ = 0;
  std::uint64_t phase_span_ = 0;
  std::uint64_t epoch_span_ = 0;
  std::uint64_t last_round_seen_ = 0;

  // Hot-path instrument cache, rebound per stage.
  Counter* rounds_ = nullptr;
  Counter* transmissions_ = nullptr;
  Counter* deliveries_ = nullptr;
  Counter* collisions_ = nullptr;
  Counter* deaf_ = nullptr;
  Counter* fault_drops_ = nullptr;
  Counter* wakeups_ = nullptr;
  Histogram* tx_per_round_ = nullptr;
  Histogram* rx_per_round_ = nullptr;
  std::vector<Counter*> tx_by_kind_;
  std::vector<Counter*> rx_by_kind_;
  std::vector<std::string> kind_names_;
};

}  // namespace radiocast::obs
