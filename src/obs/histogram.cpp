#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.hpp"

namespace radiocast::obs {

std::size_t LogHistogram::bucket_index(std::uint64_t value) {
  if (value == 0) return 0;
  return static_cast<std::size_t>(64 - std::countl_zero(value));
}

std::uint64_t LogHistogram::bucket_upper(std::size_t bucket) {
  RC_ASSERT(bucket < kNumBuckets);
  if (bucket == 0) return 0;
  if (bucket == 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

std::uint64_t LogHistogram::bucket_lower(std::size_t bucket) {
  RC_ASSERT(bucket < kNumBuckets);
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

void LogHistogram::add(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buckets_[bucket_index(value)] += count;
  count_ += count;
  sum_ += value * count;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank, 1-based: the smallest rank whose cumulative count covers
  // a q fraction of the samples. Integer thereafter — no float ties.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    cum += buckets_[b];
    if (cum >= rank) return std::clamp(bucket_upper(b), min_, max_);
  }
  return max_;
}

}  // namespace radiocast::obs
