#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/assert.hpp"

namespace radiocast {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RC_ASSERT(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& value) {
  RC_ASSERT_MSG(!rows_.empty(), "call row() before add()");
  RC_ASSERT_MSG(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::add(const char* value) { return add(std::string(value)); }

Table& Table::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return add(std::string(buf));
}

Table& Table::add(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return add(std::string(buf));
}

Table& Table::add(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  return add(std::string(buf));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << ' ' << cell;
      for (std::size_t pad = cell.size(); pad < widths[c]; ++pad) out << ' ';
      out << " |";
    }
    out << '\n';
  };

  print_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) out << '-';
    out << "|";
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_meta(std::ostream& out, const std::string& key, const std::string& value) {
  out << "# " << key << ": " << value << '\n';
}

}  // namespace radiocast
