// ASCII table writer for benchmark output.
//
// Every bench binary in bench/ prints paper-style tables; this writer keeps
// them aligned and machine-greppable (a `#` prefix marks metadata lines so
// downstream plotting scripts can skip them).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace radiocast {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; values are appended with `add`.
  Table& row();

  Table& add(const std::string& value);
  Table& add(const char* value);
  Table& add(double value, int precision = 2);
  Table& add(std::int64_t value);
  Table& add(std::uint64_t value);
  Table& add(int value) { return add(static_cast<std::int64_t>(value)); }
  Table& add(unsigned value) { return add(static_cast<std::uint64_t>(value)); }

  /// Renders the table (header, separator, rows) to `out`.
  void print(std::ostream& out) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a `# key: value` metadata line understood by the plotting helpers.
void print_meta(std::ostream& out, const std::string& key, const std::string& value);

}  // namespace radiocast
