// Small integer-math helpers used throughout the protocol schedules.
//
// The paper's schedules are all phrased in terms of ceil(log2 .) quantities
// (log n, log Delta); we centralize the exact rounding conventions here so
// every stage computes identical phase lengths.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace radiocast {

/// ceil(log2(x)) for x >= 1; ceil_log2(1) == 0.
constexpr std::uint32_t ceil_log2(std::uint64_t x) {
  RC_DCHECK(x >= 1);
  return x <= 1 ? 0u
               : static_cast<std::uint32_t>(
                     64 - std::countl_zero(static_cast<std::uint64_t>(x - 1)));
}

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t floor_log2(std::uint64_t x) {
  RC_DCHECK(x >= 1);
  return static_cast<std::uint32_t>(63 - std::countl_zero(x));
}

/// ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  RC_DCHECK(b > 0);
  return (a + b - 1) / b;
}

/// The paper's `⌈log n⌉`, but never less than 1 — the group size and header
/// width in Stage 4 must be positive even for toy networks with n <= 2.
constexpr std::uint32_t log2_at_least_one(std::uint64_t x) {
  const std::uint32_t v = ceil_log2(x);
  return v == 0 ? 1u : v;
}

/// Next power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  RC_DCHECK(x >= 1);
  return x <= 1 ? 1ULL : (1ULL << ceil_log2(x));
}

}  // namespace radiocast
