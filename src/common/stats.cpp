#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace radiocast {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (buffer_.size() < kPercentileBuffer) buffer_.push_back(x);
}

double RunningStats::percentile(double q) const {
  RC_ASSERT(q >= 0.0 && q <= 1.0);
  if (buffer_.empty()) return 0.0;
  std::vector<double> sorted(buffer_);
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const std::size_t rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))));
  return sorted[std::min(rank, n) - 1];
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  RC_ASSERT(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  RC_ASSERT(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double SampleSet::quantile(double q) const {
  RC_ASSERT(!samples_.empty());
  RC_ASSERT(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

namespace {
constexpr double kZ95 = 1.959963984540054;

double wilson_bound(std::uint64_t successes, std::uint64_t trials, bool upper) {
  if (trials == 0) return upper ? 1.0 : 0.0;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = kZ95 * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  const double bound = (center + (upper ? margin : -margin)) / denom;
  return std::clamp(bound, 0.0, 1.0);
}
}  // namespace

double BernoulliCounter::wilson_lower95() const {
  return wilson_bound(successes_, trials_, /*upper=*/false);
}

double BernoulliCounter::wilson_upper95() const {
  return wilson_bound(successes_, trials_, /*upper=*/true);
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  RC_ASSERT(x.size() == y.size());
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace radiocast
