// The paper's probabilistic toolbox (Section 1.1 / Appendix A) as
// executable formulas, so tests and benches can check the stated tail
// bounds against Monte-Carlo truth.
//
//   Lemma 1 (Bernoulli sum): with r = ⌊(3d + 2τ)/p⌋ trials of success
//   probability p, Pr(fewer than d successes) <= e^-τ.
//
//   Lemma 2 (geometric sum): for independent geometrics X_i with
//   parameters p_i, μ = Σ 1/p_i, Pr(Σ X_i >= 2μ + 4·ln(1/ε)/p_min) <= ε.
//
//   Lemma 3 (random binary matrix): an l×w iid-uniform GF(2) matrix has
//   full column rank with probability >= 1-ε once
//   l >= 2(w+2) + 8·ln(1/ε)   (see gf2::Matrix for the object itself).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace radiocast {

/// Lemma 1's trial count r = ⌊(3d + 2τ)/p⌋.
inline std::uint64_t lemma1_trials(double p, double d, double tau) {
  RC_ASSERT(p > 0.0 && p <= 1.0);
  RC_ASSERT(d >= 1.0 && tau >= 0.0);
  return static_cast<std::uint64_t>(std::floor((3.0 * d + 2.0 * tau) / p));
}

/// Lemma 1's failure-probability bound e^-τ.
inline double lemma1_bound(double tau) { return std::exp(-tau); }

/// Lemma 2's threshold t = 2μ + 4·ln(1/ε)/p_min for the given parameters.
inline double lemma2_threshold(const std::vector<double>& ps, double eps) {
  RC_ASSERT(!ps.empty());
  RC_ASSERT(eps > 0.0 && eps < 1.0);
  double mu = 0.0;
  double p_min = 1.0;
  for (double p : ps) {
    RC_ASSERT(p > 0.0 && p <= 1.0);
    mu += 1.0 / p;
    p_min = std::min(p_min, p);
  }
  return 2.0 * mu + 4.0 * std::log(1.0 / eps) / p_min;
}

/// Lemma 3's row threshold l = ⌈2(w+2) + 8·ln(1/ε)⌉.
inline std::uint64_t lemma3_rows(std::uint64_t w, double eps) {
  RC_ASSERT(eps > 0.0 && eps < 1.0);
  return static_cast<std::uint64_t>(
      std::ceil(2.0 * (static_cast<double>(w) + 2.0) + 8.0 * std::log(1.0 / eps)));
}

}  // namespace radiocast
