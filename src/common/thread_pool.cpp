#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace radiocast {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

unsigned ThreadPool::default_concurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace radiocast
