#include "common/rng.hpp"

// Header-only implementation; this translation unit exists so the module has
// a stable home in the build graph and a place for future out-of-line code.
