// Fixed-size thread pool for embarrassingly parallel trial fan-out.
//
// Deliberately work-stealing-free: one mutex-protected FIFO feeds all
// workers. Monte Carlo trials are coarse (milliseconds to seconds each),
// so queue contention is negligible and the simple design keeps the
// scheduling order — and therefore thread assignment — easy to reason
// about. Results must not depend on which worker ran a task; the
// montecarlo driver guarantees that by giving every trial its own Rng,
// Network, and output slot.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace radiocast {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned num_threads);

  /// Joins all workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw (wrap and capture exceptions at
  /// the call site — see core::montecarlo for the pattern).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. The pool is
  /// reusable afterwards.
  void wait_idle();

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  static unsigned default_concurrency();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers sleep here
  std::condition_variable idle_cv_;  ///< wait_idle sleeps here
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< tasks popped but not finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace radiocast
