// Deterministic pseudo-random number generation for radiocast.
//
// Every randomized component in the library draws from an explicitly seeded
// Rng so that a whole simulation is reproducible from a single 64-bit seed.
// The generator is xoshiro256** (public domain, Blackman & Vigna), seeded
// via splitmix64 as its authors recommend. We deliberately do not use
// std::mt19937 because its state-space seeding from a single word is poor
// and its implementation is allowed to differ subtly across standard
// libraries; xoshiro gives us bit-identical streams everywhere.
//
// Rng also provides `split()`, which derives an independent child stream.
// The simulator gives each node its own child stream, so that the behaviour
// of one node does not depend on how many random draws another node made —
// this is essential for the "same seed => same run" property under protocol
// refactoring.
#pragma once

#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace radiocast {

/// splitmix64 step: used for seeding and stream splitting.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience sampling helpers.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a single 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9df3a2b1c4e5f607ULL) { reseed(seed); }

  /// Re-initializes the state from `seed` (full splitmix64 expansion).
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly random bits.
  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child generator. The child stream is a
  /// deterministic function of the parent state, and advancing the parent
  /// once decorrelates subsequent children.
  Rng split() {
    std::uint64_t s = (*this)();
    Rng child(0);
    std::uint64_t sm = s ^ 0x5851f42d4c957f2dULL;
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) {
    RC_DCHECK(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) {
    RC_DCHECK(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// A single uniformly random bit.
  bool next_bit() { return ((*this)() >> 63) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace radiocast
