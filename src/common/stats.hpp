// Statistics accumulators used by the benchmark harness and by tests that
// validate probabilistic claims (reception probabilities, w.h.p. bounds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace radiocast {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Also retains the first kPercentileBuffer samples so percentile() is
/// *exact* (nearest-rank on a sorted copy) for the sample counts the bench
/// harness actually sees; past that the buffer stops growing and
/// percentile() degrades to a nearest-rank estimate over the retained
/// prefix — percentile_exact() reports which regime applies. The result is
/// deterministic either way: it depends only on the multiset (and, beyond
/// the buffer, the order) of added samples, never on wall clock or
/// addresses.
class RunningStats {
 public:
  /// Samples retained for exact percentiles; bench tables reduce over
  /// seeds (≤ a few dozen), so this covers them with exactness to spare.
  static constexpr std::size_t kPercentileBuffer = 64;

  void add(double x);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// CAUTION: min()/max() return 0.0 on an empty accumulator, which is
  /// indistinguishable from a real 0.0 sample — check empty() first when
  /// the distinction matters.
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  /// Nearest-rank percentile (rank = max(1, ceil(q*n)), q in [0, 1]) over
  /// the retained sample buffer — an order statistic of the actual
  /// samples, never an interpolated value. Exact while
  /// percentile_exact(); 0.0 on an empty accumulator (same caveat as
  /// min()/max()).
  double percentile(double q) const;
  double median() const { return percentile(0.5); }
  /// True while every added sample is still retained, i.e. count() <=
  /// kPercentileBuffer, so percentile() is exact.
  bool percentile_exact() const { return count_ <= kPercentileBuffer; }

  /// Half-width of a normal-approximation 95% confidence interval on the
  /// mean. Zero for fewer than two samples.
  double ci95_halfwidth() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::vector<double> buffer_;  // first kPercentileBuffer samples
};

/// Accumulator that stores every sample; supports exact quantiles.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Exact quantile by linear interpolation between order statistics;
  /// q in [0, 1]. Must not be called on an empty set.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Counter for Bernoulli experiments: tracks successes / trials and exposes
/// a Wilson-score interval, which behaves sensibly near 0 and 1 (where the
/// w.h.p. claims live).
class BernoulliCounter {
 public:
  void add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }

  std::uint64_t trials() const { return trials_; }
  std::uint64_t successes() const { return successes_; }
  double rate() const {
    return trials_ == 0 ? 0.0 : static_cast<double>(successes_) / static_cast<double>(trials_);
  }

  /// Lower bound of the 95% Wilson score interval for the success rate.
  double wilson_lower95() const;
  /// Upper bound of the 95% Wilson score interval for the success rate.
  double wilson_upper95() const;

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

/// Ordinary least-squares fit of y = a + b*x; used by scaling benches to
/// report empirical slopes against log Delta / log n predictors.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1].
  double r2 = 0.0;
};

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace radiocast
