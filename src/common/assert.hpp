// Lightweight contract checking for radiocast.
//
// RC_ASSERT is a hard invariant check that stays on in every build type:
// simulator correctness depends on these invariants and the cost is
// negligible compared to the round loop. RC_DCHECK compiles out in NDEBUG
// builds and is meant for hot-path checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace radiocast::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "radiocast assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace radiocast::detail

#define RC_ASSERT(expr)                                                       \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::radiocast::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
    }                                                                         \
  } while (0)

#define RC_ASSERT_MSG(expr, msg)                                              \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::radiocast::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define RC_DCHECK(expr) ((void)0)
#else
#define RC_DCHECK(expr) RC_ASSERT(expr)
#endif
