#include "core/dissemination.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/math_util.hpp"

namespace radiocast::core {

gf2::Payload packet_wire_image(const radio::Packet& packet) {
  gf2::Payload wire;
  packet_wire_image_into(packet, wire);
  return wire;
}

void packet_wire_image_into(const radio::Packet& packet, gf2::Payload& out) {
  out.resize(8 + packet.payload.size());
  for (int b = 0; b < 8; ++b) {
    out[b] = static_cast<std::uint8_t>((packet.id >> (8 * b)) & 0xff);
  }
  std::copy(packet.payload.begin(), packet.payload.end(), out.begin() + 8);
}

namespace {

/// Copy of `src` whose payload buffer comes from `arena` when available
/// (byte-identical either way; see radio::PayloadArena).
radio::Packet copy_packet(const radio::Packet& src, radio::PayloadArena* arena) {
  radio::Packet out;
  out.id = src.id;
  out.payload = arena != nullptr ? arena->acquire_copy(src.payload) : src.payload;
  return out;
}

}  // namespace

radio::Packet packet_from_wire_image(const gf2::Payload& wire) {
  RC_ASSERT(wire.size() >= 8);
  radio::Packet packet;
  packet.id = 0;
  for (int b = 0; b < 8; ++b) {
    packet.id |= static_cast<radio::PacketId>(wire[b]) << (8 * b);
  }
  packet.payload.assign(wire.begin() + 8, wire.end());
  return packet;
}

DisseminationState::DisseminationState(const Config& cfg, radio::NodeId self,
                                       bool is_root, std::optional<std::uint32_t> dist,
                                       Rng* rng)
    : cfg_(cfg), self_(self), is_root_(is_root), dist_(dist), rng_(rng) {
  RC_ASSERT(rng != nullptr);
  if (is_root_) {
    RC_ASSERT(!dist.has_value() || *dist == 0);
    dist_ = 0;
  }
  epoch_len_ = cfg_.rc.know.log_delta();
  forward_rounds_ = static_cast<std::uint64_t>(cfg_.rc.forward_epochs) * epoch_len_;
  decay_prob_.reserve(epoch_len_);
  for (std::uint32_t s = 0; s < epoch_len_; ++s) {
    decay_prob_.push_back(1.0 / static_cast<double>(1ULL << (s + 1)));
  }
  slot_base_ = is_root_ ? 0 : (dist_.has_value() ? *dist_ : 0);
}

void DisseminationState::set_root_packets(std::vector<radio::Packet> packets) {
  RC_ASSERT(is_root_);
  std::sort(packets.begin(), packets.end(),
            [](const radio::Packet& a, const radio::Packet& b) { return a.id < b.id; });
  const std::uint32_t s = cfg_.rc.group_size;
  group_count_ = packets.empty()
                     ? 0
                     : static_cast<std::uint32_t>(ceil_div(packets.size(), s));
  group_count_known_ = true;
  groups_.clear();
  groups_.resize(group_count_);
  for (std::uint32_t j = 0; j < group_count_; ++j) {
    GroupState& gs = groups_[j];
    const std::size_t begin = static_cast<std::size_t>(j) * s;
    const std::size_t end = std::min(packets.size(), begin + s);
    gs.size = static_cast<std::uint16_t>(end - begin);
    gs.packets.assign(packets.begin() + begin, packets.begin() + end);
    gs.complete = true;
  }
  refresh_complete();
}

void DisseminationState::ensure_groups(std::uint32_t group_count) {
  if (!group_count_known_) {
    group_count_ = group_count;
    group_count_known_ = true;
    groups_.resize(group_count);
    refresh_complete();
  }
  RC_ASSERT_MSG(group_count_ == group_count, "inconsistent group_count in headers");
}

DisseminationState::GroupState& DisseminationState::group(std::uint32_t group_id,
                                                          std::uint16_t group_size) {
  RC_ASSERT(group_id < groups_.size());
  GroupState& gs = groups_[group_id];
  if (gs.size == 0) gs.size = group_size;
  RC_ASSERT(gs.size == group_size);
  if (!gs.decoder.has_value() && !gs.complete) {
    gs.decoder.emplace(gs.size);
  }
  return gs;
}

void DisseminationState::maybe_finish_group(GroupState& gs) {
  if (gs.complete || !gs.decoder.has_value() || !gs.decoder->complete()) return;
  // Drain the decoder by move (the basis buffers become the wire images
  // here — no copies) and hand the spent wires back to the arena once the
  // packets are parsed out of them.
  std::vector<gf2::Payload> wires = gs.decoder->take_packets();
  gs.packets.clear();
  gs.packets.reserve(gs.size);
  for (const gf2::Payload& wire : wires) {
    gs.packets.push_back(packet_from_wire_image(wire));
  }
  if (arena_ != nullptr) arena_->recycle_all(std::move(wires));
  gs.decoder.reset();
  gs.complete = true;
  refresh_complete();
}

void DisseminationState::refresh_complete() {
  if (!group_count_known_) {
    complete_ = false;
    return;
  }
  complete_ = std::all_of(groups_.begin(), groups_.end(),
                          [](const GroupState& gs) { return gs.complete; });
}

void DisseminationState::refresh_phase_slot() {
  const std::uint32_t spacing = cfg_.rc.group_spacing;
  const std::uint64_t rel_phase = phase_ - slot_base_;
  phase_slot_ = rel_phase % spacing;
  phase_group_ = rel_phase / spacing;
  phase_dirty_ = false;
}

std::optional<radio::MessageBody> DisseminationState::on_transmit(
    std::uint64_t rel_round) {
  // Advance the incremental round clock (see the header): divisions only
  // happen on a non-consecutive rel_round and once per phase change.
  const std::uint64_t phase_len = cfg_.rc.dissem_phase_rounds;
  if (clock_valid_ && rel_round == clock_round_ + 1) {
    if (++off_ == phase_len) {
      off_ = 0;
      epoch_off_ = 0;  // phase_len need not be a multiple of epoch_len_
      ++phase_;
      phase_dirty_ = true;
    } else if (++epoch_off_ == epoch_len_) {
      epoch_off_ = 0;
    }
  } else if (!clock_valid_ || rel_round != clock_round_) {
    phase_ = rel_round / phase_len;
    off_ = rel_round % phase_len;
    epoch_off_ = static_cast<std::uint32_t>(off_ % epoch_len_);
    phase_dirty_ = true;
    clock_valid_ = true;
  }
  clock_round_ = rel_round;

  if (is_root_) {
    // Injection phase for group j = phase / spacing.
    if (!group_count_known_) return std::nullopt;
    if (phase_dirty_) refresh_phase_slot();
    if (phase_slot_ != 0) return std::nullopt;
    const std::uint64_t j = phase_group_;
    if (j >= group_count_) return std::nullopt;
    const GroupState& gs = groups_[j];
    if (off_ >= gs.size) return std::nullopt;
    radio::PlainPacketMsg msg;
    msg.packet = copy_packet(gs.packets[off_], arena_);
    msg.group_id = static_cast<std::uint32_t>(j);
    msg.group_count = group_count_;
    msg.index_in_group = static_cast<std::uint16_t>(off_);
    msg.group_size = gs.size;
    return msg;
  }

  // Non-root layers forward group j in phase spacing*j + dist.
  if (!dist_.has_value() || *dist_ == 0 || !group_count_known_) return std::nullopt;
  if (phase_ < *dist_) return std::nullopt;
  if (phase_dirty_) refresh_phase_slot();
  if (phase_slot_ != 0) return std::nullopt;
  const std::uint64_t j = phase_group_;
  if (j >= group_count_) return std::nullopt;
  GroupState& gs = groups_[j];
  if (!gs.complete) return std::nullopt;  // failed to decode in time: sit out

  // FORWARD: Decay-paced coded (or plain) transmission.
  if (off_ >= forward_rounds_) return std::nullopt;
  if (!rng_->next_bool(decay_prob_[epoch_off_])) return std::nullopt;

  if (cfg_.rc.coded) {
    if (!gs.encoder.has_value()) {
      std::vector<gf2::Payload> wires;
      wires.reserve(gs.packets.size());
      for (const radio::Packet& p : gs.packets) wires.push_back(packet_wire_image(p));
      gs.encoder.emplace(std::move(wires));
    }
    radio::CodedMsg msg;
    msg.group_id = static_cast<std::uint32_t>(j);
    msg.group_count = group_count_;
    msg.group_size = gs.size;
    msg.payload = arena_ != nullptr ? arena_->acquire() : gf2::Payload();
    if (gs.size <= 64) {
      // Packed fast path: the subset draw and encoded bytes are identical
      // to the BitVec route below, without materializing the BitVec.
      msg.coeffs = gs.encoder->encode_random_word_into(*rng_, msg.payload);
    } else {
      const gf2::BitVec coeffs = gf2::BitVec::random(gs.size, *rng_);
      msg.coeffs = coeffs.to_word();
      gs.encoder->encode_into(coeffs, msg.payload);
    }
    return msg;
  }

  // Uncoded baseline: one uniformly chosen plain packet of the group.
  const auto index = static_cast<std::size_t>(rng_->next_below(gs.size));
  radio::PlainPacketMsg msg;
  msg.packet = copy_packet(gs.packets[index], arena_);
  msg.group_id = static_cast<std::uint32_t>(j);
  msg.group_count = group_count_;
  msg.index_in_group = static_cast<std::uint16_t>(index);
  msg.group_size = gs.size;
  return msg;
}

void DisseminationState::on_receive(std::uint64_t /*rel_round*/,
                                    const radio::Message& msg) {
  if (is_root_) return;  // the root already owns everything

  if (const auto* plain = std::get_if<radio::PlainPacketMsg>(&msg.body)) {
    if (plain->group_count == 0) return;
    ensure_groups(plain->group_count);
    GroupState& gs = group(plain->group_id, plain->group_size);
    if (gs.complete) return;
    ++rows_received_;
    if (gs.size <= 64) {
      gf2::Payload wire = arena_ != nullptr ? arena_->acquire() : gf2::Payload();
      packet_wire_image_into(plain->packet, wire);
      if (!gs.decoder->add_row_packed(1ULL << plain->index_in_group, wire)) {
        ++redundant_rows_;
        if (arena_ != nullptr) arena_->recycle(std::move(wire));
      }
    } else {
      gf2::CodedRow row;
      row.coeffs = gf2::BitVec::unit(gs.size, plain->index_in_group);
      row.payload = packet_wire_image(plain->packet);
      if (!gs.decoder->add_row(std::move(row))) ++redundant_rows_;
    }
    maybe_finish_group(gs);
    return;
  }

  if (const auto* coded = std::get_if<radio::CodedMsg>(&msg.body)) {
    if (coded->group_count == 0) return;
    ensure_groups(coded->group_count);
    GroupState& gs = group(coded->group_id, coded->group_size);
    if (gs.complete) return;
    ++rows_received_;
    if (gs.size <= 64) {
      // Same low-`size`-bits view BitVec::from_word takes of the header.
      const std::uint64_t mask =
          gs.size == 64 ? ~0ULL : (1ULL << gs.size) - 1;
      gf2::Payload buf = arena_ != nullptr ? arena_->acquire_copy(coded->payload)
                                           : coded->payload;
      if (!gs.decoder->add_row_packed(coded->coeffs & mask, buf)) {
        ++redundant_rows_;
        if (arena_ != nullptr) arena_->recycle(std::move(buf));
      }
    } else {
      gf2::CodedRow row;
      row.coeffs = gf2::BitVec::from_word(gs.size, coded->coeffs);
      row.payload = coded->payload;
      if (!gs.decoder->add_row(std::move(row))) ++redundant_rows_;
    }
    maybe_finish_group(gs);
    return;
  }
}

std::vector<radio::Packet> DisseminationState::packets() const {
  std::vector<radio::Packet> out;
  for (const GroupState& gs : groups_) {
    if (!gs.complete) continue;
    out.insert(out.end(), gs.packets.begin(), gs.packets.end());
  }
  std::sort(out.begin(), out.end(),
            [](const radio::Packet& a, const radio::Packet& b) { return a.id < b.id; });
  return out;
}

}  // namespace radiocast::core
