// Tunable parameters of the k-broadcast protocol and their resolution into
// concrete per-stage schedules.
//
// The paper specifies all stage lengths up to constant factors; the
// constants here are the library defaults, chosen empirically so that the
// w.h.p. claims hold across the test grid (they can be swept by the
// robustness benches). A value of 0 for any "0 => default" field means
// "derive from Knowledge".
#pragma once

#include <cstdint>

#include "radio/knowledge.hpp"

namespace radiocast::core {

struct KBroadcastConfig {
  radio::Knowledge know;

  // --- Stage 1: leader election ---
  /// Decay epochs per binary-search probe (an alarm window). 0 => BGI
  /// default Θ(D̂ + log n̂).
  std::uint32_t leader_probe_epochs = 0;

  // --- Stage 2: BFS construction ---
  /// Decay epochs per BFS phase. 0 => 6·log n̂ (each phase must deliver the
  /// frontier's construction message to all neighbors w.h.p.).
  std::uint32_t bfs_epochs_per_phase = 0;
  /// Extra phases beyond D̂ (slack for late layer assignments).
  std::uint32_t bfs_extra_phases = 2;

  // --- Stage 3: packet collection ---
  /// The paper's constant c in GRAB's cascade (OSPG down to c·log n and
  /// MSPG(c²log²n, c·log n)).
  std::uint32_t grab_c = 3;
  /// Decay epochs of each ALARM window. 0 => BGI default.
  std::uint32_t alarm_epochs = 0;

  // --- Stage 4: dissemination ---
  /// Packets per coded group. 0 => ⌈log n̂⌉ (the paper's choice).
  std::uint32_t group_size = 0;
  /// Decay epochs per FORWARD phase. 0 => 10·log n̂ (enough receptions for
  /// Lemma 3's full-rank threshold w.h.p.).
  std::uint32_t forward_epochs = 0;
  /// Phases between consecutive group injections (paper: 3 — the minimum
  /// spacing that keeps groups collision-disjoint; ablation knob).
  std::uint32_t group_spacing = 3;
  /// Random linear coding (the paper) vs plain per-packet forwarding
  /// (the BII-style baseline).
  bool coded = true;
};

/// All schedule constants resolved to concrete numbers.
struct ResolvedConfig {
  radio::Knowledge know;
  std::uint32_t log_n = 1;
  std::uint32_t log_delta = 1;

  // Stage 1.
  std::uint32_t leader_probes = 1;       ///< binary-search iterations
  std::uint32_t leader_probe_epochs = 1; ///< Decay epochs per probe
  std::uint64_t stage1_rounds = 0;

  // Stage 2.
  std::uint32_t bfs_phases = 1;
  std::uint32_t bfs_epochs_per_phase = 1;
  std::uint64_t bfs_phase_rounds = 0;
  std::uint64_t stage2_rounds = 0;

  // Stage 3.
  std::uint32_t grab_c = 3;
  std::uint64_t c_log_n = 1;            ///< c·log n̂ (cascade floor)
  std::uint32_t alarm_epochs = 1;
  std::uint64_t alarm_rounds = 0;       ///< rounds per ALARM window
  std::uint64_t initial_estimate = 1;   ///< x₀ = (D̂+log n̂)·log n̂

  // Stage 4.
  std::uint32_t group_size = 1;
  std::uint32_t forward_epochs = 1;
  std::uint32_t group_spacing = 3;
  bool coded = true;
  std::uint64_t dissem_phase_rounds = 0;

  std::uint64_t stage3_start() const { return stage1_rounds + stage2_rounds; }
};

/// Fills every derived field from the config's knowledge and constants.
ResolvedConfig resolve(const KBroadcastConfig& cfg);

}  // namespace radiocast::core
