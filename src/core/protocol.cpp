#include "core/protocol.hpp"

#include <utility>

#include "common/assert.hpp"
#include "core/audit.hpp"

namespace radiocast::core {

namespace {
protocols::LeaderElectionState::Config leader_config(const ResolvedConfig& rc) {
  protocols::LeaderElectionState::Config cfg;
  cfg.know = rc.know;
  cfg.probe_epochs = rc.leader_probe_epochs;
  return cfg;
}
}  // namespace

KBroadcastNode::KBroadcastNode(const ResolvedConfig& rc, radio::NodeId self,
                               std::vector<radio::Packet> own_packets, Rng rng)
    : rc_(rc),
      self_(self),
      own_packets_(std::move(own_packets)),
      rng_(rng),
      leader_(leader_config(rc), self, /*participant=*/!own_packets_.empty(), &rng_) {
  stage2_start_ = rc_.stage1_rounds;
  stage3_start_ = rc_.stage1_rounds + rc_.stage2_rounds;
  RC_ASSERT(leader_.total_rounds() == rc_.stage1_rounds);
}

KBroadcastNode::Stage KBroadcastNode::stage_for(radio::Round round) const {
  if (round < stage2_start_) return Stage::kLeader;
  if (round < stage3_start_) return Stage::kBfs;
  if (stage3_end_ == 0 || round < stage3_end_) return Stage::kCollection;
  return Stage::kDissemination;
}

void KBroadcastNode::ensure_stage(radio::Round round) {
  // Dissemination is the terminal stage and can only engage after every
  // earlier stage did, so once it exists there is nothing left to build.
  // This fast-out matters: ensure_stage runs on every callback, and Stage 4
  // dominates a long run's node-rounds.
  if (dissemination_.has_value()) return;
  if (round >= stage2_start_ && !bfs_.has_value()) {
    leader_.finalize();
    protocols::BfsBuildState::Config cfg;
    cfg.know = rc_.know;
    cfg.epochs_per_phase = rc_.bfs_epochs_per_phase;
    cfg.extra_phases = rc_.bfs_phases - rc_.know.d_hat;
    bfs_.emplace(cfg, self_, /*is_root=*/leader_.is_leader(), &rng_);
  }
  if (round >= stage3_start_ && !collection_.has_value()) {
    CollectionState::Config cfg{rc_};
    cfg.observer = observer_;
    cfg.observer_round_offset = stage3_start_;
    cfg.audit = audit_;
    cfg.audit_node = self_;
    std::optional<radio::NodeId> parent;
    const bool is_root = leader_.is_leader();
    if (!is_root && bfs_.has_value() && bfs_->has_distance()) {
      parent = bfs_->parent();
    }
    collection_.emplace(cfg, self_, is_root, parent, own_packets_, &rng_);
    collection_->set_payload_arena(payload_arena());
  }
  if (collection_.has_value() && stage3_end_ == 0 && collection_->finished()) {
    stage3_end_ = stage3_start_ + collection_->finished_at();
    if (mutations_.early_stage4_rounds != 0) {
      // Seeded bug: pretend collection ended earlier than its schedule says.
      const std::uint64_t cut =
          std::min(mutations_.early_stage4_rounds, collection_->finished_at() - 1);
      stage3_end_ -= cut;
    }
  }
  if (stage3_end_ != 0 && round >= stage3_end_ && !dissemination_.has_value()) {
    DisseminationState::Config cfg{rc_};
    const bool is_root = leader_.is_leader();
    std::optional<std::uint32_t> dist;
    if (bfs_.has_value() && bfs_->has_distance()) dist = bfs_->distance();
    dissemination_.emplace(cfg, self_, is_root, dist, &rng_);
    dissemination_->set_payload_arena(payload_arena());
    if (is_root) {
      RC_ASSERT(collection_.has_value());
      dissemination_->set_root_packets(collection_->collected());
    }
  }
}

void KBroadcastNode::report_stage(radio::Round round) {
  if (observer_ == nullptr && audit_ == nullptr) return;
  const Stage s = stage_for(round);
  if (reported_stage_.has_value() && *reported_stage_ == s) return;
  reported_stage_ = s;
  std::uint32_t index = 0;
  const char* name = nullptr;
  radio::Round boundary = 0;
  switch (s) {
    case Stage::kLeader:
      index = 1, name = "stage1.leader", boundary = 0;
      break;
    case Stage::kBfs:
      index = 2, name = "stage2.bfs", boundary = stage2_start_;
      break;
    case Stage::kCollection:
      index = 3, name = "stage3.collection", boundary = stage3_start_;
      break;
    case Stage::kDissemination:
      index = 4, name = "stage4.dissemination", boundary = stage3_end_;
      break;
  }
  if (observer_ != nullptr) observer_->on_stage(index, name, boundary);
  if (audit_ != nullptr) audit_->on_stage_enter(self_, index, boundary);
}

std::optional<radio::MessageBody> KBroadcastNode::apply_mutations(
    std::optional<radio::MessageBody> msg) const {
  if (mutations_.corrupt_coded_payload && msg.has_value()) {
    if (auto* coded = std::get_if<radio::CodedMsg>(&*msg);
        coded != nullptr && !coded->payload.empty()) {
      coded->payload[0] ^= 1;  // seeded bug: transmit an unsound combination
    }
  }
  return msg;
}

std::optional<radio::MessageBody> KBroadcastNode::on_transmit(radio::Round round) {
  // Report before ensure_stage: entering Stage 3 constructs CollectionState,
  // whose phase/epoch hooks must nest inside the already-open stage span.
  report_stage(round);
  ensure_stage(round);
  switch (stage_for(round)) {
    case Stage::kLeader:
      return leader_.on_transmit(round);
    case Stage::kBfs: {
      auto msg = bfs_->on_transmit(round - stage2_start_);
      // Seeded bug: drop every scheduled BFS transmission (the state
      // machine still advances, so the node believes it participated).
      if (mutations_.suppress_bfs_transmit) return std::nullopt;
      return msg;
    }
    case Stage::kCollection: {
      auto msg = collection_->on_transmit(round - stage3_start_);
      // Collection may have just flipped to finished at exactly this round;
      // if so, this round is already Stage 4's round 0.
      ensure_stage(round);
      if (stage_for(round) == Stage::kDissemination) {
        RC_ASSERT(!msg.has_value());
        report_stage(round);
        return apply_mutations(dissemination_->on_transmit(round - stage3_end_));
      }
      return msg;
    }
    case Stage::kDissemination:
      return apply_mutations(dissemination_->on_transmit(round - stage3_end_));
  }
  return std::nullopt;
}

void KBroadcastNode::on_receive(radio::Round round, const radio::Message& msg) {
  report_stage(round);
  ensure_stage(round);
  switch (stage_for(round)) {
    case Stage::kLeader:
      leader_.on_receive(round, msg);
      return;
    case Stage::kBfs:
      bfs_->on_receive(round - stage2_start_, msg);
      return;
    case Stage::kCollection:
      collection_->on_receive(round - stage3_start_, msg);
      ensure_stage(round);
      // Boundary round: the message kinds of the two stages are disjoint,
      // so re-offering the message to Stage 4 cannot double-process it.
      if (stage_for(round) == Stage::kDissemination) {
        report_stage(round);
        dissemination_->on_receive(round - stage3_end_, msg);
      }
      return;
    case Stage::kDissemination:
      dissemination_->on_receive(round - stage3_end_, msg);
      return;
  }
}

bool KBroadcastNode::done() const {
  return dissemination_.has_value() && dissemination_->complete();
}

bool KBroadcastNode::is_leader() const { return leader_.is_leader(); }

radio::NodeId KBroadcastNode::leader_id() const { return leader_.leader_id(); }

bool KBroadcastNode::has_bfs_distance() const {
  return bfs_.has_value() && bfs_->has_distance();
}

std::uint32_t KBroadcastNode::bfs_distance() const {
  RC_ASSERT(has_bfs_distance());
  return bfs_->distance();
}

radio::NodeId KBroadcastNode::bfs_parent() const {
  RC_ASSERT(has_bfs_distance());
  return bfs_->parent();
}

std::vector<radio::Packet> KBroadcastNode::delivered_packets() const {
  if (dissemination_.has_value()) {
    if (leader_.is_leader() && collection_.has_value()) {
      return collection_->collected();
    }
    return dissemination_->packets();
  }
  return own_packets_;
}

}  // namespace radiocast::core
