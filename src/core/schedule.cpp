#include "core/schedule.hpp"

#include "common/assert.hpp"
#include "common/math_util.hpp"

namespace radiocast::core {

GatherWindow ospg_window(std::uint64_t y, std::uint32_t d_hat) {
  RC_ASSERT(y >= 1);
  GatherWindow w;
  w.slots = 6 * y;
  w.copies = 1;
  w.up_rounds = w.slots + d_hat;
  w.ack_rounds = 3 * w.up_rounds + d_hat;
  return w;  // total = 24y + 5·D̂
}

GatherWindow mspg_window(const ResolvedConfig& rc) {
  GatherWindow w;
  const std::uint64_t x = rc.c_log_n * rc.c_log_n;  // c²·log²n
  w.slots = 6 * x;
  w.copies = static_cast<std::uint32_t>(rc.c_log_n);
  w.up_rounds = w.slots + rc.know.d_hat;
  w.ack_rounds = 3 * w.up_rounds + rc.know.d_hat;
  return w;
}

std::vector<GatherWindow> grab_windows(std::uint64_t x, const ResolvedConfig& rc) {
  std::vector<GatherWindow> windows;
  // OSPG cascade: x, x/2, ..., floored at c·log n (always at least one).
  std::uint64_t y = std::max<std::uint64_t>(x, rc.c_log_n);
  while (true) {
    windows.push_back(ospg_window(y, rc.know.d_hat));
    if (y <= rc.c_log_n) break;
    y = std::max<std::uint64_t>(y / 2, rc.c_log_n);
  }
  windows.push_back(mspg_window(rc));
  std::uint64_t offset = 0;
  for (GatherWindow& w : windows) {
    w.start = offset;
    offset += w.total_rounds();
  }
  return windows;
}

std::uint64_t grab_rounds(std::uint64_t x, const ResolvedConfig& rc) {
  const auto windows = grab_windows(x, rc);
  return windows.back().end();
}

std::uint64_t collection_phase_rounds(std::uint64_t x, const ResolvedConfig& rc) {
  return grab_rounds(x, rc) + rc.alarm_rounds;
}

std::uint64_t collection_rounds_bound(std::uint64_t k, const ResolvedConfig& rc) {
  std::uint64_t total = 0;
  std::uint64_t x = rc.initial_estimate;
  // Doubling phases until the estimate covers k, plus one alarm-free phase.
  while (true) {
    total += collection_phase_rounds(x, rc);
    if (x >= k) break;
    x *= 2;
  }
  return total;
}

std::uint64_t dissemination_rounds_bound(std::uint64_t k, const ResolvedConfig& rc) {
  const std::uint64_t g = k == 0 ? 0 : ceil_div(k, rc.group_size);
  const std::uint64_t phases =
      rc.group_spacing * g + rc.know.d_hat + 4 /*slack for the last layers*/;
  return phases * rc.dissem_phase_rounds;
}

std::uint64_t total_rounds_bound(std::uint64_t k, const ResolvedConfig& rc) {
  // The collection bound already covers the w.h.p. schedule; the factor-2
  // headroom absorbs rare extra phases (missed acks forcing another
  // doubling) without letting runaway runs spin forever.
  return rc.stage1_rounds + rc.stage2_rounds + 2 * collection_rounds_bound(k, rc) +
         2 * dissemination_rounds_bound(k, rc) + 1000;
}

}  // namespace radiocast::core
