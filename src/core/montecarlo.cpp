#include "core/montecarlo.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"

namespace radiocast::core::montecarlo {

int threads_from_env(int fallback) {
  const char* env = std::getenv("RADIOCAST_BENCH_THREADS");
  if (env != nullptr && *env != '\0') {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  if (fallback > 0) return fallback;
  return static_cast<int>(ThreadPool::default_concurrency());
}

int shards_from_env(int fallback) {
  const char* env = std::getenv("RADIOCAST_BENCH_SHARDS");
  if (env != nullptr && *env != '\0') {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback > 0 ? fallback : 1;
}

void run_indexed(int trials, const std::function<void(int)>& fn,
                 const Options& opts) {
  if (trials <= 0) return;
  int threads = opts.threads > 0 ? opts.threads : threads_from_env();
  threads = std::min(threads, trials);
  if (threads <= 1) {
    // Legacy path: plain loop on the calling thread, no pool, no locking.
    for (int t = 0; t < trials; ++t) fn(t);
    return;
  }

  // First-failure capture: remember the exception of the lowest-indexed
  // failing trial so reruns fail deterministically regardless of thread
  // interleaving.
  std::mutex err_mu;
  std::exception_ptr first_error;
  int first_error_trial = trials;

  ThreadPool pool(static_cast<unsigned>(threads));
  for (int t = 0; t < trials; ++t) {
    pool.submit([t, &fn, &err_mu, &first_error, &first_error_trial] {
      try {
        fn(t);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (t < first_error_trial) {
          first_error_trial = t;
          first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<RunResult> run_kbroadcast_sweep(const KBroadcastSweep& sweep,
                                            int trials, const Options& opts) {
  RC_ASSERT(sweep.graph != nullptr && sweep.graph->finalized());
  RC_ASSERT(sweep.placement_seed != nullptr && sweep.run_seed != nullptr);
  RC_ASSERT(sweep.shards >= 1);
  // Split the overall thread budget between trial fan-out and intra-run
  // shards: with S shards per trial, only budget/S trials may run at once
  // before trials x shards oversubscribes the machine. Neither knob
  // changes any result (pinned by the shard oracle + sweep tests), so
  // this is pure scheduling.
  Options trial_opts = opts;
  if (sweep.shards > 1) {
    const int budget = opts.threads > 0 ? opts.threads : threads_from_env();
    trial_opts.threads = std::max(1, budget / sweep.shards);
  }
  return run(
      trials,
      [&sweep](int t) {
        Rng prng(sweep.placement_seed(t));
        const Placement placement =
            make_placement(sweep.graph->num_nodes(), sweep.k, sweep.placement,
                           sweep.payload_bytes, prng);
        const radio::FaultModel faults =
            sweep.faults ? sweep.faults(t) : radio::FaultModel{};
        obs::RunObserver* observer =
            sweep.observer ? sweep.observer(t) : nullptr;
        RunAuditor* auditor = sweep.auditor ? sweep.auditor(t) : nullptr;
        obs::PacketTracer* tracer = sweep.tracer ? sweep.tracer(t) : nullptr;
        return run_kbroadcast(*sweep.graph, sweep.cfg, placement,
                              sweep.run_seed(t), sweep.max_rounds, faults,
                              observer, auditor, sweep.collision_detection,
                              tracer, sweep.engine,
                              static_cast<std::uint32_t>(sweep.shards));
      },
      trial_opts);
}

}  // namespace radiocast::core::montecarlo
