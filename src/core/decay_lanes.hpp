// 64-trial bit-sliced simulation of the one-bit Decay broadcast.
//
// The Decay subroutine (protocols/decay.hpp) carries a single bit: what a
// node transmits is "the alarm", so a trial's entire state is one bit per
// node — informed or not. That makes 64 independent Monte Carlo trials of
// the subroutine exactly one uint64 per node, updated with the same
// carry-save word arithmetic the bit-parallel round engine uses:
//
//   lane j of every word is trial j.  A fair coin per (node, draw) is one
//   uniform 64-bit word; transmitting with probability 2^-(s+1) in Decay
//   step s is the AND of s+1 successive words.  Per listener,
//   (once, twice) accumulate neighbors' transmit words and
//   once & ~twice & ~tx is the "received cleanly" word — the radio model's
//   exactly-one rule, for all 64 trials at once.
//
// Draw discipline: every node consumes exactly s+1 words in step s whether
// or not it is informed (the transmit word is masked by the informed word
// afterwards). The word-stream position is therefore a pure function of
// time, which (a) keeps the 64 lanes independent — bit j of a uniform
// word never depends on other lanes' states — and (b) lets a scalar
// reference replay the identical stream and extract bit j, which is how
// the tests pin every lane (see tests/core/decay_lanes_test.cpp).
//
// core::montecarlo drives blocks of 64 trials in parallel
// (run_decay_lane_blocks), so "N trials of Stage-1/Decay" costs N/64
// simulations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/montecarlo.hpp"
#include "graph/graph.hpp"

namespace radiocast::core {

/// Configuration shared by all 64 lanes of one bit-sliced simulation.
struct DecayLaneConfig {
  /// Rounds per Decay epoch (step s transmits with probability 2^-(s+1),
  /// matching protocols::Decay). 0 derives ceil(log2 Δ) + 1 from the
  /// graph, the protocol stack's choice.
  std::uint32_t epoch_length = 0;
  /// The initially informed node (all 64 lanes start from the same
  /// source; lanes differ only in their coin flips).
  graph::NodeId source = 0;
  /// Round cap; 0 derives a generous O(n · epoch_length) bound.
  std::uint64_t max_rounds = 0;
  std::uint64_t seed = 0x1a9e5eedULL;
};

/// Per-lane completion rounds of one 64-trial bit-sliced run.
struct DecayLaneResult {
  static constexpr std::uint64_t kIncomplete = ~0ULL;

  /// Rounds actually simulated (stops early once every lane completed).
  std::uint64_t rounds_run = 0;
  /// Per-lane first round index after which every node was informed
  /// (kIncomplete if the cap hit first).
  std::array<std::uint64_t, 64> completion_round{};
  /// Per-lane informed-node count at exit (== n for completed lanes).
  std::array<std::uint32_t, 64> informed_count{};
  std::uint32_t lanes_complete = 0;
};

/// Runs 64 bit-sliced trials of one-bit Decay broadcast on `g`.
/// The graph must be finalized and connected runs are the interesting
/// case, but any finalized graph is accepted.
DecayLaneResult run_decay_lanes(const graph::Graph& g, const DecayLaneConfig& cfg);

/// Scalar reference for a single lane: replays the identical per-node word
/// stream and extracts bit `lane` of every draw. Returns that trial's
/// completion round (kIncomplete if capped) — must equal
/// run_decay_lanes(...).completion_round[lane] for every lane.
std::uint64_t run_decay_lane_reference(const graph::Graph& g, const DecayLaneConfig& cfg,
                                       std::uint32_t lane);

/// `blocks` independent 64-trial blocks (block b reseeds deterministically
/// from cfg.seed and b), scheduled through core::montecarlo — results in
/// block order, identical at any thread count.
std::vector<DecayLaneResult> run_decay_lane_blocks(const graph::Graph& g,
                                                   const DecayLaneConfig& cfg, int blocks,
                                                   const montecarlo::Options& opts = {});

}  // namespace radiocast::core
