#include "core/dynamic.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"
#include "common/math_util.hpp"
#include "radio/protocol_slab.hpp"
#include "common/stats.hpp"

namespace radiocast::core {

namespace {
protocols::LeaderElectionState::Config leader_config(const ResolvedConfig& rc) {
  protocols::LeaderElectionState::Config cfg;
  cfg.know = rc.know;
  cfg.probe_epochs = rc.leader_probe_epochs;
  return cfg;
}
}  // namespace

std::uint64_t DynamicConfig::dissemination_window() const {
  const std::uint64_t groups = ceil_div(resolved_capacity(), rc.group_size);
  const std::uint64_t phases = rc.group_spacing * groups + rc.know.d_hat + 4;
  return phases * rc.dissem_phase_rounds;
}

DynamicBroadcastNode::DynamicBroadcastNode(const DynamicConfig& cfg,
                                           radio::NodeId self, Rng rng)
    : cfg_(cfg),
      self_(self),
      rng_(rng),
      leader_(leader_config(cfg.rc), self, /*participant=*/true, &rng_) {
  bfs_start_ = cfg_.rc.stage1_rounds;
  setup_end_ = cfg_.rc.stage1_rounds + cfg_.rc.stage2_rounds;
}

void DynamicBroadcastNode::inject(radio::Packet packet) {
  deliver(packet);  // the holder trivially has it
  pending_.push_back(std::move(packet));
}

void DynamicBroadcastNode::deliver(radio::Packet packet) {
  const auto [it, fresh] = delivered_.emplace(packet.id, std::move(packet));
  if (fresh) on_packet_delivered(it->second);
}

std::vector<radio::Packet> DynamicBroadcastNode::take_epoch_packets() {
  std::vector<radio::Packet> out = std::move(pending_);
  pending_.clear();
  return out;
}

void DynamicBroadcastNode::on_packet_delivered(const radio::Packet& /*packet*/) {}

void DynamicBroadcastNode::start_collect(radio::Round round) {
  phase_ = Phase::kCollect;
  phase_start_ = round;
  std::vector<radio::Packet> own;
  // Carry over anything the previous epoch failed to acknowledge, then the
  // fresh arrivals.
  if (collect_.has_value() && !leader_.is_leader()) {
    own = collect_->unacked_packets();
  }
  for (radio::Packet& p : take_epoch_packets()) own.push_back(std::move(p));

  std::optional<radio::NodeId> parent;
  const bool is_root = leader_.is_leader();
  if (!is_root && bfs_.has_value() && bfs_->has_distance()) parent = bfs_->parent();
  collect_.emplace(CollectionState::Config{cfg_.rc}, self_, is_root, parent,
                   std::move(own), &rng_);
}

void DynamicBroadcastNode::start_disseminate(radio::Round round) {
  // Harvest the finished collection first.
  RC_ASSERT(collect_.has_value());
  if (leader_.is_leader()) {
    for (const radio::Packet& p : collect_->collected()) {
      if (root_sent_.emplace(p.id, false).second) {
        root_queue_.push_back(p);
      }
      deliver(p);
    }
  }
  phase_ = Phase::kDisseminate;
  phase_start_ = round;
  std::optional<std::uint32_t> dist;
  if (bfs_.has_value() && bfs_->has_distance()) dist = bfs_->distance();
  dissem_.emplace(DisseminationState::Config{cfg_.rc}, self_, leader_.is_leader(),
                  dist, &rng_);
  if (leader_.is_leader()) {
    std::vector<radio::Packet> batch;
    const std::uint32_t capacity = cfg_.resolved_capacity();
    while (!root_queue_.empty() && batch.size() < capacity) {
      batch.push_back(std::move(root_queue_.front()));
      root_queue_.pop_front();
      root_sent_[batch.back().id] = true;
    }
    dissem_->set_root_packets(std::move(batch));
  }
}

void DynamicBroadcastNode::advance(radio::Round round) {
  for (bool changed = true; changed;) {
    changed = false;
    switch (phase_) {
      case Phase::kSetup:
        if (round >= bfs_start_ && !bfs_.has_value()) {
          leader_.finalize();
          protocols::BfsBuildState::Config cfg;
          cfg.know = cfg_.rc.know;
          cfg.epochs_per_phase = cfg_.rc.bfs_epochs_per_phase;
          cfg.extra_phases = cfg_.rc.bfs_phases - cfg_.rc.know.d_hat;
          bfs_.emplace(cfg, self_, leader_.is_leader(), &rng_);
        }
        if (round >= setup_end_) {
          start_collect(setup_end_);
          changed = true;
        }
        break;
      case Phase::kCollect:
        if (collect_->finished()) {
          start_disseminate(phase_start_ + collect_->finished_at());
          changed = true;
        }
        break;
      case Phase::kDisseminate:
        if (round >= phase_start_ + cfg_.dissemination_window()) {
          // Harvest whatever decoded and begin the next epoch.
          if (dissem_.has_value()) {
            for (radio::Packet& p : dissem_->packets()) {
              deliver(std::move(p));
            }
          }
          ++epoch_;
          start_collect(phase_start_ + cfg_.dissemination_window());
          changed = true;
        }
        break;
    }
  }
}

std::optional<radio::MessageBody> DynamicBroadcastNode::on_transmit(
    radio::Round round) {
  advance(round);
  switch (phase_) {
    case Phase::kSetup:
      if (round < bfs_start_) return leader_.on_transmit(round);
      return bfs_->on_transmit(round - bfs_start_);
    case Phase::kCollect: {
      auto msg = collect_->on_transmit(round - phase_start_);
      advance(round);
      if (phase_ == Phase::kDisseminate) {
        return dissem_->on_transmit(round - phase_start_);
      }
      return msg;
    }
    case Phase::kDisseminate:
      return dissem_->on_transmit(round - phase_start_);
  }
  return std::nullopt;
}

void DynamicBroadcastNode::on_receive(radio::Round round, const radio::Message& msg) {
  advance(round);
  switch (phase_) {
    case Phase::kSetup:
      if (round < bfs_start_) {
        leader_.on_receive(round, msg);
      } else {
        bfs_->on_receive(round - bfs_start_, msg);
      }
      return;
    case Phase::kCollect:
      collect_->on_receive(round - phase_start_, msg);
      advance(round);
      if (phase_ == Phase::kDisseminate) {
        dissem_->on_receive(round - phase_start_, msg);
      }
      return;
    case Phase::kDisseminate:
      dissem_->on_receive(round - phase_start_, msg);
      return;
  }
}

std::vector<Arrival> make_arrivals(std::uint32_t n, std::uint32_t k,
                                   std::uint64_t spread_rounds,
                                   std::uint32_t payload_bytes, Rng& rng) {
  std::vector<Arrival> arrivals;
  std::vector<std::uint32_t> seq(n, 0);
  arrivals.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    Arrival a;
    a.round = rng.next_below(std::max<std::uint64_t>(1, spread_rounds));
    a.node = static_cast<radio::NodeId>(rng.next_below(n));
    a.packet.id = radio::make_packet_id(a.node, seq[a.node]++);
    a.packet.payload.resize(payload_bytes);
    for (auto& b : a.packet.payload) b = static_cast<std::uint8_t>(rng() & 0xff);
    arrivals.push_back(std::move(a));
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& x, const Arrival& y) { return x.round < y.round; });
  return arrivals;
}

DynamicRunResult run_dynamic_broadcast(const graph::Graph& g,
                                       const DynamicConfig& cfg,
                                       std::vector<Arrival> arrivals,
                                       std::uint64_t horizon, std::uint64_t seed) {
  RC_ASSERT(g.finalized());
  DynamicRunResult result;
  result.n = g.num_nodes();
  result.k = static_cast<std::uint32_t>(arrivals.size());
  result.horizon = horizon;

  radio::ProtocolSlab<DynamicBroadcastNode> slab(g.num_nodes());
  radio::Network net(g);
  Rng master(seed);
  std::vector<DynamicBroadcastNode*> nodes(g.num_nodes());
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    DynamicBroadcastNode& node = slab.emplace(cfg, v, master.split());
    nodes[v] = &node;
    net.set_protocol(v, &node);
    net.wake_at_start(v);  // dynamic setting: every node is on from round 0
  }

  // Per-packet delivery tracking, polled every `check_interval` rounds
  // (latencies are accurate to that granularity).
  struct Tracking {
    radio::Round arrived = 0;
    bool everywhere = false;
    radio::Round done_at = 0;
  };
  std::unordered_map<radio::PacketId, Tracking> tracking;
  const std::uint64_t check_interval = 64;

  std::size_t next_arrival = 0;
  for (std::uint64_t round = 0; round < horizon; ++round) {
    while (next_arrival < arrivals.size() && arrivals[next_arrival].round <= round) {
      Arrival& a = arrivals[next_arrival++];
      tracking[a.packet.id] = {round, false, 0};
      nodes[a.node]->inject(std::move(a.packet));
    }
    net.step();
    if (round % check_interval == 0 || round + 1 == horizon) {
      for (auto& [id, track] : tracking) {
        if (track.everywhere) continue;
        bool everywhere = true;
        for (radio::NodeId v = 0; v < g.num_nodes() && everywhere; ++v) {
          everywhere = nodes[v]->delivered().count(id) != 0;
        }
        if (everywhere) {
          track.everywhere = true;
          track.done_at = round;
        }
      }
    }
  }

  SampleSet latencies;
  for (const auto& [id, track] : tracking) {
    if (track.everywhere) {
      ++result.delivered_everywhere;
      latencies.add(static_cast<double>(track.done_at - track.arrived));
    }
  }
  if (!latencies.empty()) {
    result.latency_mean = latencies.mean();
    result.latency_max = latencies.max();
  }
  if (result.delivered_everywhere > 0) {
    result.amortized_rounds_per_packet =
        static_cast<double>(horizon) / result.delivered_everywhere;
  }
  result.counters = net.trace().counters();
  return result;
}

}  // namespace radiocast::core
