// Stage 4 — packet dissemination with random linear network coding (the
// paper's Section 2.4).
//
// The root partitions the k collected packets into g = ⌈k/s⌉ groups of
// s = ⌈log n̂⌉ packets. Group j is injected in phase `spacing·j`: the root
// transmits the group's packets one by one (its distance-1 neighbors hear
// them without contention). In phase `spacing·j + d` the distance-d layer
// runs FORWARD for group j: Decay-paced transmissions where every
// transmission is a uniformly random XOR subset of the group, carrying the
// subset bitmap in the header (CodedMsg). A receiver feeds every row into
// an incremental GF(2) decoder and owns the group as soon as the
// coefficient matrix reaches full rank (Lemma 3 => O(log n) receptions
// suffice w.h.p.; Lemma 6 => the whole layer decodes within one phase).
//
// Because consecutive groups are `spacing >= 3` phases apart, the sets of
// simultaneously transmitting layers are >= 3 hops apart, so no receiver
// can hear two groups at once (the paper's pipelining argument).
//
// The same state machine also implements the *uncoded* BII-style baseline
// (coded = false): transmitters send one uniformly chosen plain packet of
// the group; receivers need every packet individually (with s = 1 this is
// exactly one packet per 3-phase injection slot, which reproduces the
// O(k·log n·logΔ) baseline bound; with s > 1 it exposes the
// coupon-collector penalty that coding removes).
//
// Packet identity survives coding because the coded payload is the XOR of
// wire images: wire = packet id (8 bytes, little endian) || payload bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/params.hpp"
#include "gf2/coding.hpp"
#include "gf2/solver.hpp"
#include "radio/knowledge.hpp"
#include "radio/node.hpp"

namespace radiocast::core {

/// Serializes a packet into its coding wire image (id || payload).
gf2::Payload packet_wire_image(const radio::Packet& packet);
/// Same image built into a caller-provided buffer (fully overwritten, so
/// `out` may carry recycled capacity from a radio::PayloadArena).
void packet_wire_image_into(const radio::Packet& packet, gf2::Payload& out);
/// Parses a wire image back into a packet.
radio::Packet packet_from_wire_image(const gf2::Payload& wire);

class DisseminationState {
 public:
  struct Config {
    ResolvedConfig rc;
  };

  /// `dist` is the node's BFS distance (nullopt => never joined the tree:
  /// the node listens and decodes but does not forward).
  DisseminationState(const Config& cfg, radio::NodeId self, bool is_root,
                     std::optional<std::uint32_t> dist, Rng* rng);

  /// Root only: install the collected packets (defines the groups). Must be
  /// called before the first on_transmit.
  void set_root_packets(std::vector<radio::Packet> packets);

  std::optional<radio::MessageBody> on_transmit(std::uint64_t rel_round);
  void on_receive(std::uint64_t rel_round, const radio::Message& msg);

  /// Optional payload-buffer pool for outgoing messages (usually the
  /// owning node's NodeProtocol::payload_arena). Null => heap-allocate,
  /// byte-identical either way.
  void set_payload_arena(radio::PayloadArena* arena) { arena_ = arena; }

  /// True iff this node holds every packet (root: immediately after
  /// set_root_packets; others: all groups decoded; k = 0: every non-root
  /// node can never complete — the runner special-cases empty runs).
  bool complete() const { return complete_; }

  /// All packets this node holds, decoded and sorted by id.
  std::vector<radio::Packet> packets() const;

  /// Number of groups, if known (0 until the first header arrives).
  std::uint32_t group_count() const { return group_count_; }

  /// Diagnostics for the FORWARD benches.
  std::uint64_t rows_received() const { return rows_received_; }
  std::uint64_t redundant_rows() const { return redundant_rows_; }

 private:
  struct GroupState {
    std::uint16_t size = 0;
    std::optional<gf2::IncrementalDecoder> decoder;
    /// Decoded packets (cached once the decoder completes).
    std::vector<radio::Packet> packets;
    std::optional<gf2::GroupEncoder> encoder;
    bool complete = false;
  };

  void ensure_groups(std::uint32_t group_count);
  GroupState& group(std::uint32_t group_id, std::uint16_t group_size);
  void maybe_finish_group(GroupState& gs);
  void refresh_complete();
  /// Recomputes phase_slot_/phase_group_ for the current phase_. Callers
  /// must have checked phase_ >= slot_base_ first.
  void refresh_phase_slot();

  Config cfg_;
  radio::NodeId self_;
  bool is_root_;
  std::optional<std::uint32_t> dist_;
  Rng* rng_;
  radio::PayloadArena* arena_ = nullptr;

  std::uint32_t group_count_ = 0;
  bool group_count_known_ = false;
  std::vector<GroupState> groups_;
  bool complete_ = false;

  std::uint64_t rows_received_ = 0;
  std::uint64_t redundant_rows_ = 0;

  // Constants hoisted out of on_transmit, which runs once per node-round
  // for the entire Stage 4 window and dominated the profile: the Decay
  // epoch length, the FORWARD window length, the per-epoch-slot transmit
  // probabilities (1/2^(s+1), exact in binary FP so precomputing cannot
  // perturb a draw), and this node's layer offset into the phase schedule.
  std::uint32_t epoch_len_ = 1;
  std::uint64_t forward_rounds_ = 0;
  std::vector<double> decay_prob_;
  std::uint64_t slot_base_ = 0;

  // Incremental round clock. Consecutive on_transmit calls advance
  // rel_round by one, so phase/off/epoch_off are maintained by increments
  // and the division-based recompute runs only on a jump (first call, or
  // a caller that skips rounds). The maintained values equal the direct
  // quotient/remainder computation exactly, so behavior is bit-for-bit
  // unchanged.
  bool clock_valid_ = false;
  std::uint64_t clock_round_ = 0;
  std::uint64_t phase_ = 0;
  std::uint64_t off_ = 0;          ///< rel_round % phase_len
  std::uint32_t epoch_off_ = 0;    ///< off_ % epoch_len_
  bool phase_dirty_ = true;
  std::uint64_t phase_slot_ = 0;   ///< (phase_ - slot_base_) % spacing
  std::uint64_t phase_group_ = 0;  ///< (phase_ - slot_base_) / spacing
};

}  // namespace radiocast::core
