#include "core/collection.hpp"

#include <utility>

#include "common/assert.hpp"
#include "core/audit.hpp"

namespace radiocast::core {

CollectionState::CollectionState(const Config& cfg, radio::NodeId self, bool is_root,
                                 std::optional<radio::NodeId> parent,
                                 std::vector<radio::Packet> own_packets, Rng* rng)
    : cfg_(cfg),
      self_(self),
      is_root_(is_root),
      parent_(parent),
      rng_(rng),
      alarm_(cfg.rc.know.log_delta(), rng) {
  RC_ASSERT(rng != nullptr);
  for (radio::Packet& p : own_packets) {
    own_packets_.push_back(OwnPacket{std::move(p), false});
  }
  if (is_root_) {
    // The root's own packets are collected by definition (and acked: the
    // root never alarms for them).
    for (OwnPacket& op : own_packets_) {
      op.acked = true;
      ++acked_count_;
      collected_ids_.emplace(op.packet.id, true);
      collected_.push_back(op.packet);
    }
  }
  estimate_ = cfg_.rc.initial_estimate;
  begin_phase(0);
}

std::vector<radio::Packet> CollectionState::unacked_packets() const {
  std::vector<radio::Packet> out;
  for (const OwnPacket& op : own_packets_) {
    if (!op.acked) out.push_back(op.packet);
  }
  return out;
}

void CollectionState::begin_phase(std::uint64_t phase_start) {
  phase_start_ = phase_start;
  windows_ = grab_windows(estimate_, cfg_.rc);
  grab_end_ = phase_start_ + windows_.back().end();
  phase_end_ = grab_end_ + cfg_.rc.alarm_rounds;
  window_index_ = 0;
  alarm_started_ = false;
  if (cfg_.observer != nullptr) {
    cfg_.observer->on_collection_phase_begin(
        phase_index_, estimate_, cfg_.observer_round_offset + phase_start_);
  }
  if (cfg_.audit != nullptr) {
    cfg_.audit->on_collection_phase_begin(
        cfg_.audit_node, phase_index_, estimate_,
        cfg_.observer_round_offset + phase_start_);
  }
  begin_window(0);
}

void CollectionState::begin_window(std::size_t window_index) {
  RC_ASSERT(window_index < windows_.size());
  const GatherWindow& w = windows_[window_index];
  if (cfg_.observer != nullptr) {
    cfg_.observer->on_collection_epoch(
        w.copies > 1 ? "mspg" : "ospg", w.slots, w.copies,
        cfg_.observer_round_offset + phase_start_ + w.start);
  }
  if (cfg_.audit != nullptr) {
    cfg_.audit->on_collection_epoch(
        cfg_.audit_node, w.copies > 1 ? "mspg" : "ospg", w.slots, w.copies,
        cfg_.observer_round_offset + phase_start_ + w.start);
  }
  start_schedule_.clear();
  relay_packet_.reset();
  relay_ack_.reset();
  ack_queue_.clear();
  if (is_root_) return;
  // Draw start slots for every unacknowledged own packet (one per copy).
  const std::uint64_t window_start = phase_start_ + w.start;
  for (std::size_t i = 0; i < own_packets_.size(); ++i) {
    if (own_packets_[i].acked) continue;
    for (std::uint32_t c = 0; c < w.copies; ++c) {
      const std::uint64_t slot = 1 + rng_->next_below(w.slots);
      // First packet assigned to a slot keeps it ("the node unicasts only
      // one of them, selected arbitrarily").
      start_schedule_.emplace(window_start + (slot - 1), i);
    }
  }
}

void CollectionState::advance(std::uint64_t rel_round) {
  while (!finished_) {
    if (rel_round >= phase_end_) {
      // Phase boundary: alarm outcome decides between doubling and ending.
      const bool alarmed = alarm_started_ && alarm_.positive();
      if (cfg_.observer != nullptr) {
        cfg_.observer->on_collection_phase_end(
            cfg_.observer_round_offset + phase_end_, alarmed);
      }
      if (cfg_.audit != nullptr) {
        cfg_.audit->on_collection_phase_end(
            cfg_.audit_node, cfg_.observer_round_offset + phase_end_, alarmed);
      }
      if (alarmed) {
        estimate_ *= 2;
        ++phase_index_;
        begin_phase(phase_end_);
        continue;
      }
      finished_ = true;
      finished_at_ = phase_end_;
      ++phase_index_;
      return;
    }
    if (rel_round >= grab_end_) {
      if (!alarm_started_) {
        alarm_started_ = true;
        alarm_.reset(!is_root_ && acked_count_ < own_packets_.size());
        if (cfg_.observer != nullptr) {
          cfg_.observer->on_collection_epoch(
              "alarm", 0, 0, cfg_.observer_round_offset + grab_end_);
        }
        if (cfg_.audit != nullptr) {
          cfg_.audit->on_collection_epoch(
              cfg_.audit_node, "alarm", 0, 0, cfg_.observer_round_offset + grab_end_);
        }
      }
      return;
    }
    // Inside the grabbing epoch: step the window pointer forward.
    while (window_index_ + 1 < windows_.size() &&
           rel_round >= phase_start_ + windows_[window_index_].end()) {
      ++window_index_;
      begin_window(window_index_);
    }
    return;
  }
}

std::optional<radio::MessageBody> CollectionState::on_transmit(std::uint64_t rel_round) {
  advance(rel_round);
  if (finished_) return std::nullopt;

  if (rel_round >= grab_end_) {
    return alarm_.on_transmit(rel_round - grab_end_);
  }

  const GatherWindow& w = windows_[window_index_];
  const std::uint64_t window_start = phase_start_ + w.start;
  if (rel_round < window_start) return std::nullopt;  // between windows (cannot happen)
  const std::uint64_t off = rel_round - window_start;

  if (off < w.up_rounds) {
    // Upstream unicast window. A pending relay forward takes priority over
    // starting an own packet (dropping a half-delivered packet wastes the
    // path progress already made; the skipped own start is retried by a
    // later window or phase).
    if (relay_packet_.has_value() && relay_round_ == rel_round) {
      radio::Packet packet = std::move(*relay_packet_);
      relay_packet_.reset();
      if (start_schedule_.count(rel_round) != 0) ++start_conflicts_;
      RC_ASSERT(parent_.has_value());  // only tree members schedule relays
      return radio::DataMsg{std::move(packet), *parent_};
    }
    const auto it = start_schedule_.find(rel_round);
    if (it != start_schedule_.end() && parent_.has_value()) {
      const OwnPacket& op = own_packets_[it->second];
      if (!op.acked) {
        radio::Packet copy;
        copy.id = op.packet.id;
        copy.payload = arena_ != nullptr ? arena_->acquire_copy(op.packet.payload)
                                         : op.packet.payload;
        return radio::DataMsg{std::move(copy), *parent_};
      }
    }
    return std::nullopt;
  }

  // Acknowledgment window.
  const std::uint64_t ack_off = off - w.up_rounds;
  if (is_root_) {
    if (ack_off % 3 == 0) {
      const std::size_t index = static_cast<std::size_t>(ack_off / 3);
      if (index < ack_queue_.size()) return ack_queue_[index];
    }
    return std::nullopt;
  }
  if (relay_ack_.has_value() && relay_ack_round_ == rel_round) {
    radio::AckMsg ack = *relay_ack_;
    relay_ack_.reset();
    return ack;
  }
  return std::nullopt;
}

void CollectionState::on_receive(std::uint64_t rel_round, const radio::Message& msg) {
  advance(rel_round);
  if (finished_) return;

  if (rel_round >= grab_end_) {
    alarm_.on_receive(msg.body);
    return;
  }

  const GatherWindow& w = windows_[window_index_];
  const std::uint64_t window_start = phase_start_ + w.start;
  if (rel_round < window_start) return;
  const std::uint64_t off = rel_round - window_start;
  const std::uint64_t window_end = window_start + w.total_rounds();

  if (const auto* data = std::get_if<radio::DataMsg>(&msg.body)) {
    if (data->to != self_ || off >= w.up_rounds) return;
    // The BFS path of a packet is fixed, so the delivering child never
    // changes; remember it for routing the acknowledgment downwards.
    child_of_packet_[data->packet.id] = msg.from;
    if (is_root_) {
      if (collected_ids_.emplace(data->packet.id, true).second) {
        collected_.push_back(data->packet);
      }
      // Re-acknowledge duplicates too: the origin may have missed an
      // earlier acknowledgment.
      ack_queue_.push_back(radio::AckMsg{data->packet.id, msg.from});
      return;
    }
    // Relay: forward one round later if that round is still inside the up
    // window; otherwise the copy dies here (no recovery, per the paper).
    if (rel_round + 1 < window_start + w.up_rounds && !relay_packet_.has_value()) {
      radio::Packet copy;
      copy.id = data->packet.id;
      copy.payload = arena_ != nullptr ? arena_->acquire_copy(data->packet.payload)
                                       : data->packet.payload;
      relay_packet_ = std::move(copy);
      relay_round_ = rel_round + 1;
    }
    return;
  }

  if (const auto* ack = std::get_if<radio::AckMsg>(&msg.body)) {
    if (ack->to != self_) return;
    // Own packet acknowledged? (linear scan: a node holds few packets)
    for (std::size_t i = 0; i < own_packets_.size(); ++i) {
      if (own_packets_[i].packet.id == ack->packet_id) {
        if (!own_packets_[i].acked) {
          own_packets_[i].acked = true;
          ++acked_count_;
        }
        return;
      }
    }
    // Route towards the packet's origin.
    const auto child = child_of_packet_.find(ack->packet_id);
    if (child != child_of_packet_.end() && rel_round + 1 < window_end &&
        !relay_ack_.has_value()) {
      relay_ack_ = radio::AckMsg{ack->packet_id, child->second};
      relay_ack_round_ = rel_round + 1;
    }
    return;
  }
}

}  // namespace radiocast::core
