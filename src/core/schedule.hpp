// Pure schedule arithmetic for Stages 3 and 4.
//
// Every node computes the same window layout from shared knowledge, which
// is how the protocol stays synchronized without any control traffic
// beyond the one-bit alarms. Keeping the arithmetic in free functions makes
// the layout directly unit-testable against the paper's formulas
// (OSPG(y) = 24y + 5D rounds, GRAB(x) = O(x + D log x + log² n), ...).
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"

namespace radiocast::core {

/// One sub-window of a grabbing epoch: an OSPG(y) or the final MSPG.
struct GatherWindow {
  /// Number of start slots (the paper's 6y).
  std::uint64_t slots = 0;
  /// Copies each packet propagates (1 for OSPG, c·log n for MSPG).
  std::uint32_t copies = 1;
  /// Rounds of the upstream unicast window: slots + D̂.
  std::uint64_t up_rounds = 0;
  /// Rounds of the acknowledgment window: 3·up_rounds + D̂.
  std::uint64_t ack_rounds = 0;
  /// Offset of this window from the start of the grabbing epoch.
  std::uint64_t start = 0;

  std::uint64_t total_rounds() const { return up_rounds + ack_rounds; }
  std::uint64_t end() const { return start + total_rounds(); }
};

/// The OSPG(y) window layout: 6y slots, up = 6y + D̂, ack = 3·up + D̂,
/// total = 24y + 5D̂ (the paper's bound, exactly).
GatherWindow ospg_window(std::uint64_t y, std::uint32_t d_hat);

/// The MSPG(c²log²n, c·log n) window layout.
GatherWindow mspg_window(const ResolvedConfig& rc);

/// The full grabbing-epoch layout for estimate x: OSPG(x), OSPG(x/2), ...,
/// OSPG(c·log n), MSPG(c²log²n, c·log n), with start offsets filled in.
std::vector<GatherWindow> grab_windows(std::uint64_t x, const ResolvedConfig& rc);

/// Rounds of the grabbing epoch for estimate x.
std::uint64_t grab_rounds(std::uint64_t x, const ResolvedConfig& rc);

/// Rounds of one collection phase (grabbing epoch + alarm window).
std::uint64_t collection_phase_rounds(std::uint64_t x, const ResolvedConfig& rc);

/// Upper bound on the total rounds of Stage 3 when the true packet count is
/// k: phases double the estimate from x₀ until it reaches >= k, plus one
/// final (alarm-free) phase.
std::uint64_t collection_rounds_bound(std::uint64_t k, const ResolvedConfig& rc);

/// Upper bound on Stage 4's rounds for k packets: (spacing·g + D̂ + slack)
/// phases of dissem_phase_rounds.
std::uint64_t dissemination_rounds_bound(std::uint64_t k, const ResolvedConfig& rc);

/// Generous end-to-end round cap used by runners as a timeout.
std::uint64_t total_rounds_bound(std::uint64_t k, const ResolvedConfig& rc);

}  // namespace radiocast::core
