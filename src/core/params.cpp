#include "core/params.hpp"

#include "common/math_util.hpp"
#include "protocols/bgi_broadcast.hpp"

namespace radiocast::core {

ResolvedConfig resolve(const KBroadcastConfig& cfg) {
  ResolvedConfig rc;
  rc.know = cfg.know;
  rc.log_n = cfg.know.log_n();
  rc.log_delta = cfg.know.log_delta();

  // Stage 1: binary search over the padded id space [0, 2^B).
  rc.leader_probes = ceil_log2(next_pow2(cfg.know.n_hat));
  if (rc.leader_probes == 0) rc.leader_probes = 1;
  rc.leader_probe_epochs = cfg.leader_probe_epochs != 0
                               ? cfg.leader_probe_epochs
                               : protocols::bgi_default_epochs(cfg.know);
  rc.stage1_rounds = static_cast<std::uint64_t>(rc.leader_probes) *
                     rc.leader_probe_epochs * rc.log_delta;

  // Stage 2.
  rc.bfs_phases = cfg.know.d_hat + cfg.bfs_extra_phases;
  rc.bfs_epochs_per_phase =
      cfg.bfs_epochs_per_phase != 0 ? cfg.bfs_epochs_per_phase : 6 * rc.log_n;
  rc.bfs_phase_rounds =
      static_cast<std::uint64_t>(rc.bfs_epochs_per_phase) * rc.log_delta;
  rc.stage2_rounds = static_cast<std::uint64_t>(rc.bfs_phases) * rc.bfs_phase_rounds;

  // Stage 3.
  rc.grab_c = cfg.grab_c;
  rc.c_log_n = static_cast<std::uint64_t>(cfg.grab_c) * rc.log_n;
  rc.alarm_epochs =
      cfg.alarm_epochs != 0 ? cfg.alarm_epochs : protocols::bgi_default_epochs(cfg.know);
  rc.alarm_rounds = static_cast<std::uint64_t>(rc.alarm_epochs) * rc.log_delta;
  rc.initial_estimate =
      static_cast<std::uint64_t>(cfg.know.d_hat + rc.log_n) * rc.log_n;

  // Stage 4.
  rc.group_size = cfg.group_size != 0 ? cfg.group_size : rc.log_n;
  rc.forward_epochs = cfg.forward_epochs != 0 ? cfg.forward_epochs : 10 * rc.log_n;
  rc.group_spacing = cfg.group_spacing;
  rc.coded = cfg.coded;
  // A phase must fit both a FORWARD execution and the root's one-by-one
  // injection of a whole group.
  rc.dissem_phase_rounds =
      std::max<std::uint64_t>(static_cast<std::uint64_t>(rc.forward_epochs) * rc.log_delta,
                              rc.group_size);
  return rc;
}

}  // namespace radiocast::core
