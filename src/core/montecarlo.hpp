// Parallel Monte Carlo trial driver.
//
// Every quantitative claim the benches reproduce is a w.h.p. statement, so
// each experiment is a sweep over a grid of seeds. The trials are
// independent by construction — each one owns its Network, its Rng(s)
// seeded from the trial index, and (optionally) its obs::RunObserver; the
// topology graph is the only shared state and it is immutable after
// finalize(). That makes the sweep embarrassingly parallel, and this
// driver fans it out over a common::ThreadPool while keeping the output
// *byte-identical* to the sequential path: results land in a slot indexed
// by trial number and are reduced in trial order, never in completion
// order.
//
// Thread budget resolution (highest priority first):
//   1. Options::threads, when > 0;
//   2. RADIOCAST_BENCH_THREADS, when set to a positive integer;
//   3. std::thread::hardware_concurrency().
// A budget of 1 bypasses the pool entirely and runs the trials inline on
// the calling thread — exactly the legacy sequential behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "core/runner.hpp"

namespace radiocast::core::montecarlo {

/// Resolves the thread budget from RADIOCAST_BENCH_THREADS; falls back to
/// `fallback` when the env var is unset/invalid, and to hardware
/// concurrency when `fallback` is 0. Always >= 1.
int threads_from_env(int fallback = 0);

/// Resolves the intra-run shard count from RADIOCAST_BENCH_SHARDS; falls
/// back to `fallback` when the env var is unset/invalid. Always >= 1
/// (1 = no sharding, the legacy single-threaded round path).
int shards_from_env(int fallback = 1);

/// Execution knobs for a sweep (everything else is per-trial state).
struct Options {
  /// 0 = resolve via threads_from_env(); 1 = inline sequential execution.
  int threads = 0;
};

/// Invokes fn(trial) for every trial in [0, trials), possibly from
/// multiple threads (distinct trials only — fn is never called
/// concurrently with the same index). Blocks until all trials finished.
/// If any trial throws, the exception of the lowest-indexed failing trial
/// is rethrown after the sweep drains.
void run_indexed(int trials, const std::function<void(int)>& fn,
                 const Options& opts = {});

/// Runs fn(trial) for every trial and returns the results in trial order
/// (independent of the thread interleaving). The result type must be
/// default-constructible.
template <typename Fn>
auto run(int trials, Fn&& fn, const Options& opts = {})
    -> std::vector<std::invoke_result_t<Fn&, int>> {
  using Result = std::invoke_result_t<Fn&, int>;
  static_assert(std::is_default_constructible_v<Result>,
                "montecarlo::run needs a default-constructible result");
  std::vector<Result> out(trials > 0 ? static_cast<std::size_t>(trials) : 0);
  run_indexed(
      trials, [&out, &fn](int t) { out[static_cast<std::size_t>(t)] = fn(t); },
      opts);
  return out;
}

/// Declarative seed sweep over run_kbroadcast: trial t draws its placement
/// from placement_seed(t), runs with run_seed(t), and optionally gets its
/// own fault model and RunObserver. The graph must be finalized and
/// outlive the call.
struct KBroadcastSweep {
  const graph::Graph* graph = nullptr;
  KBroadcastConfig cfg;
  std::uint32_t k = 0;
  PlacementMode placement = PlacementMode::kRandom;
  std::uint32_t payload_bytes = 16;
  std::function<std::uint64_t(int)> placement_seed;
  std::function<std::uint64_t(int)> run_seed;
  std::uint64_t max_rounds = 0;
  /// Optional per-trial fault model (empty = no faults).
  std::function<radio::FaultModel(int)> faults;
  /// Optional per-trial observer; the pointer must stay valid for the
  /// duration of the sweep (empty = no observer).
  std::function<obs::RunObserver*(int)> observer;
  /// Optional per-trial model-conformance auditor; same lifetime contract
  /// as `observer`. Distinct trials must get distinct auditors when the
  /// sweep runs multithreaded (empty = no auditing).
  std::function<RunAuditor*(int)> auditor;
  /// Optional per-trial packet-lifecycle tracer (obs/packet_trace.hpp);
  /// same lifetime and distinct-per-trial contracts as `auditor` (empty =
  /// no tracing).
  std::function<obs::PacketTracer*(int)> tracer;
  /// Engine ablation: run every trial with collision detection enabled.
  bool collision_detection = false;
  /// Round kernel for every trial (see radio::EngineMode; both kernels
  /// produce identical results).
  radio::EngineMode engine = radio::EngineMode::kScalar;
  /// Intra-run shards per trial (radio::Network::set_shards; execution
  /// knob — results are shard-count invariant). The sweep divides the
  /// trial thread budget by this, so trials x shards stays within the
  /// overall budget: shards help when trials are few and runs are big,
  /// and trial fan-out wins automatically when trials are many.
  int shards = 1;
};

/// Runs `trials` independent k-broadcast trials; results in trial order.
std::vector<RunResult> run_kbroadcast_sweep(const KBroadcastSweep& sweep,
                                            int trials,
                                            const Options& opts = {});

}  // namespace radiocast::core::montecarlo
