// Stage 3 — packet collection at the root (the paper's Section 2.3).
//
// The stage is a sequence of phases; each phase is a grabbing epoch (the
// GRAB(x) cascade of OSPG/MSPG windows) followed by an alarming epoch (a
// one-bit BGI flood by every node still holding an unacknowledged packet).
// The estimate x of the unknown packet count k starts at (D̂+log n̂)·log n̂
// and doubles after every phase whose alarm was positive; the stage ends
// with the first alarm-free phase, at which point the root holds all
// packets w.h.p. (Lemmas 4 and 5).
//
// Within an OSPG(y) window:
//  * every non-root node draws, for each of its unacknowledged packets, a
//    uniform start slot in [1, 6y] (MSPG: `copies` slots) and unicasts the
//    packet towards the root along BFS parent pointers, one hop per round;
//  * relays forward a packet exactly one round after receiving it; there
//    is no retransmission — collided copies are simply lost;
//  * after the up window, the root acknowledges every packet received in
//    this window, spacing acknowledgments 3 rounds apart; relays route
//    each acknowledgment to the child that delivered the packet.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/schedule.hpp"
#include "obs/observer.hpp"
#include "protocols/alarm.hpp"
#include "radio/knowledge.hpp"
#include "radio/node.hpp"

namespace radiocast::core {

class ProtocolAuditSink;

class CollectionState {
 public:
  struct Config {
    ResolvedConfig rc;
    /// Optional flight recorder fed at phase and epoch boundaries (set on
    /// the observed node only; stage schedules are global, so one node's
    /// boundaries are the run's).
    obs::RunObserver* observer = nullptr;
    /// Absolute round of this stage's start — converts the relative rounds
    /// this state machine runs on into run-global rounds for the observer
    /// and the audit sink.
    std::uint64_t observer_round_offset = 0;
    /// Optional model-conformance audit sink, fed the same phase/epoch
    /// boundaries as the observer but on *every* node, tagged with
    /// `audit_node`.
    ProtocolAuditSink* audit = nullptr;
    radio::NodeId audit_node = 0;
  };

  /// `parent` is this node's BFS parent (nullopt if the node never joined
  /// the tree — it then neither sources nor relays, but still follows the
  /// phase schedule and participates in alarm floods).
  CollectionState(const Config& cfg, radio::NodeId self, bool is_root,
                  std::optional<radio::NodeId> parent,
                  std::vector<radio::Packet> own_packets, Rng* rng);

  std::optional<radio::MessageBody> on_transmit(std::uint64_t rel_round);
  void on_receive(std::uint64_t rel_round, const radio::Message& msg);

  /// Optional payload-buffer pool for outgoing DataMsg copies (usually the
  /// owning node's NodeProtocol::payload_arena). Null => heap-allocate,
  /// byte-identical either way.
  void set_payload_arena(radio::PayloadArena* arena) { arena_ = arena; }

  /// True once the stage ended (first alarm-free phase completed). The
  /// caller must keep driving on_transmit until this flips.
  bool finished() const { return finished_; }
  /// Stage length in rounds (valid once finished()).
  std::uint64_t finished_at() const { return finished_at_; }

  /// Root only: all collected packets (includes the root's own packets).
  const std::vector<radio::Packet>& collected() const { return collected_; }

  /// True iff all of this node's own packets were acknowledged.
  bool all_acked() const { return acked_count_ == own_packets_.size(); }
  std::size_t unacked_count() const { return own_packets_.size() - acked_count_; }

  /// The own packets that were never acknowledged (used by the dynamic
  /// variant to carry them into the next epoch).
  std::vector<radio::Packet> unacked_packets() const;

  std::uint32_t phases_run() const { return phase_index_; }
  std::uint64_t estimate() const { return estimate_; }

  /// Diagnostics: dropped own-starts / relay conflicts (lost to the
  /// one-transmission-per-round constraint).
  std::uint64_t start_conflicts() const { return start_conflicts_; }

 private:
  struct OwnPacket {
    radio::Packet packet;
    bool acked = false;
  };

  void advance(std::uint64_t rel_round);
  void begin_phase(std::uint64_t phase_start);
  void begin_window(std::size_t window_index);
  /// Index of the gather window containing `offset` (relative to the
  /// grabbing epoch), or npos if `offset` is in the alarm window.
  static constexpr std::size_t kAlarm = static_cast<std::size_t>(-1);

  Config cfg_;
  radio::NodeId self_;
  bool is_root_;
  std::optional<radio::NodeId> parent_;
  Rng* rng_;
  radio::PayloadArena* arena_ = nullptr;

  std::vector<OwnPacket> own_packets_;
  std::size_t acked_count_ = 0;

  // Phase machinery.
  std::uint32_t phase_index_ = 0;
  std::uint64_t estimate_ = 0;
  std::uint64_t phase_start_ = 0;
  std::uint64_t grab_end_ = 0;   // rel round where the alarm window starts
  std::uint64_t phase_end_ = 0;
  std::vector<GatherWindow> windows_;
  std::size_t window_index_ = 0;
  bool alarm_started_ = false;
  bool finished_ = false;
  std::uint64_t finished_at_ = 0;

  // Per-window state.
  /// start slot (rel round, absolute within stage) -> own packet index.
  std::unordered_map<std::uint64_t, std::size_t> start_schedule_;
  /// In-flight relay forward: packet to send at `relay_round`.
  std::optional<radio::Packet> relay_packet_;
  std::uint64_t relay_round_ = 0;
  /// In-flight ack forward.
  std::optional<radio::AckMsg> relay_ack_;
  std::uint64_t relay_ack_round_ = 0;

  // Root state.
  std::vector<radio::Packet> collected_;
  std::unordered_map<radio::PacketId, bool> collected_ids_;
  /// Acks the root owes for packets received in the current window.
  std::vector<radio::AckMsg> ack_queue_;

  /// Persistent routing memory: packet id -> child that delivered it (the
  /// BFS path is fixed, so the child never changes).
  std::unordered_map<radio::PacketId, radio::NodeId> child_of_packet_;

  protocols::AlarmWindow alarm_;
  std::uint64_t start_conflicts_ = 0;
};

}  // namespace radiocast::core
