#include "core/runner.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"
#include "core/audit.hpp"
#include "obs/packet_trace.hpp"
#include "core/protocol.hpp"
#include "core/schedule.hpp"
#include "graph/algorithms.hpp"
#include "radio/network.hpp"
#include "radio/protocol_slab.hpp"

namespace radiocast::core {

Placement make_placement(std::uint32_t n, std::uint32_t k, PlacementMode mode,
                         std::uint32_t payload_bytes, Rng& rng) {
  RC_ASSERT(n >= 1);
  Placement placement(n);
  std::vector<std::uint32_t> owners(k);
  switch (mode) {
    case PlacementMode::kRandom:
      for (auto& owner : owners) owner = static_cast<std::uint32_t>(rng.next_below(n));
      break;
    case PlacementMode::kSingleSource: {
      const auto source = static_cast<std::uint32_t>(rng.next_below(n));
      for (auto& owner : owners) owner = source;
      break;
    }
    case PlacementMode::kSpreadEven: {
      // Random node permutation, packets dealt round-robin.
      std::vector<std::uint32_t> perm(n);
      for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
      for (std::uint32_t i = n; i > 1; --i) {
        const auto j = static_cast<std::uint32_t>(rng.next_below(i));
        std::swap(perm[i - 1], perm[j]);
      }
      for (std::uint32_t i = 0; i < k; ++i) owners[i] = perm[i % n];
      break;
    }
  }
  std::vector<std::uint32_t> seq(n, 0);
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint32_t owner = owners[i];
    radio::Packet packet;
    packet.id = radio::make_packet_id(owner, seq[owner]++);
    packet.payload.resize(payload_bytes);
    for (auto& byte : packet.payload) byte = static_cast<std::uint8_t>(rng() & 0xff);
    placement[owner].push_back(std::move(packet));
  }
  return placement;
}

std::vector<radio::Packet> placement_packets(const Placement& placement) {
  std::vector<radio::Packet> all;
  for (const auto& node_packets : placement) {
    all.insert(all.end(), node_packets.begin(), node_packets.end());
  }
  std::sort(all.begin(), all.end(),
            [](const radio::Packet& a, const radio::Packet& b) { return a.id < b.id; });
  return all;
}

namespace {

/// True iff `got` (sorted or not) equals the ground truth exactly.
bool holds_all(std::vector<radio::Packet> got, const std::vector<radio::Packet>& truth) {
  if (got.size() != truth.size()) return false;
  std::sort(got.begin(), got.end(),
            [](const radio::Packet& a, const radio::Packet& b) { return a.id < b.id; });
  return got == truth;
}

}  // namespace

RunResult run_kbroadcast(const graph::Graph& g, const KBroadcastConfig& cfg,
                         const Placement& placement, std::uint64_t seed,
                         std::uint64_t max_rounds, const radio::FaultModel& faults,
                         obs::RunObserver* observer, RunAuditor* auditor,
                         bool collision_detection, obs::PacketTracer* tracer,
                         radio::EngineMode engine, std::uint32_t shards) {
  RC_ASSERT(g.finalized());
  RC_ASSERT(placement.size() == g.num_nodes());
  const ResolvedConfig rc = resolve(cfg);
  const std::vector<radio::Packet> truth = placement_packets(placement);

  RunResult result;
  result.n = g.num_nodes();
  result.k = static_cast<std::uint32_t>(truth.size());

  if (truth.empty()) {
    // Nothing to broadcast: no node wakes and the task is vacuously done.
    result.delivered_all = true;
    result.leader_ok = true;
    result.bfs_ok = true;
    result.nodes_complete = g.num_nodes();
    return result;
  }

  if (max_rounds == 0) max_rounds = total_rounds_bound(result.k, rc);

  // The expected leader (max-id packet holder) doubles as the observed
  // node: its stage schedule is the run's schedule w.h.p.
  radio::NodeId expected_leader = 0;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!placement[v].empty()) expected_leader = std::max(expected_leader, v);
  }

  if (auditor != nullptr) {
    auditor->begin_run(g, rc, truth, faults, collision_detection);
  }
  if (tracer != nullptr) {
    tracer->begin_trial(g.num_nodes(), truth, rc.group_size);
    for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const radio::Packet& p : placement[v]) tracer->seed_packet(p.id, v);
    }
  }

  // All protocol instances live in one contiguous slab (declared before the
  // network so it outlives the non-owning pointers handed to it).
  radio::ProtocolSlab<KBroadcastNode> slab(g.num_nodes());
  radio::Network net(g);
  net.set_engine(engine);
  if (shards > 1) net.set_shards(shards);
  if (faults.reception_loss_probability > 0.0) net.set_fault_model(faults);
  if (collision_detection) net.enable_collision_detection(true);
  net.set_observer(observer);
  // The engine has one audit-hook slot; when both a model auditor and a
  // packet tracer are requested they share it through a tee (stack-owned:
  // it must outlive the network's last step, which ends with this call).
  radio::AuditHookTee tee(auditor, tracer);
  if (auditor != nullptr && tracer != nullptr) {
    net.set_auditor(&tee);
  } else if (tracer != nullptr) {
    net.set_auditor(tracer);
  } else {
    net.set_auditor(auditor);
  }
  Rng master(seed);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    Rng child = master.split();
    KBroadcastNode& node = slab.emplace(rc, v, placement[v], child);
    if (observer != nullptr && v == expected_leader) node.set_observer(observer);
    if (auditor != nullptr) node.set_audit_sink(auditor);
    net.set_protocol(v, &node);
    if (!placement[v].empty()) net.wake_at_start(v);
  }

  const bool all_done = net.run_until_done(max_rounds);
  result.timed_out = !all_done;
  result.total_rounds = net.current_round();
  result.counters = net.trace().counters();
  result.dropped_trace_events = net.trace().dropped_events();
  if (observer != nullptr) {
    observer->finish(result.total_rounds);
    if (result.dropped_trace_events > 0) {
      observer->metrics()
          .counter("trace.dropped_events")
          .inc(result.dropped_trace_events);
    }
    result.metrics = observer->metrics_snapshot();
  }

  // --- Verification against ground truth ---
  std::uint32_t leaders = 0;
  bool leader_is_expected = false;
  const graph::BfsResult truth_bfs = graph::bfs(g, expected_leader);

  result.bfs_ok = true;
  result.nodes_complete = 0;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& node = static_cast<const KBroadcastNode&>(net.protocol(v));
    if (node.is_leader()) {
      ++leaders;
      if (v == expected_leader) leader_is_expected = true;
    }
    if (truth_bfs.dist[v] != graph::kUnreachable) {
      if (!node.has_bfs_distance() || node.bfs_distance() != truth_bfs.dist[v]) {
        result.bfs_ok = false;
      }
    }
    if (holds_all(node.delivered_packets(), truth)) ++result.nodes_complete;
  }
  result.leader_ok = leaders == 1 && leader_is_expected;
  result.delivered_all = result.nodes_complete == g.num_nodes();

  // --- Stage accounting (from the leader's perspective) ---
  const auto& leader_node =
      static_cast<const KBroadcastNode&>(net.protocol(expected_leader));
  result.stage1_rounds = rc.stage1_rounds;
  result.stage2_rounds = rc.stage2_rounds;
  if (leader_node.stage3_end() != 0) {
    result.stage3_rounds = leader_node.stage3_end() - rc.stage3_start();
    if (result.total_rounds > leader_node.stage3_end()) {
      result.stage4_rounds = result.total_rounds - leader_node.stage3_end();
    }
  }
  if (const CollectionState* coll = leader_node.collection()) {
    result.collection_phases = coll->phases_run();
    result.final_estimate = coll->estimate();
  }
  if (auditor != nullptr) auditor->end_run(net, result);
  return result;
}

}  // namespace radiocast::core
