// End-to-end execution harness: builds a network over a topology, installs
// a protocol on every node, runs to completion, and verifies that every
// node ended up with a bit-exact copy of every packet.
//
// Runners are the single entry point used by the examples, the integration
// tests, and every bench — so all of them measure completion time the same
// way: the first round at which every node holds all k packets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"
#include "obs/observer.hpp"
#include "radio/message.hpp"
#include "radio/network.hpp"
#include "radio/trace.hpp"

namespace radiocast::obs {
class PacketTracer;
}

namespace radiocast::core {

class RunAuditor;

/// How the k packets are spread over the nodes initially.
enum class PlacementMode {
  kRandom,        ///< each packet lands on an independently uniform node
  kSingleSource,  ///< all packets start at one uniformly chosen node
  kSpreadEven,    ///< packets dealt round-robin over a random node subset
};

/// placement[v] = packets initially stored at node v.
using Placement = std::vector<std::vector<radio::Packet>>;

/// Generates k packets with `payload_bytes`-byte pseudo-random payloads and
/// places them per `mode`. Packet ids encode (origin, sequence).
Placement make_placement(std::uint32_t n, std::uint32_t k, PlacementMode mode,
                         std::uint32_t payload_bytes, Rng& rng);

/// All packets of a placement, sorted by id (the delivery ground truth).
std::vector<radio::Packet> placement_packets(const Placement& placement);

/// Everything one k-broadcast run reports: delivery verdict, per-stage
/// round accounting, and the engine's trace counters.
struct RunResult {
  bool delivered_all = false;  ///< every node holds every packet bit-exact
  bool timed_out = false;
  std::uint32_t nodes_complete = 0;  ///< nodes holding everything
  std::uint32_t n = 0;
  std::uint32_t k = 0;

  std::uint64_t total_rounds = 0;  ///< first all-complete round

  // Stage accounting (k-broadcast protocols only; zero otherwise).
  std::uint64_t stage1_rounds = 0;
  std::uint64_t stage2_rounds = 0;
  std::uint64_t stage3_rounds = 0;
  std::uint64_t stage4_rounds = 0;
  bool leader_ok = false;  ///< unique leader == max-id packet holder
  bool bfs_ok = false;     ///< all reachable nodes joined with exact distances
  std::uint32_t collection_phases = 0;
  std::uint64_t final_estimate = 0;

  radio::TraceCounters counters;

  /// Events the engine's bounded trace log discarded (radio::Trace::
  /// dropped_events). Zero unless event logging was enabled and overflowed
  /// — nonzero means per-event artifacts of this run are incomplete.
  std::uint64_t dropped_trace_events = 0;

  /// Flight-recorder metrics snapshot — filled only when an observer was
  /// passed to run_kbroadcast (empty otherwise). Span data stays on the
  /// observer itself (ask it for spans() / feed it to obs::write_*).
  obs::MetricsSnapshot metrics;

  double amortized_rounds_per_packet() const {
    return k == 0 ? 0.0 : static_cast<double>(total_rounds) / static_cast<double>(k);
  }
};

/// Runs the paper's protocol (or its uncoded variant, per cfg.coded).
/// `max_rounds` == 0 derives a generous bound from the schedule. `faults`
/// optionally injects external interference (see radio::FaultModel).
/// `observer`, when non-null, records the run's span tree (stages >
/// collection phases > OSPG/MSPG/ALARM epochs) and labelled metrics; the
/// runner wires it to the network and to the expected leader's protocol,
/// closes all spans at the end, and copies the metrics into the result.
/// `auditor`, when non-null, gets begin_run before the network is built,
/// every engine/protocol audit event during the run (the runner wires it
/// to the network and to *every* node), and end_run with the final result;
/// auditing is read-only, so an audited run is bit-identical to an
/// unaudited one. `collision_detection` forwards the engine ablation flag
/// (see radio::Network::enable_collision_detection).
/// `tracer`, when non-null, records per-packet lifecycle telemetry (first
/// receptions, decode rounds, flight paths — see obs/packet_trace.hpp);
/// the runner arms it with the run's ground truth and placement and tees
/// it with the auditor when both are present. Like the auditor it is
/// read-only: a traced run is bit-identical to an untraced one.
/// Note: a run with zero packets returns vacuously without building a
/// network, so the auditor and tracer are never invoked for it.
/// `engine` selects the round kernel (see radio::EngineMode); both modes
/// produce identical results, pinned by the differential oracle tests.
/// `shards` splits each round's reception sweep over that many intra-run
/// worker shards (see radio::Network::set_shards) — an execution knob:
/// results are shard-count invariant bit for bit, pinned by the shard
/// oracle tests.
RunResult run_kbroadcast(const graph::Graph& g, const KBroadcastConfig& cfg,
                         const Placement& placement, std::uint64_t seed,
                         std::uint64_t max_rounds = 0,
                         const radio::FaultModel& faults = {},
                         obs::RunObserver* observer = nullptr,
                         RunAuditor* auditor = nullptr,
                         bool collision_detection = false,
                         obs::PacketTracer* tracer = nullptr,
                         radio::EngineMode engine = radio::EngineMode::kScalar,
                         std::uint32_t shards = 1);

}  // namespace radiocast::core
