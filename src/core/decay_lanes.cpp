#include "core/decay_lanes.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "common/math_util.hpp"

namespace radiocast::core {

namespace {

using graph::NodeId;

std::uint32_t resolve_epoch_length(const graph::Graph& g, const DecayLaneConfig& cfg) {
  if (cfg.epoch_length != 0) return cfg.epoch_length;
  const std::uint64_t delta = std::max<std::uint64_t>(2, g.max_degree());
  return ceil_log2(delta) + 1;
}

std::uint64_t resolve_max_rounds(const graph::Graph& g, std::uint32_t epoch_length,
                                 const DecayLaneConfig& cfg) {
  if (cfg.max_rounds != 0) return cfg.max_rounds;
  // Whp bound is O((diam + log n) log Δ); n·L generously covers the
  // worst diameter without computing it.
  return 8ULL * epoch_length * std::max<std::uint64_t>(1, g.num_nodes());
}

/// One node's transmit-decision word for Decay step `s`: the AND of s+1
/// uniform words (bit j set with probability 2^-(s+1), independently per
/// lane). Always draws exactly s+1 words — see the draw discipline note in
/// the header.
std::uint64_t draw_step_word(Rng& rng, std::uint32_t s) {
  std::uint64_t d = rng();
  for (std::uint32_t extra = 0; extra < s; ++extra) d &= rng();
  return d;
}

std::vector<Rng> node_streams(const graph::Graph& g, std::uint64_t seed) {
  Rng master(seed);
  std::vector<Rng> rngs;
  rngs.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) rngs.push_back(master.split());
  return rngs;
}

}  // namespace

DecayLaneResult run_decay_lanes(const graph::Graph& g, const DecayLaneConfig& cfg) {
  RC_ASSERT(g.finalized());
  RC_ASSERT(cfg.source < g.num_nodes());
  const NodeId n = g.num_nodes();
  const std::uint32_t epoch_length = resolve_epoch_length(g, cfg);
  const std::uint64_t max_rounds = resolve_max_rounds(g, epoch_length, cfg);

  std::vector<Rng> rngs = node_streams(g, cfg.seed);
  std::vector<std::uint64_t> informed(n, 0);
  std::vector<std::uint64_t> tx(n, 0);
  informed[cfg.source] = ~0ULL;

  DecayLaneResult result;
  result.completion_round.fill(DecayLaneResult::kIncomplete);
  std::uint64_t done_lanes = (n == 1) ? ~0ULL : 0;
  if (n == 1) result.completion_round.fill(0);

  const std::size_t* const offsets = g.csr_offsets();
  const NodeId* const targets = g.csr_targets();

  std::uint64_t round = 0;
  for (; round < max_rounds && done_lanes != ~0ULL; ++round) {
    const auto s = static_cast<std::uint32_t>(round % epoch_length);
    // Phase 1: transmit words, all lanes at once.
    for (NodeId v = 0; v < n; ++v) {
      tx[v] = informed[v] & draw_step_word(rngs[v], s);
    }
    // Phase 2+3 per listener: carry-save over the neighbors' transmit
    // words; once & ~twice & ~tx[v] is the exactly-one-transmitter rule
    // for all 64 trials. Updating informed in place is safe — reception
    // reads only this round's tx words, already fixed.
    std::uint64_t all = ~0ULL;
    for (NodeId v = 0; v < n; ++v) {
      std::uint64_t once = 0;
      std::uint64_t twice = 0;
      const std::size_t end = offsets[v + 1];
      for (std::size_t e = offsets[v]; e < end; ++e) {
        const std::uint64_t t = tx[targets[e]];
        twice |= once & t;
        once |= t;
      }
      informed[v] |= once & ~twice & ~tx[v];
      all &= informed[v];
    }
    std::uint64_t fresh = all & ~done_lanes;
    while (fresh != 0) {
      const auto lane = static_cast<std::uint32_t>(std::countr_zero(fresh));
      fresh &= fresh - 1;
      result.completion_round[lane] = round;
    }
    done_lanes |= all;
  }

  result.rounds_run = round;
  result.lanes_complete = static_cast<std::uint32_t>(std::popcount(done_lanes));
  for (std::uint32_t lane = 0; lane < 64; ++lane) {
    std::uint32_t count = 0;
    for (NodeId v = 0; v < n; ++v) {
      count += static_cast<std::uint32_t>((informed[v] >> lane) & 1ULL);
    }
    result.informed_count[lane] = count;
  }
  return result;
}

std::uint64_t run_decay_lane_reference(const graph::Graph& g, const DecayLaneConfig& cfg,
                                       std::uint32_t lane) {
  RC_ASSERT(g.finalized());
  RC_ASSERT(cfg.source < g.num_nodes() && lane < 64);
  const NodeId n = g.num_nodes();
  const std::uint32_t epoch_length = resolve_epoch_length(g, cfg);
  const std::uint64_t max_rounds = resolve_max_rounds(g, epoch_length, cfg);

  std::vector<Rng> rngs = node_streams(g, cfg.seed);
  std::vector<std::uint8_t> informed(n, 0);
  std::vector<std::uint8_t> tx(n, 0);
  informed[cfg.source] = 1;
  std::uint32_t informed_count = 1;
  if (n == 1) return 0;

  for (std::uint64_t round = 0; round < max_rounds; ++round) {
    const auto s = static_cast<std::uint32_t>(round % epoch_length);
    // Identical draw schedule to the bit-sliced run (every node, every
    // round, s+1 words); this lane is bit `lane` of each word.
    for (NodeId v = 0; v < n; ++v) {
      const std::uint64_t d = draw_step_word(rngs[v], s);
      tx[v] = static_cast<std::uint8_t>(informed[v] & ((d >> lane) & 1ULL));
    }
    for (NodeId v = 0; v < n; ++v) {
      if (informed[v] || tx[v]) continue;
      std::uint32_t reached = 0;
      for (const NodeId u : g.neighbors(v)) reached += tx[u];
      if (reached == 1) {
        informed[v] = 1;
        ++informed_count;
      }
    }
    if (informed_count == n) return round;
  }
  return DecayLaneResult::kIncomplete;
}

std::vector<DecayLaneResult> run_decay_lane_blocks(const graph::Graph& g,
                                                   const DecayLaneConfig& cfg, int blocks,
                                                   const montecarlo::Options& opts) {
  RC_ASSERT(blocks >= 0);
  return montecarlo::run(
      blocks,
      [&](int b) {
        DecayLaneConfig block_cfg = cfg;
        // splitmix64 over (seed, block) — deterministic, block-independent
        // streams regardless of scheduling.
        std::uint64_t st = cfg.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(b);
        block_cfg.seed = splitmix64(st);
        return run_decay_lanes(g, block_cfg);
      },
      opts);
}

}  // namespace radiocast::core
