// The complete multiple-message broadcast protocol — one state machine per
// node, sequencing the paper's four stages:
//
//   Stage 1  [0, L1)              leader election (binary search + alarms)
//   Stage 2  [L1, L1+L2)          distributed BFS construction
//   Stage 3  [L12, L12+T3(node))  packet collection (variable length: ends
//                                 with the first alarm-free phase; all
//                                 nodes agree on T3 w.h.p.)
//   Stage 4  [stage-3 end, ...)   coded (or plain) dissemination
//
// All stage lengths are functions of the shared Knowledge (and, for Stage
// 3, of the alarm history), so nodes stay synchronized with no control
// traffic beyond the protocol's own messages. Nodes woken after round 0
// infer their position in the schedule from the global round number (the
// model is synchronous).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/collection.hpp"
#include "core/dissemination.hpp"
#include "core/params.hpp"
#include "protocols/bfs_construction.hpp"
#include "protocols/leader_election.hpp"
#include "radio/node.hpp"

namespace radiocast::core {

class ProtocolAuditSink;

class KBroadcastNode final : public radio::NodeProtocol {
 public:
  /// Test-only protocol mutations. Each field seeds one deliberate protocol
  /// bug so the audit tests can prove the ModelAuditor catches it (see
  /// tests/audit/mutation_test.cpp). All zero in production.
  struct TestMutations {
    /// "Skipped Decay phase": the node silently drops every Stage-2 BFS
    /// construction transmission it was scheduled to make.
    bool suppress_bfs_transmit = false;
    /// Premature stage advance: the node enters Stage 4 this many rounds
    /// before its collection schedule actually ended.
    std::uint64_t early_stage4_rounds = 0;
    /// Unsound coding: flip the first payload bit of every CodedMsg this
    /// node transmits.
    bool corrupt_coded_payload = false;
  };

  KBroadcastNode(const ResolvedConfig& rc, radio::NodeId self,
                 std::vector<radio::Packet> own_packets, Rng rng);

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override;
  void on_receive(radio::Round round, const radio::Message& msg) override;
  void on_collision(radio::Round /*round*/) override { ++collisions_observed_; }
  bool done() const override;

  // --- Introspection for runners, tests and benches ---
  bool is_participant() const { return !own_packets_.empty(); }
  /// Valid after Stage 1 for nodes awake from round 0.
  bool is_leader() const;
  radio::NodeId leader_id() const;

  bool has_bfs_distance() const;
  std::uint32_t bfs_distance() const;
  radio::NodeId bfs_parent() const;

  const CollectionState* collection() const { return collection_ ? &*collection_ : nullptr; }
  const DisseminationState* dissemination() const {
    return dissemination_ ? &*dissemination_ : nullptr;
  }

  /// Absolute round at which this node's Stage 3 ended (0 if not yet).
  radio::Round stage3_end() const { return stage3_end_; }

  /// Attaches a flight recorder: this node reports its stage transitions
  /// (and, via CollectionState, phase/epoch boundaries) to the observer.
  /// Wire it on one node only — the runner picks the expected leader,
  /// whose schedule view is the run's. Must be set before the run starts.
  void set_observer(obs::RunObserver* observer) { observer_ = observer; }

  /// Attaches a model-conformance audit sink (nullptr detaches). Unlike
  /// the observer, the sink is wired on *every* node, so the auditor can
  /// check cross-node schedule agreement. Must be set before the run
  /// starts; the sink must outlive the node.
  void set_audit_sink(ProtocolAuditSink* sink) { audit_ = sink; }

  /// Installs test-only protocol mutations. Must be set before the run
  /// starts.
  void set_test_mutations(const TestMutations& mutations) { mutations_ = mutations; }

  /// Number of on_collision callbacks this node received (nonzero only
  /// under the collision-detection ablation).
  std::uint64_t collisions_observed() const { return collisions_observed_; }

  /// All packets this node holds at the moment of the call.
  std::vector<radio::Packet> delivered_packets() const;

 private:
  enum class Stage { kLeader, kBfs, kCollection, kDissemination };
  Stage stage_for(radio::Round round) const;
  /// Creates stage state lazily when the schedule crosses a boundary.
  void ensure_stage(radio::Round round);
  /// Reports a stage transition to the observer and audit sink, once per
  /// stage, stamped with the schedule's boundary round (not the
  /// observation round) so stage spans tile the run exactly.
  void report_stage(radio::Round round);
  /// Applies test-only outgoing-message mutations (no-op in production).
  std::optional<radio::MessageBody> apply_mutations(
      std::optional<radio::MessageBody> msg) const;

  ResolvedConfig rc_;
  radio::NodeId self_;
  std::vector<radio::Packet> own_packets_;
  Rng rng_;

  radio::Round stage2_start_ = 0;
  radio::Round stage3_start_ = 0;
  radio::Round stage3_end_ = 0;  // 0 until collection finishes

  protocols::LeaderElectionState leader_;
  std::optional<protocols::BfsBuildState> bfs_;
  std::optional<CollectionState> collection_;
  std::optional<DisseminationState> dissemination_;

  obs::RunObserver* observer_ = nullptr;
  ProtocolAuditSink* audit_ = nullptr;
  TestMutations mutations_;
  std::uint64_t collisions_observed_ = 0;
  /// Last stage reported to the observer/audit sink (none before the
  /// first report).
  std::optional<Stage> reported_stage_;
};

}  // namespace radiocast::core
