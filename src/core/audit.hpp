// Protocol-side audit interfaces for the model-conformance auditor.
//
// Two taps feed an auditor during an end-to-end run:
//   * radio::NetworkAuditHook (radio/audit_hook.hpp) — the engine reports
//     the raw transmission set and every reception outcome;
//   * ProtocolAuditSink (below) — every KBroadcastNode reports its stage
//     transitions, and each node's CollectionState reports its phase and
//     epoch boundaries, so the auditor can check the GRAB/OSPG/MSPG/ALARM
//     round budgets of core::params against what the protocol actually
//     executed.
//
// RunAuditor bundles both plus begin/end hooks; core::run_kbroadcast wires
// a RunAuditor through the network and every node. The concrete
// implementation is audit::ModelAuditor (src/audit/model_auditor.hpp);
// keeping the interfaces here lets core stay independent of the audit
// subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "graph/graph.hpp"
#include "radio/audit_hook.hpp"
#include "radio/message.hpp"
#include "radio/network.hpp"

namespace radiocast::core {

struct RunResult;

/// Protocol-discipline events reported by the k-broadcast state machines.
/// Every callback carries the reporting node, so the auditor can check
/// cross-node schedule agreement as well as per-node budgets. All rounds
/// are absolute (run-global), stamped with the schedule boundary rather
/// than the observation round.
class ProtocolAuditSink {
 public:
  virtual ~ProtocolAuditSink() = default;

  /// Node `node` enters stage `stage_index` (1-based, 1 = leader election
  /// ... 4 = dissemination) whose schedule boundary is `boundary_round`.
  virtual void on_stage_enter(radio::NodeId node, std::uint32_t stage_index,
                              radio::Round boundary_round) = 0;

  /// Node `node` begins Stage-3 collection phase `phase_index` with
  /// estimate x at `round`.
  virtual void on_collection_phase_begin(radio::NodeId node,
                                         std::uint32_t phase_index,
                                         std::uint64_t estimate,
                                         radio::Round round) = 0;

  /// An epoch within the node's current phase begins ("ospg", "mspg",
  /// "alarm"); `slots`/`copies` describe the gather window (0 for alarm).
  virtual void on_collection_epoch(radio::NodeId node, const char* kind,
                                   std::uint64_t slots, std::uint32_t copies,
                                   radio::Round round) = 0;

  /// The node's current phase ends; `alarmed` decides doubling vs finish.
  virtual void on_collection_phase_end(radio::NodeId node, radio::Round round,
                                       bool alarmed) = 0;
};

/// The full auditor contract used by run_kbroadcast: both event taps plus
/// run-scoped setup and final-state checks.
class RunAuditor : public radio::NetworkAuditHook, public ProtocolAuditSink {
 public:
  /// Called once before the network is built. `truth` is the ground-truth
  /// packet set (sorted by id — the same order Stage 4 groups them in);
  /// `collision_detection` reports the engine ablation flag.
  virtual void begin_run(const graph::Graph& g, const ResolvedConfig& rc,
                         const std::vector<radio::Packet>& truth,
                         const radio::FaultModel& faults,
                         bool collision_detection) = 0;

  /// Called once after the run, with the verified result. `net` still owns
  /// every protocol, so the auditor may inspect final per-node state (BFS
  /// distances, delivered packet sets, done() claims).
  virtual void end_run(const radio::Network& net, const RunResult& result) = 0;
};

}  // namespace radiocast::core
