// Dynamic multiple-message broadcast — the extension the paper's
// conclusion poses as an open direction: "in a more practical scenario,
// packets appear at nodes dynamically; a challenging direction would be to
// adapt 'static' solutions ... to such a more dynamic setting".
//
// This module adapts the static pipeline in the most direct way that
// preserves its guarantees:
//
//   Setup (once):  Stage 1 leader election (all nodes participate — in the
//                  dynamic setting every node is on from round 0) and
//                  Stage 2 BFS construction, exactly as in the paper.
//   Epoch e >= 0:  a collection sub-stage (the paper's Stage 3, over the
//                  packets that arrived before the epoch and are not yet
//                  delivered) followed by a dissemination window (the
//                  paper's Stage 4) sized for `batch_capacity` packets.
//
// Synchronization carries over unchanged: collection length is
// alarm-synchronized, and the dissemination window has a fixed,
// capacity-derived length so every node can compute the next epoch's start
// locally. If more than `batch_capacity` packets were collected, the root
// defers the excess to the next epoch's window (they are already acked, so
// sources do not retransmit). Packets arriving mid-epoch simply wait for
// the next collection sub-stage.
//
// The amortized cost per packet remains O(logΔ) whenever the arrival rate
// keeps epochs near capacity; the per-packet *latency* is bounded by two
// epoch lengths (one to be collected, one to be disseminated) — both
// measured by run_dynamic_broadcast.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/collection.hpp"
#include "core/dissemination.hpp"
#include "core/params.hpp"
#include "protocols/bfs_construction.hpp"
#include "protocols/leader_election.hpp"
#include "radio/network.hpp"
#include "radio/node.hpp"

namespace radiocast::core {

struct DynamicConfig {
  ResolvedConfig rc;
  /// Maximum packets disseminated per epoch; the dissemination window is
  /// sized for exactly this many.
  std::uint32_t batch_capacity = 0;  ///< 0 => initial estimate of rc

  std::uint32_t resolved_capacity() const {
    return batch_capacity != 0 ? batch_capacity
                               : static_cast<std::uint32_t>(rc.initial_estimate);
  }
  /// Rounds of one dissemination window.
  std::uint64_t dissemination_window() const;
};

class DynamicBroadcastNode : public radio::NodeProtocol {
 public:
  DynamicBroadcastNode(const DynamicConfig& cfg, radio::NodeId self, Rng rng);

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override;
  void on_receive(radio::Round round, const radio::Message& msg) override;

  /// Application-level packet arrival (out-of-band, as in any real stack:
  /// the application hands the packet to the protocol). The packet joins
  /// the next collection sub-stage.
  void inject(radio::Packet packet);

  /// All packets this node has delivered so far (own + decoded), keyed by id.
  const std::unordered_map<radio::PacketId, radio::Packet>& delivered() const {
    return delivered_;
  }

  bool is_leader() const { return leader_.is_leader(); }
  std::uint32_t epochs_completed() const { return epoch_; }

 protected:
  // --- Epoch re-entry hooks ---------------------------------------------
  // The open-system stream layer (src/stream/) subclasses this node to put
  // a bounded, policy-governed source buffer between the application and
  // the epoch pipeline. The default implementations reproduce the closed
  // dynamic-mode behavior exactly, so the base class is unchanged by the
  // hooks' existence.

  /// Called at every collection re-entry (epoch start): returns the fresh
  /// application packets joining this epoch's collection sub-stage, after
  /// the carry-over of the previous epoch's unacked packets. The default
  /// drains the unbounded pending_ list fed by inject().
  virtual std::vector<radio::Packet> take_epoch_packets();

  /// Fired exactly once per packet the first time this node holds it —
  /// own injection, root harvest at the collect→disseminate boundary, or
  /// a Stage-4 decode at the epoch close. Default: no-op.
  virtual void on_packet_delivered(const radio::Packet& packet);

  /// Records `packet` as held by this node and fires on_packet_delivered
  /// on first sight. Subclasses use this to seed their own admissions.
  void deliver(radio::Packet packet);

 private:
  enum class Phase { kSetup, kCollect, kDisseminate };
  void advance(radio::Round round);
  void start_collect(radio::Round round);
  void start_disseminate(radio::Round round);

  DynamicConfig cfg_;
  radio::NodeId self_;
  Rng rng_;

  protocols::LeaderElectionState leader_;
  std::optional<protocols::BfsBuildState> bfs_;
  radio::Round setup_end_ = 0;
  radio::Round bfs_start_ = 0;

  Phase phase_ = Phase::kSetup;
  std::uint32_t epoch_ = 0;
  radio::Round phase_start_ = 0;

  std::optional<CollectionState> collect_;
  std::optional<DisseminationState> dissem_;

  /// Packets that arrived but have not yet entered a collection sub-stage.
  std::vector<radio::Packet> pending_;
  /// Root only: collected packets awaiting a dissemination slot.
  std::deque<radio::Packet> root_queue_;
  /// Root only: ids already disseminated (avoid re-sending re-collected
  /// duplicates).
  std::unordered_map<radio::PacketId, bool> root_sent_;

  std::unordered_map<radio::PacketId, radio::Packet> delivered_;
};

/// One packet arrival event for the harness.
struct Arrival {
  radio::Round round = 0;
  radio::NodeId node = 0;
  radio::Packet packet;
};

struct DynamicRunResult {
  std::uint32_t n = 0;
  std::uint32_t k = 0;           ///< total packets injected
  std::uint64_t horizon = 0;     ///< rounds simulated
  std::uint32_t delivered_everywhere = 0;  ///< packets every node holds
  /// Latency (rounds from arrival to full delivery) stats over delivered
  /// packets.
  double latency_mean = 0;
  double latency_max = 0;
  double amortized_rounds_per_packet = 0;
  radio::TraceCounters counters;
};

/// Simulates a Poisson-like arrival stream (given explicitly as `arrivals`,
/// sorted by round) over `horizon` rounds and reports delivery/latency.
DynamicRunResult run_dynamic_broadcast(const graph::Graph& g,
                                       const DynamicConfig& cfg,
                                       std::vector<Arrival> arrivals,
                                       std::uint64_t horizon, std::uint64_t seed);

/// Convenience: builds a uniform random arrival stream of `k` packets over
/// [0, spread_rounds).
std::vector<Arrival> make_arrivals(std::uint32_t n, std::uint32_t k,
                                   std::uint64_t spread_rounds,
                                   std::uint32_t payload_bytes, Rng& rng);

}  // namespace radiocast::core
