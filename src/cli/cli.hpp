// The `radiocast` experiment-orchestration command line.
//
// One entry point over the whole experiment stack (scenario specs →
// montecarlo sweeps → manifests → markdown reports):
//
//   radiocast run <spec.json> [--out DIR] [--seeds N] [--threads N]
//                 [--audit] [--quiet] [--require-delivery]
//   radiocast report <results.json> [--out FILE]
//   radiocast validate <spec.json>
//   radiocast list [DIR]
//   radiocast version
//
// `run` executes the scenario and writes `<out>/<id>.results.json` and
// `<out>/<id>.manifest.json` (out defaults to the current directory),
// printing the rendered report unless --quiet. Exit codes: 0 success,
// 1 usage/spec/IO error, 2 audit violations, 3 delivery failure under
// --require-delivery — so CI can gate on each independently.
//
// The logic lives in cli_main (called by the thin radiocast_main.cpp) so
// tests can drive the command surface in-process.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace radiocast::cli {

/// Runs one CLI invocation; argv[0] is ignored. Writes human output to
/// `out` and errors to `err`.
int cli_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);

/// Reads a whole file; throws std::runtime_error on failure.
std::string read_file(const std::string& path);

/// Writes a whole file (with trailing newline); throws on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace radiocast::cli
