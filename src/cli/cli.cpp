#include "cli/cli.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "exp/jsonval.hpp"
#include "exp/manifest.hpp"
#include "gf2/simd.hpp"
#include "exp/report.hpp"
#include "exp/run.hpp"
#include "exp/scenario.hpp"

namespace radiocast::cli {

namespace {

constexpr const char* kUsage = R"(radiocast — declarative experiment orchestration

usage:
  radiocast run <spec.json> [--out DIR] [--seeds N] [--threads N]
                [--shards N] [--engine scalar|bitset] [--audit] [--quiet]
                [--require-delivery]
  radiocast trace <spec.json> [run options]
  radiocast report <results.json> [--out FILE]
  radiocast validate <spec.json>
  radiocast list [DIR]
  radiocast version

run       execute a scenario; writes <id>.results.json + <id>.manifest.json
          (+ <id>.telemetry.jsonl when the spec enables telemetry)
trace     run with per-packet telemetry + flight paths forced on; also
          writes <id>.flight_trace.json (Chrome trace_event format)
report    render a results file as a markdown table
validate  parse + validate a spec, print its canonical resolved form
list      summarize the scenario files in DIR (default: scenarios/)
version   build provenance (git describe, compiler, flags, engines, simd)

exit codes: 0 ok | 1 usage/spec/IO error | 2 audit violations
            3 delivery failure (with --require-delivery)

See docs/experiments.md for the scenario schema and manifest format.
)";

std::string now_utc_iso8601() {
  const std::time_t t =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

int cmd_run(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err, bool trace_mode = false) {
  std::string spec_path, out_dir = ".";
  std::string engine_override;
  int seeds_override = 0, threads_override = -1, shards_override = -1;
  bool audit_override = false, quiet = false, require_delivery = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw std::runtime_error("missing value after " + a);
      return args[++i];
    };
    if (a == "--out") {
      out_dir = next();
    } else if (a == "--seeds") {
      seeds_override = std::stoi(next());
    } else if (a == "--threads") {
      threads_override = std::stoi(next());
    } else if (a == "--shards") {
      shards_override = std::stoi(next());
    } else if (a == "--engine") {
      engine_override = next();
    } else if (a == "--audit") {
      audit_override = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--require-delivery") {
      require_delivery = true;
    } else if (!a.empty() && a[0] == '-') {
      throw std::runtime_error("unknown option " + a);
    } else if (spec_path.empty()) {
      spec_path = a;
    } else {
      throw std::runtime_error("unexpected argument " + a);
    }
  }
  if (spec_path.empty()) throw std::runtime_error("run: missing <spec.json>");

  exp::ScenarioSpec spec = exp::parse_scenario(read_file(spec_path));
  if (seeds_override > 0) spec.seeds = seeds_override;
  if (threads_override >= 0) spec.threads = threads_override;
  if (shards_override >= 0) spec.shards = shards_override;
  if (audit_override) spec.audit = true;
  if (!engine_override.empty()) spec.engine = engine_override;
  if (trace_mode) {
    spec.telemetry.enabled = true;
    spec.telemetry.flight_paths = true;
  }
  exp::validate_scenario(spec);  // overrides may have invalidated the spec

  exp::ScenarioOutcome outcome = exp::run_scenario(spec);

  // Stamp the wall clock into the (digest-excluded) environment section.
  exp::JsonObject& manifest = outcome.manifest.as_object("manifest");
  if (exp::JsonValue* env = manifest.find("environment"))
    env->as_object("manifest.environment").set("timestamp_utc", now_utc_iso8601());

  std::filesystem::create_directories(out_dir);
  const std::string results_path = out_dir + "/" + spec.id + ".results.json";
  const std::string manifest_path = out_dir + "/" + spec.id + ".manifest.json";
  write_file(results_path, exp::json_serialize(outcome.results, 2));
  write_file(manifest_path, exp::json_serialize(outcome.manifest, 2));

  if (!quiet) out << exp::render_report(outcome.results) << "\n";
  out << "results:  " << results_path << "\n";
  out << "manifest: " << manifest_path << " ("
      << exp::manifest_digest(outcome.manifest) << ")\n";

  if (spec.telemetry.enabled) {
    const std::string telemetry_path = out_dir + "/" + spec.id + ".telemetry.jsonl";
    write_file(telemetry_path, outcome.telemetry);
    std::string digest;
    if (const exp::JsonValue* d = manifest.find("telemetry_digest"))
      digest = d->as_string("manifest.telemetry_digest");
    out << "telemetry: " << telemetry_path << " (" << digest << ")\n";
    if (!outcome.flight_trace.empty()) {
      const std::string trace_path = out_dir + "/" + spec.id + ".flight_trace.json";
      write_file(trace_path, outcome.flight_trace);
      out << "flight trace: " << trace_path << "\n";
    }
  }
  if (outcome.dropped_trace_events > 0) {
    err << "warning: " << outcome.dropped_trace_events
        << " engine trace events were dropped (bounded event log overflowed); "
           "per-event artifacts are incomplete\n";
  }

  if (!outcome.audit_clean) {
    err << "AUDIT VIOLATIONS:\n";
    for (const std::string& v : outcome.audit_violations) err << "  " << v << "\n";
    return 2;
  }
  if (require_delivery && !outcome.all_delivered) {
    err << "delivery failure: at least one trial did not deliver all packets\n";
    return 3;
  }
  return 0;
}

int cmd_report(const std::vector<std::string>& args, std::ostream& out) {
  std::string results_path, out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--out") {
      if (i + 1 >= args.size()) throw std::runtime_error("missing value after --out");
      out_path = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      throw std::runtime_error("unknown option " + a);
    } else if (results_path.empty()) {
      results_path = a;
    } else {
      throw std::runtime_error("unexpected argument " + a);
    }
  }
  if (results_path.empty()) throw std::runtime_error("report: missing <results.json>");

  const std::string markdown =
      exp::render_report(exp::json_parse(read_file(results_path)));
  if (out_path.empty()) {
    out << markdown;
  } else {
    write_file(out_path, markdown);
    out << "report: " << out_path << "\n";
  }
  return 0;
}

int cmd_validate(const std::vector<std::string>& args, std::ostream& out) {
  if (args.size() != 1) throw std::runtime_error("validate: expected one <spec.json>");
  const exp::ScenarioSpec spec = exp::parse_scenario(read_file(args[0]));
  out << exp::serialize_scenario(spec) << "\n";
  return 0;
}

int cmd_list(const std::vector<std::string>& args, std::ostream& out) {
  const std::string dir = args.empty() ? "scenarios" : args[0];
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    try {
      const exp::ScenarioSpec spec = exp::parse_scenario(read_file(path.string()));
      std::size_t cells = 0;
      if (spec.mode == "dynamic") {
        cells = spec.dynamic.load.size();
      } else if (spec.mode == "stream") {
        cells = spec.stream.rate.size() * spec.stream.buffer.size() *
                spec.stream.policy.size();
      } else {
        cells = spec.algos.size() * spec.placement.size() * spec.k.size() *
                spec.loss.size() * spec.collision_detection.size();
      }
      out << path.string() << "\n  " << spec.id << " [" << spec.mode << ", "
          << cells << " cells x " << spec.seeds << " seeds] " << spec.title
          << "\n";
    } catch (const std::exception& e) {
      out << path.string() << "\n  INVALID: " << e.what() << "\n";
    }
  }
  return 0;
}

}  // namespace

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
  if (content.empty() || content.back() != '\n') out << '\n';
  if (!out) throw std::runtime_error("write failed for " + path);
}

int cli_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
      out << kUsage;
      return args.empty() ? 1 : 0;
    }
    const std::string& cmd = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (cmd == "run") return cmd_run(rest, out, err);
    if (cmd == "trace") return cmd_run(rest, out, err, /*trace_mode=*/true);
    if (cmd == "report") return cmd_report(rest, out);
    if (cmd == "validate") return cmd_validate(rest, out);
    if (cmd == "list") return cmd_list(rest, out);
    if (cmd == "version" || cmd == "--version") {
      const exp::BuildInfo b = exp::build_info();
      out << "radiocast " << b.git_describe << "\n"
          << "  compiler:   " << b.compiler << "\n"
          << "  build_type: " << b.build_type << "\n"
          << "  cxx_flags:  " << b.cxx_flags << "\n"
          << "  engines:    scalar, bitset\n"
          << "  simd:       " << gf2::simd_kernel_name() << "\n";
      return 0;
    }
    err << "unknown command \"" << cmd << "\"\n\n" << kUsage;
    return 1;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace radiocast::cli
