// Thin shell around cli::cli_main (see cli/cli.hpp for the command
// surface; the logic is library code so tests can drive it in-process).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return radiocast::cli::cli_main(args, std::cout, std::cerr);
}
