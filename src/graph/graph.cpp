#include "graph/graph.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace radiocast::graph {

void Graph::add_edge(NodeId u, NodeId v) {
  RC_ASSERT_MSG(!finalized_, "add_edge after finalize()");
  RC_ASSERT(u < num_nodes() && v < num_nodes());
  RC_ASSERT_MSG(u != v, "self-loops are not allowed in a radio network graph");
  // Reject duplicates (linear scan is fine at build time; generators never
  // produce heavy duplication).
  const auto& list = build_adjacency_[u];
  if (std::find(list.begin(), list.end(), v) != list.end()) return;
  build_adjacency_[u].push_back(v);
  build_adjacency_[v].push_back(u);
  ++num_edges_;
}

void Graph::finalize() {
  if (finalized_) return;
  offsets_.assign(num_nodes_ + 1, 0);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    offsets_[u + 1] = offsets_[u] + build_adjacency_[u].size();
  }
  targets_.resize(offsets_[num_nodes_]);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    auto& list = build_adjacency_[u];
    std::sort(list.begin(), list.end());
    std::copy(list.begin(), list.end(), targets_.begin() + offsets_[u]);
  }
  build_adjacency_.clear();
  build_adjacency_.shrink_to_fit();
  finalized_ = true;
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) best = std::max(best, degree(u));
  return best;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  RC_ASSERT_MSG(finalized_, "has_edge requires finalize()");
  RC_ASSERT(u < num_nodes() && v < num_nodes());
  const std::span<const NodeId> list = neighbors(u);
  return std::binary_search(list.begin(), list.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  RC_ASSERT_MSG(finalized_, "edges() requires finalize()");
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::string Graph::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "n=%u m=%zu maxdeg=%zu", num_nodes(), num_edges_,
                max_degree());
  return buf;
}

}  // namespace radiocast::graph
