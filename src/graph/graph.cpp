#include "graph/graph.hpp"

#include <algorithm>
#include <cstdio>

namespace radiocast::graph {

void Graph::add_edge(NodeId u, NodeId v) {
  RC_ASSERT_MSG(!finalized_, "add_edge after finalize()");
  RC_ASSERT(u < num_nodes() && v < num_nodes());
  RC_ASSERT_MSG(u != v, "self-loops are not allowed in a radio network graph");
  // Reject duplicates (linear scan is fine at build time; generators never
  // produce heavy duplication).
  const auto& list = adjacency_[u];
  if (std::find(list.begin(), list.end(), v) != list.end()) return;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
}

void Graph::finalize() {
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());
  finalized_ = true;
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& list : adjacency_) best = std::max(best, list.size());
  return best;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  RC_ASSERT_MSG(finalized_, "has_edge requires finalize()");
  RC_ASSERT(u < num_nodes() && v < num_nodes());
  const auto& list = adjacency_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  RC_ASSERT_MSG(finalized_, "edges() requires finalize()");
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : adjacency_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::string Graph::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "n=%u m=%zu maxdeg=%zu", num_nodes(), num_edges_,
                max_degree());
  return buf;
}

}  // namespace radiocast::graph
