// Word-grouped adjacency index for bit-parallel reception sweeps.
//
// The bitset round engine intersects each receiver's neighborhood with a
// packed transmit set (one bit per node). Walking the CSR neighbor list and
// testing bits one at a time costs one load per neighbor; grouping the
// sorted neighbor ids of a row by 64-aligned word gives a list of
// (word index, bit mask) pairs so the intersection is one AND per *word*
// the row touches. On graphs with id locality (geometric layouts, cluster
// chains, spatially-sorted meshes) a degree-16 row collapses to one or two
// groups.
//
// The index is optional and adaptive: `PackedRows::build` first counts the
// groups and only materialises the arrays when they are meaningfully
// smaller than the CSR entry count (grouping a random graph's rows would
// *grow* memory 1.5x, since each group is 12 bytes vs 4 per CSR entry).
// When the index is not built, sweeps fall back to grouping rows on the
// fly from the sorted CSR arrays — same group stream, zero extra memory.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace radiocast::graph {

/// One 64-node-aligned chunk of a neighbor row: the neighbors of the row's
/// vertex whose ids fall in [word*64, word*64+64), as a bit mask.
struct WordGroup {
  std::uint32_t word = 0;
  std::uint64_t mask = 0;
};

/// Immutable per-row word-group index over a finalized graph.
class PackedRows {
 public:
  /// Builds the index iff the grouped representation is at most half the
  /// CSR footprint (>= 2x id-locality compression); otherwise returns an
  /// empty index with built() == false and callers group on the fly.
  static PackedRows build(const Graph& g);

  /// Builds unconditionally (tests and benchmarks that want the packed
  /// path regardless of compression).
  static PackedRows build_always(const Graph& g);

  bool built() const { return !offsets_.empty(); }
  std::size_t num_groups() const { return groups_.size(); }

  /// Word groups of row `u`, ascending by word index. Requires built().
  std::span<const WordGroup> row(NodeId u) const {
    RC_DCHECK(built() && u + 1 < offsets_.size());
    return {groups_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

 private:
  static PackedRows materialize(const Graph& g);

  /// offsets_[u] .. offsets_[u+1]) indexes groups_; n+1 entries when built.
  std::vector<std::uint32_t> offsets_;
  std::vector<WordGroup> groups_;
};

/// Streams the word groups of one sorted neighbor row without an index:
/// calls `fn(word, mask)` once per 64-aligned chunk, ascending. `row` must
/// be sorted ascending (CSR rows after finalize() are).
template <typename Fn>
inline void for_each_word_group(std::span<const NodeId> row, Fn&& fn) {
  std::size_t i = 0;
  const std::size_t len = row.size();
  while (i < len) {
    const std::uint32_t word = row[i] >> 6;
    std::uint64_t mask = 0;
    do {
      mask |= 1ULL << (row[i] & 63);
      ++i;
    } while (i < len && (row[i] >> 6) == word);
    fn(word, mask);
  }
}

}  // namespace radiocast::graph
