// Undirected simple graphs — the reachability topology of a radio network.
//
// The simulator only needs adjacency iteration and degree queries. The
// structure has two phases: an edge-insertion builder phase backed by
// per-vertex lists, and — after `finalize()` — an immutable CSR layout
// (one `offsets_` array of n+1 cursors into one flat `targets_` array of
// 2m neighbor ids). The round loop's Phase 2 walks neighbor lists of many
// senders per round; CSR keeps those walks on a single contiguous
// allocation instead of one heap block per vertex, which is what makes
// the walk cache-friendly at sweep scale. Edge queries stay O(log deg)
// (lists are sorted), `degree()` is O(1), and the `neighbors()` span API
// is unchanged, so consumers are layout-agnostic.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace radiocast::graph {

using NodeId = std::uint32_t;

class Graph {
 public:
  Graph() = default;
  /// Creates a graph with `n` isolated vertices (ids 0..n-1).
  explicit Graph(NodeId n) : num_nodes_(n), build_adjacency_(n) {}

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}. Self-loops are rejected; duplicate
  /// edges are ignored. Only valid before finalize().
  void add_edge(NodeId u, NodeId v);

  /// Sorts adjacency, compacts it into the CSR arrays, and freezes the
  /// graph (the builder lists are released).
  void finalize();
  bool finalized() const { return finalized_; }

  /// Neighbor ids of `u`, ascending after finalize(). The span points
  /// into the CSR arena and stays valid for the graph's lifetime.
  std::span<const NodeId> neighbors(NodeId u) const {
    RC_DCHECK(u < num_nodes());
    if (finalized_) {
      return {targets_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
    }
    return build_adjacency_[u];
  }

  std::size_t degree(NodeId u) const {
    RC_DCHECK(u < num_nodes());
    if (finalized_) return offsets_[u + 1] - offsets_[u];
    return build_adjacency_[u].size();
  }

  /// Raw CSR arrays for hot loops that hoist them once instead of paying
  /// neighbors()'s finalized branch per call: neighbors of u are
  /// csr_targets()[csr_offsets()[u] .. csr_offsets()[u+1]). Requires
  /// finalize(); valid for the graph's lifetime.
  const std::size_t* csr_offsets() const {
    RC_DCHECK(finalized_);
    return offsets_.data();
  }
  const NodeId* csr_targets() const {
    RC_DCHECK(finalized_);
    return targets_.data();
  }

  /// Maximum degree Δ (0 for an empty or edgeless graph).
  std::size_t max_degree() const;

  /// True iff the undirected edge {u, v} exists. Requires finalize().
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges as (u, v) with u < v. Requires finalize().
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Human-readable summary ("n=32 m=64 maxdeg=5").
  std::string summary() const;

 private:
  NodeId num_nodes_ = 0;
  std::size_t num_edges_ = 0;
  bool finalized_ = false;

  /// Builder phase only; cleared by finalize().
  std::vector<std::vector<NodeId>> build_adjacency_;

  /// CSR after finalize(): neighbors of u are
  /// targets_[offsets_[u] .. offsets_[u+1]), sorted ascending.
  /// offsets_ has num_nodes_+1 entries; targets_ has 2*num_edges_.
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> targets_;
};

}  // namespace radiocast::graph
