// Undirected simple graphs — the reachability topology of a radio network.
//
// The simulator only needs adjacency iteration and degree queries, so the
// representation is a plain sorted adjacency list with O(log deg) edge
// queries. Construction goes through an edge-insertion builder phase; after
// `finalize()` the structure is immutable, which is what the round loop
// relies on for safe concurrent-free reads.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace radiocast::graph {

using NodeId = std::uint32_t;

class Graph {
 public:
  Graph() = default;
  /// Creates a graph with `n` isolated vertices (ids 0..n-1).
  explicit Graph(NodeId n) : adjacency_(n) {}

  NodeId num_nodes() const { return static_cast<NodeId>(adjacency_.size()); }
  std::size_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}. Self-loops are rejected; duplicate
  /// edges are ignored. Only valid before finalize().
  void add_edge(NodeId u, NodeId v);

  /// Sorts adjacency lists and freezes the graph.
  void finalize();
  bool finalized() const { return finalized_; }

  std::span<const NodeId> neighbors(NodeId u) const {
    RC_DCHECK(u < num_nodes());
    return adjacency_[u];
  }

  std::size_t degree(NodeId u) const {
    RC_DCHECK(u < num_nodes());
    return adjacency_[u].size();
  }

  /// Maximum degree Δ (0 for an empty or edgeless graph).
  std::size_t max_degree() const;

  /// True iff the undirected edge {u, v} exists. Requires finalize().
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges as (u, v) with u < v. Requires finalize().
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Human-readable summary ("n=32 m=64 maxdeg=5").
  std::string summary() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t num_edges_ = 0;
  bool finalized_ = false;
};

}  // namespace radiocast::graph
