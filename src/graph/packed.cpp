#include "graph/packed.hpp"

namespace radiocast::graph {

namespace {

/// Total word-group count over all rows (the counting pass: no allocation
/// proportional to the result).
std::size_t count_groups(const Graph& g) {
  std::size_t total = 0;
  const NodeId n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for_each_word_group(g.neighbors(u), [&](std::uint32_t, std::uint64_t) { ++total; });
  }
  return total;
}

}  // namespace

PackedRows PackedRows::materialize(const Graph& g) {
  PackedRows idx;
  const NodeId n = g.num_nodes();
  idx.offsets_.resize(static_cast<std::size_t>(n) + 1, 0);
  idx.groups_.reserve(count_groups(g));
  for (NodeId u = 0; u < n; ++u) {
    idx.offsets_[u] = static_cast<std::uint32_t>(idx.groups_.size());
    for_each_word_group(g.neighbors(u), [&](std::uint32_t word, std::uint64_t mask) {
      idx.groups_.push_back({word, mask});
    });
  }
  idx.offsets_[n] = static_cast<std::uint32_t>(idx.groups_.size());
  return idx;
}

PackedRows PackedRows::build(const Graph& g) {
  RC_ASSERT(g.finalized());
  // A WordGroup is 16 bytes (12 packed to alignment) vs 4 per CSR entry, so
  // the index only pays for itself under strong id locality. Require the
  // group count to be at most a quarter of the CSR entry count (>= 4
  // neighbors per group on average) before spending the memory.
  const std::size_t csr_entries = 2 * g.num_edges();
  const std::size_t groups = count_groups(g);
  if (groups * 4 > csr_entries) return {};
  return materialize(g);
}

PackedRows PackedRows::build_always(const Graph& g) {
  RC_ASSERT(g.finalized());
  return materialize(g);
}

}  // namespace radiocast::graph
