// Graph generators for the experiment suite.
//
// The benches need families where n, D and Δ can be steered independently:
//   - path / cycle / grid / torus: large D, small Δ;
//   - star / complete: D in {1, 2}, Δ = n-1;
//   - cluster_chain (path of cliques): D ≈ #cliques, Δ ≈ clique size —
//     the workhorse for the paper's logΔ and D scalings;
//   - random_gnp / random_geometric: the "typical" ad-hoc topologies the
//     paper's motivation (sensor networks) implies;
//   - random_tree / caterpillar: sparse adversarial BFS shapes.
// All generators return finalized, connected graphs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace radiocast::graph {

/// Simple path 0-1-2-...-(n-1). D = n-1, Δ = 2.
Graph make_path(NodeId n);

/// Cycle. D = ⌊n/2⌋, Δ = 2. Requires n >= 3.
Graph make_cycle(NodeId n);

/// Star with center 0. D = 2, Δ = n-1. Requires n >= 2.
Graph make_star(NodeId n);

/// Complete graph. D = 1, Δ = n-1. Requires n >= 2.
Graph make_complete(NodeId n);

/// rows x cols grid. D = rows+cols-2, Δ <= 4.
Graph make_grid(NodeId rows, NodeId cols);

/// rows x cols torus (wrap-around grid). Requires rows, cols >= 3.
Graph make_torus(NodeId rows, NodeId cols);

/// Uniform random labelled tree on n nodes (random parent attachment with
/// uniformly chosen earlier node). Δ is O(log n / log log n) typically.
Graph make_random_tree(NodeId n, Rng& rng);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` leaves.
/// n = spine * (legs + 1), D = spine + 1, Δ = legs + 2.
Graph make_caterpillar(NodeId spine, NodeId legs);

/// Path of `num_cliques` cliques of size `clique_size`, consecutive cliques
/// joined by one bridge edge. Lets benches sweep D (≈ 2 * num_cliques) and
/// Δ (= clique_size) independently.
Graph make_cluster_chain(NodeId num_cliques, NodeId clique_size);

/// Erdős–Rényi G(n, p) conditioned on connectivity: resamples up to
/// `max_attempts`; if every attempt is disconnected, bridges the components
/// of the last sample with random inter-component edges (documented
/// fallback so benches never abort).
Graph make_gnp_connected(NodeId n, double p, Rng& rng, int max_attempts = 32);

/// Random geometric / unit-disk graph: n points uniform in the unit square,
/// edge iff Euclidean distance <= radius. Connectivity handled as in
/// make_gnp_connected.
Graph make_random_geometric(NodeId n, double radius, Rng& rng, int max_attempts = 32);

/// Connected graph with max degree <= `max_deg` built by adding random
/// edges to a random Hamiltonian path subject to the degree cap.
/// Requires max_deg >= 2.
Graph make_bounded_degree(NodeId n, std::size_t max_deg, double density, Rng& rng);

/// Two cliques of size `clique` connected by a path of `path_len` nodes.
Graph make_barbell(NodeId clique, NodeId path_len);

/// Named graph family descriptor used by benches to sweep families
/// uniformly. `make_named` dispatches on `family`:
///   "path", "cycle", "star", "complete", "grid", "torus", "random_tree",
///   "caterpillar", "cluster_chain", "gnp", "geometric", "bounded_degree",
///   "barbell".
/// Family-specific shape parameters are derived from n so that all families
/// are comparable at equal n.
Graph make_named(const std::string& family, NodeId n, Rng& rng);

/// The list of families make_named supports.
const std::vector<std::string>& named_families();

}  // namespace radiocast::graph
