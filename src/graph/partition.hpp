// Contiguous node sharding of a finalized CSR graph, for intra-run
// parallel reception sweeps (radio::Network::set_shards).
//
// A ShardPlan cuts [0, n) into S contiguous id ranges, balanced by CSR
// edge count (each shard's reception work is proportional to the directed
// edges *into* its nodes, which for an undirected CSR equals the edges out
// of them). Boundaries snap to multiples of `alignment`: the bitset engine
// shards at 64 so that the packed once/twice words of different shards
// never share a 64-bit word (a word-granular read-modify-write across
// shards would be a data race); the scalar engine shards at 1.
//
// Because CSR rows are sorted ascending and shards are contiguous id
// ranges, the entries of row u that target shard s form one contiguous
// slice of the row. The plan precomputes every such slice boundary into a
// row-splits table — splits(u, s) is the first edge index of row u's
// shard-s slice — so a sharded sweep walks exactly its own receivers with
// O(1) per-row lookup. The off-diagonal slices (shard_of(u) != s) are
// precisely the cut edges, each indexed once on each side; the table
// therefore doubles as the cut-edge index, and num_cut_edges() reports the
// directed crossing count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "graph/graph.hpp"

namespace radiocast::graph {

class ShardPlan {
 public:
  ShardPlan() = default;

  /// Builds a plan with at most `shards` shards over `g` (finalized).
  /// The effective shard count is clamped so every shard holds at least
  /// one alignment block of nodes (so all shards are nonempty unless
  /// n == 0, where a single empty shard remains); requesting more shards
  /// than blocks degrades gracefully instead of manufacturing empty tail
  /// shards. Requires 2m to fit an uint32 edge index.
  static ShardPlan build(const Graph& g, std::uint32_t shards,
                         std::uint32_t alignment = 1);

  /// Number of shards actually built (>= 1 after build; 0 when default-
  /// constructed).
  std::uint32_t num_shards() const {
    return bounds_.empty() ? 0 : static_cast<std::uint32_t>(bounds_.size() - 1);
  }
  std::uint32_t alignment() const { return alignment_; }

  /// Shard s owns node ids [node_begin(s), node_end(s)).
  NodeId node_begin(std::uint32_t s) const {
    RC_DCHECK(s < num_shards());
    return bounds_[s];
  }
  NodeId node_end(std::uint32_t s) const {
    RC_DCHECK(s < num_shards());
    return bounds_[s + 1];
  }

  /// The shard owning node v. O(S) scan — S is small and this is not on
  /// the round hot path (sweeps use the precomputed splits instead).
  std::uint32_t shard_of(NodeId v) const;

  /// First CSR edge index of row u's slice targeting shard s; the slice
  /// [row_split(u, s), row_split(u, s + 1)) is contiguous because CSR rows
  /// are sorted and shards are contiguous id ranges. row_split(u, 0) is
  /// the row start and row_split(u, S) the row end.
  std::uint32_t row_split(NodeId u, std::uint32_t s) const {
    RC_DCHECK(u * (static_cast<std::size_t>(num_shards()) + 1) + s < splits_.size() + 1);
    return splits_[u * (static_cast<std::size_t>(num_shards()) + 1) + s];
  }

  /// Raw splits table for hot loops: row u's boundaries live at
  /// splits_data()[u * (num_shards() + 1) + s].
  const std::uint32_t* splits_data() const { return splits_.data(); }

  /// Directed CSR entries (u -> v) with shard_of(u) != shard_of(v). Every
  /// undirected cut edge contributes exactly two (one per side).
  std::uint64_t num_cut_edges() const { return cut_edges_; }

 private:
  /// S + 1 ascending node-id boundaries; shard s is [bounds_[s], bounds_[s+1]).
  std::vector<NodeId> bounds_;
  /// n * (S + 1) absolute CSR edge indices (see row_split).
  std::vector<std::uint32_t> splits_;
  std::uint64_t cut_edges_ = 0;
  std::uint32_t alignment_ = 1;
};

}  // namespace radiocast::graph
