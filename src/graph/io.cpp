#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace radiocast::graph {

void write_edge_list(std::ostream& out, const Graph& g) {
  RC_ASSERT(g.finalized());
  out << "# radiocast edge list: " << g.summary() << "\n";
  out << "n " << g.num_nodes() << "\n";
  for (const auto& [u, v] : g.edges()) {
    out << "e " << u << ' ' << v << "\n";
  }
}

namespace {
std::optional<Graph> fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return std::nullopt;
}
}  // namespace

std::optional<Graph> read_edge_list(std::istream& in, std::string* error) {
  std::optional<Graph> graph;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank line

    const std::string where = " (line " + std::to_string(line_no) + ")";
    if (directive == "n") {
      if (graph.has_value()) return fail(error, "duplicate 'n' header" + where);
      long long n = -1;
      if (!(ls >> n) || n < 0 || n > 0xffffffffLL) {
        return fail(error, "bad node count" + where);
      }
      graph.emplace(static_cast<NodeId>(n));
    } else if (directive == "e") {
      if (!graph.has_value()) return fail(error, "'e' before 'n' header" + where);
      long long u = -1, v = -1;
      if (!(ls >> u >> v)) return fail(error, "bad edge line" + where);
      if (u < 0 || v < 0 || u >= graph->num_nodes() || v >= graph->num_nodes()) {
        return fail(error, "edge endpoint out of range" + where);
      }
      if (u == v) return fail(error, "self-loop" + where);
      graph->add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    } else {
      return fail(error, "unknown directive '" + directive + "'" + where);
    }
  }
  if (!graph.has_value()) return fail(error, "missing 'n' header");
  graph->finalize();
  return graph;
}

std::string to_edge_list_string(const Graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

std::optional<Graph> from_edge_list_string(const std::string& text,
                                           std::string* error) {
  std::istringstream in(text);
  return read_edge_list(in, error);
}

void write_dot(std::ostream& out, const Graph& g, const std::string& name) {
  RC_ASSERT(g.finalized());
  out << "graph " << name << " {\n";
  out << "  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 0) out << "  " << v << ";\n";
  }
  for (const auto& [u, v] : g.edges()) {
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
}

}  // namespace radiocast::graph
