// Graph algorithms: BFS layering, distances, diameter, connectivity.
//
// These are the centralized reference computations the simulator and the
// benches use to (a) parameterize protocol schedules with the true D and Δ,
// and (b) verify distributed results (e.g. Stage 2's distributed BFS tree)
// against ground truth.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace radiocast::graph {

/// Sentinel distance for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Single-source BFS result.
struct BfsResult {
  /// dist[v] = hop distance from the source (kUnreachable if disconnected).
  std::vector<std::uint32_t> dist;
  /// parent[v] = BFS-tree parent (source's parent is itself; unreachable
  /// vertices point to themselves).
  std::vector<NodeId> parent;
  /// Largest finite distance found.
  std::uint32_t eccentricity = 0;
};

BfsResult bfs(const Graph& g, NodeId source);

/// True iff the graph is connected (vacuously true for n <= 1).
bool is_connected(const Graph& g);

/// Number of connected components.
std::size_t num_components(const Graph& g);

/// Exact diameter via BFS from every vertex — O(n·m), fine for simulation
/// sizes. Returns 0 for graphs with fewer than two vertices; the graph must
/// be connected.
std::uint32_t diameter(const Graph& g);

/// All-pairs shortest-path distances via repeated BFS (n x n matrix).
std::vector<std::vector<std::uint32_t>> all_pairs_distances(const Graph& g);

/// Validates that `parent`/`dist` arrays describe a correct BFS tree rooted
/// at `root`: every reachable non-root node has a parent that is a
/// neighbor at distance dist-1 and distances match the true BFS layering.
/// Used by tests of the distributed Stage 2.
bool is_valid_bfs_tree(const Graph& g, NodeId root, const std::vector<NodeId>& parent,
                       const std::vector<std::uint32_t>& dist);

}  // namespace radiocast::graph
