#include "graph/algorithms.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace radiocast::graph {

BfsResult bfs(const Graph& g, NodeId source) {
  RC_ASSERT(source < g.num_nodes());
  BfsResult result;
  result.dist.assign(g.num_nodes(), kUnreachable);
  result.parent.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) result.parent[v] = v;

  // Flat FIFO: every node enters the frontier at most once, so a plain
  // vector with a head cursor replaces std::queue (same visit order, one
  // contiguous allocation instead of deque chunks).
  std::vector<NodeId> frontier;
  frontier.reserve(g.num_nodes());
  result.dist[source] = 0;
  frontier.push_back(source);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId u = frontier[head];
    for (NodeId v : g.neighbors(u)) {
      if (result.dist[v] == kUnreachable) {
        result.dist[v] = result.dist[u] + 1;
        result.parent[v] = u;
        result.eccentricity = std::max(result.eccentricity, result.dist[v]);
        frontier.push_back(v);
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  const BfsResult r = bfs(g, 0);
  return std::none_of(r.dist.begin(), r.dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::size_t num_components(const Graph& g) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::size_t components = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (seen[s]) continue;
    ++components;
    const BfsResult r = bfs(g, s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (r.dist[v] != kUnreachable) seen[v] = true;
    }
  }
  return components;
}

std::uint32_t diameter(const Graph& g) {
  if (g.num_nodes() < 2) return 0;
  RC_ASSERT_MSG(is_connected(g), "diameter requires a connected graph");
  std::uint32_t best = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    best = std::max(best, bfs(g, s).eccentricity);
  }
  return best;
}

std::vector<std::vector<std::uint32_t>> all_pairs_distances(const Graph& g) {
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(g.num_nodes());
  for (NodeId s = 0; s < g.num_nodes(); ++s) out.push_back(bfs(g, s).dist);
  return out;
}

bool is_valid_bfs_tree(const Graph& g, NodeId root, const std::vector<NodeId>& parent,
                       const std::vector<std::uint32_t>& dist) {
  if (parent.size() != g.num_nodes() || dist.size() != g.num_nodes()) return false;
  const BfsResult truth = bfs(g, root);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (truth.dist[v] == kUnreachable) continue;  // ignore unreachable nodes
    if (dist[v] != truth.dist[v]) return false;
    if (v == root) {
      if (parent[v] != root) return false;
      continue;
    }
    const NodeId p = parent[v];
    if (p >= g.num_nodes()) return false;
    if (!g.has_edge(v, p)) return false;
    if (dist[p] + 1 != dist[v]) return false;
  }
  return true;
}

}  // namespace radiocast::graph
