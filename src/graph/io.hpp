// Graph serialization: a line-based edge-list format (round-trippable) and
// Graphviz DOT export (visualization). Lets downstream users run the
// protocols on their own topologies and inspect the generator output.
//
// Edge-list format:
//   # comment lines and blank lines are ignored
//   n <num_nodes>
//   e <u> <v>          (one per edge, 0-based ids)
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.hpp"

namespace radiocast::graph {

/// Writes the edge-list representation of a finalized graph.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses an edge-list. Returns std::nullopt (with a message in `error` if
/// provided) on malformed input: missing/duplicate header, ids out of
/// range, self-loops, or unknown directives.
std::optional<Graph> read_edge_list(std::istream& in, std::string* error = nullptr);

/// Serializes to a string / parses from a string (convenience for tests
/// and tools).
std::string to_edge_list_string(const Graph& g);
std::optional<Graph> from_edge_list_string(const std::string& text,
                                           std::string* error = nullptr);

/// Writes Graphviz DOT (undirected). `name` is the graph name in the file.
void write_dot(std::ostream& out, const Graph& g, const std::string& name = "radio");

}  // namespace radiocast::graph
