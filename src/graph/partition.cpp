#include "graph/partition.hpp"

#include <algorithm>

namespace radiocast::graph {

std::uint32_t ShardPlan::shard_of(NodeId v) const {
  RC_DCHECK(num_shards() > 0 && v < bounds_.back());
  std::uint32_t s = 0;
  while (v >= bounds_[s + 1]) ++s;
  return s;
}

ShardPlan ShardPlan::build(const Graph& g, std::uint32_t shards,
                           std::uint32_t alignment) {
  RC_ASSERT_MSG(g.finalized(), "ShardPlan requires a finalized graph");
  RC_ASSERT(shards >= 1 && alignment >= 1);
  const NodeId n = g.num_nodes();
  const std::uint64_t total_edges = 2 * static_cast<std::uint64_t>(g.num_edges());
  RC_ASSERT_MSG(total_edges <= 0xffffffffull,
                "ShardPlan row splits use uint32 edge indices");

  ShardPlan p;
  p.alignment_ = alignment;
  const std::uint64_t num_blocks =
      n == 0 ? 0 : (static_cast<std::uint64_t>(n) + alignment - 1) / alignment;
  const auto s_eff = static_cast<std::uint32_t>(
      num_blocks == 0 ? 1 : std::min<std::uint64_t>(shards, num_blocks));

  // Greedy edge-balanced boundary placement over alignment blocks, with a
  // one-block-per-remaining-shard floor so every shard stays nonempty: a
  // shard keeps taking blocks while its cumulative edge prefix is below
  // its proportional target, unless stopping is forced to leave one block
  // for each shard still to come.
  p.bounds_.reserve(s_eff + 1);
  p.bounds_.push_back(0);
  const std::size_t* const offsets = n > 0 ? g.csr_offsets() : nullptr;
  for (std::uint32_t s = 0; s + 1 < s_eff; ++s) {
    const std::uint64_t target = total_edges * (s + 1) / s_eff;
    NodeId next = p.bounds_.back();
    while (true) {
      next = static_cast<NodeId>(
          std::min<std::uint64_t>(static_cast<std::uint64_t>(next) + alignment, n));
      if (next >= n) break;
      const std::uint64_t blocks_left =
          (static_cast<std::uint64_t>(n) - next + alignment - 1) / alignment;
      if (blocks_left <= s_eff - (s + 1)) break;
      if (offsets[next] >= target) break;
    }
    p.bounds_.push_back(next);
  }
  p.bounds_.push_back(n);

  // Row-splits table + cut-edge count in one sweep. Rows are sorted, so a
  // single cursor per row finds every shard boundary in O(deg + S).
  const std::uint32_t S = p.num_shards();
  p.splits_.resize(static_cast<std::size_t>(n) * (S + 1));
  if (n > 0) {
    const NodeId* const targets = g.csr_targets();
    std::uint32_t* out = p.splits_.data();
    std::uint64_t own_edges = 0;
    std::uint32_t owner = 0;
    for (NodeId u = 0; u < n; ++u) {
      while (u >= p.bounds_[owner + 1]) ++owner;
      const std::size_t row_end = offsets[u + 1];
      std::size_t e = offsets[u];
      // out[s] = first entry with target >= bounds_[s] — the start of the
      // shard-s slice, since entries below it all target shards < s.
      for (std::uint32_t s = 0; s < S; ++s) {
        while (e < row_end && targets[e] < p.bounds_[s]) ++e;
        out[s] = static_cast<std::uint32_t>(e);
      }
      out[S] = static_cast<std::uint32_t>(row_end);
      own_edges += out[owner + 1] - out[owner];
      out += S + 1;
    }
    p.cut_edges_ = total_edges - own_edges;
  }
  return p;
}

}  // namespace radiocast::graph
