#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/assert.hpp"
#include "common/math_util.hpp"
#include "graph/algorithms.hpp"

namespace radiocast::graph {

namespace {

/// Connects a possibly disconnected graph by adding one edge between a
/// representative of each component and the first component.
Graph bridge_components(Graph g) {
  // Re-open a finalized graph is not supported; rebuild from edges.
  Graph h(g.num_nodes());
  for (const auto& [u, v] : g.edges()) h.add_edge(u, v);

  std::vector<NodeId> representative;
  std::vector<bool> seen(g.num_nodes(), false);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (seen[s]) continue;
    representative.push_back(s);
    const BfsResult r = bfs(g, s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (r.dist[v] != kUnreachable) seen[v] = true;
    }
  }
  for (std::size_t c = 1; c < representative.size(); ++c) {
    h.add_edge(representative[0], representative[c]);
  }
  h.finalize();
  RC_ASSERT(is_connected(h));
  return h;
}

}  // namespace

Graph make_path(NodeId n) {
  RC_ASSERT(n >= 1);
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

Graph make_cycle(NodeId n) {
  RC_ASSERT(n >= 3);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  g.finalize();
  return g;
}

Graph make_star(NodeId n) {
  RC_ASSERT(n >= 2);
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(0, i);
  g.finalize();
  return g;
}

Graph make_complete(NodeId n) {
  RC_ASSERT(n >= 2);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  g.finalize();
  return g;
}

Graph make_grid(NodeId rows, NodeId cols) {
  RC_ASSERT(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  g.finalize();
  return g;
}

Graph make_torus(NodeId rows, NodeId cols) {
  RC_ASSERT(rows >= 3 && cols >= 3);
  Graph g(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % cols));
      g.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  g.finalize();
  return g;
}

Graph make_random_tree(NodeId n, Rng& rng) {
  RC_ASSERT(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.next_below(v));
    g.add_edge(v, parent);
  }
  g.finalize();
  return g;
}

Graph make_caterpillar(NodeId spine, NodeId legs) {
  RC_ASSERT(spine >= 1);
  const NodeId n = spine * (legs + 1);
  Graph g(n);
  for (NodeId s = 0; s + 1 < spine; ++s) g.add_edge(s, s + 1);
  NodeId next = spine;
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) g.add_edge(s, next++);
  }
  g.finalize();
  return g;
}

Graph make_cluster_chain(NodeId num_cliques, NodeId clique_size) {
  RC_ASSERT(num_cliques >= 1 && clique_size >= 2);
  const NodeId n = num_cliques * clique_size;
  Graph g(n);
  auto base = [clique_size](NodeId c) { return c * clique_size; };
  for (NodeId c = 0; c < num_cliques; ++c) {
    for (NodeId i = 0; i < clique_size; ++i) {
      for (NodeId j = i + 1; j < clique_size; ++j) {
        g.add_edge(base(c) + i, base(c) + j);
      }
    }
    if (c + 1 < num_cliques) {
      // Bridge: last node of clique c to first node of clique c+1.
      g.add_edge(base(c) + clique_size - 1, base(c + 1));
    }
  }
  g.finalize();
  return g;
}

Graph make_gnp_connected(NodeId n, double p, Rng& rng, int max_attempts) {
  RC_ASSERT(n >= 1);
  RC_ASSERT(p >= 0.0 && p <= 1.0);
  Graph last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Graph g(n);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (rng.next_bool(p)) g.add_edge(i, j);
      }
    }
    g.finalize();
    if (is_connected(g)) return g;
    last = std::move(g);
  }
  return bridge_components(std::move(last));
}

Graph make_random_geometric(NodeId n, double radius, Rng& rng, int max_attempts) {
  RC_ASSERT(n >= 1);
  RC_ASSERT(radius > 0.0);
  const double r2 = radius * radius;
  Graph last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<std::pair<double, double>> pts(n);
    for (auto& pt : pts) pt = {rng.next_double(), rng.next_double()};
    Graph g(n);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        const double dx = pts[i].first - pts[j].first;
        const double dy = pts[i].second - pts[j].second;
        if (dx * dx + dy * dy <= r2) g.add_edge(i, j);
      }
    }
    g.finalize();
    if (is_connected(g)) return g;
    last = std::move(g);
  }
  return bridge_components(std::move(last));
}

Graph make_bounded_degree(NodeId n, std::size_t max_deg, double density, Rng& rng) {
  RC_ASSERT(n >= 1);
  RC_ASSERT(max_deg >= 2);
  RC_ASSERT(density >= 0.0 && density <= 1.0);
  // Random Hamiltonian path guarantees connectivity and degree <= 2, then
  // random extra edges are added while respecting the cap.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (NodeId i = n; i > 1; --i) {
    const auto j = static_cast<NodeId>(rng.next_below(i));
    std::swap(order[i - 1], order[j]);
  }
  Graph g(n);
  std::vector<std::size_t> deg(n, 0);
  auto try_add = [&](NodeId u, NodeId v) {
    if (u == v || deg[u] >= max_deg || deg[v] >= max_deg) return;
    g.add_edge(u, v);
    // add_edge ignores duplicates, so recompute via graph state is
    // unnecessary: track optimistically and tolerate slight undercount.
    ++deg[u];
    ++deg[v];
  };
  for (NodeId i = 0; i + 1 < n; ++i) {
    g.add_edge(order[i], order[i + 1]);
    ++deg[order[i]];
    ++deg[order[i + 1]];
  }
  const auto extra = static_cast<std::size_t>(
      density * static_cast<double>(n) * static_cast<double>(max_deg) / 2.0);
  for (std::size_t e = 0; e < extra; ++e) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    try_add(u, v);
  }
  g.finalize();
  return g;
}

Graph make_barbell(NodeId clique, NodeId path_len) {
  RC_ASSERT(clique >= 2);
  const NodeId n = 2 * clique + path_len;
  Graph g(n);
  for (NodeId i = 0; i < clique; ++i) {
    for (NodeId j = i + 1; j < clique; ++j) {
      g.add_edge(i, j);
      g.add_edge(clique + path_len + i, clique + path_len + j);
    }
  }
  // Path between the cliques.
  NodeId prev = clique - 1;
  for (NodeId s = 0; s < path_len; ++s) {
    g.add_edge(prev, clique + s);
    prev = clique + s;
  }
  g.add_edge(prev, clique + path_len);
  g.finalize();
  return g;
}

Graph make_named(const std::string& family, NodeId n, Rng& rng) {
  RC_ASSERT(n >= 4);
  if (family == "path") return make_path(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "star") return make_star(n);
  if (family == "complete") return make_complete(n);
  if (family == "grid") {
    const auto side = static_cast<NodeId>(std::ceil(std::sqrt(static_cast<double>(n))));
    return make_grid(side, ceil_div(n, side));
  }
  if (family == "torus") {
    const auto side =
        std::max<NodeId>(3, static_cast<NodeId>(std::round(std::sqrt(static_cast<double>(n)))));
    return make_torus(side, std::max<NodeId>(3, ceil_div(n, side)));
  }
  if (family == "random_tree") return make_random_tree(n, rng);
  if (family == "caterpillar") {
    const NodeId legs = 3;
    const NodeId spine = std::max<NodeId>(1, n / (legs + 1));
    return make_caterpillar(spine, legs);
  }
  if (family == "cluster_chain") {
    const NodeId clique = std::max<NodeId>(4, static_cast<NodeId>(ceil_log2(n)) * 2);
    const NodeId chains = std::max<NodeId>(1, n / clique);
    return make_cluster_chain(chains, clique);
  }
  if (family == "gnp") {
    const double p =
        std::min(1.0, 2.0 * std::log(static_cast<double>(n)) / static_cast<double>(n));
    return make_gnp_connected(n, p, rng);
  }
  if (family == "geometric") {
    const double radius =
        std::sqrt(2.5 * std::log(static_cast<double>(n)) / (3.141592653589793 * n));
    return make_random_geometric(n, radius, rng);
  }
  if (family == "bounded_degree") return make_bounded_degree(n, 6, 0.5, rng);
  if (family == "barbell") {
    const NodeId clique = std::max<NodeId>(3, n / 4);
    return make_barbell(clique, n - 2 * clique);
  }
  RC_ASSERT_MSG(false, ("unknown graph family: " + family).c_str());
}

const std::vector<std::string>& named_families() {
  static const std::vector<std::string> families = {
      "path",        "cycle",         "star",          "complete",
      "grid",        "torus",         "random_tree",   "caterpillar",
      "cluster_chain", "gnp",         "geometric",     "bounded_degree",
      "barbell"};
  return families;
}

}  // namespace radiocast::graph
