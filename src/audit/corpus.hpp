// The pinned audit seed corpus.
//
// A fixed grid of end-to-end k-broadcast configurations — every placement
// mode, fault rates {0, 0.03}, collision detection on/off, and a spread of
// topology families — with hard-coded seeds, so every CI run audits the
// exact same executions. Each case is run twice: once with a ModelAuditor
// attached and once without, and the two results are compared field by
// field; the model guarantees they are bit-identical (the auditor is a
// pure observer). A corpus pass therefore certifies both "zero model
// violations on these runs" and "auditing does not perturb the simulation".
//
// Used by tests/audit/corpus_test.cpp (ctest) and by the standalone
// audit_corpus binary the CI audit job runs (it writes the JSONL violation
// report that gets uploaded as a failure artifact).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/model_auditor.hpp"
#include "core/runner.hpp"

namespace radiocast::audit {

/// One fully pinned end-to-end configuration: everything a run needs,
/// seeds included, so the corpus re-executes identically on every host.
struct CorpusCase {
  std::string name;
  /// Topology family for graph::make_named.
  std::string family;
  std::uint32_t n = 0;
  std::uint32_t k = 0;
  core::PlacementMode placement = core::PlacementMode::kRandom;
  double loss = 0.0;
  bool collision_detection = false;
  bool coded = true;
  std::uint64_t graph_seed = 0;
  std::uint64_t placement_seed = 0;
  std::uint64_t run_seed = 0;
};

/// The pinned corpus (fixed seeds; append-only across PRs so historical
/// cases keep being audited).
const std::vector<CorpusCase>& pinned_corpus();

/// The audited-vs-unaudited pair of results for one case, plus the
/// auditor's verdict.
struct CorpusOutcome {
  core::RunResult audited;
  core::RunResult unaudited;
  /// Violations recorded by the auditor (moved off the run's ModelAuditor).
  AuditReport report;
  bool delivered = false;      ///< the audited run delivered everything
  bool bit_identical = false;  ///< audited == unaudited, field by field
};

/// True iff two results agree on every deterministic field (rounds, stage
/// accounting, verification flags, and all trace counters).
bool results_identical(const core::RunResult& a, const core::RunResult& b);

/// Runs one corpus case twice (audited + unaudited) and reports. `engine`
/// selects the round kernel for both runs; the bitset engine must clear
/// the corpus exactly like the scalar one (tests/audit/bitset_corpus_test
/// additionally pins cross-engine result equality). `shards` forwards the
/// intra-run shard count (radio::Network::set_shards) to both runs; every
/// shard count must clear the corpus bit-identically
/// (tests/audit/shard_corpus_test pins this).
CorpusOutcome run_corpus_case(const CorpusCase& c,
                              radio::EngineMode engine = radio::EngineMode::kScalar,
                              std::uint32_t shards = 1);

}  // namespace radiocast::audit
