#include "audit/violation.hpp"

namespace radiocast::audit {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_jsonl(std::ostream& out, const AuditReport& report) {
  for (const Violation& v : report.violations()) {
    out << "{\"round\":" << v.round << ",\"node\":" << v.node << ",\"check\":\""
        << json_escape(v.check) << "\",\"detail\":\"" << json_escape(v.detail)
        << "\"}\n";
  }
  out << "{\"summary\":true,\"total\":" << report.total()
      << ",\"dropped\":" << report.dropped() << "}\n";
}

}  // namespace radiocast::audit
