// Violation records produced by the model-conformance auditor.
//
// A Violation pins one observed divergence from the paper's model (or from
// the protocol's own schedule) to a round, a node, and a named check, with
// a human-readable detail string. AuditReport accumulates them with a hard
// cap so a systematically broken run cannot OOM the auditor; the JSONL
// writer emits one object per line — the format the CI audit job uploads
// as its failure artifact.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace radiocast::audit {

struct Violation {
  std::uint64_t round = 0;
  std::uint32_t node = 0;
  /// Stable check identifier, e.g. "radio.deliver_on_collision",
  /// "protocol.stage_monotonicity", "delivery.coded_payload".
  std::string check;
  std::string detail;
};

class AuditReport {
 public:
  explicit AuditReport(std::size_t max_violations = 1024)
      : max_violations_(max_violations) {}

  void add(std::uint64_t round, std::uint32_t node, std::string check,
           std::string detail) {
    ++total_;
    if (violations_.size() < max_violations_) {
      violations_.push_back(
          Violation{round, node, std::move(check), std::move(detail)});
    }
  }

  bool clean() const { return total_ == 0; }
  /// Total violations seen, including any dropped past the cap.
  std::uint64_t total() const { return total_; }
  std::uint64_t dropped() const { return total_ - violations_.size(); }
  const std::vector<Violation>& violations() const { return violations_; }

  void clear() {
    violations_.clear();
    total_ = 0;
  }

 private:
  std::size_t max_violations_;
  std::vector<Violation> violations_;
  std::uint64_t total_ = 0;
};

/// Escapes a string for inclusion in a JSON string literal.
std::string json_escape(const std::string& s);

/// Writes the report as JSON Lines: one {"round":..,"node":..,"check":..,
/// "detail":..} object per violation, plus a final summary object
/// {"summary":true,"total":..,"dropped":..}.
void write_jsonl(std::ostream& out, const AuditReport& report);

}  // namespace radiocast::audit
