#include "audit/channel_auditor.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace radiocast::audit {

ChannelAuditor::ChannelAuditor(const graph::Graph& g, const Options& opts)
    : graph_(g), opts_(opts), report_(opts.max_violations) {
  RC_ASSERT_MSG(g.finalized(), "auditor needs a finalized graph");
  reset();
}

void ChannelAuditor::reset() {
  report_.clear();
  const std::size_t n = graph_.num_nodes();
  current_round_ = 0;
  round_open_ = false;
  awake_.assign(n, 0);
  reach_.assign(n, 0);
  source_.assign(n, 0);
  transmitting_.assign(n, 0);
  outcome_.assign(n, Outcome::kNone);
  touched_.clear();
  tx_from_.clear();
}

std::string ChannelAuditor::summary() const {
  if (report_.clean()) return "clean";
  std::ostringstream out;
  out << report_.total() << " violation(s); first: ";
  const Violation& v = report_.violations().front();
  out << v.check << " @round " << v.round << " node " << v.node << " (" << v.detail
      << ")";
  return out.str();
}

void ChannelAuditor::on_sim_start(
    const std::vector<radio::NodeId>& initially_awake) {
  for (const radio::NodeId id : initially_awake) {
    if (id >= awake_.size()) {
      violation(0, id, "radio.initial_wake_range", "initial wake out of range");
      continue;
    }
    awake_[id] = 1;
  }
  if (opts_.expect_all_awake) {
    for (radio::NodeId v = 0; v < awake_.size(); ++v) {
      if (!awake_[v]) {
        violation(0, v, "run.initial_wake_set",
                  "node asleep at start of an all-awake run");
      }
    }
  }
}

void ChannelAuditor::on_transmissions(radio::Round round,
                                      const std::vector<radio::Message>& txs) {
  if (round_open_) {
    violation(round, 0, "radio.round_sequence", "round opened twice");
  }
  round_open_ = true;
  current_round_ = round;
  tx_from_.clear();

  radio::NodeId prev_from = 0;
  bool first = true;
  for (const radio::Message& tx : txs) {
    tx_from_.push_back(tx.from);
    if (tx.from >= awake_.size()) {
      violation(round, tx.from, "radio.tx_range", "transmitter id out of range");
      continue;
    }
    if (!first && tx.from <= prev_from) {
      violation(round, tx.from, "radio.tx_order",
                "transmissions not in ascending transmitter order");
    }
    prev_from = tx.from;
    first = false;
    if (!awake_[tx.from]) {
      violation(round, tx.from, "radio.sleeping_transmitter",
                "transmission from a node the model says is asleep");
    }
    transmitting_[tx.from] = 1;
  }

  // Independent reach recount from the topology.
  for (std::uint32_t t = 0; t < txs.size(); ++t) {
    if (txs[t].from >= awake_.size()) continue;
    for (const radio::NodeId v : graph_.neighbors(txs[t].from)) {
      if (reach_[v]++ == 0) {
        source_[v] = t;
        touched_.push_back(v);
      }
    }
  }
}

void ChannelAuditor::on_deliver(radio::Round round, radio::NodeId receiver,
                                std::uint32_t tx_index,
                                const radio::Message& msg) {
  RC_ASSERT(receiver < awake_.size());
  if (reach_[receiver] != 1) {
    violation(round, receiver, "radio.deliver_on_collision",
              "delivery with " + std::to_string(reach_[receiver]) +
                  " reaching transmissions (model: exactly 1)");
  }
  if (transmitting_[receiver]) {
    violation(round, receiver, "radio.deliver_while_transmitting",
              "delivery to a node that transmitted this round (half-duplex)");
  }
  if (tx_index >= tx_from_.size()) {
    violation(round, receiver, "radio.deliver_source",
              "delivery from out-of-range transmission index");
  } else {
    if (reach_[receiver] >= 1 && tx_index != source_[receiver]) {
      violation(round, receiver, "radio.deliver_source",
                "delivered transmission is not the reaching one");
    }
    if (msg.from != tx_from_[tx_index]) {
      violation(round, receiver, "radio.deliver_source",
                "message sender does not match the transmission slot");
    }
  }
  if (outcome_[receiver] == Outcome::kNone) outcome_[receiver] = Outcome::kDelivered;
}

void ChannelAuditor::on_collision_slot(radio::Round round, radio::NodeId receiver,
                                       std::uint32_t reached, bool cd_callback) {
  RC_ASSERT(receiver < awake_.size());
  if (reached < 2 || reached != reach_[receiver]) {
    violation(round, receiver, "radio.collision_count",
              "collision slot reports " + std::to_string(reached) +
                  " reaching, recount says " + std::to_string(reach_[receiver]));
  }
  if (transmitting_[receiver]) {
    violation(round, receiver, "radio.collision_while_transmitting",
              "collision outcome for a transmitting node (deaf slot expected)");
  }
  if (cd_callback != opts_.collision_detection) {
    violation(round, receiver, "radio.cd_ablation",
              cd_callback ? "on_collision fired without the CD ablation"
                          : "CD ablation enabled but no callback");
  }
  if (outcome_[receiver] == Outcome::kNone) outcome_[receiver] = Outcome::kCollision;
}

void ChannelAuditor::on_deaf_slot(radio::Round round, radio::NodeId receiver,
                                  std::uint32_t reached) {
  RC_ASSERT(receiver < awake_.size());
  if (!transmitting_[receiver]) {
    violation(round, receiver, "radio.deaf_not_transmitting",
              "deaf slot for a node that did not transmit");
  }
  if (reached == 0 || reached != reach_[receiver]) {
    violation(round, receiver, "radio.deaf_count",
              "deaf slot reports " + std::to_string(reached) +
                  " reaching, recount says " + std::to_string(reach_[receiver]));
  }
  if (outcome_[receiver] == Outcome::kNone) outcome_[receiver] = Outcome::kDeaf;
}

void ChannelAuditor::on_fault_drop(radio::Round round, radio::NodeId receiver,
                                   std::uint32_t tx_index) {
  RC_ASSERT(receiver < awake_.size());
  if (!opts_.faults_enabled) {
    violation(round, receiver, "radio.fault_without_model",
              "fault drop with reception_loss_probability == 0");
  }
  if (reach_[receiver] != 1 || transmitting_[receiver]) {
    violation(round, receiver, "radio.fault_slot",
              "fault erasure on a slot that was not a successful reception");
  }
  if (tx_index >= tx_from_.size() ||
      (reach_[receiver] >= 1 && tx_index != source_[receiver])) {
    violation(round, receiver, "radio.fault_source",
              "fault drop does not reference the reaching transmission");
  }
  if (outcome_[receiver] == Outcome::kNone) outcome_[receiver] = Outcome::kFaultDrop;
}

void ChannelAuditor::on_node_wake(radio::Round round, radio::NodeId node) {
  RC_ASSERT(node < awake_.size());
  if (awake_[node]) {
    violation(round, node, "radio.double_wake", "wake event for an awake node");
  }
  awake_[node] = 1;
}

void ChannelAuditor::on_round_end(radio::Round round) {
  if (!round_open_ || round != current_round_) {
    violation(round, 0, "radio.round_sequence",
              "round end does not match the opened round");
  }
  round_open_ = false;

  for (const radio::NodeId v : touched_) {
    const std::uint32_t reached = reach_[v];
    const Outcome got = outcome_[v];
    Outcome want = Outcome::kNone;
    if (transmitting_[v]) {
      want = Outcome::kDeaf;
    } else if (reached >= 2) {
      want = Outcome::kCollision;
    } else {
      // Exactly one reaching transmission, silent receiver: the model says
      // deliver; with the fault ablation the slot may be erased instead.
      want = Outcome::kDelivered;
    }
    const bool ok =
        got == want || (want == Outcome::kDelivered &&
                        got == Outcome::kFaultDrop && opts_.faults_enabled);
    if (!ok) {
      const auto name = [](Outcome o) {
        switch (o) {
          case Outcome::kNone: return "none";
          case Outcome::kDelivered: return "delivered";
          case Outcome::kCollision: return "collision";
          case Outcome::kDeaf: return "deaf";
          case Outcome::kFaultDrop: return "fault-drop";
        }
        return "?";
      };
      violation(round, v, "radio.outcome",
                std::string("expected ") + name(want) + ", engine reported " +
                    name(got) + " (" + std::to_string(reached) + " reaching)");
    }
    if (got == Outcome::kDelivered && !awake_[v]) {
      violation(round, v, "radio.wake_on_reception",
                "node received a message but was never woken");
    }
    reach_[v] = 0;
    outcome_[v] = Outcome::kNone;
  }
  touched_.clear();
  for (const radio::NodeId from : tx_from_) {
    if (from < transmitting_.size()) transmitting_[from] = 0;
  }
}

}  // namespace radiocast::audit
