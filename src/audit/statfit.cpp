#include "audit/statfit.hpp"

#include <cmath>

namespace radiocast::audit {

namespace {
double log2_at_least_one(double v) { return std::max(1.0, std::log2(std::max(2.0, v))); }
}  // namespace

double theorem2_feature_k(const TheoremPoint& p) {
  return p.k * log2_at_least_one(p.max_degree);
}

double theorem2_feature_overhead(const TheoremPoint& p) {
  const double log_n = log2_at_least_one(p.n);
  return (p.diameter + log_n) * log_n * log2_at_least_one(p.max_degree);
}

double theorem2_predict(const TheoremFit& fit, const TheoremPoint& p) {
  return fit.a * theorem2_feature_k(p) + fit.b * theorem2_feature_overhead(p);
}

TheoremFit fit_theorem2(const std::vector<TheoremPoint>& points) {
  TheoremFit fit;
  // Normal equations for rounds ~ a·f1 + b·f2 (no intercept: the bound has
  // none, and an intercept would let a constant-factor regression hide).
  double s11 = 0, s12 = 0, s22 = 0, sy1 = 0, sy2 = 0;
  for (const TheoremPoint& p : points) {
    const double f1 = theorem2_feature_k(p);
    const double f2 = theorem2_feature_overhead(p);
    s11 += f1 * f1;
    s12 += f1 * f2;
    s22 += f2 * f2;
    sy1 += f1 * p.rounds;
    sy2 += f2 * p.rounds;
  }
  const double det = s11 * s22 - s12 * s12;
  if (points.size() < 2 || std::abs(det) < 1e-9 * std::max(1.0, s11 * s22)) {
    return fit;  // degenerate grid: features collinear or too few points
  }
  fit.a = (sy1 * s22 - sy2 * s12) / det;
  fit.b = (sy2 * s11 - sy1 * s12) / det;
  fit.ok = true;

  double sum_rel = 0;
  for (const TheoremPoint& p : points) {
    const double pred = theorem2_predict(fit, p);
    const double rel = std::abs(pred - p.rounds) / std::max(1.0, p.rounds);
    sum_rel += rel;
    fit.max_rel_residual = std::max(fit.max_rel_residual, rel);
  }
  fit.mean_rel_residual = sum_rel / static_cast<double>(points.size());
  return fit;
}

}  // namespace radiocast::audit
