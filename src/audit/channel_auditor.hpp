// ChannelAuditor — protocol-agnostic radio-model conformance checking.
//
// The radio-model half of ModelAuditor, factored for runs that are not
// k-broadcast instances: it implements radio::NetworkAuditHook only (no
// core::RunAuditor lifecycle, no protocol-discipline or ground-truth
// checks), so any caller that owns a radio::Network — the open-system
// stream driver in particular — can attach it via Network::set_auditor and
// get an independent re-derivation of Section 1's reception rules:
//
//   * a node receives iff exactly one neighbor transmitted and the node
//     itself was silent; the engine's reach counts agree with a recount
//     straight from the adjacency lists;
//   * only awake nodes transmit; transmitters are deaf (half-duplex);
//   * on_collision callbacks fire exactly iff the CD ablation is on;
//   * fault erasures only occur under a fault model, only on slots that
//     would otherwise deliver;
//   * every reached node gets exactly one outcome per round, reconciled
//     at on_round_end against the recomputed expectation.
//
// Strictly read-only, no RNG draws: an audited run is bit-identical to an
// unaudited one. One instance audits one simulation; construct fresh (or
// reset()) per run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/violation.hpp"
#include "graph/graph.hpp"
#include "radio/audit_hook.hpp"

namespace radiocast::audit {

class ChannelAuditor final : public radio::NetworkAuditHook {
 public:
  struct Options {
    /// Reception-loss faults are enabled for this run (fault drops are
    /// legal iff true).
    bool faults_enabled = false;
    /// The collision-detection ablation is enabled (on_collision
    /// callbacks are legal iff true).
    bool collision_detection = false;
    /// If true, every node must be initially awake (the dynamic/stream
    /// setting); if false, the initial wake set is unconstrained.
    bool expect_all_awake = false;
    /// Cap on stored violations; the count keeps incrementing past it.
    std::size_t max_violations = 1024;
  };

  ChannelAuditor(const graph::Graph& g, const Options& opts);

  /// Re-arms the auditor for a fresh simulation on the same graph.
  void reset();

  const AuditReport& report() const { return report_; }
  bool clean() const { return report_.clean(); }
  /// One-line human-readable summary ("clean" or first violation).
  std::string summary() const;

  // --- radio::NetworkAuditHook ---
  void on_sim_start(const std::vector<radio::NodeId>& initially_awake) override;
  void on_transmissions(radio::Round round,
                        const std::vector<radio::Message>& txs) override;
  void on_deliver(radio::Round round, radio::NodeId receiver,
                  std::uint32_t tx_index, const radio::Message& msg) override;
  void on_collision_slot(radio::Round round, radio::NodeId receiver,
                         std::uint32_t reached, bool cd_callback) override;
  void on_deaf_slot(radio::Round round, radio::NodeId receiver,
                    std::uint32_t reached) override;
  void on_fault_drop(radio::Round round, radio::NodeId receiver,
                     std::uint32_t tx_index) override;
  void on_node_wake(radio::Round round, radio::NodeId node) override;
  void on_round_end(radio::Round round) override;

 private:
  enum class Outcome : std::uint8_t {
    kNone,
    kDelivered,
    kCollision,
    kDeaf,
    kFaultDrop
  };

  void violation(std::uint64_t round, std::uint32_t node, const char* check,
                 std::string detail) {
    report_.add(round, node, check, std::move(detail));
  }

  const graph::Graph& graph_;
  Options opts_;
  AuditReport report_;

  radio::Round current_round_ = 0;
  bool round_open_ = false;
  std::vector<std::uint8_t> awake_;
  std::vector<std::uint32_t> reach_;
  std::vector<std::uint32_t> source_;  ///< first reaching tx index
  std::vector<std::uint8_t> transmitting_;
  std::vector<Outcome> outcome_;
  std::vector<radio::NodeId> touched_;
  std::vector<radio::NodeId> tx_from_;
};

}  // namespace radiocast::audit
