// Theorem-2 shape fitting for the statistical regression checker.
//
// The paper's main bound (Theorem 2) is
//
//   rounds = O( k·logΔ + (D + log n)·log n·logΔ )
//
// so measured completion times over an (n, D, Δ, k) grid should be well
// explained by a two-parameter linear model
//
//   rounds ≈ a·f1 + b·f2,   f1 = k·log₂Δ,   f2 = (D + log₂n)·log₂n·log₂Δ.
//
// fit_theorem2 solves the 2x2 least-squares normal equations in closed
// form and reports the coefficients plus relative residuals. The
// statistical test (tests/audit/statistical_test.cpp) pins empirical
// confidence bands on both: a regression that breaks the shape (e.g. a
// k·D term sneaking in) blows up the residuals, and a uniform slowdown
// blows up the coefficients.
#pragma once

#include <cstdint>
#include <vector>

namespace radiocast::audit {

/// One grid cell: topology parameters, packet count, and the measured
/// mean completion rounds over a seed corpus.
struct TheoremPoint {
  double n = 0;
  double diameter = 0;
  double max_degree = 0;
  double k = 0;
  double rounds = 0;
};

struct TheoremFit {
  bool ok = false;  ///< false if the grid is degenerate (singular system)
  double a = 0;     ///< coefficient of k·logΔ
  double b = 0;     ///< coefficient of (D+log n)·log n·logΔ
  double max_rel_residual = 0;   ///< max |pred-obs| / obs over the grid
  double mean_rel_residual = 0;  ///< mean |pred-obs| / obs
};

/// f1 = k·log₂Δ (the per-packet collection/dissemination term).
double theorem2_feature_k(const TheoremPoint& p);
/// f2 = (D+log₂n)·log₂n·log₂Δ (the fixed schedule overhead term).
double theorem2_feature_overhead(const TheoremPoint& p);
/// Model prediction a·f1 + b·f2.
double theorem2_predict(const TheoremFit& fit, const TheoremPoint& p);

/// Least-squares fit of rounds against the two Theorem-2 features.
/// Requires at least two points with non-collinear features.
TheoremFit fit_theorem2(const std::vector<TheoremPoint>& points);

}  // namespace radiocast::audit
