// ModelAuditor — runtime model-conformance checking for k-broadcast runs.
//
// The auditor attaches to core::run_kbroadcast (see core::RunAuditor) and
// independently recomputes, every round, what the paper's model says must
// happen, from nothing but the raw transmission set and the topology. It
// never trusts the engine's own bookkeeping: reach counts are recounted
// from adjacency lists, reception outcomes are re-derived from the model's
// rules, schedule boundaries are recomputed from core::params/schedule
// arithmetic, and coded payloads are re-encoded from the ground-truth
// packets. Any divergence lands in an AuditReport.
//
// Checks, grouped as in the paper:
//
//  Radio-model semantics (Section 1's model):
//   * a node receives iff exactly one neighbor transmitted and the node
//     itself was silent; collisions and fault erasures are indistinguishable
//     from silence (no delivery, no callback without the CD ablation);
//   * the engine's reach counts agree with an independent recount;
//   * only awake nodes transmit; sleeping nodes wake on first reception;
//   * on_collision callbacks fire exactly iff the CD ablation is enabled;
//   * every reached listener gets exactly one outcome per round.
//
//  Protocol discipline (Sections 2.1-2.4):
//   * per-node stage transitions are monotone leader -> BFS -> collection
//     -> dissemination, with boundaries at 0, stage1_rounds, stage3_start()
//     and the node's own recorded collection finish;
//   * Stage-3 phases start at x0 = initial_estimate, double exactly per
//     alarmed phase, and end only after an alarm-free phase; every
//     OSPG/MSPG/ALARM epoch matches grab_windows()/alarm_rounds budgets
//     round-for-round;
//   * message kinds respect the transmitter's stage window (alarms only in
//     Stage 1, BFS-construct only in Stage 2, data/ack/alarm in Stage 3,
//     plain/coded in Stage 4);
//   * BFS layers equal true graph distances from the elected leader, with
//     parent pointers one layer up (checked at end_run);
//   * exactly one leader is elected.
//
//  Delivery soundness:
//   * every DataMsg/PlainPacketMsg carries a bit-exact ground-truth packet;
//   * every CodedMsg payload equals the GF(2) combination of the group's
//     real wire images selected by its header coefficients (the group
//     partition is recomputed from the sorted truth);
//   * RunResult's delivery claims match an independent per-node recheck.
//
// The auditor is strictly read-only and consumes no randomness, so an
// audited run is bit-identical to an unaudited one (pinned by
// tests/audit/corpus_test.cpp). One instance audits one run at a time;
// begin_run resets all state, so an instance can be reused sequentially.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/violation.hpp"
#include "core/audit.hpp"
#include "core/schedule.hpp"
#include "gf2/solver.hpp"

namespace radiocast::audit {

/// Independent re-derivation of every round's model-mandated outcomes
/// (see the file comment for the full check list).
class ModelAuditor final : public core::RunAuditor {
 public:
  /// `max_violations` caps stored violations; the count keeps incrementing.
  explicit ModelAuditor(std::size_t max_violations = 1024)
      : report_(max_violations) {}

  /// Everything found so far (valid after end_run, or mid-run).
  const AuditReport& report() const { return report_; }
  /// True iff no violation has been recorded.
  bool clean() const { return report_.clean(); }
  /// One-line human-readable summary ("clean" or first violations).
  std::string summary() const;

  // --- core::RunAuditor ---
  void begin_run(const graph::Graph& g, const core::ResolvedConfig& rc,
                 const std::vector<radio::Packet>& truth,
                 const radio::FaultModel& faults,
                 bool collision_detection) override;
  void end_run(const radio::Network& net, const core::RunResult& result) override;

  // --- radio::NetworkAuditHook ---
  void on_sim_start(const std::vector<radio::NodeId>& initially_awake) override;
  void on_transmissions(radio::Round round,
                        const std::vector<radio::Message>& txs) override;
  void on_deliver(radio::Round round, radio::NodeId receiver,
                  std::uint32_t tx_index, const radio::Message& msg) override;
  void on_collision_slot(radio::Round round, radio::NodeId receiver,
                         std::uint32_t reached, bool cd_callback) override;
  void on_deaf_slot(radio::Round round, radio::NodeId receiver,
                    std::uint32_t reached) override;
  void on_fault_drop(radio::Round round, radio::NodeId receiver,
                     std::uint32_t tx_index) override;
  void on_node_wake(radio::Round round, radio::NodeId node) override;
  void on_round_end(radio::Round round) override;

  // --- core::ProtocolAuditSink ---
  void on_stage_enter(radio::NodeId node, std::uint32_t stage_index,
                      radio::Round boundary_round) override;
  void on_collection_phase_begin(radio::NodeId node, std::uint32_t phase_index,
                                 std::uint64_t estimate,
                                 radio::Round round) override;
  void on_collection_epoch(radio::NodeId node, const char* kind,
                           std::uint64_t slots, std::uint32_t copies,
                           radio::Round round) override;
  void on_collection_phase_end(radio::NodeId node, radio::Round round,
                               bool alarmed) override;

 private:
  /// Reception outcome observed for a node in the current round.
  enum class Outcome : std::uint8_t {
    kNone,
    kDelivered,
    kCollision,
    kDeaf,
    kFaultDrop
  };

  /// Per-node protocol-discipline tracking.
  struct NodeState {
    std::uint32_t stage = 0;  ///< last reported stage (0 = none yet)
    // Collection schedule tracking (absolute rounds).
    bool in_phase = false;
    std::uint32_t next_phase_index = 0;
    std::uint64_t estimate = 0;
    std::uint64_t phase_start = 0;
    std::uint64_t expected_phase_end = 0;
    std::vector<core::GatherWindow> windows;
    std::size_t next_window = 0;
    bool has_ended_phase = false;
    std::uint64_t last_phase_end = 0;
    bool last_phase_alarmed = false;
  };

  void violation(std::uint64_t round, std::uint32_t node, const char* check,
                 std::string detail) {
    report_.add(round, node, check, std::move(detail));
  }
  void check_message_kind(radio::Round round, const radio::Message& tx);
  void check_message_payload(radio::Round round, const radio::Message& tx);

  AuditReport report_;
  bool active_ = false;

  // Run context (begin_run).
  const graph::Graph* graph_ = nullptr;
  core::ResolvedConfig rc_;
  std::vector<radio::Packet> truth_;
  bool faults_enabled_ = false;
  bool collision_detection_ = false;
  /// Stage-4 group partition recomputed from the sorted truth: wire images
  /// (id || payload) per group, chunked by rc_.group_size.
  std::vector<std::vector<gf2::Payload>> group_wires_;

  // Engine-side per-round state.
  bool sim_started_ = false;
  radio::Round current_round_ = 0;
  bool round_open_ = false;
  std::vector<std::uint8_t> awake_;
  std::vector<std::uint32_t> reach_;
  std::vector<std::uint32_t> source_;  ///< first reaching tx index
  std::vector<std::uint8_t> transmitting_;
  std::vector<Outcome> outcome_;
  std::vector<radio::NodeId> touched_;
  std::vector<radio::NodeId> tx_from_;

  // Protocol-side per-node state.
  std::vector<NodeState> nodes_;
};

}  // namespace radiocast::audit
