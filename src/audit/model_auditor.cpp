#include "audit/model_auditor.hpp"

#include <algorithm>
#include <sstream>
#include <string_view>
#include <variant>

#include "common/assert.hpp"
#include "core/dissemination.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/algorithms.hpp"

namespace radiocast::audit {

namespace {

/// Payload equality modulo trailing zero padding (GF(2) arithmetic may
/// grow payloads to the group's max wire size).
bool payload_eq_padded(const gf2::Payload& a, const gf2::Payload& b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) return false;
  }
  for (std::size_t i = common; i < a.size(); ++i) {
    if (a[i] != 0) return false;
  }
  for (std::size_t i = common; i < b.size(); ++i) {
    if (b[i] != 0) return false;
  }
  return true;
}

const radio::Packet* find_packet(const std::vector<radio::Packet>& truth,
                                 radio::PacketId id) {
  const auto it = std::lower_bound(
      truth.begin(), truth.end(), id,
      [](const radio::Packet& p, radio::PacketId v) { return p.id < v; });
  if (it == truth.end() || it->id != id) return nullptr;
  return &*it;
}

}  // namespace

std::string ModelAuditor::summary() const {
  if (report_.clean()) return "clean";
  std::ostringstream out;
  out << report_.total() << " violation(s); first: ";
  const Violation& v = report_.violations().front();
  out << v.check << " @round " << v.round << " node " << v.node << " (" << v.detail
      << ")";
  return out.str();
}

void ModelAuditor::begin_run(const graph::Graph& g, const core::ResolvedConfig& rc,
                             const std::vector<radio::Packet>& truth,
                             const radio::FaultModel& faults,
                             bool collision_detection) {
  RC_ASSERT_MSG(g.finalized(), "auditor needs a finalized graph");
  active_ = true;
  graph_ = &g;
  rc_ = rc;
  truth_ = truth;
  std::sort(truth_.begin(), truth_.end(),
            [](const radio::Packet& a, const radio::Packet& b) { return a.id < b.id; });
  faults_enabled_ = faults.reception_loss_probability > 0.0;
  collision_detection_ = collision_detection;

  // Recompute the Stage-4 group partition from the truth alone — the same
  // sorted-by-id chunking DisseminationState::set_root_packets performs.
  group_wires_.clear();
  const std::uint32_t s = rc_.group_size;
  for (std::size_t begin = 0; begin < truth_.size(); begin += s) {
    const std::size_t end = std::min(truth_.size(), begin + s);
    std::vector<gf2::Payload> wires;
    wires.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      wires.push_back(core::packet_wire_image(truth_[i]));
    }
    group_wires_.push_back(std::move(wires));
  }

  const std::size_t n = g.num_nodes();
  sim_started_ = false;
  current_round_ = 0;
  round_open_ = false;
  awake_.assign(n, 0);
  reach_.assign(n, 0);
  source_.assign(n, 0);
  transmitting_.assign(n, 0);
  outcome_.assign(n, Outcome::kNone);
  touched_.clear();
  tx_from_.clear();
  nodes_.assign(n, NodeState{});
}

void ModelAuditor::on_sim_start(const std::vector<radio::NodeId>& initially_awake) {
  RC_ASSERT(active_);
  sim_started_ = true;
  for (const radio::NodeId id : initially_awake) {
    if (id >= awake_.size()) {
      violation(0, id, "radio.initial_wake_range", "initial wake out of range");
      continue;
    }
    awake_[id] = 1;
  }
  // run_kbroadcast's contract: exactly the packet origins start awake.
  std::vector<std::uint8_t> expected(awake_.size(), 0);
  for (const radio::Packet& p : truth_) {
    const radio::NodeId origin = radio::packet_origin(p.id);
    if (origin < expected.size()) expected[origin] = 1;
  }
  for (radio::NodeId v = 0; v < expected.size(); ++v) {
    if (expected[v] != awake_[v]) {
      violation(0, v, "run.initial_wake_set",
                expected[v] ? "packet origin not awake at start"
                            : "non-participant awake at start");
    }
  }
}

void ModelAuditor::check_message_kind(radio::Round round, const radio::Message& tx) {
  const std::uint32_t stage =
      tx.from < nodes_.size() ? nodes_[tx.from].stage : 0;
  bool ok = false;
  const char* expected = "";
  switch (stage) {
    case 1:
      ok = std::holds_alternative<radio::AlarmMsg>(tx.body);
      expected = "alarm";
      break;
    case 2:
      ok = std::holds_alternative<radio::BfsConstructMsg>(tx.body);
      expected = "bfs";
      break;
    case 3:
      ok = std::holds_alternative<radio::DataMsg>(tx.body) ||
           std::holds_alternative<radio::AckMsg>(tx.body) ||
           std::holds_alternative<radio::AlarmMsg>(tx.body);
      expected = "data/ack/alarm";
      break;
    case 4:
      ok = std::holds_alternative<radio::PlainPacketMsg>(tx.body) ||
           std::holds_alternative<radio::CodedMsg>(tx.body);
      expected = "plain/coded";
      break;
    default:
      ok = false;
      expected = "none (no stage reported)";
      break;
  }
  if (!ok) {
    violation(round, tx.from, "protocol.kind_vs_stage",
              "kind '" + radio::message_kind(tx.body) + "' in stage " +
                  std::to_string(stage) + " (allowed: " + expected + ")");
  }
}

void ModelAuditor::check_message_payload(radio::Round round,
                                         const radio::Message& tx) {
  const auto check_packet = [&](const radio::Packet& p, const char* what) {
    const radio::Packet* want = find_packet(truth_, p.id);
    if (want == nullptr) {
      violation(round, tx.from, "delivery.unknown_packet",
                std::string(what) + " carries unknown packet id " +
                    std::to_string(p.id));
    } else if (want->payload != p.payload) {
      violation(round, tx.from, "delivery.payload_corrupt",
                std::string(what) + " payload differs from ground truth for id " +
                    std::to_string(p.id));
    }
  };

  if (const auto* data = std::get_if<radio::DataMsg>(&tx.body)) {
    check_packet(data->packet, "DataMsg");
    return;
  }
  if (const auto* plain = std::get_if<radio::PlainPacketMsg>(&tx.body)) {
    check_packet(plain->packet, "PlainPacketMsg");
    if (plain->group_count != group_wires_.size()) {
      violation(round, tx.from, "delivery.group_count",
                "PlainPacketMsg group_count " + std::to_string(plain->group_count) +
                    " != " + std::to_string(group_wires_.size()));
    }
    return;
  }
  if (const auto* coded = std::get_if<radio::CodedMsg>(&tx.body)) {
    if (coded->group_count != group_wires_.size() ||
        coded->group_id >= group_wires_.size()) {
      violation(round, tx.from, "delivery.group_count",
                "CodedMsg group " + std::to_string(coded->group_id) + "/" +
                    std::to_string(coded->group_count) + " vs true group count " +
                    std::to_string(group_wires_.size()));
      return;
    }
    const std::vector<gf2::Payload>& wires = group_wires_[coded->group_id];
    if (coded->group_size != wires.size()) {
      violation(round, tx.from, "delivery.group_size",
                "CodedMsg group_size " + std::to_string(coded->group_size) +
                    " != true size " + std::to_string(wires.size()));
      return;
    }
    if (wires.size() < 64 && (coded->coeffs >> wires.size()) != 0) {
      violation(round, tx.from, "delivery.coded_coeffs",
                "coefficient bits beyond the group size");
      return;
    }
    gf2::Payload expected;
    for (std::size_t i = 0; i < wires.size(); ++i) {
      if ((coded->coeffs >> i) & 1u) gf2::xor_into(expected, wires[i]);
    }
    if (!payload_eq_padded(expected, coded->payload)) {
      violation(round, tx.from, "delivery.coded_payload",
                "CodedMsg payload is not the GF(2) combination its header claims "
                "(group " +
                    std::to_string(coded->group_id) + ", coeffs " +
                    std::to_string(coded->coeffs) + ")");
    }
  }
}

void ModelAuditor::on_transmissions(radio::Round round,
                                    const std::vector<radio::Message>& txs) {
  RC_ASSERT(active_);
  if (round_open_) {
    violation(round, 0, "radio.round_sequence", "round opened twice");
  }
  round_open_ = true;
  current_round_ = round;
  tx_from_.clear();

  radio::NodeId prev_from = 0;
  bool first = true;
  for (const radio::Message& tx : txs) {
    tx_from_.push_back(tx.from);
    if (tx.from >= awake_.size()) {
      violation(round, tx.from, "radio.tx_range", "transmitter id out of range");
      continue;
    }
    if (!first && tx.from <= prev_from) {
      violation(round, tx.from, "radio.tx_order",
                "transmissions not in ascending transmitter order");
    }
    prev_from = tx.from;
    first = false;
    if (!awake_[tx.from]) {
      violation(round, tx.from, "radio.sleeping_transmitter",
                "transmission from a node the model says is asleep");
    }
    transmitting_[tx.from] = 1;
    check_message_kind(round, tx);
    check_message_payload(round, tx);
  }

  // Independent reach recount from the topology.
  for (std::uint32_t t = 0; t < txs.size(); ++t) {
    if (txs[t].from >= awake_.size()) continue;
    for (const radio::NodeId v : graph_->neighbors(txs[t].from)) {
      if (reach_[v]++ == 0) {
        source_[v] = t;
        touched_.push_back(v);
      }
    }
  }
}

void ModelAuditor::on_deliver(radio::Round round, radio::NodeId receiver,
                              std::uint32_t tx_index, const radio::Message& msg) {
  RC_ASSERT(active_ && receiver < awake_.size());
  if (reach_[receiver] != 1) {
    violation(round, receiver, "radio.deliver_on_collision",
              "delivery with " + std::to_string(reach_[receiver]) +
                  " reaching transmissions (model: exactly 1)");
  }
  if (transmitting_[receiver]) {
    violation(round, receiver, "radio.deliver_while_transmitting",
              "delivery to a node that transmitted this round (half-duplex)");
  }
  if (tx_index >= tx_from_.size()) {
    violation(round, receiver, "radio.deliver_source",
              "delivery from out-of-range transmission index");
  } else {
    if (reach_[receiver] >= 1 && tx_index != source_[receiver]) {
      violation(round, receiver, "radio.deliver_source",
                "delivered transmission is not the reaching one");
    }
    if (msg.from != tx_from_[tx_index]) {
      violation(round, receiver, "radio.deliver_source",
                "message sender does not match the transmission slot");
    }
  }
  if (outcome_[receiver] == Outcome::kNone) outcome_[receiver] = Outcome::kDelivered;
}

void ModelAuditor::on_collision_slot(radio::Round round, radio::NodeId receiver,
                                     std::uint32_t reached, bool cd_callback) {
  RC_ASSERT(active_ && receiver < awake_.size());
  if (reached < 2 || reached != reach_[receiver]) {
    violation(round, receiver, "radio.collision_count",
              "collision slot reports " + std::to_string(reached) +
                  " reaching, recount says " + std::to_string(reach_[receiver]));
  }
  if (transmitting_[receiver]) {
    violation(round, receiver, "radio.collision_while_transmitting",
              "collision outcome for a transmitting node (deaf slot expected)");
  }
  if (cd_callback != collision_detection_) {
    violation(round, receiver, "radio.cd_ablation",
              cd_callback ? "on_collision fired without the CD ablation"
                          : "CD ablation enabled but no callback");
  }
  // Under the CD ablation the engine wakes the listener itself; that wake
  // arrives as a separate on_node_wake, so no state change here.
  if (outcome_[receiver] == Outcome::kNone) outcome_[receiver] = Outcome::kCollision;
}

void ModelAuditor::on_deaf_slot(radio::Round round, radio::NodeId receiver,
                                std::uint32_t reached) {
  RC_ASSERT(active_ && receiver < awake_.size());
  if (!transmitting_[receiver]) {
    violation(round, receiver, "radio.deaf_not_transmitting",
              "deaf slot for a node that did not transmit");
  }
  if (reached == 0 || reached != reach_[receiver]) {
    violation(round, receiver, "radio.deaf_count",
              "deaf slot reports " + std::to_string(reached) +
                  " reaching, recount says " + std::to_string(reach_[receiver]));
  }
  if (outcome_[receiver] == Outcome::kNone) outcome_[receiver] = Outcome::kDeaf;
}

void ModelAuditor::on_fault_drop(radio::Round round, radio::NodeId receiver,
                                 std::uint32_t tx_index) {
  RC_ASSERT(active_ && receiver < awake_.size());
  if (!faults_enabled_) {
    violation(round, receiver, "radio.fault_without_model",
              "fault drop with reception_loss_probability == 0");
  }
  if (reach_[receiver] != 1 || transmitting_[receiver]) {
    violation(round, receiver, "radio.fault_slot",
              "fault erasure on a slot that was not a successful reception");
  }
  if (tx_index >= tx_from_.size() ||
      (reach_[receiver] >= 1 && tx_index != source_[receiver])) {
    violation(round, receiver, "radio.fault_source",
              "fault drop does not reference the reaching transmission");
  }
  if (outcome_[receiver] == Outcome::kNone) outcome_[receiver] = Outcome::kFaultDrop;
}

void ModelAuditor::on_node_wake(radio::Round round, radio::NodeId node) {
  RC_ASSERT(active_ && node < awake_.size());
  if (awake_[node]) {
    violation(round, node, "radio.double_wake", "wake event for an awake node");
  }
  awake_[node] = 1;
}

void ModelAuditor::on_round_end(radio::Round round) {
  RC_ASSERT(active_);
  if (!round_open_ || round != current_round_) {
    violation(round, 0, "radio.round_sequence",
              "round end does not match the opened round");
  }
  round_open_ = false;

  for (const radio::NodeId v : touched_) {
    const std::uint32_t reached = reach_[v];
    const Outcome got = outcome_[v];
    Outcome want = Outcome::kNone;
    if (transmitting_[v]) {
      want = Outcome::kDeaf;
    } else if (reached >= 2) {
      want = Outcome::kCollision;
    } else {
      // Exactly one reaching transmission, silent receiver: the model says
      // deliver; with the fault ablation the slot may be erased instead.
      want = Outcome::kDelivered;
    }
    const bool ok =
        got == want || (want == Outcome::kDelivered &&
                        got == Outcome::kFaultDrop && faults_enabled_);
    if (!ok) {
      const auto name = [](Outcome o) {
        switch (o) {
          case Outcome::kNone: return "none";
          case Outcome::kDelivered: return "delivered";
          case Outcome::kCollision: return "collision";
          case Outcome::kDeaf: return "deaf";
          case Outcome::kFaultDrop: return "fault-drop";
        }
        return "?";
      };
      violation(round, v, "radio.outcome",
                std::string("expected ") + name(want) + ", engine reported " +
                    name(got) + " (" + std::to_string(reached) + " reaching)");
    }
    if (got == Outcome::kDelivered && !awake_[v]) {
      violation(round, v, "radio.wake_on_reception",
                "node received a message but was never woken");
    }
    reach_[v] = 0;
    outcome_[v] = Outcome::kNone;
  }
  touched_.clear();
  for (const radio::NodeId from : tx_from_) {
    if (from < transmitting_.size()) transmitting_[from] = 0;
  }
}

void ModelAuditor::on_stage_enter(radio::NodeId node, std::uint32_t stage_index,
                                  radio::Round boundary_round) {
  RC_ASSERT(active_ && node < nodes_.size());
  NodeState& st = nodes_[node];
  if (stage_index < 1 || stage_index > 4 || stage_index <= st.stage) {
    violation(current_round_, node, "protocol.stage_monotonicity",
              "stage " + std::to_string(stage_index) + " after stage " +
                  std::to_string(st.stage));
    st.stage = std::max(st.stage, stage_index);
    return;
  }
  std::uint64_t expected = 0;
  bool check_boundary = true;
  switch (stage_index) {
    case 1:
      expected = 0;
      break;
    case 2:
      expected = rc_.stage1_rounds;
      break;
    case 3:
      expected = rc_.stage3_start();
      break;
    case 4:
      // The node's own schedule: Stage 4 starts exactly where its recorded
      // collection ended, and only after an alarm-free phase.
      if (!st.has_ended_phase) {
        violation(current_round_, node, "protocol.stage4_boundary",
                  "entered dissemination without a recorded collection finish");
        check_boundary = false;
      } else {
        expected = st.last_phase_end;
        if (st.last_phase_alarmed) {
          violation(current_round_, node, "protocol.stage4_after_alarm",
                    "entered dissemination after an alarmed phase");
        }
      }
      break;
    default:
      check_boundary = false;
      break;
  }
  if (check_boundary && boundary_round != expected) {
    violation(current_round_, node,
              stage_index == 4 ? "protocol.stage4_boundary"
                               : "protocol.stage_boundary",
              "stage " + std::to_string(stage_index) + " boundary " +
                  std::to_string(boundary_round) + ", schedule says " +
                  std::to_string(expected));
  }
  st.stage = stage_index;
}

void ModelAuditor::on_collection_phase_begin(radio::NodeId node,
                                             std::uint32_t phase_index,
                                             std::uint64_t estimate,
                                             radio::Round round) {
  RC_ASSERT(active_ && node < nodes_.size());
  NodeState& st = nodes_[node];
  if (st.in_phase) {
    violation(round, node, "protocol.phase_nesting",
              "phase begins inside an unfinished phase");
  }
  if (phase_index != st.next_phase_index) {
    violation(round, node, "protocol.phase_index",
              "phase " + std::to_string(phase_index) + ", expected " +
                  std::to_string(st.next_phase_index));
  }
  const std::uint64_t expected_estimate =
      phase_index < 63 ? rc_.initial_estimate << phase_index : 0;
  if (estimate != expected_estimate) {
    violation(round, node, "protocol.estimate_doubling",
              "estimate " + std::to_string(estimate) + " at phase " +
                  std::to_string(phase_index) + ", schedule says " +
                  std::to_string(expected_estimate) + " (x0 doubled per phase)");
  }
  const std::uint64_t expected_start =
      st.has_ended_phase ? st.last_phase_end : rc_.stage3_start();
  if (round != expected_start) {
    violation(round, node, "protocol.phase_boundary",
              "phase starts at " + std::to_string(round) + ", schedule says " +
                  std::to_string(expected_start));
  }
  if (st.has_ended_phase && !st.last_phase_alarmed) {
    violation(round, node, "protocol.phase_after_quiet",
              "new phase after an alarm-free phase (stage should have ended)");
  }
  st.in_phase = true;
  st.estimate = estimate;
  st.phase_start = round;
  st.windows = core::grab_windows(estimate, rc_);
  st.next_window = 0;
  st.expected_phase_end =
      round + st.windows.back().end() + rc_.alarm_rounds;
}

void ModelAuditor::on_collection_epoch(radio::NodeId node, const char* kind,
                                       std::uint64_t slots, std::uint32_t copies,
                                       radio::Round round) {
  RC_ASSERT(active_ && node < nodes_.size());
  NodeState& st = nodes_[node];
  if (!st.in_phase) {
    violation(round, node, "protocol.epoch_outside_phase",
              "epoch event outside any phase");
    return;
  }
  const std::string_view k(kind);
  if (k == "alarm") {
    const std::uint64_t expected = st.phase_start + st.windows.back().end();
    if (round != expected) {
      violation(round, node, "protocol.alarm_round",
                "alarm window at " + std::to_string(round) + ", schedule says " +
                    std::to_string(expected));
    }
    // The alarm epoch consumes whatever gather windows remain (a node woken
    // mid-phase may not have reported them all); none may follow it.
    st.next_window = st.windows.size();
    return;
  }
  if (st.next_window >= st.windows.size()) {
    violation(round, node, "protocol.epoch_overflow",
              "gather window after the schedule's last one");
    return;
  }
  const core::GatherWindow& w = st.windows[st.next_window];
  const std::string_view expected_kind = w.copies > 1 ? "mspg" : "ospg";
  if (k != expected_kind || slots != w.slots || copies != w.copies ||
      round != st.phase_start + w.start) {
    violation(round, node, "protocol.gather_window",
              "window " + std::to_string(st.next_window) + " is " +
                  std::string(k) + "(" + std::to_string(slots) + "," +
                  std::to_string(copies) + ")@" + std::to_string(round) +
                  ", schedule says " + std::string(expected_kind) + "(" +
                  std::to_string(w.slots) + "," + std::to_string(w.copies) +
                  ")@" + std::to_string(st.phase_start + w.start));
  }
  ++st.next_window;
}

void ModelAuditor::on_collection_phase_end(radio::NodeId node, radio::Round round,
                                           bool alarmed) {
  RC_ASSERT(active_ && node < nodes_.size());
  NodeState& st = nodes_[node];
  if (!st.in_phase) {
    violation(round, node, "protocol.phase_nesting", "phase end without begin");
    return;
  }
  if (round != st.expected_phase_end) {
    violation(round, node, "protocol.phase_rounds",
              "phase ends at " + std::to_string(round) + ", budget says " +
                  std::to_string(st.expected_phase_end) + " (GRAB(" +
                  std::to_string(st.estimate) + ") + ALARM)");
  }
  st.in_phase = false;
  ++st.next_phase_index;
  st.has_ended_phase = true;
  st.last_phase_end = round;
  st.last_phase_alarmed = alarmed;
}

void ModelAuditor::end_run(const radio::Network& net,
                           const core::RunResult& result) {
  RC_ASSERT(active_);
  active_ = false;
  const radio::Round round = net.current_round();
  const radio::NodeId n = net.num_nodes();

  // --- Leader uniqueness + BFS layers vs true graph distances ---
  std::vector<radio::NodeId> leaders;
  for (radio::NodeId v = 0; v < n; ++v) {
    const auto& node = static_cast<const core::KBroadcastNode&>(net.protocol(v));
    if (node.is_leader()) leaders.push_back(v);
  }
  if (leaders.size() != 1) {
    violation(round, leaders.empty() ? 0 : leaders[1], "protocol.unique_leader",
              std::to_string(leaders.size()) + " nodes consider themselves leader");
  }
  if (!leaders.empty()) {
    const graph::BfsResult bfs = graph::bfs(*graph_, leaders.front());
    for (radio::NodeId v = 0; v < n; ++v) {
      if (bfs.dist[v] == graph::kUnreachable) continue;
      const auto& node = static_cast<const core::KBroadcastNode&>(net.protocol(v));
      if (v == leaders.front()) continue;
      if (!node.has_bfs_distance()) {
        violation(round, v, "protocol.bfs_layer",
                  "reachable node never joined the BFS tree");
        continue;
      }
      if (node.bfs_distance() != bfs.dist[v]) {
        violation(round, v, "protocol.bfs_layer",
                  "BFS layer " + std::to_string(node.bfs_distance()) +
                      ", true distance " + std::to_string(bfs.dist[v]));
      }
      const radio::NodeId parent = node.bfs_parent();
      if (parent >= n || bfs.dist[parent] + 1 != node.bfs_distance() ||
          !graph_->has_edge(v, parent)) {
        violation(round, v, "protocol.bfs_parent",
                  "BFS parent " + std::to_string(parent) +
                      " is not a neighbor one layer up");
      }
    }
  }

  // --- Delivery claims vs an independent per-node recheck ---
  std::uint32_t complete = 0;
  for (radio::NodeId v = 0; v < n; ++v) {
    const auto& node = static_cast<const core::KBroadcastNode&>(net.protocol(v));
    std::vector<radio::Packet> got = node.delivered_packets();
    std::sort(got.begin(), got.end(),
              [](const radio::Packet& a, const radio::Packet& b) {
                return a.id < b.id;
              });
    if (got == truth_) ++complete;
  }
  if (complete != result.nodes_complete) {
    violation(round, 0, "delivery.result_mismatch",
              "RunResult claims " + std::to_string(result.nodes_complete) +
                  " complete nodes, recheck counts " + std::to_string(complete));
  }
  if (result.delivered_all != (complete == n)) {
    violation(round, 0, "delivery.result_mismatch",
              "RunResult.delivered_all disagrees with the per-node recheck");
  }
  if (result.delivered_all && result.timed_out) {
    violation(round, 0, "delivery.result_mismatch",
              "delivered_all and timed_out are both set");
  }
}

}  // namespace radiocast::audit
