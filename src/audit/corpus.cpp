#include "audit/corpus.hpp"

#include <utility>

#include "common/assert.hpp"
#include "graph/generators.hpp"

namespace radiocast::audit {

const std::vector<CorpusCase>& pinned_corpus() {
  // Seeds are arbitrary but frozen: CI audits the same executions forever.
  // The grid covers every placement mode, loss in {0, 0.03}, CD on/off,
  // coded and uncoded dissemination, and topologies spanning the paper's
  // regimes (large-D path/grid, large-Δ star/clique-chain, random).
  static const std::vector<CorpusCase> corpus = {
      {"path_random", "path", 24, 6, core::PlacementMode::kRandom, 0.0, false,
       true, 11, 101, 201},
      {"path_random_cd", "path", 24, 6, core::PlacementMode::kRandom, 0.0, true,
       true, 11, 101, 202},
      {"star_single_source", "star", 32, 8, core::PlacementMode::kSingleSource,
       0.0, false, true, 12, 102, 203},
      {"star_single_source_lossy", "star", 32, 8,
       core::PlacementMode::kSingleSource, 0.03, false, true, 12, 102, 204},
      {"grid_spread", "grid", 36, 9, core::PlacementMode::kSpreadEven, 0.0,
       false, true, 13, 103, 205},
      {"grid_spread_lossy_cd", "grid", 36, 9, core::PlacementMode::kSpreadEven,
       0.03, true, true, 13, 103, 206},
      {"cluster_chain_random", "cluster_chain", 30, 10,
       core::PlacementMode::kRandom, 0.0, false, true, 14, 104, 207},
      {"cluster_chain_random_lossy", "cluster_chain", 30, 10,
       core::PlacementMode::kRandom, 0.03, false, true, 14, 104, 208},
      {"gnp_random", "gnp", 40, 8, core::PlacementMode::kRandom, 0.0, false,
       true, 15, 105, 209},
      {"gnp_spread_cd", "gnp", 40, 8, core::PlacementMode::kSpreadEven, 0.0,
       true, true, 15, 105, 210},
      {"tree_single_source_lossy", "random_tree", 28, 7,
       core::PlacementMode::kSingleSource, 0.03, false, true, 16, 106, 214},
      {"path_uncoded", "path", 20, 5, core::PlacementMode::kRandom, 0.0, false,
       false, 17, 107, 212},
      {"star_uncoded_lossy", "star", 24, 6, core::PlacementMode::kSpreadEven,
       0.03, false, false, 18, 108, 213},
  };
  return corpus;
}

bool results_identical(const core::RunResult& a, const core::RunResult& b) {
  return a.delivered_all == b.delivered_all && a.timed_out == b.timed_out &&
         a.nodes_complete == b.nodes_complete && a.n == b.n && a.k == b.k &&
         a.total_rounds == b.total_rounds && a.stage1_rounds == b.stage1_rounds &&
         a.stage2_rounds == b.stage2_rounds && a.stage3_rounds == b.stage3_rounds &&
         a.stage4_rounds == b.stage4_rounds && a.leader_ok == b.leader_ok &&
         a.bfs_ok == b.bfs_ok && a.collection_phases == b.collection_phases &&
         a.final_estimate == b.final_estimate && a.counters == b.counters;
}

CorpusOutcome run_corpus_case(const CorpusCase& c, radio::EngineMode engine,
                              std::uint32_t shards) {
  Rng graph_rng(c.graph_seed);
  const graph::Graph g = graph::make_named(c.family, c.n, graph_rng);

  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  cfg.coded = c.coded;

  Rng placement_rng(c.placement_seed);
  const core::Placement placement =
      core::make_placement(g.num_nodes(), c.k, c.placement, /*payload_bytes=*/16,
                           placement_rng);

  radio::FaultModel faults;
  faults.reception_loss_probability = c.loss;
  faults.seed = c.run_seed ^ 0x5eedf001u;

  CorpusOutcome out;
  ModelAuditor auditor;
  out.audited = core::run_kbroadcast(g, cfg, placement, c.run_seed,
                                     /*max_rounds=*/0, faults,
                                     /*observer=*/nullptr, &auditor,
                                     c.collision_detection, /*tracer=*/nullptr,
                                     engine, shards);
  out.unaudited = core::run_kbroadcast(g, cfg, placement, c.run_seed,
                                       /*max_rounds=*/0, faults,
                                       /*observer=*/nullptr, /*auditor=*/nullptr,
                                       c.collision_detection, /*tracer=*/nullptr,
                                       engine, shards);
  out.report = auditor.report();
  out.delivered = out.audited.delivered_all;
  out.bit_identical = results_identical(out.audited, out.unaudited);
  return out;
}

}  // namespace radiocast::audit
