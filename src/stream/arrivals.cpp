#include "stream/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace radiocast::stream {

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kPeriodic: return "periodic";
  }
  return "?";
}

bool arrival_kind_from_string(const std::string& s, ArrivalKind& out) {
  if (s == "poisson") {
    out = ArrivalKind::kPoisson;
    return true;
  }
  if (s == "periodic") {
    out = ArrivalKind::kPeriodic;
    return true;
  }
  return false;
}

namespace {

void emit(std::vector<core::Arrival>& out, radio::NodeId node, std::uint64_t round,
          std::uint32_t seq, std::uint32_t payload_bytes, Rng& rng) {
  core::Arrival a;
  a.round = round;
  a.node = node;
  a.packet.id = radio::make_packet_id(node, seq);
  a.packet.payload.resize(payload_bytes);
  for (auto& b : a.packet.payload) b = static_cast<std::uint8_t>(rng() & 0xff);
  out.push_back(std::move(a));
}

}  // namespace

std::vector<core::Arrival> make_arrival_schedule(std::uint32_t n,
                                                 const ArrivalConfig& cfg,
                                                 std::uint64_t horizon) {
  std::vector<core::Arrival> out;
  if (cfg.rate <= 0 || horizon == 0) return out;

  Rng master(cfg.seed);
  for (radio::NodeId v = 0; v < n; ++v) {
    // One child stream per node, split in node order: a node's schedule is
    // independent of every other node's draw count.
    Rng child = master.split();
    std::uint32_t seq = 0;
    if (cfg.kind == ArrivalKind::kPeriodic) {
      const auto period = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(1.0 / cfg.rate)));
      for (std::uint64_t t = child.next_below(period); t < horizon; t += period) {
        emit(out, v, t, seq++, cfg.payload_bytes, child);
      }
    } else {
      // Exponential inter-arrival times accumulated in continuous time;
      // the arrival lands in the round containing the accumulated point,
      // so bursts (several arrivals in one round) occur naturally.
      double t = 0;
      while (true) {
        const double u = child.next_double();  // in [0, 1)
        t += -std::log(1.0 - u) / cfg.rate;
        if (!(t < static_cast<double>(horizon))) break;
        emit(out, v, static_cast<std::uint64_t>(t), seq++, cfg.payload_bytes,
             child);
      }
    }
  }

  // Node-order generation + stable sort => ties break in ascending node
  // order, giving one canonical schedule.
  std::stable_sort(out.begin(), out.end(),
                   [](const core::Arrival& a, const core::Arrival& b) {
                     return a.round < b.round;
                   });
  return out;
}

}  // namespace radiocast::stream
