#include "stream/queue.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace radiocast::stream {

const char* buffer_policy_name(BufferPolicy policy) {
  switch (policy) {
    case BufferPolicy::kDropNew: return "drop_new";
    case BufferPolicy::kDropOld: return "drop_old";
    case BufferPolicy::kBackpressure: return "backpressure";
  }
  return "?";
}

bool buffer_policy_from_string(const std::string& s, BufferPolicy& out) {
  if (s == "drop_new") {
    out = BufferPolicy::kDropNew;
    return true;
  }
  if (s == "drop_old") {
    out = BufferPolicy::kDropOld;
    return true;
  }
  if (s == "backpressure") {
    out = BufferPolicy::kBackpressure;
    return true;
  }
  return false;
}

void QueueStats::merge(const QueueStats& other) {
  offered += other.offered;
  admitted += other.admitted;
  dropped += other.dropped;
  backpressured += other.backpressured;
  peak_depth = std::max(peak_depth, other.peak_depth);
}

void SourceQueue::note_depth() {
  stats_.peak_depth = std::max(stats_.peak_depth, depth());
}

void SourceQueue::admit(radio::Packet packet) {
  buffer_.push_back(std::move(packet));
  ++stats_.admitted;
}

bool SourceQueue::offer(radio::Packet packet) {
  ++stats_.offered;
  if (buffer_.size() < capacity_) {
    admit(std::move(packet));
    note_depth();
    return true;
  }
  switch (policy_) {
    case BufferPolicy::kDropNew:
      ++stats_.dropped;
      break;
    case BufferPolicy::kDropOld:
      RC_ASSERT(!buffer_.empty());
      buffer_.erase(buffer_.begin());
      ++stats_.dropped;
      admit(std::move(packet));
      break;
    case BufferPolicy::kBackpressure:
      holdback_.push_back(std::move(packet));
      ++stats_.backpressured;
      note_depth();
      break;
  }
  note_depth();
  return false;
}

std::vector<radio::Packet> SourceQueue::drain() {
  std::vector<radio::Packet> out = std::move(buffer_);
  buffer_.clear();
  // Backpressured packets re-offer oldest-first into the freed buffer.
  std::size_t moved = 0;
  while (moved < holdback_.size() && buffer_.size() < capacity_) {
    admit(std::move(holdback_[moved]));
    ++moved;
  }
  holdback_.erase(holdback_.begin(),
                  holdback_.begin() + static_cast<std::ptrdiff_t>(moved));
  return out;
}

SaturationDetector::SaturationDetector(const SaturationConfig& cfg) : cfg_(cfg) {
  RC_ASSERT(cfg_.window >= 1);
  ring_.assign(cfg_.window + 1, 0);
}

void SaturationDetector::sample(std::uint64_t total_depth) {
  ring_[count_ % ring_.size()] = total_depth;
  ++count_;
  if (saturated_ || count_ <= cfg_.window) return;
  // The slot count_ % size now holds the sample from `window` steps ago.
  const std::uint64_t oldest = ring_[count_ % ring_.size()];
  if (total_depth >= oldest + cfg_.min_growth) {
    saturated_ = true;
    onset_ = count_ - 1;
  }
}

}  // namespace radiocast::stream
