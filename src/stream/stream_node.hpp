// DynamicBroadcastNode with a bounded, policy-governed source buffer.
//
// The closed dynamic mode injects straight into an unbounded pending list;
// the open system routes every arrival through a SourceQueue instead, and
// reports first-hold events round-exactly so the driver can compute exact
// per-packet delivery latencies (the closed harness polls every 64 rounds).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dynamic.hpp"
#include "stream/queue.hpp"

namespace radiocast::stream {

class StreamNode final : public core::DynamicBroadcastNode {
 public:
  StreamNode(const core::DynamicConfig& cfg, radio::NodeId self, Rng rng,
             std::uint32_t buffer_capacity, BufferPolicy policy)
      : core::DynamicBroadcastNode(cfg, self, rng),
        queue_(buffer_capacity, policy) {}

  /// Application-side arrival: the packet goes through the bounded buffer,
  /// NOT directly into the pipeline. Returns true if buffered immediately.
  bool offer(radio::Packet packet) { return queue_.offer(std::move(packet)); }

  /// Packet ids first held by this node since the previous call, in
  /// hold order. The driver drains this every round.
  std::vector<radio::PacketId> drain_newly_held() {
    std::vector<radio::PacketId> out = std::move(newly_held_);
    newly_held_.clear();
    return out;
  }

  const SourceQueue& queue() const { return queue_; }

 protected:
  /// Epoch re-entry pulls from the bounded buffer (which refills from any
  /// backpressure holdback) instead of the base class's unbounded list.
  std::vector<radio::Packet> take_epoch_packets() override {
    std::vector<radio::Packet> out = queue_.drain();
    for (const radio::Packet& p : out) deliver_own(p);
    return out;
  }

  void on_packet_delivered(const radio::Packet& packet) override {
    newly_held_.push_back(packet.id);
  }

 private:
  // Admitted packets count as held by their source the moment they enter
  // the pipeline (mirrors inject()'s deliver-on-injection in the closed
  // mode; a buffered-then-dropped packet is never "held").
  void deliver_own(const radio::Packet& p) { deliver(p); }

  SourceQueue queue_;
  std::vector<radio::PacketId> newly_held_;
};

}  // namespace radiocast::stream
