#include "stream/driver.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "audit/channel_auditor.hpp"
#include "common/assert.hpp"
#include "core/schedule.hpp"
#include "radio/protocol_slab.hpp"
#include "stream/stream_node.hpp"

namespace radiocast::stream {

std::uint64_t epoch_estimate_rounds(const core::DynamicConfig& dyn) {
  return core::collection_phase_rounds(dyn.rc.initial_estimate, dyn.rc) +
         dyn.dissemination_window();
}

double per_node_rate(const core::DynamicConfig& dyn, std::uint32_t n,
                     double load) {
  RC_ASSERT(n > 0);
  const double epoch = static_cast<double>(epoch_estimate_rounds(dyn));
  const double capacity = static_cast<double>(dyn.resolved_capacity());
  return load * capacity / (epoch * static_cast<double>(n));
}

StreamResult run_stream(const graph::Graph& g, const StreamConfig& cfg) {
  RC_ASSERT(g.finalized());
  RC_ASSERT(cfg.horizon > 0);

  StreamResult result;
  result.n = g.num_nodes();
  result.horizon = cfg.horizon;
  result.epoch_estimate = epoch_estimate_rounds(cfg.dyn);
  result.ledger = obs::QueueLedger(cfg.ledger_max_rows);

  std::vector<core::Arrival> schedule =
      make_arrival_schedule(g.num_nodes(), cfg.arrivals, cfg.horizon);
  result.arrivals_scheduled = schedule.size();

  radio::ProtocolSlab<StreamNode> slab(g.num_nodes());
  radio::Network net(g);
  if (cfg.shards > 1) net.set_shards(cfg.shards);

  std::unique_ptr<audit::ChannelAuditor> auditor;
  if (cfg.audit) {
    audit::ChannelAuditor::Options opts;
    opts.expect_all_awake = true;  // the dynamic setting: everyone is on
    auditor = std::make_unique<audit::ChannelAuditor>(g, opts);
    net.set_auditor(auditor.get());
  }

  Rng master(cfg.seed);
  std::vector<StreamNode*> nodes(g.num_nodes());
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    StreamNode& node = slab.emplace(cfg.dyn, v, master.split(),
                                    cfg.buffer_capacity, cfg.policy);
    nodes[v] = &node;
    net.set_protocol(v, &node);
    net.wake_at_start(v);
  }

  struct Tracking {
    std::uint64_t arrival_round = 0;
    std::uint32_t holders = 0;
  };
  std::unordered_map<radio::PacketId, Tracking> tracking;
  tracking.reserve(schedule.size());

  SaturationDetector detector(cfg.saturation);
  std::uint64_t in_flight = 0;  ///< packets some node holds, not yet all

  // `boundary` samples (taken right after an epoch drained the source
  // buffers) feed the saturation detector: they are phase-aligned, so
  // window-over-window growth means the system genuinely cannot keep up.
  // The final-round sample is off-phase (mid-epoch, buffers partly full)
  // and is recorded in the ledger only.
  const auto sample_backlog = [&](std::uint64_t round, bool boundary) {
    obs::QueueLedger::Row row;
    row.round = round;
    QueueStats agg;
    for (const StreamNode* node : nodes) {
      row.buffered += node->queue().buffered();
      row.held_back += node->queue().held_back();
      agg.merge(node->queue().stats());
    }
    row.in_flight = in_flight;
    row.offered = agg.offered;
    row.admitted = agg.admitted;
    row.dropped = agg.dropped;
    row.backpressured = agg.backpressured;
    row.delivered = result.delivered_everywhere;
    result.ledger.sample(row);
    result.in_system_end = row.buffered + row.held_back + row.in_flight;
    if (!boundary) return;
    const bool was_saturated = detector.saturated();
    detector.sample(result.in_system_end);
    if (!was_saturated && detector.saturated()) {
      result.saturated = true;
      result.saturation_onset_round = round;
    }
  };

  std::size_t next_arrival = 0;
  std::uint32_t last_epoch = 0;
  for (std::uint64_t round = 0; round < cfg.horizon; ++round) {
    while (next_arrival < schedule.size() &&
           schedule[next_arrival].round <= round) {
      core::Arrival& a = schedule[next_arrival++];
      tracking.emplace(a.packet.id, Tracking{round, 0});
      nodes[a.node]->offer(std::move(a.packet));
    }
    net.step();

    // Round-exact delivery accounting: every first-hold event lands here
    // in the round it happened.
    std::uint32_t max_epoch = last_epoch;
    for (StreamNode* node : nodes) {
      for (const radio::PacketId id : node->drain_newly_held()) {
        const auto it = tracking.find(id);
        RC_ASSERT_MSG(it != tracking.end(), "held packet was never offered");
        if (it->second.holders == 0) ++in_flight;
        if (++it->second.holders == g.num_nodes()) {
          --in_flight;
          ++result.delivered_everywhere;
          result.latency.add(round - it->second.arrival_round);
        }
      }
      max_epoch = std::max(max_epoch, node->epochs_completed());
    }

    // One backlog sample per epoch boundary, plus the final round.
    if (max_epoch > last_epoch || round + 1 == cfg.horizon) {
      const bool boundary = max_epoch > last_epoch;
      last_epoch = max_epoch;
      sample_backlog(round, boundary);
    }
  }

  for (const StreamNode* node : nodes) result.queue.merge(node->queue().stats());
  result.epochs_completed = last_epoch;
  result.throughput =
      static_cast<double>(result.delivered_everywhere) / cfg.horizon;
  result.normalized_throughput =
      result.throughput * cfg.dyn.rc.know.log_n();
  result.counters = net.trace().counters();
  if (auditor != nullptr) {
    result.audited = true;
    result.audit_violations = auditor->report().total();
    result.audit_summary = auditor->summary();
  }
  return result;
}

}  // namespace radiocast::stream
