// Deterministic arrival processes for the open-system streaming workload.
//
// A stream run replaces the closed k-packet placement with packets that
// keep arriving at every node for as long as the run lasts. The schedule
// is materialized up front from a *dedicated* RNG stream: an Rng seeded
// with ArrivalConfig::seed, split once per node in node order, so
//
//   * the same (n, config, horizon) triple always produces the same
//     byte-identical schedule, and
//   * arrival generation consumes zero draws from the placement / run /
//     fault streams of the closed scenarios — existing runs stay
//     draw-for-draw unchanged no matter how the stream layer evolves.
//
// Two process shapes cover the interesting regimes:
//   * kPoisson — i.i.d. exponential inter-arrival times per node (the
//     memoryless "millions of independent users" model); several packets
//     may land on one node in one round.
//   * kPeriodic — fixed period 1/rate per node with a random per-node
//     phase, the smooth constant-bit-rate counterpoint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dynamic.hpp"

namespace radiocast::stream {

enum class ArrivalKind { kPoisson, kPeriodic };

/// "poisson" / "periodic" (the spelling the scenario schema uses).
const char* arrival_kind_name(ArrivalKind kind);
/// Inverse of arrival_kind_name; returns false on an unknown spelling.
bool arrival_kind_from_string(const std::string& s, ArrivalKind& out);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Expected packets per node per round. 0 disables arrivals entirely.
  double rate = 0.0;
  std::uint32_t payload_bytes = 16;
  /// Root of the dedicated arrival stream (see the file comment).
  std::uint64_t seed = 0;
};

/// The full arrival schedule over [0, horizon) rounds for an n-node
/// network, sorted by round (ties in ascending node order). Packet ids are
/// radio::make_packet_id(node, seq) with per-node sequence numbers;
/// payloads are filled from the node's child stream.
std::vector<core::Arrival> make_arrival_schedule(std::uint32_t n,
                                                 const ArrivalConfig& cfg,
                                                 std::uint64_t horizon);

}  // namespace radiocast::stream
