// Bounded source buffers and saturation detection for the stream layer.
//
// In the open system a node cannot hand the pipeline more packets than the
// pipeline can carry: arrivals that outrun the epoch capacity have to wait
// somewhere, and a real radio has finite memory. SourceQueue models that
// finite memory with three classic policies, and SaturationDetector turns
// the resulting queue-depth trace into a binary verdict ("offered load
// exceeds capacity") that the driver reports alongside throughput.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "radio/node.hpp"

namespace radiocast::stream {

/// What a full buffer does with the next arrival.
enum class BufferPolicy {
  kDropNew,       ///< reject the arriving packet (tail drop)
  kDropOld,       ///< evict the oldest buffered packet to make room
  kBackpressure,  ///< defer the arrival; it re-offers when space frees up
};

/// "drop_new" / "drop_old" / "backpressure" (the scenario-schema spelling).
const char* buffer_policy_name(BufferPolicy policy);
/// Inverse of buffer_policy_name; returns false on an unknown spelling.
bool buffer_policy_from_string(const std::string& s, BufferPolicy& out);

/// Exact per-queue counters, summable across nodes and trials.
struct QueueStats {
  std::uint64_t offered = 0;        ///< arrivals presented to the queue
  std::uint64_t admitted = 0;       ///< accepted into the buffer
  std::uint64_t dropped = 0;        ///< discarded (either policy's victim)
  std::uint64_t backpressured = 0;  ///< deferred at least once
  std::uint64_t peak_depth = 0;     ///< max buffered+held_back ever seen

  void merge(const QueueStats& other);
};

/// One node's bounded arrival buffer. `capacity` bounds the in-buffer
/// packets; under kBackpressure the deferred packets wait in a separate
/// holdback list (the "application" that has not transmitted yet) and
/// re-offer oldest-first whenever drain() frees space.
class SourceQueue {
 public:
  SourceQueue(std::uint32_t capacity, BufferPolicy policy)
      : capacity_(capacity), policy_(policy) {}

  /// Present one arrival. Returns true when the packet entered the buffer
  /// immediately (false: dropped, or parked in the holdback list).
  bool offer(radio::Packet packet);

  /// Epoch boundary: hand every buffered packet to the pipeline, then
  /// refill from the holdback list (oldest first) up to capacity.
  std::vector<radio::Packet> drain();

  std::uint64_t depth() const { return buffer_.size() + holdback_.size(); }
  std::uint64_t buffered() const { return buffer_.size(); }
  std::uint64_t held_back() const { return holdback_.size(); }
  const QueueStats& stats() const { return stats_; }

 private:
  void admit(radio::Packet packet);
  void note_depth();

  std::uint32_t capacity_;
  BufferPolicy policy_;
  std::vector<radio::Packet> buffer_;
  std::vector<radio::Packet> holdback_;
  QueueStats stats_;
};

struct SaturationConfig {
  /// Depth samples per sliding-window comparison (the detector compares
  /// the newest sample against the one `window` samples earlier).
  std::uint32_t window = 8;
  /// Minimum total-depth growth across the window that counts as
  /// saturation. Guards against latching on small stable backlogs.
  std::uint64_t min_growth = 1;
};

/// Sliding-window queue-growth test over the aggregate queue depth. The
/// driver feeds one sample per epoch; the detector latches `saturated()`
/// the first time the depth grew by at least `min_growth` over a full
/// window — i.e. the backlog is trending up rather than oscillating around
/// a fixed working level.
class SaturationDetector {
 public:
  explicit SaturationDetector(const SaturationConfig& cfg);

  void sample(std::uint64_t total_depth);

  bool saturated() const { return saturated_; }
  /// Index (0-based, in sample order) of the sample that latched
  /// saturation; meaningful only when saturated().
  std::uint64_t onset_sample() const { return onset_; }
  std::uint64_t samples() const { return count_; }

 private:
  SaturationConfig cfg_;
  std::vector<std::uint64_t> ring_;  ///< last window+1 samples
  std::uint64_t count_ = 0;
  bool saturated_ = false;
  std::uint64_t onset_ = 0;
};

}  // namespace radiocast::stream
