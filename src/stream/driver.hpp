// StreamDriver — the open-system harness: continuous arrivals through
// bounded source buffers over the pipelined collect→disseminate epochs of
// core::DynamicBroadcastNode, run to a round budget.
//
// The closed harness (core::run_dynamic_broadcast) injects a finite
// arrival list and polls delivery every 64 rounds; this driver instead
//
//   * materializes an unbounded-horizon arrival schedule from a dedicated
//     RNG stream (stream/arrivals.hpp),
//   * routes every arrival through a per-node SourceQueue with a
//     configurable full-buffer policy (stream/queue.hpp),
//   * drains first-hold events from every node every round, so per-packet
//     delivery latencies are round-exact and fold into an
//     obs::LogHistogram (thread-invariant percentiles),
//   * samples the number in system — buffered + backpressure-held +
//     in-flight packets — at every epoch boundary into an obs::QueueLedger
//     and a SaturationDetector (a growing number in system is the
//     queueing-theoretic signature of offered load beyond capacity; source
//     depth alone would miss backlog parked in the root's queue), and
//   * reports achieved throughput both raw (delivered packets per round)
//     and normalized by log2(n̂) — the Θ(1/log n) achievable-throughput
//     bound of Ghaffari–Haeupler–Khabbazian (arXiv:1302.0264) makes the
//     normalized figure the natural "fraction of optimal" scale.
//
// Attach-an-auditor support: with StreamConfig::audit the run carries an
// audit::ChannelAuditor that independently re-derives every reception
// outcome from the topology (read-only — audited runs are bit-identical
// to unaudited ones).
#pragma once

#include <cstdint>
#include <string>

#include "audit/violation.hpp"
#include "core/dynamic.hpp"
#include "graph/graph.hpp"
#include "obs/histogram.hpp"
#include "obs/queue_ledger.hpp"
#include "stream/arrivals.hpp"
#include "stream/queue.hpp"

namespace radiocast::stream {

struct StreamConfig {
  core::DynamicConfig dyn;
  /// Arrival process; `arrivals.rate` is per node per round (use
  /// per_node_rate to derive it from a capacity-relative offered load).
  ArrivalConfig arrivals;
  /// Bounded source-buffer capacity per node (packets).
  std::uint32_t buffer_capacity = 64;
  BufferPolicy policy = BufferPolicy::kDropNew;
  SaturationConfig saturation;
  /// Round budget (the run always executes exactly this many rounds).
  std::uint64_t horizon = 0;
  /// Master seed of the per-node protocol RNGs (split in node order,
  /// exactly as in core::run_dynamic_broadcast).
  std::uint64_t seed = 0;
  /// Intra-run graph shards (radio::Network::set_shards); execution knob
  /// only, results are shard-count invariant. 0/1 = unsharded.
  std::uint32_t shards = 0;
  /// Attach an audit::ChannelAuditor for the whole run.
  bool audit = false;
  /// Row cap of the backlog ledger (totals stay exact past it).
  std::size_t ledger_max_rows = 4096;
};

struct StreamResult {
  std::uint32_t n = 0;
  std::uint64_t horizon = 0;
  /// Nominal rounds of one epoch (first-phase collection + dissemination
  /// window) — the load-normalization denominator.
  std::uint64_t epoch_estimate = 0;
  std::uint64_t arrivals_scheduled = 0;  ///< schedule size over the horizon
  /// Source-buffer counters aggregated over all nodes.
  QueueStats queue;
  /// Packets held by every node by the end of the run.
  std::uint64_t delivered_everywhere = 0;
  double throughput = 0;             ///< delivered_everywhere / horizon
  /// throughput × log2(n̂): fraction of the Θ(1/log n) capacity bound.
  double normalized_throughput = 0;
  /// Arrival → held-everywhere latency (rounds), queueing delay included.
  obs::LogHistogram latency;
  /// Number in system (buffered + held back + in flight) at the horizon —
  /// the backlog a longer run would have had to drain.
  std::uint64_t in_system_end = 0;
  bool saturated = false;
  std::uint64_t saturation_onset_round = 0;  ///< valid iff saturated
  std::uint32_t epochs_completed = 0;        ///< max over nodes
  /// Backlog samples, one per epoch boundary plus the final round.
  obs::QueueLedger ledger{0};
  radio::TraceCounters counters;
  bool audited = false;
  std::uint64_t audit_violations = 0;
  std::string audit_summary;  ///< "clean" or first violation (audited only)
};

/// Nominal epoch length: first-phase collection rounds + dissemination
/// window. The steady-state epoch is usually shorter (collection is
/// alarm-synchronized), so capacity normalized by this is conservative.
std::uint64_t epoch_estimate_rounds(const core::DynamicConfig& dyn);

/// Per-node per-round arrival rate for a capacity-relative offered load:
/// `load` = 1.0 means the pipeline's batch capacity arrives network-wide
/// per nominal epoch.
double per_node_rate(const core::DynamicConfig& dyn, std::uint32_t n,
                     double load);

/// Runs the open system for exactly cfg.horizon rounds. Deterministic:
/// the result is a pure function of (g, cfg), bit-identical at any shard
/// count and independent of wall clock or host.
StreamResult run_stream(const graph::Graph& g, const StreamConfig& cfg);

}  // namespace radiocast::stream
