#include "baselines/uncoded_pipeline.hpp"

#include "baselines/gossip_flood.hpp"
#include "baselines/sequential_bgi.hpp"
#include "common/assert.hpp"

namespace radiocast::baselines {

core::KBroadcastConfig coded_config(const radio::Knowledge& know) {
  core::KBroadcastConfig cfg;
  cfg.know = know;
  cfg.coded = true;
  return cfg;
}

core::KBroadcastConfig uncoded_pipeline_config(const radio::Knowledge& know) {
  core::KBroadcastConfig cfg;
  cfg.know = know;
  cfg.coded = false;
  cfg.group_size = 1;
  return cfg;
}

const std::vector<Algo>& all_algos() {
  static const std::vector<Algo> algos = {Algo::kCoded, Algo::kUncodedPipeline,
                                          Algo::kSequentialBgi, Algo::kGossipFlood};
  return algos;
}

std::string algo_name(Algo algo) {
  switch (algo) {
    case Algo::kCoded:
      return "coded (this paper)";
    case Algo::kUncodedPipeline:
      return "uncoded pipeline (BII-style)";
    case Algo::kSequentialBgi:
      return "sequential BGI";
    case Algo::kGossipFlood:
      return "gossip flood (naive)";
  }
  RC_ASSERT(false);
}

core::RunResult run_algo(Algo algo, const graph::Graph& g,
                         const radio::Knowledge& know,
                         const core::Placement& placement, std::uint64_t seed,
                         std::uint64_t max_rounds) {
  switch (algo) {
    case Algo::kCoded:
      return core::run_kbroadcast(g, coded_config(know), placement, seed, max_rounds);
    case Algo::kUncodedPipeline:
      return core::run_kbroadcast(g, uncoded_pipeline_config(know), placement, seed,
                                  max_rounds);
    case Algo::kSequentialBgi:
      return run_sequential_bgi(g, know, placement, seed, 0, max_rounds);
    case Algo::kGossipFlood:
      return run_gossip_flood(g, know, placement, seed, max_rounds);
  }
  RC_ASSERT(false);
}

}  // namespace radiocast::baselines
