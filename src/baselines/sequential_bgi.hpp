// Baseline 1 — sequential BGI broadcasts.
//
// The naive multiple-message strategy: broadcast the k packets one after
// another, each with its own full BGI flood window of
// Θ((D̂ + log n̂)·logΔ̂) rounds. Completion is O(k·(D+log n)·logΔ) — the
// obvious point of comparison the paper's introduction sets up: good for
// tiny k, hopeless amortized cost for large k.
//
// The global packet order (window i broadcasts packet i) is derived from
// packet ids, which every source can compute locally for its own packets;
// measurement-only knowledge of k is given to the harness, not exploited
// by the protocol's radio behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "protocols/bgi_broadcast.hpp"
#include "radio/knowledge.hpp"
#include "radio/node.hpp"

namespace radiocast::baselines {

class SequentialBgiNode final : public radio::NodeProtocol {
 public:
  struct Config {
    radio::Knowledge know;
    /// Decay epochs per packet window. 0 => BGI default.
    std::uint32_t epochs_per_packet = 0;
    /// Global broadcast order: packet ids sorted ascending.
    std::vector<radio::PacketId> order;
  };

  SequentialBgiNode(const Config& cfg, radio::NodeId self,
                    std::vector<radio::Packet> own_packets, Rng rng);

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override;
  void on_receive(radio::Round round, const radio::Message& msg) override;
  bool done() const override;

  std::vector<radio::Packet> delivered_packets() const;

 private:
  /// Moves the flood state to the window containing `round`.
  void sync_window(radio::Round round);

  Config cfg_;
  radio::NodeId self_;
  Rng rng_;
  std::uint64_t window_rounds_ = 0;
  std::uint64_t current_window_ = static_cast<std::uint64_t>(-1);
  protocols::BgiFlood flood_;
  std::unordered_map<radio::PacketId, radio::Packet> have_;
};

/// Runs the baseline end to end with the same measurement conventions as
/// core::run_kbroadcast (total_rounds = first all-complete round).
core::RunResult run_sequential_bgi(const graph::Graph& g, const radio::Knowledge& know,
                                   const core::Placement& placement, std::uint64_t seed,
                                   std::uint32_t epochs_per_packet = 0,
                                   std::uint64_t max_rounds = 0);

}  // namespace radiocast::baselines
