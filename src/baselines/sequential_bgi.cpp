#include "baselines/sequential_bgi.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"
#include "radio/network.hpp"
#include "radio/protocol_slab.hpp"

namespace radiocast::baselines {

SequentialBgiNode::SequentialBgiNode(const Config& cfg, radio::NodeId self,
                                     std::vector<radio::Packet> own_packets, Rng rng)
    : cfg_(cfg), self_(self), rng_(rng), flood_(cfg.know.log_delta(), &rng_) {
  const std::uint32_t epochs = cfg_.epochs_per_packet != 0
                                   ? cfg_.epochs_per_packet
                                   : protocols::bgi_default_epochs(cfg_.know);
  window_rounds_ = static_cast<std::uint64_t>(epochs) * cfg_.know.log_delta();
  for (radio::Packet& p : own_packets) {
    have_.emplace(p.id, std::move(p));
  }
}

void SequentialBgiNode::sync_window(radio::Round round) {
  const std::uint64_t window = round / window_rounds_;
  if (window == current_window_) return;
  current_window_ = window;
  std::optional<radio::MessageBody> initial;
  if (window < cfg_.order.size()) {
    const radio::PacketId pid = cfg_.order[window];
    // Any node already holding the packet (its source, or anyone who
    // learned it in an earlier window) floods from round one.
    const auto holder = have_.find(pid);
    if (holder != have_.end()) {
      radio::PlainPacketMsg msg;
      if (radio::PayloadArena* arena = payload_arena(); arena != nullptr) {
        msg.packet.id = holder->second.id;
        msg.packet.payload = arena->acquire_copy(holder->second.payload);
      } else {
        msg.packet = holder->second;
      }
      msg.group_id = static_cast<std::uint32_t>(window);
      msg.group_count = static_cast<std::uint32_t>(cfg_.order.size());
      msg.group_size = 1;
      initial = msg;
    }
  }
  flood_.reset(std::move(initial));
}

std::optional<radio::MessageBody> SequentialBgiNode::on_transmit(radio::Round round) {
  sync_window(round);
  if (current_window_ >= cfg_.order.size()) return std::nullopt;
  flood_.set_payload_arena(payload_arena());
  return flood_.on_transmit(round % window_rounds_);
}

void SequentialBgiNode::on_receive(radio::Round round, const radio::Message& msg) {
  sync_window(round);
  const auto* plain = std::get_if<radio::PlainPacketMsg>(&msg.body);
  if (plain == nullptr) return;
  have_.emplace(plain->packet.id, plain->packet);
  // Join the flood of the packet currently on the air.
  if (current_window_ < cfg_.order.size() &&
      plain->packet.id == cfg_.order[current_window_]) {
    flood_.on_receive(msg.body);
  }
}

bool SequentialBgiNode::done() const { return have_.size() >= cfg_.order.size(); }

std::vector<radio::Packet> SequentialBgiNode::delivered_packets() const {
  std::vector<radio::Packet> out;
  out.reserve(have_.size());
  for (const auto& [id, packet] : have_) out.push_back(packet);
  std::sort(out.begin(), out.end(),
            [](const radio::Packet& a, const radio::Packet& b) { return a.id < b.id; });
  return out;
}

core::RunResult run_sequential_bgi(const graph::Graph& g, const radio::Knowledge& know,
                                   const core::Placement& placement, std::uint64_t seed,
                                   std::uint32_t epochs_per_packet,
                                   std::uint64_t max_rounds) {
  RC_ASSERT(g.finalized());
  RC_ASSERT(placement.size() == g.num_nodes());
  const std::vector<radio::Packet> truth = core::placement_packets(placement);

  core::RunResult result;
  result.n = g.num_nodes();
  result.k = static_cast<std::uint32_t>(truth.size());
  if (truth.empty()) {
    result.delivered_all = true;
    result.nodes_complete = g.num_nodes();
    return result;
  }

  SequentialBgiNode::Config cfg;
  cfg.know = know;
  cfg.epochs_per_packet = epochs_per_packet;
  cfg.order.reserve(truth.size());
  for (const radio::Packet& p : truth) cfg.order.push_back(p.id);

  const std::uint32_t epochs =
      epochs_per_packet != 0 ? epochs_per_packet : protocols::bgi_default_epochs(know);
  if (max_rounds == 0) {
    max_rounds =
        2 * static_cast<std::uint64_t>(truth.size()) * epochs * know.log_delta() + 1000;
  }

  radio::ProtocolSlab<SequentialBgiNode> slab(g.num_nodes());
  radio::Network net(g);
  Rng master(seed);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    Rng child = master.split();
    net.set_protocol(v, &slab.emplace(cfg, v, placement[v], child));
    if (!placement[v].empty()) net.wake_at_start(v);
  }

  const bool all_done = net.run_until_done(max_rounds);
  result.timed_out = !all_done;
  result.total_rounds = net.current_round();
  result.counters = net.trace().counters();

  result.nodes_complete = 0;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& node = static_cast<const SequentialBgiNode&>(net.protocol(v));
    std::vector<radio::Packet> got = node.delivered_packets();
    if (got.size() == truth.size() && std::equal(got.begin(), got.end(), truth.begin()))
      ++result.nodes_complete;
  }
  result.delivered_all = result.nodes_complete == g.num_nodes();
  result.leader_ok = true;  // not applicable
  result.bfs_ok = true;     // not applicable
  return result;
}

}  // namespace radiocast::baselines
