// Baseline 3 — naive adaptive gossip flooding.
//
// The strategy a practitioner would try first, and the spirit of the
// per-packet local-broadcast approach of Khabbazian et al. [16]
// (O((kΔ·log n + D)·logΔ)): no leader, no tree, no coding — every node
// keeps retransmitting recently-learned packets on the Decay probability
// grid, one uniformly chosen packet per transmission.
//
// By default a learned packet stays active forever (classic gossip has no
// termination; the harness measures the first round at which every node
// holds everything). With k concurrent packets each transmission carries a
// uniformly chosen one, so a node's last missing packet arrives at ~1/k of
// its reception rate — the measured cost grows superlinearly (~k·ln k) in
// k, which is exactly why the paper's structured pipeline is worth its
// setup stages. Setting `age_base_epochs` enables finite activity windows
//   active_rounds = (age_base + age_per_packet · |known|) · ⌈logΔ̂⌉ epochs
// to study premature-termination behaviour (packets can then die before
// reaching everyone).
//
// Not a faithful reproduction of [16] (which uses an abstract MAC layer
// with acknowledged local broadcast); documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "protocols/decay.hpp"
#include "radio/knowledge.hpp"
#include "radio/node.hpp"

namespace radiocast::baselines {

class GossipFloodNode final : public radio::NodeProtocol {
 public:
  struct Config {
    radio::Knowledge know;
    /// Base active window in Decay epochs. 0 (default) => packets never
    /// expire (classic non-terminating gossip).
    std::uint32_t age_base_epochs = 0;
    /// Additional active epochs per concurrently known packet (only with a
    /// finite base window).
    std::uint32_t age_per_packet_epochs = 4;
    /// Total packet count — used only for the measurement-side done()
    /// signal, never for radio behaviour.
    std::uint32_t expected_packets = 0;
  };

  GossipFloodNode(const Config& cfg, radio::NodeId self,
                  std::vector<radio::Packet> own_packets, Rng rng);

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override;
  void on_receive(radio::Round round, const radio::Message& msg) override;
  bool done() const override { return have_.size() >= cfg_.expected_packets; }

  std::vector<radio::Packet> delivered_packets() const;
  std::size_t known_count() const { return have_.size(); }

 private:
  struct ActivePacket {
    radio::Packet packet;
    radio::Round learned = 0;
  };
  void learn(radio::Round round, const radio::Packet& packet);
  std::uint64_t active_window_rounds() const;

  Config cfg_;
  radio::NodeId self_;
  Rng rng_;
  protocols::Decay decay_;
  std::unordered_map<radio::PacketId, radio::Packet> have_;
  std::vector<ActivePacket> active_;
};

core::RunResult run_gossip_flood(const graph::Graph& g, const radio::Knowledge& know,
                                 const core::Placement& placement, std::uint64_t seed,
                                 std::uint64_t max_rounds = 0);

}  // namespace radiocast::baselines
