#include "baselines/gossip_flood.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/assert.hpp"
#include "radio/network.hpp"
#include "radio/protocol_slab.hpp"

namespace radiocast::baselines {

GossipFloodNode::GossipFloodNode(const Config& cfg, radio::NodeId self,
                                 std::vector<radio::Packet> own_packets, Rng rng)
    : cfg_(cfg), self_(self), rng_(rng), decay_(cfg.know.log_delta()) {
  for (radio::Packet& p : own_packets) {
    have_.emplace(p.id, p);
    active_.push_back(ActivePacket{std::move(p), 0});
  }
}

std::uint64_t GossipFloodNode::active_window_rounds() const {
  if (cfg_.age_base_epochs == 0) {
    return std::numeric_limits<std::uint64_t>::max();  // never expire
  }
  const std::uint64_t epochs =
      cfg_.age_base_epochs +
      static_cast<std::uint64_t>(cfg_.age_per_packet_epochs) * have_.size();
  return epochs * cfg_.know.log_delta();
}

void GossipFloodNode::learn(radio::Round round, const radio::Packet& packet) {
  if (have_.emplace(packet.id, packet).second) {
    active_.push_back(ActivePacket{packet, round});
  }
}

std::optional<radio::MessageBody> GossipFloodNode::on_transmit(radio::Round round) {
  if (active_.empty()) return std::nullopt;
  if (!decay_.decide(round, rng_)) return std::nullopt;
  const std::uint64_t window = active_window_rounds();
  // Pick a uniformly random active packet; expired picks are swap-removed
  // and retried a few times (lazy compaction keeps this O(1) amortized).
  for (int attempts = 0; attempts < 8 && !active_.empty(); ++attempts) {
    const auto index = static_cast<std::size_t>(rng_.next_below(active_.size()));
    if (round - active_[index].learned >= window) {
      active_[index] = std::move(active_.back());
      active_.pop_back();
      continue;
    }
    radio::PlainPacketMsg msg;
    if (radio::PayloadArena* arena = payload_arena(); arena != nullptr) {
      msg.packet.id = active_[index].packet.id;
      msg.packet.payload = arena->acquire_copy(active_[index].packet.payload);
    } else {
      msg.packet = active_[index].packet;
    }
    msg.group_count = cfg_.expected_packets;
    msg.group_size = 1;
    return msg;
  }
  return std::nullopt;
}

void GossipFloodNode::on_receive(radio::Round round, const radio::Message& msg) {
  if (const auto* plain = std::get_if<radio::PlainPacketMsg>(&msg.body)) {
    learn(round, plain->packet);
  }
}

std::vector<radio::Packet> GossipFloodNode::delivered_packets() const {
  std::vector<radio::Packet> out;
  out.reserve(have_.size());
  for (const auto& [id, packet] : have_) out.push_back(packet);
  std::sort(out.begin(), out.end(),
            [](const radio::Packet& a, const radio::Packet& b) { return a.id < b.id; });
  return out;
}

core::RunResult run_gossip_flood(const graph::Graph& g, const radio::Knowledge& know,
                                 const core::Placement& placement, std::uint64_t seed,
                                 std::uint64_t max_rounds) {
  RC_ASSERT(g.finalized());
  RC_ASSERT(placement.size() == g.num_nodes());
  const std::vector<radio::Packet> truth = core::placement_packets(placement);

  core::RunResult result;
  result.n = g.num_nodes();
  result.k = static_cast<std::uint32_t>(truth.size());
  if (truth.empty()) {
    result.delivered_all = true;
    result.nodes_complete = g.num_nodes();
    return result;
  }

  GossipFloodNode::Config cfg;
  cfg.know = know;
  cfg.expected_packets = result.k;

  if (max_rounds == 0) {
    // Generous: the adaptive window makes worst-case time ~ k^2-ish in the
    // contention-bound regime.
    max_rounds = 200ull * (know.d_hat + know.log_n()) * know.log_delta() +
                 400ull * result.k * know.log_delta() * know.log_n();
  }

  radio::ProtocolSlab<GossipFloodNode> slab(g.num_nodes());
  radio::Network net(g);
  Rng master(seed);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    Rng child = master.split();
    net.set_protocol(v, &slab.emplace(cfg, v, placement[v], child));
    if (!placement[v].empty()) net.wake_at_start(v);
  }

  const bool all_done = net.run_until_done(max_rounds);
  result.timed_out = !all_done;
  result.total_rounds = net.current_round();
  result.counters = net.trace().counters();

  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& node = static_cast<const GossipFloodNode&>(net.protocol(v));
    std::vector<radio::Packet> got = node.delivered_packets();
    if (got.size() == truth.size() && std::equal(got.begin(), got.end(), truth.begin()))
      ++result.nodes_complete;
  }
  result.delivered_all = result.nodes_complete == g.num_nodes();
  result.leader_ok = true;  // not applicable
  result.bfs_ok = true;     // not applicable
  return result;
}

}  // namespace radiocast::baselines
