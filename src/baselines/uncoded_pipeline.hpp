// Baseline 2 — the BII-style uncoded pipeline, and the algorithm registry
// used by the benches.
//
// The uncoded pipeline shares Stages 1–3 with the paper's protocol and
// replaces Stage 4's coded FORWARD by plain per-packet forwarding with
// group size 1: one packet is injected every `spacing` phases and each
// layer-to-layer hop costs a full Θ(log n̂·logΔ̂) phase (Decay repeated
// until every neighbor received the packet w.h.p.). Completion is
// O(k·log n·logΔ + D·log n·logΔ) — the Bar-Yehuda–Israeli–Itai bound the
// paper improves on. The Θ(log n) amortized gap between this baseline and
// the coded protocol is exactly the paper's headline claim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/runner.hpp"

namespace radiocast::baselines {

/// Config for the paper's protocol (Stage 4 coded, group size ⌈log n̂⌉).
core::KBroadcastConfig coded_config(const radio::Knowledge& know);

/// Config for the BII-style uncoded pipeline (group size 1, plain packets).
core::KBroadcastConfig uncoded_pipeline_config(const radio::Knowledge& know);

/// The algorithms the comparison benches sweep.
enum class Algo {
  kCoded,            ///< the paper: Stages 1-4 with coded dissemination
  kUncodedPipeline,  ///< BII-style: Stages 1-3 + plain per-packet pipeline
  kSequentialBgi,    ///< one full BGI broadcast per packet
  kGossipFlood,      ///< naive adaptive gossip (no leader/tree/coding)
};

const std::vector<Algo>& all_algos();
std::string algo_name(Algo algo);

/// Uniform entry point: runs `algo` on (g, placement) with the given seed.
core::RunResult run_algo(Algo algo, const graph::Graph& g,
                         const radio::Knowledge& know,
                         const core::Placement& placement, std::uint64_t seed,
                         std::uint64_t max_rounds = 0);

}  // namespace radiocast::baselines
