#!/usr/bin/env python3
"""Perf-regression gate: compare a BENCH_*.json report against its baseline.

Usage:
    bench_compare.py --baseline bench/baselines/BENCH_engine_step.json \
                     --candidate perf-smoke-json/BENCH_engine_step.json \
                     [--tolerance 0.15] [--col-tolerance COL=FRAC ...] \
                     [--require-meta smoke]

Rows are matched by their key columns (every column that is neither
throughput- nor time-derived). The comparison has two tiers:

  * Deterministic columns (counters, workload shape) must match EXACTLY.
    A mismatch means the engine's observable behavior changed — that is a
    correctness failure masquerading as a perf report, and no tolerance
    applies.
  * Throughput columns (see THROUGHPUT_COLUMNS) are compared with a
    relative tolerance, and only regressions fail: a candidate may be
    arbitrarily faster than its baseline, but if it is slower by more
    than the tolerance the gate fails. The default comes from --tolerance
    (15%); individual columns can override it with repeatable
    --col-tolerance COL=FRAC flags (e.g. a noisy end-to-end column gets
    0.30 while the rest stay at the default).

Exit codes: 0 ok, 1 regression/mismatch, 2 usage or malformed input.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# Columns derived from wall/CPU time: tolerance applies, higher is better.
THROUGHPUT_COLUMNS = {"rounds_per_sec", "ops_per_sec"}

# Columns that are time-derived but not gated (purely informational):
# mib_per_sec is ops_per_sec restated in bandwidth units, so gating it too
# would double-count the same measurement.
INFORMATIONAL_COLUMNS: set[str] = {"mib_per_sec"}


def load_report(path: pathlib.Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if "rows" not in doc or not isinstance(doc["rows"], list) or not doc["rows"]:
        sys.exit(f"error: {path} has no rows")
    return doc


def row_key(row: dict) -> tuple:
    """Key columns = everything that is not time-derived."""
    skip = THROUGHPUT_COLUMNS | INFORMATIONAL_COLUMNS
    return tuple(sorted((k, v) for k, v in row.items() if k not in skip))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=pathlib.Path)
    parser.add_argument("--candidate", required=True, type=pathlib.Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="max relative throughput regression before failing (default 0.15)",
    )
    parser.add_argument(
        "--col-tolerance",
        action="append",
        default=[],
        metavar="COL=FRAC",
        help="per-column tolerance override, repeatable (e.g. "
        "rounds_per_sec=0.30); columns not listed use --tolerance",
    )
    parser.add_argument(
        "--require-meta",
        action="append",
        default=[],
        metavar="KEY",
        help="meta keys that must match between baseline and candidate "
        "(e.g. 'smoke' to refuse full-vs-smoke comparisons)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    col_tolerance: dict[str, float] = {}
    for spec in args.col_tolerance:
        col, sep, frac = spec.partition("=")
        try:
            value = float(frac)
        except ValueError:
            value = -1.0
        if not sep or not col or not 0.0 <= value < 1.0:
            parser.error(f"--col-tolerance expects COL=FRAC with FRAC in [0, 1): {spec!r}")
        if col not in THROUGHPUT_COLUMNS:
            parser.error(
                f"--col-tolerance column {col!r} is not a throughput column "
                f"(known: {', '.join(sorted(THROUGHPUT_COLUMNS))})"
            )
        col_tolerance[col] = value

    base = load_report(args.baseline)
    cand = load_report(args.candidate)
    failures: list[str] = []

    if base.get("bench") != cand.get("bench"):
        failures.append(
            f"bench id mismatch: baseline={base.get('bench')!r} "
            f"candidate={cand.get('bench')!r}"
        )

    for key in args.require_meta:
        b = base.get("meta", {}).get(key)
        c = cand.get("meta", {}).get(key)
        if b != c:
            failures.append(f"meta[{key!r}] mismatch: baseline={b!r} candidate={c!r}")

    # Tier 1: deterministic columns — the row keys themselves. Exact match,
    # both directions (a vanished or novel row is a failure too).
    base_rows = {row_key(r): r for r in base["rows"]}
    cand_rows = {row_key(r): r for r in cand["rows"]}
    if len(base_rows) != len(base["rows"]) or len(cand_rows) != len(cand["rows"]):
        failures.append("duplicate row keys — report shape changed")
    for key in base_rows.keys() - cand_rows.keys():
        failures.append(f"deterministic row vanished or changed: {dict(key)}")
    for key in cand_rows.keys() - base_rows.keys():
        failures.append(f"unexpected new row (deterministic drift?): {dict(key)}")

    # Tier 2: throughput columns on the matched rows.
    checked = 0
    for key in sorted(base_rows.keys() & cand_rows.keys()):
        brow, crow = base_rows[key], cand_rows[key]
        label = ", ".join(
            f"{k}={v}" for k, v in key if k in ("workload", "engine", "n", "rounds")
        ) or str(dict(key))
        for col in sorted(THROUGHPUT_COLUMNS & brow.keys() & crow.keys()):
            b, c = float(brow[col]), float(crow[col])
            if b <= 0:
                failures.append(f"[{label}] baseline {col} is non-positive: {b}")
                continue
            checked += 1
            tolerance = col_tolerance.get(col, args.tolerance)
            ratio = c / b
            verdict = "ok"
            if ratio < 1.0 - tolerance:
                verdict = "REGRESSION"
                failures.append(
                    f"[{label}] {col} regressed: {b:.0f} -> {c:.0f} "
                    f"({(1.0 - ratio) * 100.0:.1f}% slower, tolerance "
                    f"{tolerance * 100.0:.0f}%)"
                )
            print(f"{label}: {col} {b:.0f} -> {c:.0f} (x{ratio:.3f}) {verdict}")

    if checked == 0:
        failures.append("no throughput columns compared — wrong report?")

    if failures:
        print(f"\nFAIL: {len(failures)} problem(s)", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {checked} throughput column(s) within tolerance, "
          f"{len(base_rows)} row(s) deterministic-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
