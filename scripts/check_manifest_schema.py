#!/usr/bin/env python3
"""Manifest-shape gate: diff a radiocast manifest against the pinned schema.

`radiocast run` promises a stable manifest layout (docs/experiments.md,
"radiocast-manifest-v1"). Downstream tooling — reproduction scripts, the
CI smoke gate, anyone grepping `manifest_digest` — depends on that shape,
and the digests themselves cannot catch a *schema* drift (a renamed key
changes the digest of every run equally). This script pins the shape
independently of the values:

  * the manifest is reduced to a type skeleton — objects keep their keys
    (each mapped to the shape of its value), arrays collapse to the
    unified shape of their elements, scalars collapse to a type name
    ("string" | "number" | "bool" | "null");
  * the skeleton is diffed, key by key, against the checked-in fixture
    (tests/exp/data/manifest_schema.json).

Regenerate the fixture after an *intentional* format change with:
    radiocast run scenarios/ci_smoke.json --out out/
    check_manifest_schema.py --dump out/ci_smoke.manifest.json \
        > tests/exp/data/manifest_schema.json

Usage:
    check_manifest_schema.py --schema tests/exp/data/manifest_schema.json \
                             out/ci_smoke.manifest.json
    check_manifest_schema.py --dump <manifest.json>

Exit codes: 0 ok, 1 shape drift, 2 usage or malformed input.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def shape_of(value):
    """Recursive type skeleton of a JSON value. Ints and floats both map
    to "number": the canonical writer prints 0.0 as 0, so the int/float
    distinction is not a stable property of the format."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if value is None:
        return "null"
    if isinstance(value, list):
        if not value:
            return ["empty"]
        elems = [shape_of(v) for v in value]
        first = elems[0]
        return [first if all(e == first for e in elems) else "mixed"]
    if isinstance(value, dict):
        return {k: shape_of(v) for k, v in sorted(value.items())}
    raise TypeError(f"unhandled JSON value: {value!r}")


def diff(expected, actual, path="$"):
    """Flat list of human-readable differences between two skeletons.
    An ["empty"] array on either side matches any array shape — a grid
    with no faults still has `loss` cells, but e.g. report.columns may
    legitimately be empty in one run and populated in another."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        out = []
        for k in sorted(set(expected) | set(actual)):
            here = f"{path}.{k}"
            if k not in actual:
                out.append(f"missing key: {here} (schema says {expected[k]})")
            elif k not in expected:
                out.append(f"unexpected key: {here} ({actual[k]})")
            else:
                out.extend(diff(expected[k], actual[k], here))
        return out
    if isinstance(expected, list) and isinstance(actual, list):
        if expected == ["empty"] or actual == ["empty"]:
            return []
        return diff(expected[0], actual[0], f"{path}[]")
    if expected != actual:
        return [f"type mismatch at {path}: schema {expected}, manifest {actual}"]
    return []


def load(path: str):
    try:
        return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("manifest", help="manifest JSON emitted by `radiocast run`")
    ap.add_argument("--schema", help="pinned shape fixture to diff against")
    ap.add_argument(
        "--dump", action="store_true",
        help="print the manifest's derived shape instead of checking",
    )
    args = ap.parse_args()
    if not args.dump and not args.schema:
        ap.error("either --schema FIXTURE or --dump is required")

    skeleton = shape_of(load(args.manifest))
    if args.dump:
        print(json.dumps(skeleton, indent=2, sort_keys=True))
        return 0

    problems = diff(load(args.schema), skeleton)
    if problems:
        for p in problems:
            print(f"DRIFT: {p}")
        print(f"\nmanifest shape drifted from {args.schema} "
              f"({len(problems)} difference(s)) — if intentional, regenerate "
              "the fixture with --dump (see this script's docstring)")
        return 1
    print(f"ok: {args.manifest} matches the pinned manifest schema")
    return 0


if __name__ == "__main__":
    sys.exit(main())
