#!/usr/bin/env python3
"""Telemetry-shape gate: validate a radiocast-telemetry-v1 JSONL document.

`radiocast run` (telemetry enabled) and `radiocast trace` promise a stable
per-packet telemetry layout (docs/observability.md). The document's FNV
digest in the manifest pins the *values* — this script pins the *shape*,
which a digest cannot: renaming a key changes every digest equally.

Checks, line by line:

  * every line is a JSON object with a known "type";
  * the first line is the header (format "radiocast-telemetry-v1") and the
    last line is the summary — nothing before or after them;
  * each line type carries exactly its required keys with the right JSON
    types (see SCHEMAS below); "cell" lines come in two shapes — the
    closed-run grid cell (algo/placement/k/loss/cd) and the stream-mode
    cell (rate/buffer/policy), picked by which keys are present;
  * cross-line invariants: the summary packet count reconciles against
    the cells (sum of k for closed cells, delivered latency counts for
    stream cells), "latency"/"packet"/"queue"/"queue_round" lines only
    appear after a "cell" line, ledger rows never report more busy slots
    than awake nodes, queue counters never admit more than was offered,
    and flight lines only appear when the header enabled them.

Usage:
    check_telemetry_schema.py out/ci_smoke.telemetry.jsonl

Exit codes: 0 ok, 1 shape violation, 2 usage or malformed input.
"""

from __future__ import annotations

import json
import pathlib
import sys

FORMAT = "radiocast-telemetry-v1"

NUMBER = (int, float)
LATENCY_STATS = {
    "count": NUMBER,
    "mean": NUMBER,
    "p50": NUMBER,
    "p90": NUMBER,
    "p99": NUMBER,
    "min": NUMBER,
    "max": NUMBER,
}
LEDGER_COUNTS = {
    "awake": NUMBER,
    "transmissions": NUMBER,
    "deliveries": NUMBER,
    "collisions": NUMBER,
    "deaf": NUMBER,
    "faults": NUMBER,
    "silent": NUMBER,
}

# type -> {key: allowed python type(s)}; every key is required and no
# other key is allowed, so both drift directions are caught.
SCHEMAS = {
    "header": {
        "type": str,
        "format": str,
        "scenario": str,
        "spec_digest": str,
        "trials": NUMBER,
        "flight_paths": bool,
    },
    "cell": {
        "type": str,
        "algo": str,
        "placement": str,
        "k": NUMBER,
        "loss": NUMBER,
        "cd": bool,
    },
    # Stream-mode (open system) grid cell; distinguished from the closed
    # cell by its "rate" key.
    "cell_stream": {
        "type": str,
        "rate": NUMBER,
        "buffer": NUMBER,
        "policy": str,
    },
    # Whole-cell source-buffer totals (stream mode; exact past any cap).
    "queue": {
        "type": str,
        "offered": NUMBER,
        "admitted": NUMBER,
        "dropped": NUMBER,
        "backpressured": NUMBER,
        "peak_depth": NUMBER,
        "saturated_trials": NUMBER,
    },
    # Trial-0 backlog timeline, one row per epoch boundary (stream mode).
    # Counter columns are cumulative run totals as of the sampled round.
    "queue_round": {
        "type": str,
        "round": NUMBER,
        "buffered": NUMBER,
        "held_back": NUMBER,
        "in_flight": NUMBER,
        "offered": NUMBER,
        "admitted": NUMBER,
        "dropped": NUMBER,
        "backpressured": NUMBER,
        "delivered": NUMBER,
    },
    "latency": {"type": str, "buckets": list, **LATENCY_STATS},
    "packet": {
        "type": str,
        "index": NUMBER,
        "undelivered": NUMBER,
        "max_depth": NUMBER,
        **LATENCY_STATS,
    },
    "ledger": {"type": str, "stage": str, "epoch": str, "rounds": NUMBER,
               **LEDGER_COUNTS},
    "ledger_round": {"type": str, "round": NUMBER, "stage": str, "epoch": str,
                     **LEDGER_COUNTS},
    "flight": {
        "type": str,
        "packet": NUMBER,
        "node": NUMBER,
        "from": NUMBER,
        "latency": NUMBER,
        "depth": NUMBER,
        "via": str,
    },
    "summary": {
        "type": str,
        "packets": NUMBER,
        "dropped_flight_events": NUMBER,
        "dropped_ledger_rows": NUMBER,
        "dropped_trace_events": NUMBER,
    },
}

VIA_NAMES = {"origin", "data", "plain", "decode"}


def check_line(lineno: int, obj: dict, problems: list[str]) -> str | None:
    """Validates one parsed line against SCHEMAS; returns its type."""
    t = obj.get("type")
    if t == "cell" and "rate" in obj:
        t = "cell_stream"  # the stream-mode cell shape (same "type" tag)
    if t not in SCHEMAS:
        problems.append(f"line {lineno}: unknown type {t!r}")
        return None
    schema = SCHEMAS[t]
    for key, want in schema.items():
        if key not in obj:
            problems.append(f"line {lineno} ({t}): missing key {key!r}")
            continue
        ok = isinstance(obj[key], want)
        # bool is an int subclass in Python — a bool where a number is
        # expected is still a writer bug.
        if ok and want is not bool and isinstance(obj[key], bool):
            ok = False
        if not ok:
            problems.append(
                f"line {lineno} ({t}): {key!r} has type "
                f"{type(obj[key]).__name__}, expected {want}"
            )
    for key in sorted(obj.keys() - schema.keys()):
        problems.append(f"line {lineno} ({t}): unexpected key {key!r}")
    return t


def main() -> int:
    if len(sys.argv) != 2 or sys.argv[1].startswith("-"):
        print(__doc__, file=sys.stderr)
        return 2
    path = pathlib.Path(sys.argv[1])
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return 2
    lines = [ln for ln in lines if ln.strip()]
    if not lines:
        print(f"error: {path} is empty", file=sys.stderr)
        return 2

    problems: list[str] = []
    header = None
    expected_packets = 0         # closed cells: sum of k (has packet lines)
    expected_stream_packets = 0  # stream cells: delivered latency counts
    packet_lines = 0
    seen_cell = False
    in_stream_cell = False
    stream_latency_pending = False
    seen_summary = False
    counts: dict[str, int] = {}

    for lineno, raw in enumerate(lines, start=1):
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as e:
            print(f"error: line {lineno} is not JSON: {e}", file=sys.stderr)
            return 2
        if not isinstance(obj, dict):
            problems.append(f"line {lineno}: not a JSON object")
            continue
        t = check_line(lineno, obj, problems)
        if t is None:
            continue
        counts[t] = counts.get(t, 0) + 1
        if seen_summary:
            problems.append(f"line {lineno}: {t!r} after the summary line")

        if lineno == 1:
            if t != "header":
                problems.append(f"line 1: expected header, got {t!r}")
            elif obj.get("format") != FORMAT:
                problems.append(
                    f"line 1: format {obj.get('format')!r}, expected {FORMAT!r}"
                )
            header = obj if t == "header" else None
            continue
        if t == "header":
            problems.append(f"line {lineno}: duplicate header")
        elif t == "cell":
            seen_cell = True
            in_stream_cell = False
            if isinstance(obj.get("k"), NUMBER):
                expected_packets += int(obj["k"])
        elif t == "cell_stream":
            seen_cell = True
            in_stream_cell = True
            # The cell's (single) latency line carries the delivered count
            # that the summary reconciles against.
            stream_latency_pending = True
        elif t in ("latency", "packet", "queue", "queue_round") and not seen_cell:
            problems.append(f"line {lineno}: {t!r} line before any cell line")
        elif t == "flight" and header and header.get("flight_paths") is False:
            problems.append(
                f"line {lineno}: flight line but header says flight_paths=false"
            )
        elif t == "summary":
            seen_summary = True
            want = expected_packets + expected_stream_packets
            if obj.get("packets") != want:
                problems.append(
                    f"line {lineno}: summary.packets={obj.get('packets')} but "
                    f"cell lines sum to {want}"
                )
        if t == "packet":
            packet_lines += 1
        if t == "latency" and in_stream_cell and stream_latency_pending:
            stream_latency_pending = False
            if isinstance(obj.get("count"), NUMBER):
                expected_stream_packets += int(obj["count"])
        if t in ("queue", "queue_round"):
            offered = obj.get("offered")
            admitted = obj.get("admitted")
            if isinstance(offered, NUMBER) and isinstance(admitted, NUMBER):
                if admitted > offered:
                    problems.append(
                        f"line {lineno}: admitted ({admitted}) exceeds "
                        f"offered ({offered})"
                    )
        if t in ("ledger", "ledger_round"):
            busy = sum(
                obj.get(k, 0)
                for k in ("transmissions", "silent")
                if isinstance(obj.get(k), NUMBER)
            )
            rounds = obj.get("rounds", 1) if t == "ledger" else 1
            if isinstance(obj.get("awake"), NUMBER) and isinstance(rounds, NUMBER):
                if busy > obj["awake"]:
                    problems.append(
                        f"line {lineno}: transmissions+silent ({busy}) exceed "
                        f"awake slots ({obj['awake']})"
                    )
        if t == "flight" and obj.get("via") not in VIA_NAMES:
            problems.append(
                f"line {lineno}: via {obj.get('via')!r} not in {sorted(VIA_NAMES)}"
            )

    if not seen_summary:
        problems.append("missing summary line")
    if packet_lines != expected_packets:
        problems.append(
            f"{packet_lines} packet line(s) but cell lines sum to "
            f"k={expected_packets}"
        )

    if problems:
        for p in problems:
            print(f"DRIFT: {p}")
        print(
            f"\n{path} violates the {FORMAT} shape ({len(problems)} problem(s))"
        )
        return 1
    summary = ", ".join(f"{counts.get(t, 0)} {t}" for t in SCHEMAS)
    print(f"ok: {path} matches {FORMAT} ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
