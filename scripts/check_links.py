#!/usr/bin/env python3
"""Intra-repo markdown link checker — the docs half of the CI `docs` job.

Scans every tracked markdown file (repo root + docs/) for inline links and
images, and fails when a relative link points at a path that does not
exist. External links (http/https/mailto) are deliberately NOT fetched:
this gate must be hermetic and deterministic, so it only guards the part
we can actually break from inside the repo — cross-references between
README.md, docs/*.md, EXPERIMENTS.md and friends.

Anchors are checked too, cheaply: for `path#fragment` the target file must
contain a heading whose GitHub slug equals the fragment.

Usage:
    check_links.py [--root DIR]

Exit codes: 0 ok, 1 dead links found, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Inline markdown links/images: [text](target) / ![alt](target).
# Reference-style definitions: [label]: target
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # any URL scheme
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor rule: lowercase, strip punctuation,
    spaces to dashes. Good enough for ASCII headings, which is all we use."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading, flags=re.UNICODE)
    return heading.replace(" ", "-")


def markdown_files(root: pathlib.Path) -> list[pathlib.Path]:
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def anchors_of(path: pathlib.Path, cache: dict) -> set:
    if path not in cache:
        text = FENCE.sub("", path.read_text(encoding="utf-8"))
        cache[path] = {github_slug(h) for h in HEADING.findall(text)}
    return cache[path]


def check(root: pathlib.Path) -> list[str]:
    errors: list[str] = []
    anchor_cache: dict = {}
    for md in markdown_files(root):
        # Links inside fenced code blocks are examples, not references.
        text = FENCE.sub("", md.read_text(encoding="utf-8"))
        targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
        for target in targets:
            if EXTERNAL.match(target):
                continue
            path_part, _, fragment = target.partition("#")
            rel = md.relative_to(root)
            if not path_part:  # pure in-page anchor
                if fragment and fragment not in anchors_of(md, anchor_cache):
                    errors.append(f"{rel}: dead anchor '#{fragment}'")
                continue
            dest = (md.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{rel}: dead link '{target}'")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in anchors_of(dest, anchor_cache):
                    errors.append(
                        f"{rel}: '{target}' exists but anchor "
                        f"'#{fragment}' not found"
                    )
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: no such directory: {root}", file=sys.stderr)
        return 2

    errors = check(root)
    checked = len(markdown_files(root))
    if errors:
        for e in errors:
            print(f"DEAD: {e}")
        print(f"\n{len(errors)} dead link(s) across {checked} markdown files")
        return 1
    print(f"ok: no dead intra-repo links across {checked} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
