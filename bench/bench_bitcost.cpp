// E16 — bit-cost accounting.
//
// Paper (Section 2.4): a coded FORWARD message is the XOR sum (b bits)
// plus a ⌈log n⌉-bit subset header — "the size of the new message is at
// most twice the size of any message in M". This bench verifies the
// on-air overhead claim and reports end-to-end bit economics: total bits
// transmitted per delivered packet for each algorithm.
//
// Expected shape: mean coded message size / packet size <= 2 (comfortably,
// since payloads carry b >= log n bits); coded transmits fewer TOTAL bits
// per packet than the uncoded pipeline at large k because it occupies the
// channel for a log n factor fewer rounds.
#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E16 bench_bitcost",
         "coded message <= 2x packet size; total bits/packet per algorithm");

  Rng grng(111);
  const graph::Graph g = graph::make_random_geometric(64, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  const std::uint32_t payload_bytes = 16;
  // Wire packet size: 8-byte id + payload (see core/dissemination.hpp).
  const double packet_bits = 8.0 * (8 + payload_bytes);
  print_meta(std::cout, "graph", g.summary());
  print_meta(std::cout, "packet wire bits", std::to_string(packet_bits));

  Table t({"k", "algo", "bits tx / packet", "bits tx / (packet*n)",
           "mean msg bits", "msg/packet ratio", "ok"});
  for (const std::uint32_t k : {64u, 256u}) {
    for (const baselines::Algo algo :
         {baselines::Algo::kCoded, baselines::Algo::kUncodedPipeline,
          baselines::Algo::kSequentialBgi}) {
      SampleSet bits_per_pkt, mean_msg;
      int ok = 0, runs = 0;
      for (int s = 0; s < seeds; ++s) {
        Rng prng(180 + s);
        const core::Placement placement = core::make_placement(
            g.num_nodes(), k, core::PlacementMode::kRandom, payload_bytes, prng);
        const core::RunResult r =
            baselines::run_algo(algo, g, know, placement, 190 + s);
        ++runs;
        if (r.delivered_all) ++ok;
        bits_per_pkt.add(static_cast<double>(r.counters.bits_transmitted) / k);
        mean_msg.add(static_cast<double>(r.counters.bits_transmitted) /
                     std::max<std::uint64_t>(1, r.counters.transmissions));
      }
      t.row()
          .add(k)
          .add(baselines::algo_name(algo))
          .add(bits_per_pkt.median(), 0)
          .add(bits_per_pkt.median() / g.num_nodes(), 1)
          .add(mean_msg.median(), 1)
          .add(mean_msg.median() / packet_bits, 2)
          .add(ok == runs ? "yes" : "NO");
    }
  }
  t.print(std::cout);
  std::cout << "# expected: msg/packet ratio <= 2 for every algorithm (the\n"
               "# paper's header bound); coded total bits/packet below uncoded\n"
               "# at large k (fewer channel rounds outweigh the subset header).\n";
  return 0;
}
