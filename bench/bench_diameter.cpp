// E5 — the additive D·log n·logΔ term.
//
// Paper: at small k the completion time is dominated by
// (D+log n)·log n·logΔ. We sweep D with cluster chains of fixed clique
// size (fixed Δ) and small fixed k.
//
// Expected shape: total rounds grow ~linearly in D at fixed k; the
// amortized column shows the additive term has not amortized (contrast
// with bench_amortized where k is large).
#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E5 bench_diameter", "additive term ~ D*logn*logD at small k");

  const std::uint32_t k = 16;
  print_meta(std::cout, "k", std::to_string(k));
  print_meta(std::cout, "family", "cluster_chain, clique size 8, chain length sweep");

  Table t({"chains", "n", "D", "rounds", "rounds/D", "stage1+2 share", "ok"});
  std::vector<double> xs, ys;
  for (const std::uint32_t chains : {2u, 4u, 8u, 16u, 32u}) {
    const graph::Graph g = graph::make_cluster_chain(chains, 8);
    const radio::Knowledge know = radio::Knowledge::exact(g);
    SampleSet total, fixed_share;
    int ok = 0, runs = 0;
    for (int s = 0; s < seeds; ++s) {
      Rng prng(700 + s);
      const core::Placement placement = core::make_placement(
          g.num_nodes(), k, core::PlacementMode::kRandom, 16, prng);
      const core::RunResult r = core::run_kbroadcast(
          g, baselines::coded_config(know), placement, 800 + s);
      ++runs;
      if (r.delivered_all) ++ok;
      total.add(static_cast<double>(r.total_rounds));
      fixed_share.add(static_cast<double>(r.stage1_rounds + r.stage2_rounds) /
                      static_cast<double>(r.total_rounds));
    }
    xs.push_back(static_cast<double>(know.d_hat));
    ys.push_back(total.median());
    t.row()
        .add(chains)
        .add(g.num_nodes())
        .add(know.d_hat)
        .add(total.median(), 0)
        .add(total.median() / know.d_hat, 0)
        .add(fixed_share.median(), 2)
        .add(ok == runs ? "yes" : "NO");
  }
  t.print(std::cout);
  const LinearFit fit = fit_linear(xs, ys);
  std::cout << "# fit: rounds = " << fit.intercept << " + " << fit.slope
            << " * D (r2=" << fit.r2 << ")\n";
  std::cout << "# expected: near-linear growth in D at fixed k (r2 close to 1).\n";
  return 0;
}
