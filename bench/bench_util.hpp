// Shared helpers for the experiment benches (DESIGN.md §3).
//
// Every bench prints paper-style tables via radiocast::Table; rows report
// medians over a small seed grid (override with RADIOCAST_BENCH_SEEDS) so
// runs are reproducible and fast by default.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "baselines/uncoded_pipeline.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/montecarlo.hpp"
#include "core/runner.hpp"
#include "exp/env.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"

namespace radiocast::benchutil {

/// Seed-grid width (RADIOCAST_BENCH_SEEDS) — delegates to the shared
/// spec-parsing helpers the CLI uses, so bench and CLI agree on defaults.
inline int seeds_from_env(int default_seeds = 3) {
  return exp::bench_seeds_from_env(default_seeds);
}

/// Thread budget the Monte Carlo driver will use (RADIOCAST_BENCH_THREADS,
/// default hardware concurrency; 1 = sequential legacy behavior).
inline int threads_from_env() { return core::montecarlo::threads_from_env(); }

/// Median completion rounds (and success count) of `algo` over seeds.
///
/// Reductions are RunningStats nearest-rank percentiles — exact order
/// statistics while the seed grid fits RunningStats::kPercentileBuffer
/// (it always does: the env default is 3 and CI never exceeds a few
/// dozen), deterministic in trial order at any thread count.
struct AlgoStats {
  double median_rounds = 0;
  double median_amortized = 0;
  int successes = 0;
  int runs = 0;
  double median_phases = 0;
  double median_stage3 = 0;
  double median_stage4 = 0;
  /// Tail of the completion-time distribution over the seed grid: p90 and
  /// worst observed total rounds, so scaling benches can report spread
  /// instead of a bare median.
  double p90_rounds = 0;
  double max_rounds = 0;
  /// True iff every percentile above is an exact order statistic (the
  /// seed grid fit the RunningStats sample buffer).
  bool exact_percentiles = true;
};

inline AlgoStats run_seeds(baselines::Algo algo, const graph::Graph& g,
                           const radio::Knowledge& know, std::uint32_t k,
                           core::PlacementMode mode, int seeds,
                           std::uint64_t seed_base = 1000) {
  // Trials fan out over the Monte Carlo driver; the reduction below walks
  // the results in trial order, so the stats are byte-identical to the
  // historical sequential loop at any thread count.
  const std::vector<core::RunResult> results = core::montecarlo::run(
      seeds, [&](int s) {
        Rng prng(seed_base + 17 * static_cast<std::uint64_t>(s));
        const core::Placement placement =
            core::make_placement(g.num_nodes(), k, mode, 16, prng);
        return baselines::run_algo(algo, g, know, placement,
                                   seed_base + 1000 + static_cast<std::uint64_t>(s));
      });
  AlgoStats out;
  RunningStats rounds, amortized, phases, s3, s4;
  for (const core::RunResult& r : results) {
    ++out.runs;
    if (r.delivered_all) ++out.successes;
    rounds.add(static_cast<double>(r.total_rounds));
    amortized.add(r.amortized_rounds_per_packet());
    phases.add(static_cast<double>(r.collection_phases));
    s3.add(static_cast<double>(r.stage3_rounds));
    s4.add(static_cast<double>(r.stage4_rounds));
  }
  out.median_rounds = rounds.median();
  out.median_amortized = amortized.median();
  out.median_phases = phases.median();
  out.median_stage3 = s3.median();
  out.median_stage4 = s4.median();
  out.p90_rounds = rounds.percentile(0.9);
  out.max_rounds = rounds.max();
  out.exact_percentiles = rounds.percentile_exact();
  return out;
}

/// Prints the standard bench banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n";
  print_meta(std::cout, "claim", claim);
  print_meta(std::cout, "seeds", std::to_string(seeds_from_env()));
  print_meta(std::cout, "threads", std::to_string(threads_from_env()));
}

/// Machine-readable bench results: mirrors the printed table as
/// `BENCH_<id>.json` in `$RADIOCAST_BENCH_JSON_DIR` (no-op when the env
/// var is unset, so local bench runs stay file-free). Shape:
///
///   {"bench":"E2_total_time",
///    "meta":{"seeds":"3","threads":"8","claim":"..."},
///    "rows":[{"k":8,"total":1234,...}, ...]}
///
/// Every report self-describes its seed grid and thread budget (recorded
/// at construction), so a BENCH_*.json from CI or a perf PR can be read
/// without knowing the environment it ran in. The trajectory of these
/// files over time is the regression baseline the ROADMAP's perf PRs diff
/// against.
class JsonReport {
 public:
  using Value = std::variant<std::string, double, std::uint64_t, std::int64_t, bool>;

  explicit JsonReport(std::string id) : id_(std::move(id)) {
    const std::string dir = exp::env_string("RADIOCAST_BENCH_JSON_DIR");
    if (!dir.empty()) path_ = dir + "/BENCH_" + id_ + ".json";
    meta("seeds", std::to_string(seeds_from_env()));
    meta("threads", std::to_string(threads_from_env()));
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { write(); }

  bool enabled() const { return !path_.empty(); }

  JsonReport& meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, value);
    return *this;
  }

  /// Starts a new result row; fill it with col().
  JsonReport& row() {
    rows_.emplace_back();
    return *this;
  }

  JsonReport& col(const std::string& key, std::string value) {
    return add_col(key, Value(std::move(value)));
  }
  JsonReport& col(const std::string& key, const char* value) {
    return add_col(key, Value(std::string(value)));
  }
  JsonReport& col(const std::string& key, double value) {
    return add_col(key, Value(value));
  }
  JsonReport& col(const std::string& key, bool value) {
    return add_col(key, Value(value));
  }
  JsonReport& col(const std::string& key, std::uint64_t value) {
    return add_col(key, Value(value));
  }
  JsonReport& col(const std::string& key, std::int64_t value) {
    return add_col(key, Value(value));
  }
  JsonReport& col(const std::string& key, int value) {
    return add_col(key, Value(static_cast<std::int64_t>(value)));
  }
  JsonReport& col(const std::string& key, unsigned value) {
    return add_col(key, Value(static_cast<std::uint64_t>(value)));
  }

  /// Writes the file (idempotent; also called by the destructor).
  void write() {
    if (path_.empty() || written_) return;
    written_ = true;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "# JsonReport: cannot open " << path_ << "\n";
      return;
    }
    obs::JsonWriter w(out);
    w.begin_object().kv("bench", id_);
    w.key("meta").begin_object();
    for (const auto& [k, v] : meta_) w.kv(k, v);
    w.end_object();
    w.key("rows").begin_array();
    for (const auto& row : rows_) {
      w.begin_object();
      for (const auto& [k, v] : row) {
        w.key(k);
        std::visit([&w](const auto& x) { w.value(x); }, v);
      }
      w.end_object();
    }
    w.end_array().end_object();
    out << '\n';
    std::cout << "# json: " << path_ << "\n";
  }

 private:
  JsonReport& add_col(const std::string& key, Value value) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().emplace_back(key, std::move(value));
    return *this;
  }

  std::string id_;
  std::string path_;
  bool written_ = false;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::vector<std::pair<std::string, Value>>> rows_;
};

}  // namespace radiocast::benchutil
