// Shared helpers for the experiment benches (DESIGN.md §3).
//
// Every bench prints paper-style tables via radiocast::Table; rows report
// medians over a small seed grid (override with RADIOCAST_BENCH_SEEDS) so
// runs are reproducible and fast by default.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/uncoded_pipeline.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::benchutil {

inline int seeds_from_env(int default_seeds = 3) {
  const char* env = std::getenv("RADIOCAST_BENCH_SEEDS");
  if (env == nullptr) return default_seeds;
  const int v = std::atoi(env);
  return v > 0 ? v : default_seeds;
}

/// Median completion rounds (and success count) of `algo` over seeds.
struct AlgoStats {
  double median_rounds = 0;
  double median_amortized = 0;
  int successes = 0;
  int runs = 0;
  double median_phases = 0;
  double median_stage3 = 0;
  double median_stage4 = 0;
};

inline AlgoStats run_seeds(baselines::Algo algo, const graph::Graph& g,
                           const radio::Knowledge& know, std::uint32_t k,
                           core::PlacementMode mode, int seeds,
                           std::uint64_t seed_base = 1000) {
  AlgoStats out;
  SampleSet rounds, amortized, phases, s3, s4;
  for (int s = 0; s < seeds; ++s) {
    Rng prng(seed_base + 17 * static_cast<std::uint64_t>(s));
    const core::Placement placement =
        core::make_placement(g.num_nodes(), k, mode, 16, prng);
    const core::RunResult r = baselines::run_algo(
        algo, g, know, placement, seed_base + 1000 + static_cast<std::uint64_t>(s));
    ++out.runs;
    if (r.delivered_all) ++out.successes;
    rounds.add(static_cast<double>(r.total_rounds));
    amortized.add(r.amortized_rounds_per_packet());
    phases.add(static_cast<double>(r.collection_phases));
    s3.add(static_cast<double>(r.stage3_rounds));
    s4.add(static_cast<double>(r.stage4_rounds));
  }
  out.median_rounds = rounds.median();
  out.median_amortized = amortized.median();
  out.median_phases = phases.median();
  out.median_stage3 = s3.median();
  out.median_stage4 = s4.median();
  return out;
}

/// Prints the standard bench banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n";
  print_meta(std::cout, "claim", claim);
  print_meta(std::cout, "seeds", std::to_string(seeds_from_env()));
}

}  // namespace radiocast::benchutil
