// E17 — robustness to parameter over-estimation (the paper's footnote 1:
// "nodes only need to know a polynomial upper bound on n and Δ, and a
// linear upper bound on D").
//
// Every schedule length in the protocol is a function of (n̂, Δ̂, D̂). A
// polynomial over-estimate n̂ = n^c multiplies log n̂ by c; a linear
// over-estimate of D multiplies the D-terms by the same factor — so the
// bounds only degrade by constant factors. We sweep the padding and
// measure the realized cost relative to exact knowledge.
//
// Expected shape: delivery stays 100% at every padding level; total
// rounds grow by a bounded factor ~ (padding power)² on the additive
// term (log n̂ enters stage 1 twice) and ~linearly on the k-term (group
// size and phase lengths scale with log n̂, which cancels in the amortized
// cost except through forward_epochs; in this implementation the k-term
// is invariant because both group size and phase length scale by c).
#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E17 bench_knowledge",
         "footnote 1: polynomial bounds on n, Delta and linear on D suffice");

  Rng grng(121);
  const graph::Graph g = graph::make_random_geometric(48, 0.3, grng);
  const std::uint32_t k = 128;
  print_meta(std::cout, "graph", g.summary());
  print_meta(std::cout, "k", std::to_string(k));

  Table t({"n^,Δ^ power", "D^ factor", "n^", "Δ^", "D^", "rounds", "vs exact",
           "r/pkt", "ok"});
  double exact_rounds = 0;
  for (const auto& [power, dfac] :
       std::vector<std::pair<double, double>>{
           {1.0, 1.0}, {1.25, 1.0}, {1.5, 1.5}, {2.0, 2.0}, {3.0, 3.0}}) {
    const radio::Knowledge know = power == 1.0 && dfac == 1.0
                                      ? radio::Knowledge::exact(g)
                                      : radio::Knowledge::padded(g, power, dfac);
    SampleSet rounds;
    int ok = 0, runs = 0;
    for (int s = 0; s < seeds; ++s) {
      Rng prng(200 + s);
      const core::Placement placement = core::make_placement(
          g.num_nodes(), k, core::PlacementMode::kRandom, 16, prng);
      const core::RunResult r = core::run_kbroadcast(
          g, baselines::coded_config(know), placement, 210 + s);
      ++runs;
      if (r.delivered_all) ++ok;
      rounds.add(static_cast<double>(r.total_rounds));
    }
    if (power == 1.0) exact_rounds = rounds.median();
    t.row()
        .add(power, 2)
        .add(dfac, 1)
        .add(know.n_hat)
        .add(know.delta_hat)
        .add(know.d_hat)
        .add(rounds.median(), 0)
        .add(rounds.median() / std::max(1.0, exact_rounds), 2)
        .add(rounds.median() / k, 1)
        .add(ok == runs ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "# expected: delivery 100% at every padding; cost inflation is a\n"
               "# bounded constant factor (roughly the product of the extra\n"
               "# log-factors), never a blow-up — the paper's ad-hoc assumption\n"
               "# is cheap.\n";
  return 0;
}
