// E18 — the price of not having collision detection.
//
// The paper's Stage 1 emulates each collision-detection probe of the
// classic binary-search election with a Θ((D+log n)·logΔ)-round one-bit
// flood (Fact 1, via Bar-Yehuda–Goldreich–Itai's emulation). With native
// CD hardware on a single-hop channel, the same search needs exactly one
// round per probe. This bench quantifies the gap on complete graphs
// (where both protocols apply) and reports the emulated cost's
// multi-hop-readiness (the native protocol is simply incorrect beyond one
// hop, which is the whole point of the emulation).
//
// Expected shape: native CD = ⌈log n⌉ rounds; emulated = that times
// Θ((D+log n)·logΔ) — a gap of 2-4 orders of magnitude that buys
// multi-hop correctness without hardware support.
#include <memory>

#include "bench_util.hpp"
#include "core/params.hpp"
#include "protocols/cd_leader_election.hpp"
#include "radio/network.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;

  banner("E18 bench_cd_ablation",
         "Fact 1's emulation cost vs native collision detection");

  Table t({"n", "native CD rounds", "emulated rounds (stage 1)", "ratio",
           "native correct"});
  for (const std::uint32_t n : {16u, 32u, 64u, 128u, 256u}) {
    const graph::Graph g = graph::make_complete(n);
    const radio::Knowledge know = radio::Knowledge::exact(g);

    // Native run: a third of the nodes participate.
    radio::Network net(g);
    net.enable_collision_detection(true);
    radio::NodeId expected = 0;
    for (radio::NodeId v = 0; v < n; ++v) {
      const bool part = v % 3 == 1;
      if (part) expected = v;
      net.set_protocol(v,
                       std::make_unique<protocols::CdLeaderElectionNode>(know, v, part));
      net.wake_at_start(v);
    }
    const auto& probe =
        static_cast<const protocols::CdLeaderElectionNode&>(net.protocol(0));
    const std::uint64_t native_rounds = probe.total_rounds();
    for (std::uint64_t r = 0; r <= native_rounds; ++r) net.step();
    int leaders = 0;
    bool correct = false;
    for (radio::NodeId v = 0; v < n; ++v) {
      auto& node = static_cast<protocols::CdLeaderElectionNode&>(net.protocol(v));
      node.finalize(native_rounds + 1);
      if (node.is_leader()) {
        ++leaders;
        correct = v == expected;
      }
    }

    // Emulated cost comes straight from the schedule (it is deterministic).
    core::KBroadcastConfig cfg;
    cfg.know = know;
    const core::ResolvedConfig rc = core::resolve(cfg);

    t.row()
        .add(n)
        .add(native_rounds)
        .add(rc.stage1_rounds)
        .add(static_cast<double>(rc.stage1_rounds) /
                 static_cast<double>(native_rounds),
             0)
        .add(leaders == 1 && correct ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "# expected: native = ceil(log n) rounds; emulated = native *\n"
               "# Theta((D+logn)*logD) flood rounds per probe. The factor is the\n"
               "# price of multi-hop correctness without collision-detection\n"
               "# hardware (the native protocol is wrong beyond one hop).\n";
  return 0;
}
