// E4 — the k-term is independent of n for the coded protocol, but grows
// with log n for the BII-style baseline.
//
// Paper: coded amortized cost O(logΔ); BII-style O(logΔ·log n). We sweep n
// on bounded-degree graphs (Δ capped, so logΔ is constant across the
// sweep) at large k and compare the growth of the two amortized columns.
//
// Expected shape: the coded column is ~flat in n; the uncoded column grows
// ~linearly in log n; their ratio grows ~log n.
#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E4 bench_n_scaling",
         "coded k-term independent of n; BII-style k-term ~ log n");

  const std::uint32_t k = 512;
  print_meta(std::cout, "k", std::to_string(k));
  print_meta(std::cout, "family", "bounded_degree (max degree 6 for every n)");

  Table t({"n", "log n", "coded r/pkt", "uncoded r/pkt", "ratio", "ok"});
  std::vector<double> xs, coded_ys, uncoded_ys;
  Rng grng(13);
  for (const std::uint32_t n : {32u, 64u, 128u, 256u}) {
    const graph::Graph g = graph::make_bounded_degree(n, 6, 0.5, grng);
    const radio::Knowledge know = radio::Knowledge::exact(g);
    const AlgoStats coded = run_seeds(baselines::Algo::kCoded, g, know, k,
                                      core::PlacementMode::kRandom, seeds);
    const AlgoStats uncoded = run_seeds(baselines::Algo::kUncodedPipeline, g, know,
                                        k, core::PlacementMode::kRandom, seeds);
    xs.push_back(static_cast<double>(know.log_n()));
    coded_ys.push_back(coded.median_amortized);
    uncoded_ys.push_back(uncoded.median_amortized);
    t.row()
        .add(n)
        .add(know.log_n())
        .add(coded.median_amortized, 1)
        .add(uncoded.median_amortized, 1)
        .add(uncoded.median_amortized / std::max(1.0, coded.median_amortized), 2)
        .add(coded.successes == coded.runs && uncoded.successes == uncoded.runs
                 ? "yes"
                 : "NO");
  }
  t.print(std::cout);

  const LinearFit coded_fit = fit_linear(xs, coded_ys);
  const LinearFit uncoded_fit = fit_linear(xs, uncoded_ys);
  std::cout << "# fit coded:   r/pkt = " << coded_fit.intercept << " + "
            << coded_fit.slope << " * logn (r2=" << coded_fit.r2 << ")\n";
  std::cout << "# fit uncoded: r/pkt = " << uncoded_fit.intercept << " + "
            << uncoded_fit.slope << " * logn (r2=" << uncoded_fit.r2 << ")\n";
  std::cout << "# expected: uncoded slope >> coded slope; ratio grows with logn.\n";
  std::cout << "# note: the coded slope is not exactly 0 because the additive\n"
               "# (D+logn)*logn*logD term still grows slowly with n at fixed k.\n";
  return 0;
}
