// E21 (extension) — open-system streaming workload (src/stream/).
//
// Continuous Poisson arrivals flow through bounded source buffers into the
// pipelined collect+disseminate epochs; we sweep the offered load relative
// to the pipeline capacity and report delivery, backlog and the driver's
// rounds/sec.
//
// Expected shape: below the knee (load < 1) everything offered is carried
// with a small steady-state backlog; above it the achieved throughput
// plateaus at the pipeline capacity while the number in system grows with
// the horizon and the saturation detector latches.
//
// All workload/outcome columns are deterministic (fixed seeds, no
// wall-clock dependence): arrivals, delivered, dropped, backpressured,
// in_system_end, saturated and epochs must reproduce bit for bit on any
// machine and at any shard count, which the pinned baseline's exact-match
// tier enforces. rounds_per_sec is the gated throughput column (the
// driver is single-threaded, so the CPU clock is honest). `--smoke`
// shrinks the grid for CI; rows land in BENCH_stream.json when
// RADIOCAST_BENCH_JSON_DIR is set.
#include <cstring>
#include <ctime>
#include <string>

#include "bench_util.hpp"
#include "stream/driver.hpp"

using namespace radiocast;

namespace {

/// Process CPU time in seconds (the run is single-threaded; immune to
/// noisy-neighbor preemption, same rationale as bench_engine_step).
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  benchutil::banner("stream",
                    "open system: continuous arrivals through bounded buffers; "
                    "throughput saturates at pipeline capacity past load 1");
  benchutil::JsonReport json("stream");
  json.meta("smoke", smoke ? "1" : "0");

  const std::uint32_t n = smoke ? 16 : 32;
  const double radius = smoke ? 0.5 : 0.35;
  const std::uint32_t epochs = smoke ? 4 : 8;
  const int reps = smoke ? 2 : 3;

  Rng grng(101);
  const graph::Graph g = graph::make_random_geometric(n, radius, grng);
  print_meta(std::cout, "graph", g.summary());
  json.meta("graph", g.summary());

  core::KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  stream::StreamConfig base;
  base.dyn.rc = core::resolve(kcfg);
  base.dyn.batch_capacity = n;
  base.arrivals.seed = 160;
  // Tiny buffers so the policy split is visible: above the knee a few
  // arrivals per node land between drains, which must overflow.
  base.buffer_capacity = 2;
  base.saturation.window = smoke ? 2 : 4;
  base.saturation.min_growth = n / 2;
  base.horizon = base.dyn.rc.stage3_start() +
                 static_cast<std::uint64_t>(epochs) *
                     stream::epoch_estimate_rounds(base.dyn);
  base.seed = 170;
  print_meta(std::cout, "capacity/epoch",
                        std::to_string(base.dyn.resolved_capacity()));
  print_meta(
      std::cout, "epoch rounds (approx)",
      std::to_string(stream::epoch_estimate_rounds(base.dyn)));

  radiocast::Table table({"load", "policy", "arrivals", "delivered", "dropped",
                          "backpressured", "in system", "saturated", "epochs",
                          "rounds/sec"});
  const stream::BufferPolicy policies[] = {stream::BufferPolicy::kDropNew,
                                           stream::BufferPolicy::kBackpressure};
  for (const double load : {0.5, 4.0}) {
    for (const stream::BufferPolicy policy : policies) {
      stream::StreamConfig cfg = base;
      cfg.policy = policy;
      cfg.arrivals.rate = stream::per_node_rate(cfg.dyn, n, load);
      stream::StreamResult r;
      double best_seconds = 1e100;
      for (int rep = 0; rep < reps; ++rep) {
        const double start = cpu_seconds();
        r = run_stream(g, cfg);
        const double seconds = cpu_seconds() - start;
        if (seconds < best_seconds) best_seconds = seconds;
      }
      const double rps = static_cast<double>(cfg.horizon) / best_seconds;
      table.row()
          .add(load, 2)
          .add(stream::buffer_policy_name(policy))
          .add(r.arrivals_scheduled)
          .add(r.delivered_everywhere)
          .add(r.queue.dropped)
          .add(r.queue.backpressured)
          .add(r.in_system_end)
          .add(r.saturated ? 1u : 0u)
          .add(r.epochs_completed)
          .add(rps, 0);
      json.row()
          .col("load", load)
          .col("policy", stream::buffer_policy_name(policy))
          .col("n", n)
          .col("horizon", cfg.horizon)
          .col("arrivals", r.arrivals_scheduled)
          .col("delivered", r.delivered_everywhere)
          .col("dropped", r.queue.dropped)
          .col("backpressured", r.queue.backpressured)
          .col("peak_depth", r.queue.peak_depth)
          .col("in_system_end", r.in_system_end)
          .col("saturated", r.saturated)
          .col("epochs", static_cast<std::uint64_t>(r.epochs_completed))
          .col("latency_count", r.latency.count())
          .col("latency_sum", r.latency.sum())
          .col("rounds_per_sec", rps);
    }
  }
  table.print(std::cout);
  std::cout << "# expected: load 0.5 carries everything with a bounded backlog;\n"
               "# load 4.0 saturates — drop_new sheds at the buffers while\n"
               "# backpressure holds everything back and the backlog grows.\n";
  return 0;
}
