// E7 — Lemma 4: the GRAB(x) cascade collects all packets w.h.p. when
// x >= k, and each OSPG(y) halves (at least) the remaining packets.
//
// We run Stage 3 in isolation (BFS tree precomputed) and sample the root's
// collected count at every gather-window boundary of the first phase.
//
// Expected shape: the "remaining" column decays at least geometrically
// down the cascade; the MSPG row clears what is left; success column all
// "yes" for k <= x0.
#include <memory>

#include "bench_util.hpp"
#include "core/collection.hpp"
#include "core/schedule.hpp"
#include "radio/network.hpp"

namespace {

using namespace radiocast;

class CollectionOnlyNode final : public radio::NodeProtocol {
 public:
  CollectionOnlyNode(const core::CollectionState::Config& cfg, radio::NodeId self,
                     bool is_root, std::optional<radio::NodeId> parent,
                     std::vector<radio::Packet> packets, Rng rng)
      : rng_(rng), state_(cfg, self, is_root, parent, std::move(packets), &rng_) {}

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    return state_.on_transmit(round);
  }
  void on_receive(radio::Round round, const radio::Message& msg) override {
    state_.on_receive(round, msg);
  }
  bool done() const override { return state_.finished(); }
  core::CollectionState& state() { return state_; }

 private:
  Rng rng_;
  core::CollectionState state_;
};

}  // namespace

int main() {
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E7 bench_grab",
         "Lemma 4: GRAB(x) collects all packets whp when x >= k; OSPG halves");

  Rng grng(31);
  const graph::Graph g = graph::make_random_geometric(64, 0.25, grng);
  core::KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  const core::ResolvedConfig rc = core::resolve(kcfg);
  print_meta(std::cout, "graph", g.summary() + " D=" + std::to_string(rc.know.d_hat));
  print_meta(std::cout, "x0", std::to_string(rc.initial_estimate));

  const graph::BfsResult tree = graph::bfs(g, 0);

  JsonReport json("E7_grab");
  json.meta("claim", "GRAB(x) collects all packets whp when x >= k")
      .meta("graph", g.summary());

  for (const std::uint32_t k :
       {static_cast<std::uint32_t>(rc.initial_estimate / 2),
        static_cast<std::uint32_t>(rc.initial_estimate)}) {
    print_meta(std::cout, "k", std::to_string(k));
    Table t({"window", "slots", "copies", "collected", "remaining", "frac left"});
    const auto windows = core::grab_windows(rc.initial_estimate, rc);

    // One trial = one isolated network stepped through the cascade,
    // sampling the root's collected count at every window boundary.
    // Trials fan out over the Monte Carlo driver; each owns its Network
    // and Rngs, so the per-window samples are thread-count independent.
    struct TrialOut {
      std::vector<double> remaining;
      bool all_collected = false;
    };
    const std::vector<TrialOut> trials = core::montecarlo::run(seeds, [&](int s) {
      Rng prng(40 + s);
      const core::Placement placement = core::make_placement(
          g.num_nodes(), k, core::PlacementMode::kRandom, 16, prng);
      radio::Network net(g);
      Rng master(90 + s);
      for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
        std::optional<radio::NodeId> parent;
        if (v != 0 && tree.dist[v] != graph::kUnreachable) parent = tree.parent[v];
        net.set_protocol(v, std::make_unique<CollectionOnlyNode>(
                                core::CollectionState::Config{rc}, v, v == 0, parent,
                                placement[v], master.split()));
        net.wake_at_start(v);
      }
      auto& root = static_cast<CollectionOnlyNode&>(net.protocol(0));
      TrialOut out;
      for (std::size_t w = 0; w < windows.size(); ++w) {
        while (net.current_round() < windows[w].end()) net.step();
        out.remaining.push_back(static_cast<double>(k) -
                                static_cast<double>(root.state().collected().size()));
      }
      out.all_collected = root.state().collected().size() == k;
      return out;
    });

    // Aggregate per-window remaining over seeds, in trial order.
    std::vector<SampleSet> remaining(windows.size());
    int all_collected = 0;
    for (const TrialOut& out : trials) {
      for (std::size_t w = 0; w < windows.size(); ++w) remaining[w].add(out.remaining[w]);
      if (out.all_collected) ++all_collected;
    }
    for (std::size_t w = 0; w < windows.size(); ++w) {
      const double rem = remaining[w].median();
      t.row()
          .add(windows[w].copies > 1 ? "MSPG" : ("OSPG(" + std::to_string(windows[w].slots / 6) + ")"))
          .add(windows[w].slots)
          .add(windows[w].copies)
          .add(static_cast<double>(k) - rem, 0)
          .add(rem, 0)
          .add(rem / k, 3);
      json.row()
          .col("k", k)
          .col("window", windows[w].copies > 1 ? "mspg" : "ospg")
          .col("slots", windows[w].slots)
          .col("copies", windows[w].copies)
          .col("remaining", rem);
    }
    t.print(std::cout);
    std::cout << "# runs with all " << k << " packets collected after GRAB(x0): "
              << all_collected << "/" << seeds << "\n\n";
  }
  std::cout << "# expected: remaining decays >= geometrically down the cascade;\n"
               "# the MSPG row reaches remaining = 0 in every run (Lemma 4).\n";
  return 0;
}
