// E2 — Theorem 2 total completion time with stage breakdown.
//
// Paper: total time O(k·logΔ + (D+log n)·log n·logΔ) w.h.p., composed of
//   Stage 1 O((D+log n)·log n·logΔ), Stage 2 O(D·log n·logΔ),
//   Stage 3 O(k + (D+log n)·log n), Stage 4 O(k·logΔ + D·log n·logΔ).
//
// Expected shape: stages 1-2 constant in k; stage 3 linear in k with slope
// ~O(1) (and alarm-driven doubling visible in the phase counts); stage 4
// linear in k with slope ~3·forward_phase/group_size = O(logΔ).
//
// Besides the paper columns this bench doubles as the end-to-end perf
// gate: each row reports rounds/sec (simulated rounds per process-CPU
// second, best of `reps` timed sweeps — the CPU clock aggregates the
// Monte Carlo workers, so pin RADIOCAST_BENCH_THREADS when comparing).
// `--smoke` shrinks the k grid for CI; the smoke rows are pinned in
// bench/baselines/BENCH_E2_total_time.json and scripts/bench_compare.py
// enforces exact deterministic columns + bounded rounds/sec regression.
// The timed path runs with telemetry off (no tracer, no ledger), so this
// gate is also the disabled-telemetry overhead assertion for ISSUE 6.
#include <cstring>
#include <ctime>

#include "bench_util.hpp"

namespace {

/// Process CPU time in seconds — sums all Monte Carlo worker threads, so
/// the derived throughput is insensitive to wall-clock noise from other
/// tenants (and only mildly sensitive to the thread budget).
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int seeds = seeds_from_env();
  const int reps = smoke ? 3 : 1;

  banner("E2 bench_total_time",
         "total rounds = O(k logD + (D+logn) logn logD), per-stage breakdown");

  Rng grng(11);
  const graph::Graph g = graph::make_random_geometric(64, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  print_meta(std::cout, "graph", g.summary() + " D=" + std::to_string(know.d_hat));

  JsonReport json("E2_total_time");
  json.meta("claim", "total rounds = O(k logD + (D+logn) logn logD)")
      .meta("graph", g.summary())
      .meta("smoke", smoke ? "1" : "0");

  Table t({"k", "stage1", "stage2", "stage3", "stage4", "total", "p90", "phases",
           "r/pkt", "rounds/sec", "ok"});
  const std::vector<std::uint32_t> ks =
      smoke ? std::vector<std::uint32_t>{8u, 32u, 128u}
            : std::vector<std::uint32_t>{8u, 32u, 128u, 512u, 2048u};
  for (const std::uint32_t k : ks) {
    core::montecarlo::KBroadcastSweep sweep;
    sweep.graph = &g;
    sweep.cfg = baselines::coded_config(know);
    sweep.k = k;
    sweep.placement_seed = [](int s) { return 500 + static_cast<std::uint64_t>(s); };
    sweep.run_seed = [](int s) { return 900 + static_cast<std::uint64_t>(s); };

    // Timed reps re-run the identical deterministic sweep; the stats below
    // reduce the last rep's results (identical to every other rep's).
    std::vector<core::RunResult> results;
    double best_seconds = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      const double start = cpu_seconds();
      results = core::montecarlo::run_kbroadcast_sweep(sweep, seeds);
      const double elapsed = cpu_seconds() - start;
      if (elapsed < best_seconds) best_seconds = elapsed;
    }

    RunningStats s1, s2, s3, s4, total, phases, rpp;
    std::uint64_t simulated_rounds = 0;
    int ok = 0, runs = 0;
    for (const core::RunResult& r : results) {
      ++runs;
      if (r.delivered_all) ++ok;
      s1.add(static_cast<double>(r.stage1_rounds));
      s2.add(static_cast<double>(r.stage2_rounds));
      s3.add(static_cast<double>(r.stage3_rounds));
      s4.add(static_cast<double>(r.stage4_rounds));
      total.add(static_cast<double>(r.total_rounds));
      phases.add(static_cast<double>(r.collection_phases));
      rpp.add(r.amortized_rounds_per_packet());
      simulated_rounds += r.total_rounds;
    }
    const double rps = static_cast<double>(simulated_rounds) / best_seconds;
    t.row()
        .add(k)
        .add(s1.median(), 0)
        .add(s2.median(), 0)
        .add(s3.median(), 0)
        .add(s4.median(), 0)
        .add(total.median(), 0)
        .add(total.percentile(0.9), 0)
        .add(phases.median(), 0)
        .add(rpp.median(), 1)
        .add(rps, 0)
        .add(ok == runs ? "yes" : "NO");
    json.row()
        .col("k", k)
        .col("stage1", s1.median())
        .col("stage2", s2.median())
        .col("stage3", s3.median())
        .col("stage4", s4.median())
        .col("total", total.median())
        .col("total_p90", total.percentile(0.9))
        .col("total_max", total.max())
        .col("phases", phases.median())
        .col("rounds_per_packet", rpp.median())
        .col("rounds_per_sec", rps)
        .col("all_delivered", ok == runs);
  }
  t.print(std::cout);
  std::cout << "# expected: stages 1-2 constant in k; stages 3-4 linear in k;\n"
               "# stage 4 slope/packet ~ 3*spacing*logD; r/pkt converges.\n";
  return 0;
}
