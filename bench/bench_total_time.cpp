// E2 — Theorem 2 total completion time with stage breakdown.
//
// Paper: total time O(k·logΔ + (D+log n)·log n·logΔ) w.h.p., composed of
//   Stage 1 O((D+log n)·log n·logΔ), Stage 2 O(D·log n·logΔ),
//   Stage 3 O(k + (D+log n)·log n), Stage 4 O(k·logΔ + D·log n·logΔ).
//
// Expected shape: stages 1-2 constant in k; stage 3 linear in k with slope
// ~O(1) (and alarm-driven doubling visible in the phase counts); stage 4
// linear in k with slope ~3·forward_phase/group_size = O(logΔ).
#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E2 bench_total_time",
         "total rounds = O(k logD + (D+logn) logn logD), per-stage breakdown");

  Rng grng(11);
  const graph::Graph g = graph::make_random_geometric(64, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  print_meta(std::cout, "graph", g.summary() + " D=" + std::to_string(know.d_hat));

  JsonReport json("E2_total_time");
  json.meta("claim", "total rounds = O(k logD + (D+logn) logn logD)")
      .meta("graph", g.summary());

  Table t({"k", "stage1", "stage2", "stage3", "stage4", "total", "phases", "r/pkt",
           "ok"});
  for (const std::uint32_t k : {8u, 32u, 128u, 512u, 2048u}) {
    core::montecarlo::KBroadcastSweep sweep;
    sweep.graph = &g;
    sweep.cfg = baselines::coded_config(know);
    sweep.k = k;
    sweep.placement_seed = [](int s) { return 500 + static_cast<std::uint64_t>(s); };
    sweep.run_seed = [](int s) { return 900 + static_cast<std::uint64_t>(s); };
    const std::vector<core::RunResult> results =
        core::montecarlo::run_kbroadcast_sweep(sweep, seeds);

    SampleSet s1, s2, s3, s4, total, phases, rpp;
    int ok = 0, runs = 0;
    for (const core::RunResult& r : results) {
      ++runs;
      if (r.delivered_all) ++ok;
      s1.add(static_cast<double>(r.stage1_rounds));
      s2.add(static_cast<double>(r.stage2_rounds));
      s3.add(static_cast<double>(r.stage3_rounds));
      s4.add(static_cast<double>(r.stage4_rounds));
      total.add(static_cast<double>(r.total_rounds));
      phases.add(static_cast<double>(r.collection_phases));
      rpp.add(r.amortized_rounds_per_packet());
    }
    t.row()
        .add(k)
        .add(s1.median(), 0)
        .add(s2.median(), 0)
        .add(s3.median(), 0)
        .add(s4.median(), 0)
        .add(total.median(), 0)
        .add(phases.median(), 0)
        .add(rpp.median(), 1)
        .add(ok == runs ? "yes" : "NO");
    json.row()
        .col("k", k)
        .col("stage1", s1.median())
        .col("stage2", s2.median())
        .col("stage3", s3.median())
        .col("stage4", s4.median())
        .col("total", total.median())
        .col("phases", phases.median())
        .col("rounds_per_packet", rpp.median())
        .col("all_delivered", ok == runs);
  }
  t.print(std::cout);
  std::cout << "# expected: stages 1-2 constant in k; stages 3-4 linear in k;\n"
               "# stage 4 slope/packet ~ 3*spacing*logD; r/pkt converges.\n";
  return 0;
}
