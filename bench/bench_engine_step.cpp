// Engine microbenchmark: isolates radio::Network::step from all protocol
// logic (ISSUE 4 satellite; ISSUE 7 added the engine axis).
//
// Every node runs a fixed per-node 64-bit transmission schedule — no RNG
// draws, no protocol state, no decoding — so the measured cost is the
// engine itself. Each workload runs once per selected engine mode
// (--engine scalar|bitset|both, default both) and every row carries an
// `engine` column; the deterministic counter columns must agree between
// the two engines row for row (same model, same schedule), which the
// pinned baseline enforces.
//
// Workload families:
//
//   dense / sparse      generic PlainPacketMsg protocols on a gnp graph
//                       (p=1/4 resp. 1/64 transmit probability) — the
//                       virtual on_transmit path in both engines.
//   alarm               one-bit AlarmMsg schedule on the same graph, with
//                       a PackedTransmitSource registered so the bitset
//                       engine takes its bulk Phase-1 path.
//   alarm_dense_100k    full mode only: n=10^5, degree~16 locality-window
//                       graph — the ISSUE 7 5x acceptance row.
//   alarm_sparse_1m     full mode only: n=10^6 sparse window graph — the
//                       million-node completion row.
//
// Each row reports rounds/sec (best of `reps` timed repetitions) and an
// analytic bytes-touched-per-round estimate derived from the run's exact
// counters (see touched_bytes_model below). Single-shard rows are timed
// on the process CPU clock so shared/noisy-neighbor machines don't skew
// the number (the run is single-threaded, so CPU time is honest
// throughput); multi-shard rows (--shards, ISSUE 8) run the reception
// sweep on a worker pool, where CPU time would sum across workers and
// hide the speedup, so they are timed on the monotonic wall clock.
//
// `--shards N[,N...]` adds an intra-run sharding axis: every workload ×
// engine cell reruns per shard count, and the deterministic counter
// columns must be identical across shard counts (the set_shards
// determinism contract) — the pinned baseline enforces that, while the
// rounds/sec column shows the multi-shard wall-clock speedup.
//
// `--smoke` shrinks the grid for CI; rows land in BENCH_engine_step.json
// when RADIOCAST_BENCH_JSON_DIR is set. All counter columns are
// deterministic (fixed seeds, no wall-clock dependence) — only the
// time-derived columns vary between machines, which is what
// scripts/bench_compare.py's tolerance applies to.
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "bench_util.hpp"
#include "radio/network.hpp"
#include "radio/node.hpp"

using namespace radiocast;

namespace {

/// Process CPU time in seconds (immune to scheduler preemption by other
/// tenants of the machine; the bench is single-threaded).
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Monotonic wall time in seconds — the honest metric once shard workers
/// run in parallel (CPU time would count every worker's cycles and report
/// no speedup at all).
double wall_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Fixed-schedule protocol: transmits iff bit (round mod 64) of `pattern`
/// is set; the message is a 1-group plain packet with a 16-byte payload,
/// mirroring what the dissemination stages put on the air.
class ScheduledNode final : public radio::NodeProtocol {
 public:
  ScheduledNode(radio::NodeId self, std::uint64_t pattern, const radio::Packet& packet)
      : pattern_(pattern), packet_(packet) {
    (void)self;
  }

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    if (((pattern_ >> (round & 63)) & 1) == 0) return std::nullopt;
    radio::PlainPacketMsg msg;
    msg.packet.id = packet_.id;
    if (radio::PayloadArena* arena = payload_arena()) {
      msg.packet.payload = arena->acquire_copy(packet_.payload);
    } else {
      msg.packet.payload = packet_.payload;
    }
    msg.group_id = 0;
    msg.group_count = 1;
    msg.group_size = 1;
    return msg;
  }

  void on_receive(radio::Round /*round*/, const radio::Message& /*msg*/) override {
    ++receptions_;
  }

 private:
  std::uint64_t pattern_ = 0;
  radio::Packet packet_;
  std::uint64_t receptions_ = 0;
};

/// One-bit variant of ScheduledNode: same schedule semantics, AlarmMsg on
/// the air. This is the scalar-side twin of ScheduledAlarmSource — the two
/// must agree bit for bit so scalar and bitset rows stay comparable.
class ScheduledAlarmNode final : public radio::NodeProtocol {
 public:
  explicit ScheduledAlarmNode(std::uint64_t pattern) : pattern_(pattern) {}

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    if (((pattern_ >> (round & 63)) & 1) == 0) return std::nullopt;
    return radio::AlarmMsg{};
  }

  void on_receive(radio::Round /*round*/, const radio::Message& /*msg*/) override {
    ++receptions_;
  }

 private:
  std::uint64_t pattern_ = 0;
  std::uint64_t receptions_ = 0;
};

/// Bulk transmit source for the alarm schedule: the per-node patterns are
/// pre-transposed into 64 phase rows (phase p row = one bit per node, set
/// iff bit p of that node's pattern is set), so fill_transmit_words is a
/// single row copy — the engine-side cost of the schedule is O(n/64) words
/// instead of n virtual calls.
class ScheduledAlarmSource final : public radio::PackedTransmitSource {
 public:
  ScheduledAlarmSource(const std::vector<std::uint64_t>& patterns) {
    const std::size_t words = (patterns.size() + 63) / 64;
    phase_rows_.assign(64, std::vector<std::uint64_t>(words, 0));
    for (std::size_t v = 0; v < patterns.size(); ++v) {
      for (std::uint32_t p = 0; p < 64; ++p) {
        if ((patterns[v] >> p) & 1)
          phase_rows_[p][v >> 6] |= 1ULL << (v & 63);
      }
    }
  }

  void fill_transmit_words(radio::Round round, std::uint64_t* words,
                           std::size_t num_words) override {
    const std::vector<std::uint64_t>& row = phase_rows_[round & 63];
    const std::size_t n = std::min(num_words, row.size());
    std::memcpy(words, row.data(), n * sizeof(std::uint64_t));
    if (n < num_words) std::memset(words + n, 0, (num_words - n) * sizeof(std::uint64_t));
  }

  radio::MessageBody packed_body(radio::Round /*round*/, radio::NodeId /*from*/) override {
    return radio::AlarmMsg{};
  }

 private:
  std::vector<std::vector<std::uint64_t>> phase_rows_;
};

/// A pattern word with exactly `ones` bits set, placed by the rng — the
/// per-round transmit probability is ones/64, identical across reps.
std::uint64_t make_pattern(std::uint32_t ones, Rng& rng) {
  std::uint64_t word = 0;
  while (static_cast<std::uint32_t>(__builtin_popcountll(word)) < ones) {
    word |= 1ULL << rng.next_below(64);
  }
  return word;
}

/// Ring + random chords within a +-`window` id window (wraparound), target
/// degree ~`deg`. Built in O(n * deg): the bounded window keeps every CSR
/// row inside at most ceil(2*window/64)+1 words, the regime the packed
/// adjacency compresses best — and a plausible stand-in for the unit-disk
/// topologies the paper's model targets.
graph::Graph make_window_graph(graph::NodeId n, std::uint32_t window, std::uint32_t deg,
                               Rng& rng) {
  graph::Graph g(n);
  for (graph::NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  const std::uint64_t chords = static_cast<std::uint64_t>(n) * (deg > 2 ? (deg - 2) / 2 : 0);
  for (std::uint64_t i = 0; i < chords; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.next_below(n));
    const auto off = static_cast<std::uint32_t>(2 + rng.next_below(window - 1));
    g.add_edge(u, (u + off) % n);
  }
  g.finalize();
  return g;
}

struct Workload {
  std::string name;
  std::uint32_t pattern_ones;  // transmit probability = ones/64
  bool alarm = false;          // AlarmMsg schedule + packed source on bitset
};

struct RowResult {
  std::uint64_t rounds = 0;
  double best_seconds = 0.0;
  radio::TraceCounters counters;
  std::uint64_t sum_tx_degree = 0;  // Σ over transmissions of deg(sender)
  std::uint32_t n = 0;
  std::uint32_t payload_bytes = 0;
};

/// Analytic bytes-touched-per-round: 4B per awake-list slot scanned, per
/// transmission the neighbor id walk (4B each) plus the message body
/// (struct + payload), and per touched node the reach_count/reach_source
/// bookkeeping plus the Phase-3 revisit (~24B). An estimate, not a
/// hardware counter — but it moves exactly when the engine's memory
/// layout does.
double touched_bytes_model(const RowResult& r) {
  const radio::TraceCounters& c = r.counters;
  const std::uint64_t touched =
      c.deliveries + c.collision_slots + c.deaf_slots + c.fault_drops;
  const double per_tx_body = sizeof(radio::Message) + static_cast<double>(r.payload_bytes);
  const double total = 4.0 * static_cast<double>(r.n) * static_cast<double>(r.rounds) +
                       4.0 * static_cast<double>(r.sum_tx_degree) +
                       per_tx_body * static_cast<double>(c.transmissions) +
                       24.0 * static_cast<double>(touched);
  return total / static_cast<double>(r.rounds);
}

RowResult run_workload(const graph::Graph& g, const Workload& w, std::uint64_t rounds,
                       int reps, radio::EngineMode engine, std::uint32_t shards) {
  const std::uint32_t n = g.num_nodes();
  // Deterministic per-node schedule + payloads (fixed seed, shared by the
  // accounting pass, every timed rep, and both engine modes).
  Rng pattern_rng(0xe57a6eull * (w.pattern_ones + 1));
  std::vector<std::uint64_t> patterns(n);
  std::vector<radio::Packet> packets(w.alarm ? 0 : n);
  for (radio::NodeId v = 0; v < n; ++v) {
    patterns[v] = make_pattern(w.pattern_ones, pattern_rng);
    if (w.alarm) continue;
    packets[v].id = radio::make_packet_id(v, 0);
    packets[v].payload.resize(16);
    for (auto& byte : packets[v].payload) {
      byte = static_cast<std::uint8_t>(pattern_rng() & 0xff);
    }
  }

  RowResult row;
  row.rounds = rounds;
  row.n = n;
  row.payload_bytes = w.alarm ? 0 : 16;

  // Accounting pass (untimed): Σ deg(sender) over the fixed schedule.
  // Per-phase transmit-degree sums, then one pass over the rounds.
  std::uint64_t phase_deg[64] = {};
  for (radio::NodeId v = 0; v < n; ++v) {
    for (std::uint32_t p = 0; p < 64; ++p) {
      if ((patterns[v] >> p) & 1) phase_deg[p] += g.degree(v);
    }
  }
  for (std::uint64_t r = 0; r < rounds; ++r) row.sum_tx_degree += phase_deg[r & 63];

  std::optional<ScheduledAlarmSource> source;
  if (w.alarm && engine == radio::EngineMode::kBitset) source.emplace(patterns);

  const bool wall = shards > 1;  // parallel sweeps: CPU time sums workers
  row.best_seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    radio::Network net(g);
    net.set_engine(engine);
    if (shards > 1) net.set_shards(shards);
    if (source) net.set_packed_source(&*source);
    for (radio::NodeId v = 0; v < n; ++v) {
      if (w.alarm) {
        net.set_protocol(v, std::make_unique<ScheduledAlarmNode>(patterns[v]));
      } else {
        net.set_protocol(v, std::make_unique<ScheduledNode>(v, patterns[v], packets[v]));
      }
      net.wake_at_start(v);
    }
    const double start = wall ? wall_seconds() : cpu_seconds();
    for (std::uint64_t r = 0; r < rounds; ++r) net.step();
    const double seconds = (wall ? wall_seconds() : cpu_seconds()) - start;
    if (seconds < row.best_seconds) row.best_seconds = seconds;
    if (rep == 0) row.counters = net.trace().counters();
  }
  return row;
}

void emit_row(radiocast::Table& table, benchutil::JsonReport& json, const Workload& w,
              radio::EngineMode engine, std::uint32_t shards, const RowResult& row) {
  const radio::TraceCounters& c = row.counters;
  const std::uint64_t touched =
      c.deliveries + c.collision_slots + c.deaf_slots + c.fault_drops;
  const double rps = static_cast<double>(row.rounds) / row.best_seconds;
  const double tx_per_round =
      static_cast<double>(c.transmissions) / static_cast<double>(row.rounds);
  const double touched_per_round =
      static_cast<double>(touched) / static_cast<double>(row.rounds);
  const double bytes_per_round = touched_bytes_model(row);
  table.row()
      .add(w.name)
      .add(radio::engine_mode_name(engine))
      .add(shards)
      .add(row.n)
      .add(row.rounds)
      .add(tx_per_round, 1)
      .add(touched_per_round, 1)
      .add(rps, 0)
      .add(bytes_per_round, 0);
  json.row()
      .col("workload", w.name)
      .col("engine", radio::engine_mode_name(engine))
      .col("shards", shards)
      .col("n", row.n)
      .col("rounds", row.rounds)
      .col("transmissions", c.transmissions)
      .col("deliveries", c.deliveries)
      .col("collision_slots", c.collision_slots)
      .col("deaf_slots", c.deaf_slots)
      .col("tx_per_round", tx_per_round)
      .col("touched_per_round", touched_per_round)
      .col("rounds_per_sec", rps)
      .col("est_bytes_per_round", bytes_per_round);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string engine_arg = "both";
  std::string shards_arg = "1,4";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards_arg = argv[++i];
    }
  }
  std::vector<radio::EngineMode> engines;
  if (engine_arg == "scalar" || engine_arg == "both")
    engines.push_back(radio::EngineMode::kScalar);
  if (engine_arg == "bitset" || engine_arg == "both")
    engines.push_back(radio::EngineMode::kBitset);
  std::vector<std::uint32_t> shard_counts;
  for (std::size_t pos = 0; pos < shards_arg.size();) {
    const std::size_t comma = shards_arg.find(',', pos);
    const std::string tok =
        shards_arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    if (v >= 1) shard_counts.push_back(static_cast<std::uint32_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (engines.empty() || shard_counts.empty()) {
    std::cerr << "usage: bench_engine_step [--smoke] [--engine scalar|bitset|both] "
                 "[--shards N[,N...]]\n";
    return 1;
  }

  benchutil::banner("engine_step",
                    "Network::step in isolation: rounds/sec and bytes-touched/round "
                    "on fixed dense/sparse transmission schedules, per engine mode");
  benchutil::JsonReport json("engine_step");
  json.meta("smoke", smoke ? "1" : "0");
  json.meta("engines", engine_arg);
  json.meta("shards", shards_arg);

  const std::uint32_t n = smoke ? 512 : 2048;
  const std::uint64_t rounds = smoke ? 1024 : 4096;
  const int reps = smoke ? 2 : 3;

  // Average degree ~16 random connected topology, fixed seed.
  Rng graph_rng(0xc5a11ull);
  const double p = 16.0 / static_cast<double>(n - 1);
  const graph::Graph g = graph::make_gnp_connected(n, p, graph_rng);
  print_meta(std::cout, "graph", "gnp " + g.summary());
  json.meta("graph", g.summary());

  radiocast::Table table({"workload", "engine", "shards", "n", "rounds", "tx/round",
                          "touched/round", "rounds/sec", "est bytes/round"});
  const std::vector<Workload> workloads = {
      {"dense", 16}, {"sparse", 1}, {"alarm", 16, /*alarm=*/true}};
  for (const Workload& w : workloads) {
    for (const radio::EngineMode engine : engines) {
      for (const std::uint32_t shards : shard_counts) {
        emit_row(table, json, w, engine, shards,
                 run_workload(g, w, rounds, reps, engine, shards));
      }
    }
  }

  if (!smoke) {
    // The ISSUE 7 acceptance rows: a 10^5-node dense alarm schedule (the
    // bitset engine must clear >= 5x the scalar rounds/sec here) and a
    // 10^6-node sparse sweep that must simply complete. Window topologies
    // keep graph construction O(n * deg) and CSR rows word-compact.
    Rng big_rng(0xb16b00b5ull);
    const graph::Graph g100k = make_window_graph(100000, 64, 16, big_rng);
    print_meta(std::cout, "graph_100k", "window " + g100k.summary());
    const graph::Graph g1m = make_window_graph(1000000, 64, 4, big_rng);
    print_meta(std::cout, "graph_1m", "window " + g1m.summary());

    // p = 24/64: the collision-dominated regime (the one the Decay
    // analysis lives in) — most slots carry >= 2 transmitters, which the
    // bitset engine classifies by popcount instead of per-node walks.
    const Workload dense_big{"alarm_dense_100k", 24, /*alarm=*/true};
    const Workload sparse_big{"alarm_sparse_1m", 1, /*alarm=*/true};
    for (const radio::EngineMode engine : engines) {
      for (const std::uint32_t shards : shard_counts) {
        emit_row(table, json, dense_big, engine, shards,
                 run_workload(g100k, dense_big, /*rounds=*/256, /*reps=*/1, engine,
                              shards));
      }
    }
    for (const radio::EngineMode engine : engines) {
      for (const std::uint32_t shards : shard_counts) {
        emit_row(table, json, sparse_big, engine, shards,
                 run_workload(g1m, sparse_big, /*rounds=*/64, /*reps=*/1, engine,
                              shards));
      }
    }
  }

  table.print(std::cout);
  return 0;
}
