// Engine microbenchmark: isolates radio::Network::step from all protocol
// logic (ISSUE 4 satellite).
//
// Every node runs a ScheduledNode whose transmission decisions come from a
// fixed per-node 64-bit pattern — no RNG draws, no protocol state, no
// decoding — so the measured cost is the engine itself: the Phase-1 awake
// scan, the Phase-2 neighbor walk over the topology, and the Phase-3
// delivery loop, plus the per-transmission payload traffic. Two workloads
// bracket the engine's regimes:
//
//   dense   p=1/4 transmit probability: heavy collisions, touched ~ n
//   sparse  p=1/64: few transmissions, touched << n
//
// Each row reports rounds/sec (best of `reps` timed repetitions, measured
// on the process CPU clock so shared/noisy-neighbor machines don't skew
// the number — the bench is single-threaded, so CPU time is honest
// throughput) and an analytic bytes-touched-per-round estimate derived
// from the run's exact counters (see touched_bytes_model below), so
// memory-layout changes to the engine have a dedicated signal instead of
// riding end-to-end benches.
//
// `--smoke` shrinks the grid for CI; rows land in BENCH_engine_step.json
// when RADIOCAST_BENCH_JSON_DIR is set. All counter columns are
// deterministic (fixed seeds, no wall-clock dependence) — only the
// time-derived columns vary between machines, which is what
// scripts/bench_compare.py's tolerance applies to.
#include <ctime>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "radio/network.hpp"
#include "radio/node.hpp"

using namespace radiocast;

namespace {

/// Process CPU time in seconds (immune to scheduler preemption by other
/// tenants of the machine; the bench is single-threaded).
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Fixed-schedule protocol: transmits iff bit (round mod 64) of `pattern`
/// is set; the message is a 1-group plain packet with a 16-byte payload,
/// mirroring what the dissemination stages put on the air.
class ScheduledNode final : public radio::NodeProtocol {
 public:
  ScheduledNode(radio::NodeId self, std::uint64_t pattern, const radio::Packet& packet)
      : pattern_(pattern), packet_(packet) {
    (void)self;
  }

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    if (((pattern_ >> (round & 63)) & 1) == 0) return std::nullopt;
    radio::PlainPacketMsg msg;
    msg.packet.id = packet_.id;
    if (radio::PayloadArena* arena = payload_arena()) {
      msg.packet.payload = arena->acquire_copy(packet_.payload);
    } else {
      msg.packet.payload = packet_.payload;
    }
    msg.group_id = 0;
    msg.group_count = 1;
    msg.group_size = 1;
    return msg;
  }

  void on_receive(radio::Round /*round*/, const radio::Message& /*msg*/) override {
    ++receptions_;
  }

  std::uint64_t receptions() const { return receptions_; }

 private:
  std::uint64_t pattern_ = 0;
  radio::Packet packet_;
  std::uint64_t receptions_ = 0;
};

/// A pattern word with exactly `ones` bits set, placed by the rng — the
/// per-round transmit probability is ones/64, identical across reps.
std::uint64_t make_pattern(std::uint32_t ones, Rng& rng) {
  std::uint64_t word = 0;
  while (static_cast<std::uint32_t>(__builtin_popcountll(word)) < ones) {
    word |= 1ULL << rng.next_below(64);
  }
  return word;
}

struct Workload {
  std::string name;
  std::uint32_t pattern_ones;  // transmit probability = ones/64
};

struct RowResult {
  std::uint64_t rounds = 0;
  double best_seconds = 0.0;
  radio::TraceCounters counters;
  std::uint64_t sum_tx_degree = 0;  // Σ over transmissions of deg(sender)
  std::uint32_t n = 0;
};

/// Analytic bytes-touched-per-round: 4B per awake-list slot scanned, per
/// transmission the neighbor id walk (4B each) plus the message body
/// (struct + payload), and per touched node the reach_count/reach_source
/// bookkeeping plus the Phase-3 revisit (~24B). An estimate, not a
/// hardware counter — but it moves exactly when the engine's memory
/// layout does.
double touched_bytes_model(const RowResult& r) {
  const radio::TraceCounters& c = r.counters;
  const std::uint64_t touched =
      c.deliveries + c.collision_slots + c.deaf_slots + c.fault_drops;
  const double per_tx_body = sizeof(radio::Message) + 16.0;
  const double total = 4.0 * static_cast<double>(r.n) * static_cast<double>(r.rounds) +
                       4.0 * static_cast<double>(r.sum_tx_degree) +
                       per_tx_body * static_cast<double>(c.transmissions) +
                       24.0 * static_cast<double>(touched);
  return total / static_cast<double>(r.rounds);
}

RowResult run_workload(const graph::Graph& g, const Workload& w, std::uint64_t rounds,
                       int reps) {
  const std::uint32_t n = g.num_nodes();
  // Deterministic per-node schedule + payloads (fixed seed, shared by the
  // accounting pass and every timed rep).
  Rng pattern_rng(0xe57a6eull * (w.pattern_ones + 1));
  std::vector<std::uint64_t> patterns(n);
  std::vector<radio::Packet> packets(n);
  for (radio::NodeId v = 0; v < n; ++v) {
    patterns[v] = make_pattern(w.pattern_ones, pattern_rng);
    packets[v].id = radio::make_packet_id(v, 0);
    packets[v].payload.resize(16);
    for (auto& byte : packets[v].payload) {
      byte = static_cast<std::uint8_t>(pattern_rng() & 0xff);
    }
  }

  RowResult row;
  row.rounds = rounds;
  row.n = n;

  // Accounting pass (untimed): Σ deg(sender) over the fixed schedule.
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (radio::NodeId v = 0; v < n; ++v) {
      if ((patterns[v] >> (r & 63)) & 1) row.sum_tx_degree += g.degree(v);
    }
  }

  row.best_seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    radio::Network net(g);
    for (radio::NodeId v = 0; v < n; ++v) {
      net.set_protocol(v, std::make_unique<ScheduledNode>(v, patterns[v], packets[v]));
      net.wake_at_start(v);
    }
    const double start = cpu_seconds();
    for (std::uint64_t r = 0; r < rounds; ++r) net.step();
    const double seconds = cpu_seconds() - start;
    if (seconds < row.best_seconds) row.best_seconds = seconds;
    if (rep == 0) row.counters = net.trace().counters();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  benchutil::banner("engine_step",
                    "Network::step in isolation: rounds/sec and bytes-touched/round "
                    "on fixed dense/sparse transmission schedules");
  benchutil::JsonReport json("engine_step");
  json.meta("smoke", smoke ? "1" : "0");

  const std::uint32_t n = smoke ? 512 : 2048;
  const std::uint64_t rounds = smoke ? 1024 : 4096;
  const int reps = smoke ? 2 : 3;

  // Average degree ~16 random connected topology, fixed seed.
  Rng graph_rng(0xc5a11ull);
  const double p = 16.0 / static_cast<double>(n - 1);
  const graph::Graph g = graph::make_gnp_connected(n, p, graph_rng);
  print_meta(std::cout, "graph", "gnp " + g.summary());
  json.meta("graph", g.summary());

  radiocast::Table table({"workload", "n", "rounds", "tx/round", "touched/round",
                          "rounds/sec", "est bytes/round"});
  const std::vector<Workload> workloads = {{"dense", 16}, {"sparse", 1}};
  for (const Workload& w : workloads) {
    const RowResult row = run_workload(g, w, rounds, reps);
    const radio::TraceCounters& c = row.counters;
    const std::uint64_t touched =
        c.deliveries + c.collision_slots + c.deaf_slots + c.fault_drops;
    const double rps = static_cast<double>(row.rounds) / row.best_seconds;
    const double tx_per_round =
        static_cast<double>(c.transmissions) / static_cast<double>(row.rounds);
    const double touched_per_round =
        static_cast<double>(touched) / static_cast<double>(row.rounds);
    const double bytes_per_round = touched_bytes_model(row);
    table.row()
        .add(w.name)
        .add(n)
        .add(row.rounds)
        .add(tx_per_round, 1)
        .add(touched_per_round, 1)
        .add(rps, 0)
        .add(bytes_per_round, 0);
    json.row()
        .col("workload", w.name)
        .col("n", n)
        .col("rounds", row.rounds)
        .col("transmissions", c.transmissions)
        .col("deliveries", c.deliveries)
        .col("collision_slots", c.collision_slots)
        .col("deaf_slots", c.deaf_slots)
        .col("tx_per_round", tx_per_round)
        .col("touched_per_round", touched_per_round)
        .col("rounds_per_sec", rps)
        .col("est_bytes_per_round", bytes_per_round);
  }
  table.print(std::cout);
  return 0;
}
