// E1 — Theorem 2 headline: amortized rounds per packet.
//
// Paper: the coded protocol delivers k packets in
//   O(k·logΔ + (D+log n)·log n·logΔ)
// rounds w.h.p. — amortized O(logΔ) per packet — vs O(logΔ·log n)
// amortized for the BII-style baseline and O((D+log n)·logΔ) for
// sequential per-packet BGI.
//
// This bench sweeps k on fixed topologies and reports, per algorithm, the
// median amortized rounds/packet. Expected shape: the coded column
// flattens to a constant ≈ c·logΔ once k passes the additive term; the
// uncoded column flattens a Θ(log n) factor higher; sequential BGI stays
// flat but far higher (amortized cost never amortizes the diameter away).
#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E1 bench_amortized",
         "amortized rounds/packet: coded O(logD) vs BII-style O(logD*logn)");

  struct Topo {
    std::string name;
    graph::Graph g;
  };
  Rng grng(7);
  std::vector<Topo> topologies;
  topologies.push_back({"geometric n=64", graph::make_random_geometric(64, 0.25, grng)});
  topologies.push_back({"gnp n=64", graph::make_gnp_connected(
                                        64, 2.0 * std::log(64.0) / 64.0, grng)});

  for (const Topo& topo : topologies) {
    const radio::Knowledge know = radio::Knowledge::exact(topo.g);
    print_meta(std::cout, "graph", topo.name + " (" + topo.g.summary() +
                                       ", D=" + std::to_string(know.d_hat) + ")");
    print_meta(std::cout, "log_delta", std::to_string(know.log_delta()));
    print_meta(std::cout, "log_n", std::to_string(know.log_n()));

    // "coded p90" is the seed-grid tail (RunningStats nearest-rank, an
    // exact order statistic at bench seed counts) — w.h.p. claims are
    // about the tail, so the spread matters as much as the median.
    Table t({"k", "coded rounds", "coded p90", "coded r/pkt", "uncoded rounds",
             "uncoded r/pkt", "seqBGI rounds", "seqBGI r/pkt", "uncoded/coded",
             "ok"});
    for (const std::uint32_t k : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
      const AlgoStats coded = run_seeds(baselines::Algo::kCoded, topo.g, know, k,
                                        core::PlacementMode::kRandom, seeds);
      const AlgoStats uncoded =
          run_seeds(baselines::Algo::kUncodedPipeline, topo.g, know, k,
                    core::PlacementMode::kRandom, seeds);
      const AlgoStats seq = run_seeds(baselines::Algo::kSequentialBgi, topo.g, know,
                                      k, core::PlacementMode::kRandom, seeds);
      const bool all_ok = coded.successes == coded.runs &&
                          uncoded.successes == uncoded.runs &&
                          seq.successes == seq.runs;
      t.row()
          .add(k)
          .add(coded.median_rounds, 0)
          .add(coded.p90_rounds, 0)
          .add(coded.median_amortized, 1)
          .add(uncoded.median_rounds, 0)
          .add(uncoded.median_amortized, 1)
          .add(seq.median_rounds, 0)
          .add(seq.median_amortized, 1)
          .add(uncoded.median_amortized / std::max(1.0, coded.median_amortized), 2)
          .add(all_ok ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "# expected: coded r/pkt flattens to Theta(logD); uncoded/coded\n"
               "# ratio grows towards Theta(log n); sequential BGI worst at large k.\n";

  // Supplementary: the naive-gossip comparator (small k only — its cost
  // grows superlinearly, see src/baselines/gossip_flood.hpp).
  std::cout << "\n-- supplementary: naive gossip flood --\n";
  {
    const graph::Graph& g = topologies[0].g;
    const radio::Knowledge know = radio::Knowledge::exact(g);
    Table t({"k", "gossip rounds", "gossip r/pkt", "coded r/pkt", "ok"});
    for (const std::uint32_t k : {16u, 64u, 256u}) {
      const AlgoStats gossip = run_seeds(baselines::Algo::kGossipFlood, g, know, k,
                                         core::PlacementMode::kRandom, seeds);
      const AlgoStats coded = run_seeds(baselines::Algo::kCoded, g, know, k,
                                        core::PlacementMode::kRandom, seeds);
      t.row()
          .add(k)
          .add(gossip.median_rounds, 0)
          .add(gossip.median_amortized, 1)
          .add(coded.median_amortized, 1)
          .add(gossip.successes == gossip.runs ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "# expected: gossip's r/pkt grows with k (adaptive windows give\n"
                 "# each packet ~1/k of the channel) while coded's shrinks.\n";
  }
  return 0;
}
