// E3 — the logΔ dependence of the per-packet cost.
//
// Paper: the k-term of Theorem 2 is k·logΔ. We fix n and k, steer Δ via
// cluster-chain graphs (Δ = clique size, D ≈ 2·#cliques held ~constant in
// hop terms by shrinking the chain as cliques grow... here we hold the
// node count fixed and let the family trade depth for degree), and fit the
// amortized cost against logΔ.
//
// Expected shape: amortized rounds/packet grows linearly in logΔ; the
// linear fit reports slope >> intercept share and r² near 1.
#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E3 bench_delta_scaling", "k-term of Theorem 2 is k*logD (fit vs logD)");

  const std::uint32_t k = 256;
  print_meta(std::cout, "k", std::to_string(k));
  print_meta(std::cout, "family", "cluster_chain, n = 64 nodes, clique size sweep");

  Table t({"clique(Δ+1)", "logΔ", "D", "rounds", "r/pkt", "stage4/k",
           "stage4/k/logΔ", "ok"});
  std::vector<double> xs, ys, s4ys;
  for (const std::uint32_t clique : {4u, 8u, 16u, 32u, 64u}) {
    const std::uint32_t chains = 64 / clique;
    const graph::Graph g = graph::make_cluster_chain(chains, clique);
    const radio::Knowledge know = radio::Knowledge::exact(g);
    const AlgoStats coded = run_seeds(baselines::Algo::kCoded, g, know, k,
                                      core::PlacementMode::kRandom, seeds);
    const double logd = static_cast<double>(know.log_delta());
    const double s4_per_pkt = coded.median_stage4 / k;
    xs.push_back(logd);
    ys.push_back(coded.median_amortized);
    s4ys.push_back(s4_per_pkt);
    t.row()
        .add(clique)
        .add(logd, 0)
        .add(know.d_hat)
        .add(coded.median_rounds, 0)
        .add(coded.median_amortized, 1)
        .add(s4_per_pkt, 1)
        .add(s4_per_pkt / logd, 1)
        .add(coded.successes == coded.runs ? "yes" : "NO");
  }
  t.print(std::cout);

  const LinearFit fit = fit_linear(xs, ys);
  const LinearFit s4fit = fit_linear(xs, s4ys);
  std::cout << "# fit total:  r/pkt = " << fit.intercept << " + " << fit.slope
            << " * logD  (r2 = " << fit.r2 << ")\n";
  std::cout << "# fit stage4: s4/k  = " << s4fit.intercept << " + " << s4fit.slope
            << " * logD  (r2 = " << s4fit.r2 << ")\n";
  std::cout << "# expected: the stage-4 per-packet cost is ~proportional to logD\n"
               "# (small intercept relative to slope, r2 near 1, stage4/k/logD\n"
               "# ~ constant ~ spacing*forward_epochs/group_size). The total\n"
               "# r/pkt adds Stage 3's Delta-independent O(k) term — Theorem 2's\n"
               "# k-term is k*logD + k — so the total keeps a positive intercept.\n";
  return 0;
}
