// E9 — BGI single-message broadcast completes in O((D+log n)·logΔ) rounds
// (Bar-Yehuda, Goldreich, Itai; the paper's Stage-2/ALARM primitive).
//
// We measure, per graph family, the median round at which the last node
// receives a single-source flood, and normalize by (D+log n)·logΔ.
//
// Expected shape: the normalized column is a roughly family-independent
// constant; absolute rounds track D for deep families and log n for flat
// ones.
#include <memory>

#include "bench_util.hpp"
#include "protocols/bgi_broadcast.hpp"
#include "protocols/decay.hpp"
#include "radio/network.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E9 bench_decay_bgi",
         "BGI broadcast completes in O((D+logn)*logD) rounds whp");

  Table t({"family", "n", "D", "logΔ", "median rounds", "rounds/((D+logn)logΔ)",
           "all reached"});
  Rng grng(41);
  for (const std::string& family : graph::named_families()) {
    const graph::Graph g = graph::make_named(family, 96, grng);
    const radio::Knowledge know = radio::Knowledge::exact(g);
    protocols::BgiBroadcastNode::Config cfg;
    cfg.know = know;
    cfg.epochs = 0;  // default window

    SampleSet rounds;
    int reached = 0, runs = 0;
    for (int s = 0; s < seeds; ++s) {
      radio::Network net(g);
      Rng master(50 + s);
      for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
        net.set_protocol(v, std::make_unique<protocols::BgiBroadcastNode>(
                                cfg, v == 0,
                                v == 0 ? std::optional<radio::MessageBody>(
                                             radio::AlarmMsg{})
                                       : std::nullopt,
                                master.split()));
      }
      net.wake_at_start(0);
      const std::uint64_t window =
          static_cast<std::uint64_t>(protocols::bgi_default_epochs(know)) *
          know.log_delta();
      const bool all = net.run_until_done(window);
      ++runs;
      if (all) {
        ++reached;
        rounds.add(static_cast<double>(net.current_round()));
      }
    }
    const double norm = static_cast<double>(know.d_hat + know.log_n()) *
                        know.log_delta();
    t.row()
        .add(family)
        .add(g.num_nodes())
        .add(know.d_hat)
        .add(know.log_delta())
        .add(rounds.empty() ? -1.0 : rounds.median(), 0)
        .add(rounds.empty() ? -1.0 : rounds.median() / norm, 2)
        .add(std::to_string(reached) + "/" + std::to_string(runs));
  }
  t.print(std::cout);
  std::cout << "# expected: normalized column is an O(1) constant across families\n"
               "# (the BGI bound is tight up to constants on both deep and flat\n"
               "# graphs); every run reaches all nodes within the default window.\n";

  // Decay formulation ablation: the paper's independent-probability rule
  // vs the original BGI coin-flip ("persistent") rule — per-epoch success
  // probability for m co-located transmitters, epoch length log(64) = 6.
  std::cout << "\n-- Decay per-epoch success probability (epoch = 6 rounds) --\n";
  {
    Table t2({"m transmitters", "independent (paper)", "persistent (BGI'92)"});
    const int trials = 20000;
    for (const int m : {1, 2, 4, 8, 16, 32, 64}) {
      Rng rng(900 + m);
      protocols::Decay independent(6);
      BernoulliCounter ind_success;
      for (int trial = 0; trial < trials; ++trial) {
        bool received = false;
        for (std::uint32_t s = 0; s < 6 && !received; ++s) {
          int tx = 0;
          for (int i = 0; i < m; ++i) {
            if (independent.decide(s, rng)) ++tx;
          }
          received = tx == 1;
        }
        ind_success.add(received);
      }
      std::vector<protocols::PersistentDecay> nodes(
          static_cast<std::size_t>(m), protocols::PersistentDecay(6));
      BernoulliCounter per_success;
      for (int trial = 0; trial < trials; ++trial) {
        bool received = false;
        for (std::uint32_t s = 0; s < 6; ++s) {
          int tx = 0;
          for (auto& node : nodes) {
            if (node.decide(static_cast<std::uint64_t>(trial) * 6 + s, rng)) ++tx;
          }
          received |= tx == 1;
        }
        per_success.add(received);
      }
      t2.row().add(m).add(ind_success.rate(), 3).add(per_success.rate(), 3);
    }
    t2.print(std::cout);
    std::cout << "# expected: both formulations keep the per-epoch success\n"
                 "# probability bounded below by a constant for all 1 <= m <= Δ;\n"
                 "# the persistent rule is slightly stronger at small m (its\n"
                 "# round-1 marginal is 1, so a lone transmitter always lands).\n";
  }
  return 0;
}
