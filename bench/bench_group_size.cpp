// E12 — Ablation of the paper's two Stage-4 design choices:
//   (a) group size s = ⌈log n⌉: why not smaller (wasted header budget,
//       more injection slots) or larger (decode needs more receptions than
//       a phase provides)?
//   (b) injection spacing 3: the minimum layer separation that keeps
//       concurrently active layers collision-disjoint; smaller spacings
//       break the invariant, larger ones only add latency.
//
// Expected shape: (a) total rounds are minimized near s = logn for the
// coded variant, while the uncoded variant degrades with s (coupon
// collector) and is best at s = 1; (b) spacing 1-2 loses correctness or
// stalls, spacing >= 3 works with cost growing linearly in the spacing.
#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E12 bench_group_size", "ablation: group size s and injection spacing");

  Rng grng(81);
  const graph::Graph g = graph::make_random_geometric(64, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  const std::uint32_t k = 256;
  print_meta(std::cout, "graph", g.summary());
  print_meta(std::cout, "k", std::to_string(k));
  print_meta(std::cout, "log n", std::to_string(know.log_n()));

  auto run_cfg = [&](core::KBroadcastConfig cfg) {
    SampleSet rounds;
    int ok = 0, runs = 0;
    for (int s = 0; s < seeds; ++s) {
      Rng prng(120 + s);
      const core::Placement placement = core::make_placement(
          g.num_nodes(), k, core::PlacementMode::kRandom, 16, prng);
      const core::RunResult r = core::run_kbroadcast(g, cfg, placement, 130 + s);
      ++runs;
      if (r.delivered_all) ++ok;
      rounds.add(static_cast<double>(r.total_rounds));
    }
    return std::make_pair(rounds.median(), std::make_pair(ok, runs));
  };

  std::cout << "\n-- (a) group size sweep --\n";
  Table ta({"s", "mode", "total rounds", "r/pkt", "delivered"});
  for (const std::uint32_t s : {1u, 2u, 4u, know.log_n(), 2 * know.log_n(),
                                4 * know.log_n(), 8 * know.log_n()}) {
    for (const bool coded : {true, false}) {
      core::KBroadcastConfig cfg = baselines::coded_config(know);
      cfg.coded = coded;
      cfg.group_size = s;
      const auto [rounds, okpair] = run_cfg(cfg);
      ta.row()
          .add(s)
          .add(coded ? "coded" : "uncoded")
          .add(rounds, 0)
          .add(rounds / k, 1)
          .add(std::to_string(okpair.first) + "/" + std::to_string(okpair.second));
    }
  }
  ta.print(std::cout);

  std::cout << "\n-- (b) injection spacing sweep (coded, s = log n) --\n";
  Table tb({"spacing", "total rounds", "r/pkt", "delivered"});
  for (const std::uint32_t spacing : {1u, 2u, 3u, 4u, 6u, know.d_hat + 1}) {
    core::KBroadcastConfig cfg = baselines::coded_config(know);
    cfg.group_spacing = spacing;
    const auto [rounds, okpair] = run_cfg(cfg);
    tb.row()
        .add(spacing)
        .add(rounds, 0)
        .add(rounds / k, 1)
        .add(std::to_string(okpair.first) + "/" + std::to_string(okpair.second));
  }
  tb.print(std::cout);
  std::cout << "# expected: coded cost is near-minimal at s = logn and flat-ish\n"
               "# beyond; uncoded cost grows with s. Spacing < 3 breaks the\n"
               "# pipeline disjointness (failures/stalls); spacing > 3 only adds\n"
               "# proportional latency — 3 is the paper's minimal safe choice.\n";
  return 0;
}
