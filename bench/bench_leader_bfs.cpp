// E10 — Fact 1 and Theorem 1: leader election in
// O((D+log n)·log n·logΔ) rounds and BFS construction in O(D·log n·logΔ)
// rounds, both w.h.p. correct.
//
// Stage lengths are schedule-fixed (that is the point: nodes must agree on
// them with no communication), so the bench reports the schedule cost and
// Monte-Carlo-verifies correctness: unique max-id leader; exact BFS
// distances and valid parents.
//
// Expected shape: rounds match the formulas exactly; correctness columns
// all pass; normalized columns are ~constant across families.
#include <memory>

#include "bench_util.hpp"
#include "core/runner.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E10 bench_leader_bfs",
         "Fact 1: leader in O((D+logn)logn logD); Thm 1: BFS in O(D logn logD)");

  Table t({"family", "n", "D", "stage1 rounds", "s1/((D+logn)lognlogΔ)",
           "stage2 rounds", "s2/(D logn logΔ)", "leader ok", "bfs ok"});
  Rng grng(61);
  for (const std::string& family : graph::named_families()) {
    const graph::Graph g = graph::make_named(family, 80, grng);
    const radio::Knowledge know = radio::Knowledge::exact(g);
    int leader_ok = 0, bfs_ok = 0, runs = 0;
    std::uint64_t s1 = 0, s2 = 0;
    for (int s = 0; s < seeds; ++s) {
      Rng prng(70 + s);
      const core::Placement placement = core::make_placement(
          g.num_nodes(), 12, core::PlacementMode::kRandom, 8, prng);
      const core::RunResult r = core::run_kbroadcast(
          g, baselines::coded_config(know), placement, 80 + s);
      ++runs;
      if (r.leader_ok) ++leader_ok;
      if (r.bfs_ok) ++bfs_ok;
      s1 = r.stage1_rounds;
      s2 = r.stage2_rounds;
    }
    const double n1 = static_cast<double>(know.d_hat + know.log_n()) *
                      know.log_n() * know.log_delta();
    const double n2 =
        static_cast<double>(know.d_hat) * know.log_n() * know.log_delta();
    t.row()
        .add(family)
        .add(g.num_nodes())
        .add(know.d_hat)
        .add(s1)
        .add(static_cast<double>(s1) / n1, 2)
        .add(s2)
        .add(static_cast<double>(s2) / n2, 2)
        .add(std::to_string(leader_ok) + "/" + std::to_string(runs))
        .add(std::to_string(bfs_ok) + "/" + std::to_string(runs));
  }
  t.print(std::cout);
  std::cout << "# expected: normalized stage costs are O(1) constants across\n"
               "# families; leader and BFS correct in every run (whp claims).\n";
  return 0;
}
