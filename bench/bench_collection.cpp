// E11 — Lemma 5: Stage 3 collects all k packets at the root in
// O(k + (D+log n)·log n) rounds, with the doubling estimator terminating
// at the first alarm-free phase.
//
// Expected shape: stage-3 rounds are ~flat while k < GRAB(x0)'s capacity,
// then grow linearly in k; phase counts show the doubling kick in; the
// final estimate brackets k (final/2 < effective load handled).
#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E11 bench_collection",
         "Lemma 5: stage 3 = O(k + (D+logn)logn) rounds, doubling estimator");

  Rng grng(71);
  const graph::Graph g = graph::make_random_geometric(64, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  core::KBroadcastConfig kcfg = baselines::coded_config(know);
  const core::ResolvedConfig rc = core::resolve(kcfg);
  print_meta(std::cout, "graph", g.summary() + " D=" + std::to_string(know.d_hat));
  print_meta(std::cout, "x0", std::to_string(rc.initial_estimate));

  Table t({"k", "stage3 rounds", "rounds/k", "phases", "final estimate", "ok"});
  for (const std::uint32_t k : {8u, 64u, 256u, 1024u, 4096u}) {
    core::montecarlo::KBroadcastSweep sweep;
    sweep.graph = &g;
    sweep.cfg = kcfg;
    sweep.k = k;
    sweep.placement_seed = [](int s) { return 90 + static_cast<std::uint64_t>(s); };
    sweep.run_seed = [](int s) { return 95 + static_cast<std::uint64_t>(s); };
    const std::vector<core::RunResult> results =
        core::montecarlo::run_kbroadcast_sweep(sweep, seeds);

    SampleSet rounds, phases, estimate;
    int ok = 0, runs = 0;
    for (const core::RunResult& r : results) {
      ++runs;
      if (r.delivered_all) ++ok;
      rounds.add(static_cast<double>(r.stage3_rounds));
      phases.add(static_cast<double>(r.collection_phases));
      estimate.add(static_cast<double>(r.final_estimate));
    }
    t.row()
        .add(k)
        .add(rounds.median(), 0)
        .add(rounds.median() / k, 1)
        .add(phases.median(), 0)
        .add(estimate.median(), 0)
        .add(ok == runs ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "# expected: rounds ~ flat until k exceeds GRAB(x0) capacity, then\n"
               "# linear in k (rounds/k approaches the OSPG constant 24+eps);\n"
               "# phases and final estimate double past that point.\n";
  return 0;
}
