// E13 — engineering microbenchmarks of the GF(2) kernels (google-benchmark).
//
// These are not paper claims; they document that the decoder is nowhere
// near the simulation bottleneck: decoding a ⌈log n⌉-wide group costs
// microseconds, i.e. the simulated radio rounds dominate wall time.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "gf2/coding.hpp"
#include "gf2/matrix.hpp"
#include "gf2/solver.hpp"

namespace {

using namespace radiocast;

std::vector<gf2::Payload> make_group(std::size_t w, std::size_t bytes, Rng& rng) {
  std::vector<gf2::Payload> group;
  for (std::size_t i = 0; i < w; ++i) {
    gf2::Payload p(bytes);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng() & 0xff);
    group.push_back(std::move(p));
  }
  return group;
}

void BM_EncodeRandom(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const gf2::GroupEncoder enc(make_group(w, 24, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_random(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeRandom)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_DecodeFullGroup(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const gf2::GroupEncoder enc(make_group(w, 24, rng));
  // Pre-generate plenty of rows so the loop measures decoding only.
  std::vector<gf2::CodedRow> rows;
  for (std::size_t i = 0; i < 4 * w + 64; ++i) rows.push_back(enc.encode_random(rng));
  for (auto _ : state) {
    gf2::IncrementalDecoder dec(w);
    std::size_t i = 0;
    while (!dec.complete() && i < rows.size()) dec.add_row(rows[i++]);
    benchmark::DoNotOptimize(dec.packets());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * w));
}
BENCHMARK(BM_DecodeFullGroup)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_AddRedundantRow(benchmark::State& state) {
  // Worst-case add_row: full reduction against a complete basis.
  const auto w = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const gf2::GroupEncoder enc(make_group(w, 24, rng));
  gf2::IncrementalDecoder dec(w);
  while (!dec.complete()) dec.add_row(enc.encode_random(rng));
  for (auto _ : state) {
    gf2::CodedRow row = enc.encode_random(rng);
    benchmark::DoNotOptimize(dec.add_row(std::move(row)));
  }
}
BENCHMARK(BM_AddRedundantRow)->Arg(8)->Arg(32);

void BM_MatrixRank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const gf2::Matrix m = gf2::Matrix::random(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.rank());
  }
}
BENCHMARK(BM_MatrixRank)->Arg(16)->Arg(64)->Arg(256);

void BM_XorPayload(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  gf2::Payload a(bytes), b(bytes);
  for (auto& x : a) x = static_cast<std::uint8_t>(rng() & 0xff);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng() & 0xff);
  for (auto _ : state) {
    gf2::xor_into(a, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_XorPayload)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
