// E13 — engineering microbenchmarks of the GF(2) coding kernels.
//
// These are not paper claims; they qualify the cost of Stage 4's encode /
// decode arithmetic after the table-driven fast path landed. Requalified
// numbers (single-core container, AVX2 kernel): a w=32, 24-byte-payload
// encode_random runs at ~5 Mops/s and a full-group packed decode at
// ~300 Kgroups/s — roughly 2–8x the pre-table/pre-packed kernels. At
// protocol payload sizes the decoder is still far from the simulation
// bottleneck (microseconds per group against simulated radio rounds), but
// at the 4 KiB end of the payload axis the XOR sweeps are memory-bound
// and DO dominate a dissemination-heavy profile, which is exactly what
// the batched-absorption kernels (gf2::xor_accum2/4) exist for.
//
// Grid: op in {encode_random, decode_group} x w in {4..64} x payload in
// {24 B .. 4 KiB}. encode_random times the protocol transmit path
// (encode_random_word_into for w <= 64, the BitVec route above); the
// decode rows time the packed protocol receive flow — add_row_packed with
// arena-style buffer recycling, then take_packets.
//
// Determinism: the `checksum` column is an FNV-1a digest over coefficient
// words and payload bytes from fixed-seed validation sweeps, independent
// of --smoke and of the timing loops. It pins the RNG draw discipline and
// the on-air bytes of both paths, so scripts/bench_compare.py fails the
// perf gate on any behavioral drift before tolerances even apply. Only
// ops_per_sec (gated, regression-only) and mib_per_sec (informational)
// vary between machines.
//
// `--smoke` shrinks the grid and iteration counts for CI; rows land in
// BENCH_gf2_micro.json when RADIOCAST_BENCH_JSON_DIR is set.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gf2/coding.hpp"
#include "gf2/simd.hpp"
#include "gf2/solver.hpp"

using namespace radiocast;

namespace {

double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const std::uint8_t* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) h = (h ^ data[i]) * kFnvPrime;
}

void fnv_word(std::uint64_t& h, std::uint64_t w) {
  std::uint8_t bytes[8];
  std::memcpy(bytes, &w, 8);
  fnv_bytes(h, bytes, 8);
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::vector<gf2::Payload> make_group(std::size_t w, std::size_t bytes, Rng& rng) {
  std::vector<gf2::Payload> group;
  group.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    gf2::Payload p(bytes);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng() & 0xff);
    group.push_back(std::move(p));
  }
  return group;
}

/// Fixed-seed digest of 64 transmit draws (coeff word + payload bytes) —
/// identical across machines, modes, and timing-loop sizes.
std::uint64_t encode_checksum(const gf2::GroupEncoder& enc) {
  std::uint64_t h = kFnvOffset;
  Rng rng(7);
  gf2::Payload out;
  for (int i = 0; i < 64; ++i) {
    if (enc.width() <= 64) {
      fnv_word(h, enc.encode_random_word_into(rng, out));
    } else {
      const gf2::CodedRow row = enc.encode_random(rng);
      fnv_word(h, row.coeffs.to_word());
      out = row.payload;
    }
    fnv_bytes(h, out.data(), out.size());
  }
  return h;
}

/// One full-group decode through the packed protocol flow. Returns rows
/// consumed; digests rows/redundant counts and the decoded bytes into `h`
/// when non-null.
std::size_t decode_group(std::size_t w, const std::vector<gf2::CodedRow>& rows,
                         std::vector<gf2::Payload>& pool, std::uint64_t* h) {
  gf2::IncrementalDecoder dec(w);
  std::size_t i = 0;
  while (!dec.complete() && i < rows.size()) {
    gf2::Payload buf;
    if (!pool.empty()) {
      buf = std::move(pool.back());
      pool.pop_back();
    }
    buf.assign(rows[i].payload.begin(), rows[i].payload.end());
    if (!dec.add_row_packed(rows[i].coeffs.to_word(), buf)) {
      pool.push_back(std::move(buf));
    }
    ++i;
  }
  if (h != nullptr) {
    fnv_word(*h, i);
    fnv_word(*h, dec.redundant_rows());
  }
  std::vector<gf2::Payload> pkts = dec.take_packets();
  for (gf2::Payload& p : pkts) {
    if (h != nullptr) fnv_bytes(*h, p.data(), p.size());
    pool.push_back(std::move(p));
  }
  return i;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "usage: bench_gf2_micro [--smoke]\n";
      return 2;
    }
  }

  benchutil::banner("E13_gf2_micro",
                    "coding kernels: table encode / packed decode cost");
  print_meta(std::cout, "kernel", gf2::simd_kernel_name());
  print_meta(std::cout, "mode", smoke ? "smoke" : "full");
  benchutil::JsonReport json("gf2_micro");
  json.meta("smoke", smoke ? "1" : "0");
  json.meta("kernel", gf2::simd_kernel_name());

  const std::vector<std::size_t> widths =
      smoke ? std::vector<std::size_t>{16, 64} : std::vector<std::size_t>{4, 16, 32, 64};
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{24, 4096} : std::vector<std::size_t>{24, 256, 4096};
  const int reps = smoke ? 2 : 3;

  radiocast::Table table({"op", "w", "bytes", "checksum", "ops/s", "MiB/s"});

  for (const std::size_t w : widths) {
    for (const std::size_t bytes : sizes) {
      Rng grng(1);
      const std::vector<gf2::Payload> packets = make_group(w, bytes, grng);
      const gf2::GroupEncoder enc(packets);

      // --- encode_random: the transmit path -------------------------
      const std::uint64_t enc_sum = encode_checksum(enc);
      const std::size_t enc_iters =
          (smoke ? 1 : 8) * (bytes >= 1024 ? 5000 : 50000);
      double best = 1e100;
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng(7);
        gf2::Payload out;
        const double t0 = cpu_seconds();
        for (std::size_t i = 0; i < enc_iters; ++i) {
          if (w <= 64) {
            const std::uint64_t coeffs = enc.encode_random_word_into(rng, out);
            asm volatile("" : : "r"(coeffs), "r"(out.data()) : "memory");
          } else {
            const gf2::BitVec coeffs = gf2::BitVec::random(w, rng);
            enc.encode_into(coeffs, out);
            asm volatile("" : : "r"(out.data()) : "memory");
          }
        }
        best = std::min(best, cpu_seconds() - t0);
      }
      const double enc_ops = static_cast<double>(enc_iters) / best;
      const double enc_mib = enc_ops * static_cast<double>(bytes) / (1024.0 * 1024.0);
      table.row()
          .add("encode_random")
          .add(static_cast<std::uint64_t>(w))
          .add(static_cast<std::uint64_t>(bytes))
          .add(hex64(enc_sum))
          .add(enc_ops, 0)
          .add(enc_mib, 1);
      json.row()
          .col("op", "encode_random")
          .col("w", static_cast<std::uint64_t>(w))
          .col("bytes", static_cast<std::uint64_t>(bytes))
          .col("checksum", hex64(enc_sum))
          .col("ops_per_sec", enc_ops)
          .col("mib_per_sec", enc_mib);

      // --- decode_group: the packed receive flow --------------------
      Rng rrng(9);
      std::vector<gf2::CodedRow> rows;
      for (std::size_t i = 0; i < 4 * w + 64; ++i) rows.push_back(enc.encode_random(rrng));
      std::vector<gf2::Payload> pool;
      std::uint64_t dec_sum = kFnvOffset;
      const std::size_t rows_used = decode_group(w, rows, pool, &dec_sum);
      const std::size_t dec_iters =
          (smoke ? 1 : 4) * (bytes >= 1024 ? 250 : 2500);
      best = 1e100;
      for (int rep = 0; rep < reps; ++rep) {
        const double t0 = cpu_seconds();
        for (std::size_t i = 0; i < dec_iters; ++i) {
          decode_group(w, rows, pool, nullptr);
        }
        best = std::min(best, cpu_seconds() - t0);
      }
      const double dec_ops = static_cast<double>(dec_iters) / best;
      const double dec_mib = dec_ops * static_cast<double>(rows_used) *
                             static_cast<double>(bytes) / (1024.0 * 1024.0);
      table.row()
          .add("decode_group")
          .add(static_cast<std::uint64_t>(w))
          .add(static_cast<std::uint64_t>(bytes))
          .add(hex64(dec_sum))
          .add(dec_ops, 0)
          .add(dec_mib, 1);
      json.row()
          .col("op", "decode_group")
          .col("w", static_cast<std::uint64_t>(w))
          .col("bytes", static_cast<std::uint64_t>(bytes))
          .col("rows_used", static_cast<std::uint64_t>(rows_used))
          .col("checksum", hex64(dec_sum))
          .col("ops_per_sec", dec_ops)
          .col("mib_per_sec", dec_mib);
    }
  }

  table.print(std::cout);
  json.write();
  return 0;
}
