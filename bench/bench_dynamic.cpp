// E15 (extension) — dynamic packet arrivals (the paper's stated open
// direction, implemented in core/dynamic.hpp).
//
// Packets arrive uniformly over a window; the network runs repeated
// collect+disseminate epochs after a one-time setup. We sweep the offered
// load (packets per epoch relative to the dissemination capacity) and
// report delivery, latency and throughput.
//
// Expected shape: below capacity, every packet is delivered with latency
// bounded by ~2 epochs and per-packet cost near the static protocol's
// amortized O(logΔ); above capacity, the root's queue grows and latency
// stretches with the backlog while throughput saturates at capacity.
#include "bench_util.hpp"
#include "core/dynamic.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E15 bench_dynamic", "dynamic arrivals: latency/throughput vs load");

  Rng grng(101);
  const graph::Graph g = graph::make_random_geometric(32, 0.35, grng);
  core::KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  core::DynamicConfig cfg;
  cfg.rc = core::resolve(kcfg);
  cfg.batch_capacity = 32;

  const std::uint64_t epoch_estimate =
      core::collection_phase_rounds(cfg.rc.initial_estimate, cfg.rc) +
      cfg.dissemination_window();
  const std::uint32_t arrival_epochs = 4;
  const std::uint64_t spread =
      cfg.rc.stage3_start() + arrival_epochs * epoch_estimate;
  print_meta(std::cout, "graph", g.summary());
  print_meta(std::cout, "capacity/epoch", std::to_string(cfg.batch_capacity));
  print_meta(std::cout, "epoch rounds (approx)", std::to_string(epoch_estimate));

  Table t({"load (pkts/epoch)", "k", "delivered", "latency mean (epochs)",
           "latency max (epochs)", "rounds/pkt"});
  for (const double load : {0.25, 0.5, 1.0, 2.0}) {
    const auto k = static_cast<std::uint32_t>(load * cfg.batch_capacity *
                                              arrival_epochs);
    SampleSet lat_mean, lat_max, rpp;
    std::uint32_t delivered = 0, total = 0;
    for (int s = 0; s < seeds; ++s) {
      Rng arng(160 + s);
      std::vector<core::Arrival> arrivals =
          core::make_arrivals(g.num_nodes(), k, spread, 16, arng);
      // Drain for long enough that even an above-capacity backlog clears.
      const std::uint64_t horizon =
          spread + (4 + static_cast<std::uint64_t>(2 * load)) * epoch_estimate;
      const core::DynamicRunResult r =
          run_dynamic_broadcast(g, cfg, arrivals, horizon, 170 + s);
      delivered += r.delivered_everywhere;
      total += r.k;
      lat_mean.add(r.latency_mean / static_cast<double>(epoch_estimate));
      lat_max.add(r.latency_max / static_cast<double>(epoch_estimate));
      if (r.delivered_everywhere > 0) {
        rpp.add(static_cast<double>(r.horizon - cfg.rc.stage3_start()) /
                r.delivered_everywhere);
      }
    }
    t.row()
        .add(load, 2)
        .add(k)
        .add(std::to_string(delivered) + "/" + std::to_string(total))
        .add(lat_mean.median(), 2)
        .add(lat_max.median(), 2)
        .add(rpp.median(), 0);
  }
  t.print(std::cout);
  std::cout << "# expected: full delivery at every load (the drain window is\n"
               "# sized for the backlog); latency ~<= 2 epochs below capacity\n"
               "# and growing with the backlog above it.\n";
  return 0;
}
