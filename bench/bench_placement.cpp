// E19 — sensitivity to the initial packet placement.
//
// The paper's bound is placement-independent ("k packets distributed
// arbitrarily"). The collection stage, however, has a structural
// bottleneck worth exhibiting: a single source can release at most one
// packet per round, and all its packets share one BFS path, while spread
// placements drain in parallel along disjoint subtrees.
//
// Expected shape: total rounds are within a small factor across
// placements (the bound is uniform). Two structural effects are visible:
// (a) with a SINGLE source, that source is the only election participant,
// becomes the root itself, and Stage 3 degenerates to one quiet phase —
// collection is free; (b) with exactly two far-apart sources the
// non-root source must push all its packets up one congested BFS path
// (serialized release), the slowest collection case. Dissemination cost
// is placement-invariant (the root holds everything by then).
#include <functional>

#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E19 bench_placement",
         "Theorem 2 is placement-independent; stage-3 cost shows the structure");

  Rng grng(131);
  const graph::Graph g = graph::make_random_geometric(64, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  print_meta(std::cout, "graph", g.summary());

  // "two far sources": all packets split between node 0 and the node
  // farthest from it; the higher id wins the election, so the other half
  // must traverse the network's full depth on one path.
  const graph::BfsResult from0 = graph::bfs(g, 0);
  graph::NodeId far = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (from0.dist[v] != graph::kUnreachable && from0.dist[v] >= from0.dist[far]) {
      far = v;
    }
  }
  auto two_sources = [&](std::uint32_t k, Rng& prng) {
    core::Placement p(g.num_nodes());
    for (std::uint32_t i = 0; i < k; ++i) {
      const graph::NodeId owner = i % 2 == 0 ? 0 : far;
      radio::Packet pkt;
      pkt.id = radio::make_packet_id(
          owner, static_cast<std::uint32_t>(p[owner].size()));
      pkt.payload.resize(16);
      for (auto& b : pkt.payload) b = static_cast<std::uint8_t>(prng() & 0xff);
      p[owner].push_back(std::move(pkt));
    }
    return p;
  };

  Table t({"k", "placement", "stage3", "stage4", "total", "r/pkt", "ok"});
  for (const std::uint32_t k : {64u, 512u}) {
    using Maker = std::function<core::Placement(Rng&)>;
    const std::vector<std::pair<std::string, Maker>> cases = {
        {"single source",
         [&](Rng& prng) {
           return core::make_placement(g.num_nodes(), k,
                                       core::PlacementMode::kSingleSource, 16, prng);
         }},
        {"two far sources", [&](Rng& prng) { return two_sources(k, prng); }},
        {"random",
         [&](Rng& prng) {
           return core::make_placement(g.num_nodes(), k,
                                       core::PlacementMode::kRandom, 16, prng);
         }},
        {"spread even",
         [&](Rng& prng) {
           return core::make_placement(g.num_nodes(), k,
                                       core::PlacementMode::kSpreadEven, 16, prng);
         }},
    };
    for (const auto& [name, maker] : cases) {
      SampleSet s3, s4, total;
      int ok = 0, runs = 0;
      for (int s = 0; s < seeds; ++s) {
        Rng prng(300 + s);
        const core::Placement placement = maker(prng);
        const core::RunResult r = core::run_kbroadcast(
            g, baselines::coded_config(know), placement, 310 + s);
        ++runs;
        if (r.delivered_all) ++ok;
        s3.add(static_cast<double>(r.stage3_rounds));
        s4.add(static_cast<double>(r.stage4_rounds));
        total.add(static_cast<double>(r.total_rounds));
      }
      t.row()
          .add(k)
          .add(name)
          .add(s3.median(), 0)
          .add(s4.median(), 0)
          .add(total.median(), 0)
          .add(total.median() / k, 1)
          .add(ok == runs ? "yes" : "NO");
    }
  }
  t.print(std::cout);
  std::cout << "# expected: every placement delivers within the same bound and\n"
               "# stage 4 is placement-invariant. Structural effects: with one\n"
               "# source (or few), the max-id source itself wins the election, so\n"
               "# its packets are collected for free and stage 3 stays in the\n"
               "# first quiet phase; dispersed placements put more packets behind\n"
               "# radio contention and cross the doubling threshold earlier.\n";
  return 0;
}
