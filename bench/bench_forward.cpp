// E8 — Lemma 6: one FORWARD execution delivers a whole ⌈log n⌉-packet
// group from a layer T to every node of the next layer R, w.h.p., within
// O(log n) Decay epochs; and the coded variant's per-phase goodput beats
// uncoded (coupon-collector) forwarding.
//
// Setup: a bipartite layer graph — |T| transmitters that all decoded the
// group, |R| receivers, each receiver adjacent to every transmitter
// (receiver in-degree = |T| = Δ). Transmitters run exactly the FORWARD
// rule; we measure, per receiver, the epochs until decode.
//
// Expected shape: epochs-to-decode concentrates around
// (group size + small overhead) / per-epoch-reception-rate ~ O(log n);
// decode failure within 10·log n epochs is rare; uncoded needs a
// log-factor more epochs at the same group size (coupon collector).
#include <memory>

#include "bench_util.hpp"
#include "gf2/coding.hpp"
#include "protocols/decay.hpp"
#include "radio/network.hpp"

namespace {

using namespace radiocast;

/// Transmitter of the FORWARD rule over a known group.
class ForwardTx final : public radio::NodeProtocol {
 public:
  ForwardTx(std::vector<gf2::Payload> group, std::uint32_t epoch_len, bool coded,
            Rng rng)
      : rng_(rng), decay_(epoch_len), encoder_(std::move(group)), coded_(coded) {}

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    if (!decay_.decide(round, rng_)) return std::nullopt;
    const auto w = static_cast<std::uint16_t>(encoder_.width());
    if (coded_) {
      const gf2::BitVec coeffs = gf2::BitVec::random(encoder_.width(), rng_);
      gf2::CodedRow row = encoder_.encode(coeffs);
      radio::CodedMsg msg;
      msg.group_id = 0;
      msg.group_count = 1;
      msg.group_size = w;
      msg.coeffs = coeffs.to_word();
      msg.payload = std::move(row.payload);
      return msg;
    }
    const auto index = static_cast<std::size_t>(rng_.next_below(encoder_.width()));
    radio::PlainPacketMsg msg;
    msg.packet.id = radio::make_packet_id(0, static_cast<std::uint32_t>(index));
    msg.packet.payload = encoder_.group()[index];
    msg.group_id = 0;
    msg.group_count = 1;
    msg.index_in_group = static_cast<std::uint16_t>(index);
    msg.group_size = w;
    return msg;
  }
  void on_receive(radio::Round, const radio::Message&) override {}

 private:
  Rng rng_;
  protocols::Decay decay_;
  gf2::GroupEncoder encoder_;
  bool coded_;
};

/// Receiver feeding every row into a decoder; records the decode round.
class ForwardRx final : public radio::NodeProtocol {
 public:
  ForwardRx(std::size_t width) : decoder_(width) {}
  std::optional<radio::MessageBody> on_transmit(radio::Round) override {
    return std::nullopt;
  }
  void on_receive(radio::Round round, const radio::Message& msg) override {
    if (decoder_.complete()) return;
    gf2::CodedRow row;
    if (const auto* coded = std::get_if<radio::CodedMsg>(&msg.body)) {
      row.coeffs = gf2::BitVec::from_word(coded->group_size, coded->coeffs);
      row.payload = coded->payload;
    } else if (const auto* plain = std::get_if<radio::PlainPacketMsg>(&msg.body)) {
      row.coeffs = gf2::BitVec::unit(plain->group_size, plain->index_in_group);
      row.payload = plain->packet.payload;
    } else {
      return;
    }
    ++rows_;
    decoder_.add_row(std::move(row));
    if (decoder_.complete()) decode_round_ = round;
  }
  bool done() const override { return decoder_.complete(); }

  gf2::IncrementalDecoder decoder_;
  std::uint64_t rows_ = 0;
  radio::Round decode_round_ = 0;
};

/// Bipartite layer: m transmitters, r receivers, complete T x R edges.
graph::Graph layer_graph(std::uint32_t m, std::uint32_t r) {
  graph::Graph g(m + r);
  for (std::uint32_t t = 0; t < m; ++t) {
    for (std::uint32_t v = 0; v < r; ++v) g.add_edge(t, m + v);
  }
  g.finalize();
  return g;
}

}  // namespace

int main() {
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E8 bench_forward",
         "Lemma 6: FORWARD moves a logn-size group one layer in O(logn) epochs");

  const std::uint32_t n_model = 256;  // group size = log n = 8
  const std::uint32_t group_size = 8;
  const std::uint32_t receivers = 16;
  print_meta(std::cout, "group size", std::to_string(group_size));
  print_meta(std::cout, "receivers", std::to_string(receivers));

  Table t({"|T|=Δ", "mode", "median epochs to decode", "p90 epochs",
           "median rows", "decoded within 10logn"});
  for (const std::uint32_t m : {1u, 2u, 4u, 16u, 64u}) {
    const std::uint32_t epoch_len = radiocast::log2_at_least_one(std::max(2u, m));
    for (const bool coded : {true, false}) {
      SampleSet epochs, rows;
      int decoded = 0, total = 0;
      for (int s = 0; s < seeds * 4; ++s) {
        Rng master(1000 + s);
        std::vector<gf2::Payload> group;
        Rng prng(2000 + s);
        for (std::uint32_t i = 0; i < group_size; ++i) {
          gf2::Payload p(16);
          for (auto& b : p) b = static_cast<std::uint8_t>(prng() & 0xff);
          group.push_back(std::move(p));
        }
        const graph::Graph g = layer_graph(m, receivers);
        radio::Network net(g);
        for (std::uint32_t tx = 0; tx < m; ++tx) {
          net.set_protocol(tx, std::make_unique<ForwardTx>(group, epoch_len, coded,
                                                           master.split()));
          net.wake_at_start(tx);
        }
        for (std::uint32_t rx = 0; rx < receivers; ++rx) {
          net.set_protocol(m + rx, std::make_unique<ForwardRx>(group_size));
          net.wake_at_start(m + rx);
        }
        const std::uint64_t budget =
            10ull * radiocast::log2_at_least_one(n_model) * epoch_len * 8;
        net.run_until_done(budget);
        for (std::uint32_t rx = 0; rx < receivers; ++rx) {
          auto& node = static_cast<ForwardRx&>(net.protocol(m + rx));
          ++total;
          if (node.decoder_.complete()) {
            ++decoded;
            epochs.add(static_cast<double>(node.decode_round_ / epoch_len + 1));
            rows.add(static_cast<double>(node.rows_));
          }
        }
      }
      t.row()
          .add(m)
          .add(coded ? "coded" : "uncoded")
          .add(epochs.empty() ? -1.0 : epochs.median(), 1)
          .add(epochs.empty() ? -1.0 : epochs.quantile(0.9), 1)
          .add(rows.empty() ? -1.0 : rows.median(), 1)
          .add(std::to_string(decoded) + "/" + std::to_string(total));
    }
  }
  t.print(std::cout);
  std::cout << "# expected: coded decodes in ~group_size/p_epoch + O(1) epochs for\n"
               "# every |T|; uncoded needs ~H(s)*s receptions (coupon collector),\n"
               "# a ~ln(s) factor more; both degrade gracefully as Delta grows.\n";
  return 0;
}
