// E6 — Lemma 3: a random l×w GF(2) matrix has full column rank with
// probability >= 1-eps once l >= 2(w+2) + 8·ln(1/eps).
//
// Monte-Carlo over a (w, extra-rows) grid. Expected shape: at l = w the
// success probability is the constant ~0.2888 (prod (1-2^-i)); each extra
// row roughly halves the failure probability; the paper's threshold row
// count exceeds the 1-eps target everywhere (the bound is loose but safe).
#include <cmath>

#include "bench_util.hpp"
#include "common/bounds.hpp"
#include "gf2/matrix.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;

  banner("E6 bench_matrix_rank",
         "Lemma 3: P(full rank) >= 1-eps for l >= 2(w+2)+8ln(1/eps)");
  const int trials = 4000;
  print_meta(std::cout, "trials per cell", std::to_string(trials));

  Rng rng(21);

  // Part 1: P(full rank) vs extra rows j = l - w.
  Table t({"w", "j=l-w", "P(full rank)", "1-2^-j (approx)", "fail count"});
  for (const std::size_t w : {8u, 16u, 32u}) {
    for (const int j : {0, 1, 2, 4, 8}) {
      BernoulliCounter counter;
      for (int i = 0; i < trials; ++i) {
        counter.add(gf2::Matrix::random(w + j, w, rng).full_column_rank());
      }
      t.row()
          .add(w)
          .add(j)
          .add(counter.rate(), 4)
          .add(1.0 - std::pow(2.0, -j), 4)
          .add(counter.trials() - counter.successes());
    }
  }
  t.print(std::cout);

  // Part 2: the paper's threshold vs measured failure rate.
  Table t2({"w", "eps", "l (lemma)", "P(full rank)", ">= 1-eps"});
  for (const std::size_t w : {8u, 16u, 32u}) {
    for (const double eps : {0.1, 0.01}) {
      const auto l =
          static_cast<std::size_t>(std::ceil(2.0 * (w + 2) + 8.0 * std::log(1.0 / eps)));
      BernoulliCounter counter;
      for (int i = 0; i < trials; ++i) {
        counter.add(gf2::Matrix::random(l, w, rng).full_column_rank());
      }
      t2.row()
          .add(w)
          .add(eps, 2)
          .add(l)
          .add(counter.rate(), 4)
          .add(counter.rate() >= 1.0 - eps ? "yes" : "NO");
    }
  }
  t2.print(std::cout);
  std::cout << "# expected: measured P(full rank) ~ prod_{i>j}(1-2^-i); the\n"
               "# lemma threshold rows all pass (it is a conservative bound).\n";

  // Part 3: Lemmas 1 and 2 (Appendix A) — measured tail vs stated bound.
  std::cout << "\n-- Lemma 1 (Bernoulli-sum tail) --\n";
  Table t3({"p", "d", "tau", "r trials", "measured tail", "bound e^-tau"});
  for (const auto& [p, d, tau] :
       std::vector<std::tuple<double, double, double>>{
           {0.5, 2.0, 1.0}, {0.5, 8.0, 2.0}, {0.1, 4.0, 1.0}, {0.9, 16.0, 3.0}}) {
    const std::uint64_t r = lemma1_trials(p, d, tau);
    BernoulliCounter fail;
    for (int e = 0; e < trials; ++e) {
      std::uint64_t successes = 0;
      for (std::uint64_t q = 0; q < r; ++q) {
        if (rng.next_bool(p)) ++successes;
      }
      fail.add(successes < static_cast<std::uint64_t>(d));
    }
    t3.row().add(p, 2).add(d, 0).add(tau, 1).add(r).add(fail.rate(), 4).add(
        lemma1_bound(tau), 4);
  }
  t3.print(std::cout);

  std::cout << "\n-- Lemma 2 (geometric-sum tail) --\n";
  Table t4({"#geoms", "eps", "threshold", "measured tail", "bound"});
  for (const double eps : {0.5, 0.1, 0.01}) {
    const std::vector<double> ps = {0.5, 0.75, 0.875, 0.9375, 0.96875};
    const double threshold = lemma2_threshold(ps, eps);
    BernoulliCounter exceed;
    for (int e = 0; e < trials; ++e) {
      double total = 0;
      for (double p : ps) {
        int x = 1;
        while (!rng.next_bool(p)) ++x;
        total += x;
      }
      exceed.add(total >= threshold);
    }
    t4.row().add(ps.size()).add(eps, 2).add(threshold, 1).add(exceed.rate(), 5).add(
        eps, 2);
  }
  t4.print(std::cout);
  std::cout << "# expected: measured tails sit below the stated bounds (both\n"
               "# lemmas are conservative Chernoff-type inequalities).\n";
  return 0;
}
