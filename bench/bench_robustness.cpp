// E14 (extension) — robustness to external interference.
//
// The paper's model has no external noise; its recovery machinery
// (ack-driven retries, alarm-driven phase doubling, coded redundancy)
// nevertheless tolerates it. We inject iid per-reception erasures and
// measure delivery and slowdown.
//
// Expected shape: full delivery up to ~10% loss with a smoothly growing
// round cost (extra collection phases + extra FORWARD receptions); the
// uncoded baseline degrades faster because each lost plain packet must be
// re-coupon-collected, while a lost coded row is replaced by any other row.
#include "bench_util.hpp"

int main() {
  using namespace radiocast;
  using namespace radiocast::benchutil;
  const int seeds = seeds_from_env();

  banner("E14 bench_robustness",
         "delivery and slowdown under injected reception loss (extension)");

  Rng grng(91);
  const graph::Graph g = graph::make_random_geometric(48, 0.3, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  const std::uint32_t k = 128;
  print_meta(std::cout, "graph", g.summary());
  print_meta(std::cout, "k", std::to_string(k));

  Table t({"loss", "mode", "median rounds", "slowdown", "delivered", "extra phases"});
  for (const bool coded : {true, false}) {
    double baseline_rounds = 0;
    for (const double loss : {0.0, 0.02, 0.05, 0.1, 0.2}) {
      core::montecarlo::KBroadcastSweep sweep;
      sweep.graph = &g;
      sweep.cfg = coded ? baselines::coded_config(know)
                        : baselines::uncoded_pipeline_config(know);
      sweep.k = k;
      sweep.placement_seed = [](int s) { return 140 + static_cast<std::uint64_t>(s); };
      sweep.run_seed = [](int s) { return 150 + static_cast<std::uint64_t>(s); };
      sweep.max_rounds = 30'000'000;
      sweep.faults = [loss](int s) {
        radio::FaultModel faults;
        faults.reception_loss_probability = loss;
        faults.seed = 555 + static_cast<std::uint64_t>(s);
        return faults;
      };
      const std::vector<core::RunResult> results =
          core::montecarlo::run_kbroadcast_sweep(sweep, seeds);

      SampleSet rounds, phases;
      int ok = 0, runs = 0;
      for (const core::RunResult& r : results) {
        ++runs;
        if (r.delivered_all) ++ok;
        rounds.add(static_cast<double>(r.total_rounds));
        phases.add(static_cast<double>(r.collection_phases));
      }
      if (loss == 0.0) baseline_rounds = rounds.median();
      t.row()
          .add(loss, 2)
          .add(coded ? "coded" : "uncoded")
          .add(rounds.median(), 0)
          .add(rounds.median() / std::max(1.0, baseline_rounds), 2)
          .add(std::to_string(ok) + "/" + std::to_string(runs))
          .add(phases.median() - 1, 0);
    }
  }
  t.print(std::cout);
  std::cout << "# expected: delivery holds through ~0.1 loss with slowdown from\n"
               "# extra collection phases; the coded protocol stays several times\n"
               "# faster than uncoded in absolute rounds at every loss level.\n"
               "# note: the coded variant's *relative* slowdown is larger because\n"
               "# its one deterministic step — the root's one-by-one group\n"
               "# injection — has no redundancy; a lost injection silences that\n"
               "# distance-1 node for the group. At 0.2 loss this occasionally\n"
               "# costs delivery, which is far outside the paper's model anyway.\n";
  return 0;
}
