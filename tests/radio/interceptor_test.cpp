// InterceptingProtocol: hooks fire in the documented order (wake before
// inner wake, transmit after the inner decision, receive before inner
// on_receive) and the wrapper never changes the inner protocol's
// behaviour on the channel.
#include "radio/interceptor.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::radio {
namespace {

/// Transmits a scripted message at scripted rounds; logs its own calls so
/// hook/inner ordering is checkable from one event list.
class LoggedNode final : public NodeProtocol {
 public:
  LoggedNode(std::map<Round, MessageBody> script, std::vector<std::string>* log)
      : script_(std::move(script)), log_(log) {}

  void on_wake(Round) override { log_->push_back("inner.wake"); }

  std::optional<MessageBody> on_transmit(Round round) override {
    log_->push_back("inner.transmit");
    const auto it = script_.find(round);
    if (it == script_.end()) return std::nullopt;
    return it->second;
  }

  void on_receive(Round, const Message&) override {
    log_->push_back("inner.receive");
  }

  bool done() const override { return done_; }
  bool done_ = false;

 private:
  std::map<Round, MessageBody> script_;
  std::vector<std::string>* log_;
};

TEST(Interceptor, HookOrderingAroundInnerCalls) {
  std::vector<std::string> log;
  InterceptingProtocol p(
      std::make_unique<LoggedNode>(std::map<Round, MessageBody>{{0, AlarmMsg{}}},
                                   &log));
  p.set_wake_hook([&](Round) { log.push_back("hook.wake"); });
  p.set_transmit_hook([&](Round, const std::optional<MessageBody>& out) {
    // The transmit hook observes the inner decision, so it must run after.
    EXPECT_TRUE(out.has_value());
    log.push_back("hook.transmit");
  });
  p.set_receive_hook([&](Round, const Message&) { log.push_back("hook.receive"); });

  p.on_wake(0);
  const std::optional<MessageBody> out = p.on_transmit(0);
  EXPECT_TRUE(out.has_value());
  Message msg;
  msg.from = 7;
  msg.body = AlarmMsg{};
  p.on_receive(1, msg);

  EXPECT_EQ(log, (std::vector<std::string>{
                     "hook.wake", "inner.wake",          // wake: hook first
                     "inner.transmit", "hook.transmit",  // transmit: inner first
                     "hook.receive", "inner.receive",    // receive: hook first
                 }));
}

TEST(Interceptor, PassesThroughTransmitDecisionAndDone) {
  std::vector<std::string> log;
  auto inner = std::make_unique<LoggedNode>(
      std::map<Round, MessageBody>{{3, AlarmMsg{}}}, &log);
  LoggedNode* raw = inner.get();
  InterceptingProtocol p(std::move(inner));

  EXPECT_FALSE(p.on_transmit(0).has_value());
  EXPECT_TRUE(p.on_transmit(3).has_value());
  EXPECT_FALSE(p.done());
  raw->done_ = true;
  EXPECT_TRUE(p.done());
  EXPECT_EQ(&p.inner(), raw);
}

TEST(Interceptor, HooksAreOptional) {
  std::vector<std::string> log;
  InterceptingProtocol p(std::make_unique<LoggedNode>(
      std::map<Round, MessageBody>{{0, AlarmMsg{}}}, &log));
  // No hooks set: calls just pass through.
  p.on_wake(0);
  EXPECT_TRUE(p.on_transmit(0).has_value());
  Message msg;
  msg.from = 1;
  msg.body = AlarmMsg{};
  p.on_receive(0, msg);
  EXPECT_EQ(log, (std::vector<std::string>{"inner.wake", "inner.transmit",
                                           "inner.receive"}));
}

TEST(Interceptor, TransparentInsideANetwork) {
  // Star 0-1: node 1 transmits at round 0 via an interceptor; the center
  // receives exactly as it would without the wrapper, and the hook sees
  // the same delivery.
  graph::Graph g = graph::make_star(2);
  Network net(g);
  std::vector<std::string> center_log, leaf_log;
  int hook_deliveries = 0;

  auto center = std::make_unique<InterceptingProtocol>(
      std::make_unique<LoggedNode>(std::map<Round, MessageBody>{}, &center_log));
  center->set_receive_hook([&](Round round, const Message& msg) {
    EXPECT_EQ(round, 0u);
    EXPECT_EQ(msg.from, 1u);
    ++hook_deliveries;
  });
  net.set_protocol(0, std::move(center));
  net.set_protocol(1, std::make_unique<LoggedNode>(
                          std::map<Round, MessageBody>{{0, AlarmMsg{}}},
                          &leaf_log));
  net.wake_at_start(0);
  net.wake_at_start(1);
  net.step();

  EXPECT_EQ(hook_deliveries, 1);
  EXPECT_EQ(net.trace().counters().deliveries, 1u);
  ASSERT_GE(center_log.size(), 1u);
  EXPECT_EQ(center_log.back(), "inner.receive");
}

}  // namespace
}  // namespace radiocast::radio
