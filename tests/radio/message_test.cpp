#include "radio/message.hpp"

#include <gtest/gtest.h>

namespace radiocast::radio {
namespace {

TEST(PacketId, EncodesOriginAndSequence) {
  const PacketId id = make_packet_id(0xabcd, 0x1234);
  EXPECT_EQ(packet_origin(id), 0xabcdu);
  EXPECT_EQ(packet_seq(id), 0x1234u);
}

TEST(PacketId, DistinctAcrossOrigins) {
  EXPECT_NE(make_packet_id(1, 0), make_packet_id(2, 0));
  EXPECT_NE(make_packet_id(1, 0), make_packet_id(1, 1));
}

TEST(MessageSize, AlarmIsOneBit) {
  EXPECT_EQ(message_size_bits(AlarmMsg{}), 1u);
}

TEST(MessageSize, DataIncludesPayload) {
  DataMsg m;
  m.packet.payload.resize(16);
  EXPECT_EQ(message_size_bits(m), 64u + 32u + 128u);
}

TEST(MessageSize, CodedHeaderProportionalToGroup) {
  CodedMsg m;
  m.group_size = 10;
  m.payload.resize(4);
  EXPECT_EQ(message_size_bits(m), 96u + 10u + 32u);
}

TEST(MessageKind, TagsAreDistinct) {
  EXPECT_EQ(message_kind(AlarmMsg{}), "alarm");
  EXPECT_EQ(message_kind(BfsConstructMsg{}), "bfs");
  EXPECT_EQ(message_kind(DataMsg{}), "data");
  EXPECT_EQ(message_kind(AckMsg{}), "ack");
  EXPECT_EQ(message_kind(PlainPacketMsg{}), "plain");
  EXPECT_EQ(message_kind(CodedMsg{}), "coded");
}

}  // namespace
}  // namespace radiocast::radio
