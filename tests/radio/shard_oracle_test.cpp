// Differential oracle: every sharded round kernel against its unsharded
// twin, for both engines.
//
// Sharding is a pure execution knob — the determinism contract
// (radio::Network::set_shards) promises bit-identical results at any
// shard count. Each test runs two identically seeded simulations
// lock-step — one Network left at the default single shard, one with
// S > 1 — and compares them after every round: full trace counters, the
// awake set, and per-protocol observations (transmit calls, receive
// count, last sender, wake round). The unsharded engine is the reference
// (it is what every historical digest was produced by), so any
// divergence is a sharding bug by definition.
//
// Coverage spans S ∈ {1, 2, 4, 7} for both engines and all three sharded
// sweeps: the scalar slice walk, the bitset fused fast word-sweep
// (nothing order-sensitive attached, including the packed Phase 1), and
// the bitset exact scatter (faults, trace events, audit hooks — all of
// which observe the global receiver-touch order and therefore pin the
// k-way (first-reacher, id) merge). The two seeded shard bugs —
// shard-order reduction and a skipped frontier exchange — must be caught
// by exactly these comparisons.
//
// Graphs here are a few hundred nodes: the bitset engine aligns shard
// boundaries to 64-node blocks, so smaller graphs would silently
// collapse to one shard and test nothing.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::radio {
namespace {

const std::uint32_t kShardCounts[] = {1, 2, 4, 7};
const EngineMode kEngines[] = {EngineMode::kScalar, EngineMode::kBitset};

std::string case_name(EngineMode mode, std::uint32_t shards) {
  return std::string(engine_mode_name(mode)) + " shards=" +
         std::to_string(shards);
}

/// Probabilistic flood (the bitset_oracle_test idiom): once awake,
/// transmits an alarm with probability `p` each round from its own Rng
/// stream — deterministic given the seed, so two networks fed the same
/// seeds see the same decisions as long as they fire the same callbacks.
class FloodNode final : public NodeProtocol {
 public:
  FloodNode(Rng rng, double p) : rng_(rng), p_(p) {}

  std::optional<MessageBody> on_transmit(Round /*round*/) override {
    ++transmit_calls;
    if (rng_.next_bool(p_)) return AlarmMsg{};
    return std::nullopt;
  }
  void on_receive(Round /*round*/, const Message& msg) override {
    ++receives;
    last_from = msg.from;
  }
  void on_collision(Round /*round*/) override { ++collisions_seen; }
  void on_wake(Round round) override { woke_at = round; }

  std::uint64_t transmit_calls = 0;
  std::uint64_t receives = 0;
  std::uint64_t collisions_seen = 0;
  NodeId last_from = 0;
  std::optional<Round> woke_at;

 private:
  Rng rng_;
  double p_;
};

/// One engine mode, two shard counts (1 vs S), stepped lock-step.
struct ShardPair {
  Network ref_net;      ///< unsharded reference
  Network sharded_net;  ///< same engine, S shards
  std::vector<FloodNode*> ref_nodes;
  std::vector<FloodNode*> sharded_nodes;

  ShardPair(const graph::Graph& g, EngineMode mode, std::uint32_t shards,
            std::uint64_t seed, double p)
      : ref_net(g), sharded_net(g) {
    ref_net.set_engine(mode);
    sharded_net.set_engine(mode);
    sharded_net.set_shards(shards);
    Rng master_a(seed);
    Rng master_b(seed);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto a = std::make_unique<FloodNode>(master_a.split(), p);
      auto b = std::make_unique<FloodNode>(master_b.split(), p);
      ref_nodes.push_back(a.get());
      sharded_nodes.push_back(b.get());
      ref_net.set_protocol(v, std::move(a));
      sharded_net.set_protocol(v, std::move(b));
    }
  }

  void wake_all() {
    for (graph::NodeId v = 0; v < ref_net.num_nodes(); ++v) {
      ref_net.wake_at_start(v);
      sharded_net.wake_at_start(v);
    }
  }

  void wake_seed(NodeId v) {
    ref_net.wake_at_start(v);
    sharded_net.wake_at_start(v);
  }

  /// Steps both networks once and compares every observable.
  void step_and_compare() {
    ref_net.step();
    sharded_net.step();
    const TraceCounters& a = ref_net.trace().counters();
    const TraceCounters& b = sharded_net.trace().counters();
    ASSERT_EQ(a, b) << "counters diverged at round " << ref_net.current_round();
    ASSERT_EQ(ref_net.num_awake(), sharded_net.num_awake());
    for (graph::NodeId v = 0; v < ref_net.num_nodes(); ++v) {
      ASSERT_EQ(ref_net.is_awake(v), sharded_net.is_awake(v)) << "node " << v;
      ASSERT_EQ(ref_nodes[v]->transmit_calls, sharded_nodes[v]->transmit_calls)
          << "node " << v;
      ASSERT_EQ(ref_nodes[v]->receives, sharded_nodes[v]->receives)
          << "node " << v;
      ASSERT_EQ(ref_nodes[v]->last_from, sharded_nodes[v]->last_from)
          << "node " << v;
      ASSERT_EQ(ref_nodes[v]->collisions_seen, sharded_nodes[v]->collisions_seen)
          << "node " << v;
      ASSERT_EQ(ref_nodes[v]->woke_at, sharded_nodes[v]->woke_at)
          << "node " << v;
    }
  }
};

TEST(ShardOracle, DenseGnpAllAwakeLockStep) {
  // No hooks, no faults: the bitset pair runs the fused fast word-sweep,
  // the scalar pair the sharded slice walk.
  Rng grng(101);
  const graph::Graph g = graph::make_gnp_connected(448, 0.03, grng);
  for (const EngineMode mode : kEngines) {
    for (const std::uint32_t s : kShardCounts) {
      SCOPED_TRACE(case_name(mode, s));
      ShardPair pair(g, mode, s, 42, 0.25);
      pair.wake_all();
      for (int r = 0; r < 120; ++r) pair.step_and_compare();
      EXPECT_GT(pair.ref_net.trace().counters().deliveries, 0u);
      EXPECT_GT(pair.ref_net.trace().counters().collision_slots, 0u);
    }
  }
}

TEST(ShardOracle, SparseBoundedDegreeWakeOnFirstReception) {
  // Wake propagation crosses shard boundaries only via cut-edge
  // deliveries, so a single-seed flood is the sharpest frontier-exchange
  // probe: a dropped cross-shard delivery would stall the wake front.
  Rng grng(7);
  const graph::Graph g = graph::make_bounded_degree(480, 5, 0.6, grng);
  for (const EngineMode mode : kEngines) {
    for (const std::uint32_t s : kShardCounts) {
      SCOPED_TRACE(case_name(mode, s));
      ShardPair pair(g, mode, s, 9001, 0.2);
      pair.wake_seed(0);
      for (int r = 0; r < 200; ++r) pair.step_and_compare();
      EXPECT_GT(pair.ref_net.trace().counters().wakeups, 1u);
    }
  }
}

TEST(ShardOracle, CollisionDetectionAblation) {
  Rng grng(55);
  const graph::Graph g = graph::make_gnp_connected(448, 0.035, grng);
  for (const EngineMode mode : kEngines) {
    for (const std::uint32_t s : kShardCounts) {
      SCOPED_TRACE(case_name(mode, s));
      ShardPair pair(g, mode, s, 314, 0.3);
      pair.ref_net.enable_collision_detection(true);
      pair.sharded_net.enable_collision_detection(true);
      pair.wake_seed(0);
      for (int r = 0; r < 120; ++r) pair.step_and_compare();
      std::uint64_t cd_callbacks = 0;
      for (const FloodNode* n : pair.ref_nodes) cd_callbacks += n->collisions_seen;
      EXPECT_GT(cd_callbacks, 0u);
    }
  }
}

TEST(ShardOracle, FaultErasuresConsumeIdenticalRngStream) {
  // Faults force the exact sub-path: the erasure RNG is consumed one draw
  // per successful slot in global receiver-touch order, so identical
  // fault_drops counters require the k-way shard merge to reconstruct the
  // unsharded touch order exactly — the fault stream is the most
  // order-sensitive consumer in the engine.
  Rng grng(13);
  const graph::Graph g = graph::make_gnp_connected(448, 0.025, grng);
  for (const EngineMode mode : kEngines) {
    for (const std::uint32_t s : kShardCounts) {
      SCOPED_TRACE(case_name(mode, s));
      ShardPair pair(g, mode, s, 2718, 0.2);
      FaultModel fm;
      fm.reception_loss_probability = 0.3;
      fm.seed = 0xfa7155eedULL;
      pair.ref_net.set_fault_model(fm);
      pair.sharded_net.set_fault_model(fm);
      pair.wake_all();
      for (int r = 0; r < 150; ++r) pair.step_and_compare();
      EXPECT_GT(pair.ref_net.trace().counters().fault_drops, 0u);
    }
  }
}

TEST(ShardOracle, TraceEventLogsAreIdentical) {
  Rng grng(23);
  const graph::Graph g = graph::make_gnp_connected(448, 0.03, grng);
  for (const EngineMode mode : kEngines) {
    for (const std::uint32_t s : kShardCounts) {
      SCOPED_TRACE(case_name(mode, s));
      ShardPair pair(g, mode, s, 123, 0.25);
      pair.ref_net.trace().enable_events(true);
      pair.sharded_net.trace().enable_events(true);
      pair.wake_all();
      for (int r = 0; r < 60; ++r) pair.step_and_compare();

      const auto& ea = pair.ref_net.trace().events();
      const auto& eb = pair.sharded_net.trace().events();
      ASSERT_EQ(ea.size(), eb.size());
      ASSERT_GT(ea.size(), 0u);
      for (std::size_t i = 0; i < ea.size(); ++i) {
        SCOPED_TRACE("event " + std::to_string(i));
        ASSERT_EQ(ea[i].round, eb[i].round);
        ASSERT_EQ(ea[i].node, eb[i].node);
        ASSERT_EQ(ea[i].kind, eb[i].kind);
        ASSERT_EQ(ea[i].message_kind, eb[i].message_kind);
        ASSERT_EQ(ea[i].from, eb[i].from);
      }
    }
  }
}

/// Serialises every NetworkAuditHook callback into one string per event
/// (the bitset_oracle_test idiom). Attaching it forces the exact sub-path
/// and pins the complete callback stream — ordering included — across
/// shard counts.
class RecordingHook final : public NetworkAuditHook {
 public:
  void on_sim_start(const std::vector<NodeId>& initially_awake) override {
    std::uint64_t acc = 0;
    for (const NodeId id : initially_awake) acc += id;
    log_.push_back("start n=" + std::to_string(initially_awake.size()) +
                   " sum=" + std::to_string(acc));
  }
  void on_transmissions(Round round, const std::vector<Message>& txs) override {
    std::string entry = "tx r" + std::to_string(round) + ":";
    for (const Message& m : txs) entry += " " + std::to_string(m.from);
    log_.push_back(std::move(entry));
  }
  void on_deliver(Round round, NodeId receiver, std::uint32_t tx_index,
                  const Message& msg) override {
    log_.push_back("deliver r" + std::to_string(round) + " v" +
                   std::to_string(receiver) + " tx" + std::to_string(tx_index) +
                   " from" + std::to_string(msg.from));
  }
  void on_collision_slot(Round round, NodeId receiver, std::uint32_t reached,
                         bool cd_callback) override {
    log_.push_back("collision r" + std::to_string(round) + " v" +
                   std::to_string(receiver) + " k" + std::to_string(reached) +
                   (cd_callback ? " cd" : ""));
  }
  void on_deaf_slot(Round round, NodeId receiver, std::uint32_t reached) override {
    log_.push_back("deaf r" + std::to_string(round) + " v" +
                   std::to_string(receiver) + " k" + std::to_string(reached));
  }
  void on_fault_drop(Round round, NodeId receiver, std::uint32_t tx_index) override {
    log_.push_back("drop r" + std::to_string(round) + " v" +
                   std::to_string(receiver) + " tx" + std::to_string(tx_index));
  }
  void on_node_wake(Round round, NodeId node) override {
    log_.push_back("wake r" + std::to_string(round) + " v" + std::to_string(node));
  }
  void on_round_end(Round round) override {
    log_.push_back("end r" + std::to_string(round));
  }

  const std::vector<std::string>& log() const { return log_; }

 private:
  std::vector<std::string> log_;
};

TEST(ShardOracle, AuditHookStreamsAreIdentical) {
  // The strongest lock-step check: the full serialized callback stream —
  // per-slot outcomes in receiver-touch order, transmission sets, wakes,
  // round ends — must match entry for entry at every shard count.
  Rng grng(67);
  const graph::Graph g = graph::make_bounded_degree(448, 6, 0.7, grng);
  for (const EngineMode mode : kEngines) {
    for (const std::uint32_t s : kShardCounts) {
      SCOPED_TRACE(case_name(mode, s));
      ShardPair pair(g, mode, s, 5555, 0.2);
      RecordingHook hook_a;
      RecordingHook hook_b;
      pair.ref_net.set_auditor(&hook_a);
      pair.sharded_net.set_auditor(&hook_b);
      pair.wake_seed(0);
      for (int r = 0; r < 80; ++r) pair.step_and_compare();

      const auto& la = hook_a.log();
      const auto& lb = hook_b.log();
      ASSERT_GT(la.size(), 80u);
      ASSERT_EQ(la.size(), lb.size());
      for (std::size_t i = 0; i < la.size(); ++i) {
        ASSERT_EQ(la[i], lb[i]) << "audit stream diverged at entry " << i;
      }
    }
  }
}

/// Runs one hooked simulation and returns its serialized callback log.
std::vector<std::string> hooked_log(const graph::Graph& g, EngineMode mode,
                                    std::uint32_t shards,
                                    const EngineMutations& mut,
                                    std::uint64_t seed, double p, int rounds) {
  Network net(g);
  net.set_engine(mode);
  if (shards > 1) net.set_shards(shards);
  net.set_test_mutations(mut);
  RecordingHook hook;
  net.set_auditor(&hook);
  Rng master(seed);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(v, std::make_unique<FloodNode>(master.split(), p));
    net.wake_at_start(v);
  }
  for (int r = 0; r < rounds; ++r) net.step();
  return hook.log();
}

TEST(ShardOracle, WrongReductionOrderDivergesOrderSensitiveStreams) {
  // Seeded shard bug #1: the (first-reacher, id) merge degraded to plain
  // shard-order concatenation. End-of-run state is unchanged (the same
  // receptions happen), but every order-sensitive stream — the hook
  // callbacks here — replays in the wrong order, so the oracle must see
  // it. This is exactly the class of bug a state-only comparison would
  // miss.
  Rng grng(91);
  const graph::Graph g = graph::make_gnp_connected(448, 0.025, grng);
  EngineMutations mut;
  mut.shard_wrong_reduction_order = true;
  for (const EngineMode mode : kEngines) {
    SCOPED_TRACE(engine_mode_name(mode));
    const auto clean = hooked_log(g, mode, 1, EngineMutations{}, 808, 0.3, 40);
    const auto buggy = hooked_log(g, mode, 4, mut, 808, 0.3, 40);
    ASSERT_NE(clean, buggy) << "wrong-reduction mutation was not observable";
    // Control: the mutation is inert at one shard (no merge happens), and
    // a clean sharded run matches the clean unsharded log exactly.
    EXPECT_EQ(clean, hooked_log(g, mode, 1, mut, 808, 0.3, 40));
    EXPECT_EQ(clean, hooked_log(g, mode, 4, EngineMutations{}, 808, 0.3, 40));
  }
}

TEST(ShardOracle, SkipFrontierExchangeDivergesChannelCounters) {
  // Seeded shard bug #2: each shard applies only its own transmitters, so
  // cross-shard (cut-edge) receptions vanish — and with them the
  // collisions those transmitters caused, so slots flip between
  // delivered/collided/deaf wholesale. Unlike bug #1 this corrupts the
  // end state, so plain counters catch it.
  Rng grng(92);
  const graph::Graph g = graph::make_gnp_connected(448, 0.025, grng);
  EngineMutations mut;
  mut.shard_skip_frontier_exchange = true;
  for (const EngineMode mode : kEngines) {
    SCOPED_TRACE(engine_mode_name(mode));
    ShardPair pair(g, mode, 4, 606, 0.3);
    pair.sharded_net.set_test_mutations(mut);
    pair.wake_all();
    for (int r = 0; r < 40; ++r) {
      pair.ref_net.step();
      pair.sharded_net.step();
    }
    EXPECT_NE(pair.sharded_net.trace().counters(),
              pair.ref_net.trace().counters())
        << "skip-frontier mutation was not observable";
  }
}

/// Packed source twin pair (the bitset fast path's bulk Phase 1): bit
/// (round % 64) of each node's pattern word.
class PatternSource final : public PackedTransmitSource {
 public:
  explicit PatternSource(const std::vector<std::uint64_t>& patterns) {
    const std::size_t words = (patterns.size() + 63) / 64;
    rows_.assign(64, std::vector<std::uint64_t>(words, 0));
    for (std::size_t v = 0; v < patterns.size(); ++v) {
      for (std::uint32_t p = 0; p < 64; ++p) {
        if ((patterns[v] >> p) & 1) rows_[p][v >> 6] |= 1ULL << (v & 63);
      }
    }
  }
  void fill_transmit_words(Round round, std::uint64_t* words,
                           std::size_t num_words) override {
    const auto& row = rows_[round & 63];
    for (std::size_t w = 0; w < num_words; ++w) {
      words[w] = w < row.size() ? row[w] : 0;
    }
  }
  MessageBody packed_body(Round /*round*/, NodeId /*from*/) override {
    return AlarmMsg{};
  }

 private:
  std::vector<std::vector<std::uint64_t>> rows_;
};

/// The protocol twin of PatternSource.
class PatternNode final : public NodeProtocol {
 public:
  explicit PatternNode(std::uint64_t pattern) : pattern_(pattern) {}
  std::optional<MessageBody> on_transmit(Round round) override {
    if (((pattern_ >> (round & 63)) & 1) == 0) return std::nullopt;
    return AlarmMsg{};
  }
  void on_receive(Round /*round*/, const Message& msg) override {
    ++receives;
    last_from = msg.from;
  }
  std::uint64_t receives = 0;
  NodeId last_from = 0;

 private:
  std::uint64_t pattern_ = 0;
};

TEST(ShardOracle, PackedSourceShardedFastSweepMatchesUnsharded) {
  // With a packed source on the fast path, tx_from_ holds only one
  // representative entry — the sharded scatter must read the packed
  // transmit bits, not tx_from_. This pins that sub-path specifically.
  Rng grng(99);
  const graph::Graph g = graph::make_gnp_connected(448, 0.02, grng);
  Rng prng(0xabcdef);
  std::vector<std::uint64_t> patterns(g.num_nodes());
  for (auto& p : patterns) p = prng();

  for (const std::uint32_t s : kShardCounts) {
    SCOPED_TRACE(case_name(EngineMode::kBitset, s));
    PatternSource source_a(patterns);
    PatternSource source_b(patterns);
    Network ref_net(g);
    Network sharded_net(g);
    ref_net.set_engine(EngineMode::kBitset);
    sharded_net.set_engine(EngineMode::kBitset);
    sharded_net.set_shards(s);
    ref_net.set_packed_source(&source_a);
    sharded_net.set_packed_source(&source_b);
    std::vector<PatternNode*> a_nodes, b_nodes;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto a = std::make_unique<PatternNode>(patterns[v]);
      auto b = std::make_unique<PatternNode>(patterns[v]);
      a_nodes.push_back(a.get());
      b_nodes.push_back(b.get());
      ref_net.set_protocol(v, std::move(a));
      sharded_net.set_protocol(v, std::move(b));
      ref_net.wake_at_start(v);
      sharded_net.wake_at_start(v);
    }
    for (int r = 0; r < 128; ++r) {
      ref_net.step();
      sharded_net.step();
      ASSERT_EQ(ref_net.trace().counters(), sharded_net.trace().counters())
          << "round " << r;
    }
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(a_nodes[v]->receives, b_nodes[v]->receives) << "node " << v;
      ASSERT_EQ(a_nodes[v]->last_from, b_nodes[v]->last_from) << "node " << v;
    }
    EXPECT_GT(ref_net.trace().counters().deliveries, 0u);
  }
}

TEST(ShardOracle, SetShardsValidation) {
  Rng grng(3);
  const graph::Graph g = graph::make_gnp_connected(64, 0.1, grng);
  Network net(g);
  net.set_shards(4);
  EXPECT_EQ(net.shards(), 4u);
}

}  // namespace
}  // namespace radiocast::radio
