#include "radio/trace.hpp"

#include <gtest/gtest.h>

namespace radiocast::radio {
namespace {

TEST(Trace, EventsOffByDefault) {
  Trace t;
  EXPECT_FALSE(t.events_enabled());
  t.record({1, 2, TraceEvent::Kind::kDelivered, "alarm", 3});
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace t;
  t.enable_events(true);
  t.record({1, 2, TraceEvent::Kind::kDelivered, "alarm", 3});
  t.record({2, 0, TraceEvent::Kind::kCollision, "", 0});
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].round, 1u);
  EXPECT_EQ(t.events()[0].node, 2u);
  EXPECT_EQ(t.events()[0].from, 3u);
  EXPECT_EQ(t.events()[1].kind, TraceEvent::Kind::kCollision);
}

TEST(Trace, ClearResetsEverything) {
  Trace t;
  t.enable_events(true);
  t.counters().transmissions = 42;
  t.counters().transmissions_by_kind[0] = 7;
  t.record({1, 0, TraceEvent::Kind::kDeaf, "", 0});
  t.clear();
  EXPECT_EQ(t.counters().transmissions, 0u);
  EXPECT_EQ(t.counters().transmissions_by_kind[0], 0u);
  EXPECT_TRUE(t.events().empty());
  // The enable flag survives a clear (it is configuration, not state).
  EXPECT_TRUE(t.events_enabled());
}

TEST(Trace, EventLogIsBoundedAndCountsDrops) {
  Trace t;
  t.enable_events(true);
  t.set_max_events(2);
  EXPECT_EQ(t.max_events(), 2u);
  t.record({1, 0, TraceEvent::Kind::kDelivered, "alarm", 2});
  t.record({2, 0, TraceEvent::Kind::kDelivered, "alarm", 2});
  t.record({3, 0, TraceEvent::Kind::kDelivered, "alarm", 2});
  t.record({4, 0, TraceEvent::Kind::kCollision, "", 0});
  // The first two events are kept; later ones are dropped, not rotated.
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].round, 1u);
  EXPECT_EQ(t.events()[1].round, 2u);
  EXPECT_EQ(t.dropped_events(), 2u);
}

TEST(Trace, ClearPreservesCapButResetsDropCount) {
  Trace t;
  t.enable_events(true);
  t.set_max_events(1);
  t.record({1, 0, TraceEvent::Kind::kDeaf, "", 0});
  t.record({2, 0, TraceEvent::Kind::kDeaf, "", 0});
  EXPECT_EQ(t.dropped_events(), 1u);
  t.clear();
  EXPECT_EQ(t.dropped_events(), 0u);
  EXPECT_EQ(t.max_events(), 1u);  // cap is configuration, survives clear
  t.record({3, 0, TraceEvent::Kind::kDeaf, "", 0});
  t.record({4, 0, TraceEvent::Kind::kDeaf, "", 0});
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].round, 3u);
  EXPECT_EQ(t.dropped_events(), 1u);
}

TEST(Trace, DisabledEventsDoNotCountAsDropped) {
  Trace t;
  // Events off: record() is a no-op, not a "drop" — dropped_events()
  // specifically means "lost to the cap while enabled".
  t.record({1, 0, TraceEvent::Kind::kDelivered, "alarm", 2});
  EXPECT_EQ(t.dropped_events(), 0u);
}

TEST(Trace, KindNamesMatchVariantTags) {
  // message_kind_name(index) must agree with message_kind(body) for every
  // alternative — the analysis module depends on this.
  const std::vector<MessageBody> bodies = {
      BfsConstructMsg{}, AlarmMsg{}, DataMsg{}, AckMsg{}, PlainPacketMsg{},
      CodedMsg{}};
  ASSERT_EQ(bodies.size(), kNumMessageKinds);
  for (const MessageBody& body : bodies) {
    EXPECT_EQ(message_kind(body), message_kind_name(message_kind_index(body)));
  }
}

}  // namespace
}  // namespace radiocast::radio
