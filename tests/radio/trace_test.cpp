#include "radio/trace.hpp"

#include <gtest/gtest.h>

namespace radiocast::radio {
namespace {

TEST(Trace, EventsOffByDefault) {
  Trace t;
  EXPECT_FALSE(t.events_enabled());
  t.record({1, 2, TraceEvent::Kind::kDelivered, "alarm", 3});
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace t;
  t.enable_events(true);
  t.record({1, 2, TraceEvent::Kind::kDelivered, "alarm", 3});
  t.record({2, 0, TraceEvent::Kind::kCollision, "", 0});
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].round, 1u);
  EXPECT_EQ(t.events()[0].node, 2u);
  EXPECT_EQ(t.events()[0].from, 3u);
  EXPECT_EQ(t.events()[1].kind, TraceEvent::Kind::kCollision);
}

TEST(Trace, ClearResetsEverything) {
  Trace t;
  t.enable_events(true);
  t.counters().transmissions = 42;
  t.counters().transmissions_by_kind[0] = 7;
  t.record({1, 0, TraceEvent::Kind::kDeaf, "", 0});
  t.clear();
  EXPECT_EQ(t.counters().transmissions, 0u);
  EXPECT_EQ(t.counters().transmissions_by_kind[0], 0u);
  EXPECT_TRUE(t.events().empty());
  // The enable flag survives a clear (it is configuration, not state).
  EXPECT_TRUE(t.events_enabled());
}

TEST(Trace, KindNamesMatchVariantTags) {
  // message_kind_name(index) must agree with message_kind(body) for every
  // alternative — the analysis module depends on this.
  const std::vector<MessageBody> bodies = {
      BfsConstructMsg{}, AlarmMsg{}, DataMsg{}, AckMsg{}, PlainPacketMsg{},
      CodedMsg{}};
  ASSERT_EQ(bodies.size(), kNumMessageKinds);
  for (const MessageBody& body : bodies) {
    EXPECT_EQ(message_kind(body), message_kind_name(message_kind_index(body)));
  }
}

}  // namespace
}  // namespace radiocast::radio
