// Engine-level property tests under random traffic: accounting identities,
// determinism, neighbor-only propagation — parameterized over graph
// families.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::radio {
namespace {

/// Transmits an AlarmMsg with a fixed probability every round.
class RandomChatter final : public NodeProtocol {
 public:
  RandomChatter(double p, Rng rng) : p_(p), rng_(rng) {}
  std::optional<MessageBody> on_transmit(Round) override {
    if (rng_.next_bool(p_)) return MessageBody{AlarmMsg{}};
    return std::nullopt;
  }
  void on_receive(Round, const Message& msg) override {
    ++receptions_;
    last_from_ = msg.from;
  }
  std::uint64_t receptions_ = 0;
  NodeId last_from_ = 0;

 private:
  double p_;
  Rng rng_;
};

struct RunStats {
  TraceCounters counters;
  std::vector<std::uint64_t> receptions;
};

RunStats run_chatter(const graph::Graph& g, double p, std::uint64_t seed,
                     int rounds) {
  Network net(g);
  Rng master(seed);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(v, std::make_unique<RandomChatter>(p, master.split()));
    net.wake_at_start(v);
  }
  for (int i = 0; i < rounds; ++i) net.step();
  RunStats out;
  out.counters = net.trace().counters();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out.receptions.push_back(static_cast<RandomChatter&>(net.protocol(v)).receptions_);
  }
  return out;
}

class EngineProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineProperties, AccountingIdentitiesHold) {
  Rng grng(5);
  const graph::Graph g = graph::make_named(GetParam(), 32, grng);
  const RunStats s = run_chatter(g, 0.2, 77, 500);

  // Every delivery was recorded by exactly one protocol.
  std::uint64_t total_receptions = 0;
  for (std::uint64_t r : s.receptions) total_receptions += r;
  EXPECT_EQ(total_receptions, s.counters.deliveries);

  // Reception opportunities cannot exceed transmission reach:
  // deliveries + collision slots + deaf slots <= sum of transmitter degrees
  // <= transmissions * maxdeg.
  EXPECT_LE(s.counters.deliveries + s.counters.collision_slots +
                s.counters.deaf_slots,
            s.counters.transmissions * g.max_degree());

  // Per-kind breakdown sums to the totals.
  std::uint64_t tx_by_kind = 0, rx_by_kind = 0;
  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    tx_by_kind += s.counters.transmissions_by_kind[k];
    rx_by_kind += s.counters.deliveries_by_kind[k];
  }
  EXPECT_EQ(tx_by_kind, s.counters.transmissions);
  EXPECT_EQ(rx_by_kind, s.counters.deliveries);

  // Bits follow messages (alarms are 1 bit).
  EXPECT_EQ(s.counters.bits_transmitted, s.counters.transmissions);
  EXPECT_EQ(s.counters.bits_delivered, s.counters.deliveries);

  EXPECT_EQ(s.counters.rounds, 500u);
  EXPECT_EQ(s.counters.wakeups, g.num_nodes());
}

TEST_P(EngineProperties, DeterministicAcrossRuns) {
  Rng grng(6);
  const graph::Graph g = graph::make_named(GetParam(), 24, grng);
  const RunStats a = run_chatter(g, 0.3, 99, 300);
  const RunStats b = run_chatter(g, 0.3, 99, 300);
  EXPECT_EQ(a.counters.transmissions, b.counters.transmissions);
  EXPECT_EQ(a.counters.deliveries, b.counters.deliveries);
  EXPECT_EQ(a.counters.collision_slots, b.counters.collision_slots);
  EXPECT_EQ(a.receptions, b.receptions);
}

INSTANTIATE_TEST_SUITE_P(Families, EngineProperties,
                         ::testing::Values("path", "star", "grid", "gnp",
                                           "geometric", "cluster_chain"));

TEST(EngineProperties, IsolatedNodeNeverReceives) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  Network net(g);
  Rng master(1);
  for (NodeId v = 0; v < 3; ++v) {
    net.set_protocol(v, std::make_unique<RandomChatter>(0.5, master.split()));
    net.wake_at_start(v);
  }
  for (int i = 0; i < 200; ++i) net.step();
  EXPECT_EQ(static_cast<RandomChatter&>(net.protocol(2)).receptions_, 0u);
}

TEST(EngineProperties, FromFieldIsAlwaysANeighbor) {
  Rng grng(2);
  const graph::Graph g = graph::make_random_geometric(24, 0.35, grng);
  Network net(g);
  Rng master(3);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(v, std::make_unique<RandomChatter>(0.15, master.split()));
    net.wake_at_start(v);
  }
  net.trace().enable_events(true);
  for (int i = 0; i < 200; ++i) net.step();
  for (const TraceEvent& e : net.trace().events()) {
    if (e.kind == TraceEvent::Kind::kDelivered) {
      EXPECT_TRUE(g.has_edge(e.node, e.from));
    }
  }
}

TEST(EngineProperties, HighLoadMostlyCollides) {
  // Everyone transmits every round on a complete graph: no one ever
  // receives (all deaf) — the degenerate saturation case.
  const graph::Graph g = graph::make_complete(8);
  Network net(g);
  Rng master(4);
  for (NodeId v = 0; v < 8; ++v) {
    net.set_protocol(v, std::make_unique<RandomChatter>(1.0, master.split()));
    net.wake_at_start(v);
  }
  for (int i = 0; i < 50; ++i) net.step();
  EXPECT_EQ(net.trace().counters().deliveries, 0u);
  EXPECT_EQ(net.trace().counters().deaf_slots, 50u * 8);
}

}  // namespace
}  // namespace radiocast::radio
