// Differential oracle: the bitset round kernel against the scalar one.
//
// Every test runs two identically seeded simulations lock-step — one
// Network per engine mode — and compares them after every round: full
// trace counters, the awake set, and per-protocol observations (transmit
// calls, receive count, last sender, wake round). The scalar engine is the
// reference semantics (every historical digest was produced by it), so any
// divergence is a bitset-engine bug by definition.
//
// Coverage spans both bitset sub-paths: the fast word-sweep path (nothing
// order-sensitive attached) and the exact path (faults, trace events,
// auditor — all of which observe the scalar receiver-touch order), plus
// collision detection, wake-on-first-reception from a single seed node,
// the PackedTransmitSource bulk Phase 1, and a seeded engine mutation whose
// buggy callback stream must replay identically under either engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::radio {
namespace {

/// Probabilistic flood (the engine_equivalence_test idiom): once awake,
/// transmits an alarm with probability `p` each round from its own Rng
/// stream — deterministic given the seed, so two engines fed the same
/// seeds see the same decisions as long as they fire the same callbacks.
class FloodNode final : public NodeProtocol {
 public:
  FloodNode(Rng rng, double p) : rng_(rng), p_(p) {}

  std::optional<MessageBody> on_transmit(Round /*round*/) override {
    ++transmit_calls;
    if (rng_.next_bool(p_)) return AlarmMsg{};
    return std::nullopt;
  }
  void on_receive(Round /*round*/, const Message& msg) override {
    ++receives;
    last_from = msg.from;
  }
  void on_collision(Round /*round*/) override { ++collisions_seen; }
  void on_wake(Round round) override { woke_at = round; }

  std::uint64_t transmit_calls = 0;
  std::uint64_t receives = 0;
  std::uint64_t collisions_seen = 0;
  NodeId last_from = 0;
  std::optional<Round> woke_at;

 private:
  Rng rng_;
  double p_;
};

struct EnginePair {
  Network scalar_net;
  Network bitset_net;
  std::vector<FloodNode*> scalar_nodes;
  std::vector<FloodNode*> bitset_nodes;

  EnginePair(const graph::Graph& g, std::uint64_t seed, double p)
      : scalar_net(g), bitset_net(g) {
    bitset_net.set_engine(EngineMode::kBitset);
    Rng master_a(seed);
    Rng master_b(seed);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto a = std::make_unique<FloodNode>(master_a.split(), p);
      auto b = std::make_unique<FloodNode>(master_b.split(), p);
      scalar_nodes.push_back(a.get());
      bitset_nodes.push_back(b.get());
      scalar_net.set_protocol(v, std::move(a));
      bitset_net.set_protocol(v, std::move(b));
    }
  }

  void wake_all() {
    for (graph::NodeId v = 0; v < scalar_net.num_nodes(); ++v) {
      scalar_net.wake_at_start(v);
      bitset_net.wake_at_start(v);
    }
  }

  /// Steps both engines once and compares every observable.
  void step_and_compare() {
    scalar_net.step();
    bitset_net.step();
    const TraceCounters& a = scalar_net.trace().counters();
    const TraceCounters& b = bitset_net.trace().counters();
    ASSERT_EQ(a, b) << "counters diverged at round " << scalar_net.current_round();
    ASSERT_EQ(scalar_net.num_awake(), bitset_net.num_awake());
    for (graph::NodeId v = 0; v < scalar_net.num_nodes(); ++v) {
      ASSERT_EQ(scalar_net.is_awake(v), bitset_net.is_awake(v)) << "node " << v;
      ASSERT_EQ(scalar_nodes[v]->transmit_calls, bitset_nodes[v]->transmit_calls)
          << "node " << v;
      ASSERT_EQ(scalar_nodes[v]->receives, bitset_nodes[v]->receives) << "node " << v;
      ASSERT_EQ(scalar_nodes[v]->last_from, bitset_nodes[v]->last_from) << "node " << v;
      ASSERT_EQ(scalar_nodes[v]->collisions_seen, bitset_nodes[v]->collisions_seen)
          << "node " << v;
      ASSERT_EQ(scalar_nodes[v]->woke_at, bitset_nodes[v]->woke_at) << "node " << v;
    }
  }
};

TEST(BitsetOracle, DenseGnpAllAwake) {
  Rng grng(101);
  const graph::Graph g = graph::make_gnp_connected(96, 0.2, grng);
  EnginePair pair(g, 42, 0.3);
  pair.wake_all();
  for (int r = 0; r < 200; ++r) pair.step_and_compare();
  EXPECT_GT(pair.scalar_net.trace().counters().deliveries, 0u);
  EXPECT_GT(pair.scalar_net.trace().counters().collision_slots, 0u);
}

TEST(BitsetOracle, SparseBoundedDegreeAllAwake) {
  Rng grng(7);
  const graph::Graph g = graph::make_bounded_degree(200, 4, 0.5, grng);
  EnginePair pair(g, 9001, 0.05);
  pair.wake_all();
  for (int r = 0; r < 300; ++r) pair.step_and_compare();
  EXPECT_GT(pair.scalar_net.trace().counters().deliveries, 0u);
}

TEST(BitsetOracle, GeometricWakeOnFirstReception) {
  Rng grng(31);
  const graph::Graph g = graph::make_random_geometric(80, 0.25, grng);
  EnginePair pair(g, 777, 0.25);
  pair.scalar_net.wake_at_start(0);
  pair.bitset_net.wake_at_start(0);
  for (int r = 0; r < 400; ++r) pair.step_and_compare();
  EXPECT_GT(pair.scalar_net.trace().counters().wakeups, 1u);
}

TEST(BitsetOracle, CollisionDetectionAblation) {
  Rng grng(55);
  const graph::Graph g = graph::make_gnp_connected(64, 0.25, grng);
  EnginePair pair(g, 314, 0.35);
  pair.scalar_net.enable_collision_detection(true);
  pair.bitset_net.enable_collision_detection(true);
  pair.scalar_net.wake_at_start(0);
  pair.bitset_net.wake_at_start(0);
  for (int r = 0; r < 250; ++r) pair.step_and_compare();
  std::uint64_t cd_callbacks = 0;
  for (const FloodNode* n : pair.scalar_nodes) cd_callbacks += n->collisions_seen;
  EXPECT_GT(cd_callbacks, 0u);  // CD wakes + on_collision actually exercised
}

TEST(BitsetOracle, FaultErasuresConsumeIdenticalRngStream) {
  // Faults force the exact sub-path: the erasure RNG is consumed one draw
  // per successful slot in receiver-touch order, so identical fault_drops
  // counters require the bitset engine to replay the scalar touch order.
  Rng grng(13);
  const graph::Graph g = graph::make_gnp_connected(72, 0.15, grng);
  EnginePair pair(g, 2718, 0.2);
  FaultModel fm;
  fm.reception_loss_probability = 0.3;
  fm.seed = 0xfa7155eedULL;
  pair.scalar_net.set_fault_model(fm);
  pair.bitset_net.set_fault_model(fm);
  pair.wake_all();
  for (int r = 0; r < 300; ++r) pair.step_and_compare();
  EXPECT_GT(pair.scalar_net.trace().counters().fault_drops, 0u);
}

TEST(BitsetOracle, TraceEventLogsAreIdentical) {
  Rng grng(23);
  const graph::Graph g = graph::make_gnp_connected(48, 0.25, grng);
  EnginePair pair(g, 123, 0.3);
  pair.scalar_net.trace().enable_events(true);
  pair.bitset_net.trace().enable_events(true);
  pair.wake_all();
  for (int r = 0; r < 120; ++r) pair.step_and_compare();

  const auto& ea = pair.scalar_net.trace().events();
  const auto& eb = pair.bitset_net.trace().events();
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_GT(ea.size(), 0u);
  for (std::size_t i = 0; i < ea.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(ea[i].round, eb[i].round);
    EXPECT_EQ(ea[i].node, eb[i].node);
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    EXPECT_EQ(ea[i].message_kind, eb[i].message_kind);
    EXPECT_EQ(ea[i].from, eb[i].from);
  }
}

/// Serialises every NetworkAuditHook callback into one string per event.
/// Attaching it forces the bitset engine onto the exact sub-path, and the
/// resulting log pins the complete callback stream — ordering included —
/// against the scalar engine's. (ModelAuditor-level certification under
/// the bitset engine lives in tests/audit/bitset_corpus_test.cpp, where
/// the full k-broadcast run context it requires exists.)
class RecordingHook final : public NetworkAuditHook {
 public:
  void on_sim_start(const std::vector<NodeId>& initially_awake) override {
    std::uint64_t acc = 0;
    for (const NodeId id : initially_awake) acc += id;
    log_.push_back("start n=" + std::to_string(initially_awake.size()) +
                   " sum=" + std::to_string(acc));
  }
  void on_transmissions(Round round, const std::vector<Message>& txs) override {
    std::string entry = "tx r" + std::to_string(round) + ":";
    for (const Message& m : txs) entry += " " + std::to_string(m.from);
    log_.push_back(std::move(entry));
  }
  void on_deliver(Round round, NodeId receiver, std::uint32_t tx_index,
                  const Message& msg) override {
    log_.push_back("deliver r" + std::to_string(round) + " v" +
                   std::to_string(receiver) + " tx" + std::to_string(tx_index) +
                   " from" + std::to_string(msg.from));
  }
  void on_collision_slot(Round round, NodeId receiver, std::uint32_t reached,
                         bool cd_callback) override {
    log_.push_back("collision r" + std::to_string(round) + " v" +
                   std::to_string(receiver) + " k" + std::to_string(reached) +
                   (cd_callback ? " cd" : ""));
  }
  void on_deaf_slot(Round round, NodeId receiver, std::uint32_t reached) override {
    log_.push_back("deaf r" + std::to_string(round) + " v" +
                   std::to_string(receiver) + " k" + std::to_string(reached));
  }
  void on_fault_drop(Round round, NodeId receiver, std::uint32_t tx_index) override {
    log_.push_back("drop r" + std::to_string(round) + " v" +
                   std::to_string(receiver) + " tx" + std::to_string(tx_index));
  }
  void on_node_wake(Round round, NodeId node) override {
    log_.push_back("wake r" + std::to_string(round) + " v" + std::to_string(node));
  }
  void on_round_end(Round round) override {
    log_.push_back("end r" + std::to_string(round));
  }

  const std::vector<std::string>& log() const { return log_; }

 private:
  std::vector<std::string> log_;
};

TEST(BitsetOracle, AuditHookStreamsAreIdentical) {
  // The strongest lock-step check: the full serialized callback stream —
  // per-slot outcomes in receiver-touch order, transmission sets, wakes,
  // round ends — must match entry for entry. An attached hook also forces
  // the bitset engine's exact sub-path.
  Rng grng(67);
  const graph::Graph g = graph::make_random_geometric(60, 0.3, grng);
  EnginePair pair(g, 5555, 0.25);
  RecordingHook hook_a;
  RecordingHook hook_b;
  pair.scalar_net.set_auditor(&hook_a);
  pair.bitset_net.set_auditor(&hook_b);
  pair.scalar_net.wake_at_start(0);
  pair.bitset_net.wake_at_start(0);
  for (int r = 0; r < 200; ++r) pair.step_and_compare();

  const auto& la = hook_a.log();
  const auto& lb = hook_b.log();
  ASSERT_GT(la.size(), 200u);
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    ASSERT_EQ(la[i], lb[i]) << "audit stream diverged at entry " << i;
  }
}

TEST(BitsetOracle, SeededMutationReplaysIdenticallyOnBothEngines) {
  // A deliberate model violation (deliver on collision) must be replayed
  // bit for bit by the bitset engine: the mutated callback stream differs
  // from the clean one, but is identical across engines. This pins the
  // exact sub-path under EngineMutations, which the corpus (mutation-free)
  // cannot reach.
  Rng grng(67);
  const graph::Graph g = graph::make_gnp_connected(40, 0.3, grng);

  auto run = [&](EngineMode mode, bool mutate) {
    Network net(g);
    net.set_engine(mode);
    if (mutate) {
      EngineMutations mut;
      mut.deliver_on_collision = true;
      net.set_test_mutations(mut);
    }
    RecordingHook hook;
    net.set_auditor(&hook);
    Rng master(31337);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      net.set_protocol(v, std::make_unique<FloodNode>(master.split(), 0.4));
      net.wake_at_start(v);
    }
    for (int r = 0; r < 60; ++r) net.step();
    return hook.log();
  };

  const std::vector<std::string> scalar_mut = run(EngineMode::kScalar, true);
  const std::vector<std::string> bitset_mut = run(EngineMode::kBitset, true);
  const std::vector<std::string> scalar_clean = run(EngineMode::kScalar, false);
  ASSERT_NE(scalar_mut, scalar_clean) << "mutation had no observable effect";
  EXPECT_EQ(scalar_mut, bitset_mut);
}

/// Packed source mirroring FloodNode-free fixed schedules: bit (round % 64)
/// of each node's pattern word.
class PatternSource final : public PackedTransmitSource {
 public:
  explicit PatternSource(const std::vector<std::uint64_t>& patterns) {
    const std::size_t words = (patterns.size() + 63) / 64;
    rows_.assign(64, std::vector<std::uint64_t>(words, 0));
    for (std::size_t v = 0; v < patterns.size(); ++v) {
      for (std::uint32_t p = 0; p < 64; ++p) {
        if ((patterns[v] >> p) & 1) rows_[p][v >> 6] |= 1ULL << (v & 63);
      }
    }
  }
  void fill_transmit_words(Round round, std::uint64_t* words,
                           std::size_t num_words) override {
    const auto& row = rows_[round & 63];
    for (std::size_t w = 0; w < num_words; ++w) {
      words[w] = w < row.size() ? row[w] : 0;
    }
  }
  MessageBody packed_body(Round /*round*/, NodeId /*from*/) override {
    return AlarmMsg{};
  }

 private:
  std::vector<std::vector<std::uint64_t>> rows_;
};

/// The protocol twin of PatternSource (the scalar engine and the contract's
/// "must agree with on_transmit" clause both need it).
class PatternNode final : public NodeProtocol {
 public:
  explicit PatternNode(std::uint64_t pattern) : pattern_(pattern) {}
  std::optional<MessageBody> on_transmit(Round round) override {
    if (((pattern_ >> (round & 63)) & 1) == 0) return std::nullopt;
    return AlarmMsg{};
  }
  void on_receive(Round /*round*/, const Message& msg) override {
    ++receives;
    last_from = msg.from;
  }
  std::uint64_t receives = 0;
  NodeId last_from = 0;

 private:
  std::uint64_t pattern_ = 0;
};

TEST(BitsetOracle, PackedSourceMatchesOnTransmitProtocols) {
  Rng grng(99);
  const graph::Graph g = graph::make_gnp_connected(150, 0.1, grng);
  Rng prng(0xabcdef);
  std::vector<std::uint64_t> patterns(g.num_nodes());
  for (auto& p : patterns) p = prng();
  PatternSource source(patterns);

  Network scalar_net(g);
  Network bitset_net(g);
  bitset_net.set_engine(EngineMode::kBitset);
  bitset_net.set_packed_source(&source);
  std::vector<PatternNode*> a_nodes, b_nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = std::make_unique<PatternNode>(patterns[v]);
    auto b = std::make_unique<PatternNode>(patterns[v]);
    a_nodes.push_back(a.get());
    b_nodes.push_back(b.get());
    scalar_net.set_protocol(v, std::move(a));
    bitset_net.set_protocol(v, std::move(b));
    scalar_net.wake_at_start(v);
    bitset_net.wake_at_start(v);
  }
  for (int r = 0; r < 192; ++r) {
    scalar_net.step();
    bitset_net.step();
    ASSERT_EQ(scalar_net.trace().counters(), bitset_net.trace().counters())
        << "round " << r;
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(a_nodes[v]->receives, b_nodes[v]->receives) << "node " << v;
    ASSERT_EQ(a_nodes[v]->last_from, b_nodes[v]->last_from) << "node " << v;
  }
  EXPECT_GT(scalar_net.trace().counters().deliveries, 0u);
}

TEST(BitsetOracle, EngineModeNamesRoundTrip) {
  EXPECT_STREQ(engine_mode_name(EngineMode::kScalar), "scalar");
  EXPECT_STREQ(engine_mode_name(EngineMode::kBitset), "bitset");
  EXPECT_EQ(parse_engine_mode("scalar"), EngineMode::kScalar);
  EXPECT_EQ(parse_engine_mode("bitset"), EngineMode::kBitset);
  EXPECT_EQ(parse_engine_mode("vector"), std::nullopt);
}

}  // namespace
}  // namespace radiocast::radio
