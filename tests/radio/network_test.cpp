// Truth-table tests of the radio model semantics: receive iff exactly one
// neighbor transmits; transmitters are deaf; no collision detection signal;
// sleeping nodes wake on first reception.
#include "radio/network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "graph/generators.hpp"

namespace radiocast::radio {
namespace {

/// Transmits scripted messages at scripted rounds; records every delivery.
class ScriptNode final : public NodeProtocol {
 public:
  explicit ScriptNode(std::map<Round, MessageBody> script = {})
      : script_(std::move(script)) {}

  void on_wake(Round round) override {
    woke_ = true;
    wake_round_ = round;
  }

  std::optional<MessageBody> on_transmit(Round round) override {
    ++transmit_polls_;
    const auto it = script_.find(round);
    if (it == script_.end()) return std::nullopt;
    return it->second;
  }

  void on_receive(Round round, const Message& msg) override {
    received_.emplace_back(round, msg);
  }

  bool woke_ = false;
  Round wake_round_ = 0;
  std::uint64_t transmit_polls_ = 0;
  std::vector<std::pair<Round, Message>> received_;

 private:
  std::map<Round, MessageBody> script_;
};

ScriptNode& node_at(Network& net, NodeId id) {
  return static_cast<ScriptNode&>(net.protocol(id));
}

/// Star with center 0 and `leaves` leaves.
Network make_star_net(graph::Graph& g, NodeId leaves,
                      const std::map<NodeId, std::map<Round, MessageBody>>& scripts,
                      bool wake_all = true) {
  g = graph::make_star(leaves + 1);
  Network net(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto it = scripts.find(v);
    net.set_protocol(v, std::make_unique<ScriptNode>(
                            it == scripts.end() ? std::map<Round, MessageBody>{}
                                                : it->second));
    if (wake_all) net.wake_at_start(v);
  }
  return net;
}

TEST(Network, SingleTransmitterDelivers) {
  graph::Graph g;
  Network net = make_star_net(g, 3, {{1, {{0, AlarmMsg{}}}}});
  net.step();
  // Center hears leaf 1; other leaves are not adjacent to leaf 1.
  ASSERT_EQ(node_at(net, 0).received_.size(), 1u);
  EXPECT_EQ(node_at(net, 0).received_[0].second.from, 1u);
  EXPECT_TRUE(node_at(net, 2).received_.empty());
  EXPECT_TRUE(node_at(net, 3).received_.empty());
  EXPECT_EQ(net.trace().counters().deliveries, 1u);
  EXPECT_EQ(net.trace().counters().transmissions, 1u);
}

TEST(Network, TwoTransmittersCollideAtCommonNeighbor) {
  graph::Graph g;
  Network net = make_star_net(g, 3, {{1, {{0, AlarmMsg{}}}}, {2, {{0, AlarmMsg{}}}}});
  net.step();
  EXPECT_TRUE(node_at(net, 0).received_.empty());  // collision at center
  EXPECT_EQ(net.trace().counters().collision_slots, 1u);
  EXPECT_EQ(net.trace().counters().deliveries, 0u);
}

TEST(Network, NoCollisionDetectionSignal) {
  // A node cannot distinguish silence from collision: in both cases it
  // simply gets no on_receive callback.
  graph::Graph g;
  Network silent = make_star_net(g, 2, {});
  silent.step();
  graph::Graph g2;
  Network collided = make_star_net(g2, 2,
                                   {{1, {{0, AlarmMsg{}}}}, {2, {{0, AlarmMsg{}}}}});
  collided.step();
  EXPECT_TRUE(node_at(silent, 0).received_.empty());
  EXPECT_TRUE(node_at(collided, 0).received_.empty());
}

TEST(Network, TransmitterIsDeaf) {
  // Center and leaf both transmit; leaf 1 would be the center's only
  // transmitting neighbor, but the center is itself transmitting.
  graph::Graph g;
  Network net = make_star_net(g, 2, {{0, {{0, AlarmMsg{}}}}, {1, {{0, AlarmMsg{}}}}});
  net.step();
  EXPECT_TRUE(node_at(net, 0).received_.empty());
  EXPECT_TRUE(node_at(net, 1).received_.empty());
  // Both the center and leaf 1 were reached while transmitting.
  EXPECT_EQ(net.trace().counters().deaf_slots, 2u);
  // Leaf 2 hears the center alone (leaf 1 is not its neighbor).
  ASSERT_EQ(node_at(net, 2).received_.size(), 1u);
  EXPECT_EQ(node_at(net, 2).received_[0].second.from, 0u);
}

TEST(Network, MessageReachesOnlyNeighbors) {
  graph::Graph g = graph::make_path(4);
  Network net(g);
  for (NodeId v = 0; v < 4; ++v) {
    net.set_protocol(v, std::make_unique<ScriptNode>(
                            v == 0 ? std::map<Round, MessageBody>{{0, AlarmMsg{}}}
                                   : std::map<Round, MessageBody>{}));
    net.wake_at_start(v);
  }
  net.step();
  EXPECT_EQ(node_at(net, 1).received_.size(), 1u);
  EXPECT_TRUE(node_at(net, 2).received_.empty());
  EXPECT_TRUE(node_at(net, 3).received_.empty());
}

TEST(Network, SleepingNodeDoesNotTransmitButWakesOnReception) {
  graph::Graph g = graph::make_path(3);
  Network net(g);
  net.set_protocol(0, std::make_unique<ScriptNode>(
                          std::map<Round, MessageBody>{{0, AlarmMsg{}}}));
  // Node 1 sleeps but has a script for round 1; it must not fire... it
  // wakes at round 0 via reception, so its round-1 script does fire.
  net.set_protocol(1, std::make_unique<ScriptNode>(
                          std::map<Round, MessageBody>{{1, AlarmMsg{}}}));
  net.set_protocol(2, std::make_unique<ScriptNode>(
                          std::map<Round, MessageBody>{{0, AlarmMsg{}}, {1, AlarmMsg{}}}));
  net.wake_at_start(0);
  // Nodes 1, 2 sleep. Round 0: only node 0 transmits (node 2's script is
  // ignored while asleep); node 1 receives and wakes.
  net.step();
  EXPECT_TRUE(node_at(net, 1).woke_);
  EXPECT_EQ(node_at(net, 1).wake_round_, 0u);
  ASSERT_EQ(node_at(net, 1).received_.size(), 1u);
  EXPECT_FALSE(node_at(net, 2).woke_);
  EXPECT_EQ(node_at(net, 2).transmit_polls_, 0u);
  // Round 1: node 1 (now awake) transmits per script; node 2 wakes.
  net.step();
  EXPECT_TRUE(node_at(net, 2).woke_);
  EXPECT_EQ(node_at(net, 2).wake_round_, 1u);
}

TEST(Network, InitialWakeFiresOnWakeAtRoundZero) {
  graph::Graph g = graph::make_path(2);
  Network net(g);
  net.set_protocol(0, std::make_unique<ScriptNode>());
  net.set_protocol(1, std::make_unique<ScriptNode>());
  net.wake_at_start(0);
  net.step();
  EXPECT_TRUE(node_at(net, 0).woke_);
  EXPECT_EQ(node_at(net, 0).wake_round_, 0u);
  EXPECT_FALSE(node_at(net, 1).woke_);
  EXPECT_EQ(net.trace().counters().wakeups, 1u);
}

TEST(Network, AwakeNodesArePolledEveryRound) {
  graph::Graph g = graph::make_path(2);
  Network net(g);
  net.set_protocol(0, std::make_unique<ScriptNode>());
  net.set_protocol(1, std::make_unique<ScriptNode>());
  net.wake_at_start(0);
  net.wake_at_start(1);
  for (int i = 0; i < 10; ++i) net.step();
  EXPECT_EQ(node_at(net, 0).transmit_polls_, 10u);
  EXPECT_EQ(node_at(net, 1).transmit_polls_, 10u);
  EXPECT_EQ(net.current_round(), 10u);
  EXPECT_EQ(net.trace().counters().rounds, 10u);
}

TEST(Network, RunUntilPredicate) {
  graph::Graph g = graph::make_path(2);
  Network net(g);
  net.set_protocol(0, std::make_unique<ScriptNode>(
                          std::map<Round, MessageBody>{{5, AlarmMsg{}}}));
  net.set_protocol(1, std::make_unique<ScriptNode>());
  net.wake_at_start(0);
  const bool fired = net.run_until(
      100, [&] { return !node_at(net, 1).received_.empty(); });
  EXPECT_TRUE(fired);
  EXPECT_EQ(net.current_round(), 6u);
}

TEST(Network, RunUntilTimesOut) {
  graph::Graph g = graph::make_path(2);
  Network net(g);
  net.set_protocol(0, std::make_unique<ScriptNode>());
  net.set_protocol(1, std::make_unique<ScriptNode>());
  net.wake_at_start(0);
  const bool fired = net.run_until(7, [] { return false; });
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.current_round(), 7u);
}

TEST(Network, BitCountersTrackSizes) {
  graph::Graph g;
  Network net = make_star_net(g, 2, {{0, {{0, AlarmMsg{}}}}});
  net.step();
  EXPECT_EQ(net.trace().counters().bits_transmitted, 1u);
  EXPECT_EQ(net.trace().counters().bits_delivered, 2u);  // both leaves hear
}

TEST(Network, EventLogRecordsKinds) {
  graph::Graph g;
  Network net = make_star_net(g, 2, {{1, {{0, AlarmMsg{}}}}});
  net.trace().enable_events(true);
  net.step();
  ASSERT_EQ(net.trace().events().size(), 1u);
  EXPECT_EQ(net.trace().events()[0].kind, TraceEvent::Kind::kDelivered);
  EXPECT_EQ(net.trace().events()[0].message_kind, "alarm");
  EXPECT_EQ(net.trace().events()[0].node, 0u);
  EXPECT_EQ(net.trace().events()[0].from, 1u);
}

// Configuration-after-start and out-of-range misuse must die loudly:
// silently accepting a protocol swap or fault-model change mid-run would
// invalidate every invariant the auditor checks.
using NetworkDeathTest = ::testing::Test;

TEST(NetworkDeathTest, ConfigurationAfterFirstStepAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  graph::Graph g = graph::make_path(2);
  Network net(g);
  net.set_protocol(0, std::make_unique<ScriptNode>());
  net.set_protocol(1, std::make_unique<ScriptNode>());
  net.wake_at_start(0);
  net.step();
  EXPECT_DEATH(net.set_protocol(0, std::make_unique<ScriptNode>()),
               "set_protocol after the simulation started");
  EXPECT_DEATH(net.wake_at_start(1),
               "wake_at_start after the simulation started");
  EXPECT_DEATH(net.set_fault_model({0.1, 1}),
               "set_fault_model after the simulation started");
  EXPECT_DEATH(net.enable_collision_detection(true),
               "enable_collision_detection after the simulation started");
}

TEST(NetworkDeathTest, OutOfRangeIdsAbort) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  graph::Graph g = graph::make_path(2);
  Network net(g);
  EXPECT_DEATH(net.set_protocol(2, std::make_unique<ScriptNode>()),
               "set_protocol on an out-of-range id");
  EXPECT_DEATH(net.wake_at_start(2), "wake_at_start on an out-of-range id");
}

TEST(NetworkDeathTest, InvalidFaultProbabilityAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  graph::Graph g = graph::make_path(2);
  Network net(g);
  EXPECT_DEATH(net.set_fault_model({1.5, 1}), "reception_loss_probability");
}

TEST(Network, PayloadIntegrityThroughDelivery) {
  DataMsg data;
  data.packet.id = make_packet_id(1, 7);
  data.packet.payload = {1, 2, 3, 4};
  data.to = 0;
  graph::Graph g;
  Network net = make_star_net(g, 1, {{1, {{0, data}}}});
  net.step();
  ASSERT_EQ(node_at(net, 0).received_.size(), 1u);
  const auto& body = node_at(net, 0).received_[0].second.body;
  const auto* got = std::get_if<DataMsg>(&body);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->packet.id, data.packet.id);
  EXPECT_EQ(got->packet.payload, data.packet.payload);
}

}  // namespace
}  // namespace radiocast::radio
