// Fault-injection tests: the protocol's own recovery machinery
// (acknowledgment-driven retries, alarms, coded redundancy) must absorb
// moderate external interference; the engine must account every erasure.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/uncoded_pipeline.hpp"
#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::radio {
namespace {

/// Transmits every round; counts receptions on the other side.
class Chatter final : public NodeProtocol {
 public:
  std::optional<MessageBody> on_transmit(Round) override {
    return transmit_ ? std::optional<MessageBody>(AlarmMsg{}) : std::nullopt;
  }
  void on_receive(Round, const Message&) override { ++received_; }
  bool transmit_ = false;
  std::uint64_t received_ = 0;
};

TEST(Faults, LossRateMatchesModel) {
  const graph::Graph g = graph::make_path(2);
  Network net(g);
  auto tx = std::make_unique<Chatter>();
  tx->transmit_ = true;
  auto rx = std::make_unique<Chatter>();
  Chatter* rx_ptr = rx.get();
  net.set_protocol(0, std::move(tx));
  net.set_protocol(1, std::move(rx));
  net.wake_at_start(0);
  net.wake_at_start(1);
  net.set_fault_model({0.3, 99});
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) net.step();
  const double loss = 1.0 - static_cast<double>(rx_ptr->received_) / rounds;
  EXPECT_NEAR(loss, 0.3, 0.02);
  EXPECT_EQ(net.trace().counters().fault_drops,
            rounds - rx_ptr->received_);
}

TEST(Faults, ZeroLossIsNoop) {
  const graph::Graph g = graph::make_path(2);
  Network net(g);
  auto tx = std::make_unique<Chatter>();
  tx->transmit_ = true;
  auto rx = std::make_unique<Chatter>();
  Chatter* rx_ptr = rx.get();
  net.set_protocol(0, std::move(tx));
  net.set_protocol(1, std::move(rx));
  net.wake_at_start(0);
  net.wake_at_start(1);
  for (int i = 0; i < 100; ++i) net.step();
  EXPECT_EQ(rx_ptr->received_, 100u);
  EXPECT_EQ(net.trace().counters().fault_drops, 0u);
}

TEST(Faults, FaultsAreDeterministicBySeed) {
  auto run = [](std::uint64_t seed) {
    const graph::Graph g = graph::make_path(2);
    Network net(g);
    auto tx = std::make_unique<Chatter>();
    tx->transmit_ = true;
    auto rx = std::make_unique<Chatter>();
    Chatter* rx_ptr = rx.get();
    net.set_protocol(0, std::move(tx));
    net.set_protocol(1, std::move(rx));
    net.wake_at_start(0);
    net.wake_at_start(1);
    net.set_fault_model({0.5, seed});
    for (int i = 0; i < 500; ++i) net.step();
    return rx_ptr->received_;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // overwhelmingly likely over 500 coin flips
}

TEST(Faults, KBroadcastSurvivesModerateLoss) {
  // End-to-end: 5% reception loss. Acks keep sources retrying, alarms keep
  // phases coming, coded redundancy absorbs dropped rows — everything is
  // still delivered, just later.
  Rng grng(20);
  const graph::Graph g = graph::make_random_geometric(32, 0.35, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng prng(21);
  const core::Placement placement =
      core::make_placement(32, 24, core::PlacementMode::kRandom, 8, prng);

  const core::RunResult clean = core::run_kbroadcast(
      g, baselines::coded_config(know), placement, 22);
  ASSERT_TRUE(clean.delivered_all);

  FaultModel faults;
  faults.reception_loss_probability = 0.05;
  faults.seed = 1234;
  // Give the lossy run generous headroom over the analytic bound.
  const core::RunResult lossy = core::run_kbroadcast(
      g, baselines::coded_config(know), placement, 22, clean.total_rounds * 20,
      faults);
  EXPECT_TRUE(lossy.delivered_all);
  EXPECT_GT(lossy.counters.fault_drops, 0u);
  EXPECT_GE(lossy.total_rounds, clean.total_rounds);
}

class FaultSweep : public ::testing::TestWithParam<double> {};

TEST_P(FaultSweep, DeliveryDegradesGracefully) {
  const double loss = GetParam();
  Rng grng(30);
  const graph::Graph g = graph::make_gnp_connected(24, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng prng(31);
  const core::Placement placement =
      core::make_placement(24, 12, core::PlacementMode::kRandom, 8, prng);
  FaultModel faults;
  faults.reception_loss_probability = loss;
  faults.seed = 77;
  const core::RunResult r = core::run_kbroadcast(
      g, baselines::coded_config(know), placement, 32, 4'000'000, faults);
  EXPECT_TRUE(r.delivered_all) << "loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(LossRates, FaultSweep, ::testing::Values(0.01, 0.05, 0.1));

}  // namespace
}  // namespace radiocast::radio
