// Fault-injection tests: the protocol's own recovery machinery
// (acknowledgment-driven retries, alarms, coded redundancy) must absorb
// moderate external interference; the engine must account every erasure.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/uncoded_pipeline.hpp"
#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::radio {
namespace {

/// Transmits every round; counts receptions on the other side.
class Chatter final : public NodeProtocol {
 public:
  std::optional<MessageBody> on_transmit(Round) override {
    return transmit_ ? std::optional<MessageBody>(AlarmMsg{}) : std::nullopt;
  }
  void on_receive(Round, const Message&) override { ++received_; }
  bool transmit_ = false;
  std::uint64_t received_ = 0;
};

TEST(Faults, LossRateMatchesModel) {
  const graph::Graph g = graph::make_path(2);
  Network net(g);
  auto tx = std::make_unique<Chatter>();
  tx->transmit_ = true;
  auto rx = std::make_unique<Chatter>();
  Chatter* rx_ptr = rx.get();
  net.set_protocol(0, std::move(tx));
  net.set_protocol(1, std::move(rx));
  net.wake_at_start(0);
  net.wake_at_start(1);
  net.set_fault_model({0.3, 99});
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) net.step();
  const double loss = 1.0 - static_cast<double>(rx_ptr->received_) / rounds;
  EXPECT_NEAR(loss, 0.3, 0.02);
  EXPECT_EQ(net.trace().counters().fault_drops,
            rounds - rx_ptr->received_);
}

TEST(Faults, ZeroLossIsNoop) {
  const graph::Graph g = graph::make_path(2);
  Network net(g);
  auto tx = std::make_unique<Chatter>();
  tx->transmit_ = true;
  auto rx = std::make_unique<Chatter>();
  Chatter* rx_ptr = rx.get();
  net.set_protocol(0, std::move(tx));
  net.set_protocol(1, std::move(rx));
  net.wake_at_start(0);
  net.wake_at_start(1);
  for (int i = 0; i < 100; ++i) net.step();
  EXPECT_EQ(rx_ptr->received_, 100u);
  EXPECT_EQ(net.trace().counters().fault_drops, 0u);
}

TEST(Faults, FaultsAreDeterministicBySeed) {
  auto run = [](std::uint64_t seed) {
    const graph::Graph g = graph::make_path(2);
    Network net(g);
    auto tx = std::make_unique<Chatter>();
    tx->transmit_ = true;
    auto rx = std::make_unique<Chatter>();
    Chatter* rx_ptr = rx.get();
    net.set_protocol(0, std::move(tx));
    net.set_protocol(1, std::move(rx));
    net.wake_at_start(0);
    net.wake_at_start(1);
    net.set_fault_model({0.5, seed});
    for (int i = 0; i < 500; ++i) net.step();
    return rx_ptr->received_;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // overwhelmingly likely over 500 coin flips
}

TEST(Faults, KBroadcastSurvivesModerateLoss) {
  // End-to-end: 5% reception loss. Acks keep sources retrying, alarms keep
  // phases coming, coded redundancy absorbs dropped rows — everything is
  // still delivered, just later.
  Rng grng(20);
  const graph::Graph g = graph::make_random_geometric(32, 0.35, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng prng(21);
  const core::Placement placement =
      core::make_placement(32, 24, core::PlacementMode::kRandom, 8, prng);

  const core::RunResult clean = core::run_kbroadcast(
      g, baselines::coded_config(know), placement, 22);
  ASSERT_TRUE(clean.delivered_all);

  FaultModel faults;
  faults.reception_loss_probability = 0.05;
  faults.seed = 1234;
  // Give the lossy run generous headroom over the analytic bound.
  const core::RunResult lossy = core::run_kbroadcast(
      g, baselines::coded_config(know), placement, 22, clean.total_rounds * 20,
      faults);
  EXPECT_TRUE(lossy.delivered_all);
  EXPECT_GT(lossy.counters.fault_drops, 0u);
  EXPECT_GE(lossy.total_rounds, clean.total_rounds);
}

/// Transmits on a fixed round-modulo schedule; records reception rounds.
class Scheduled final : public NodeProtocol {
 public:
  /// Transmits on round r iff r % 4 is in `slots`.
  explicit Scheduled(std::vector<Round> slots) : slots_(std::move(slots)) {}
  std::optional<MessageBody> on_transmit(Round r) override {
    for (Round s : slots_) {
      if (r % 4 == s) return MessageBody(AlarmMsg{});
    }
    return std::nullopt;
  }
  void on_receive(Round r, const Message&) override {
    received_rounds_.push_back(r);
  }
  std::vector<Round> received_rounds_;

 private:
  std::vector<Round> slots_;
};

// Pins the fault-RNG stream discipline documented on radio::FaultModel:
// exactly one Bernoulli draw per *successful* slot, in receiver-touch
// order; collision, deaf, and silent slots never consume a draw. The test
// scripts a path 0-1-2 through a fixed 4-round pattern —
//   r%4==0: node 0 transmits  -> one successful slot (receiver 1)
//   r%4==1: nodes 0 and 2 transmit -> collision at node 1, no draw
//   r%4==2: node 1 transmits  -> two successful slots (receivers 0, 2)
//   r%4==3: silence           -> no draw
// — then replays an independent Rng with the same seed over only the
// successful slots and demands delivery-by-delivery agreement. Any
// regression that draws on collision or silent slots desynchronizes the
// replay within a few rounds.
TEST(Faults, ErasureDrawsConsumeRngOnlyOnSuccessfulSlots) {
  constexpr double kLoss = 0.5;
  constexpr std::uint64_t kSeed = 424242;
  constexpr Round kRounds = 400;

  const graph::Graph g = graph::make_path(3);
  Network net(g);
  net.set_protocol(0, std::make_unique<Scheduled>(std::vector<Round>{0, 1}));
  net.set_protocol(1, std::make_unique<Scheduled>(std::vector<Round>{2}));
  net.set_protocol(2, std::make_unique<Scheduled>(std::vector<Round>{1}));
  for (NodeId v = 0; v < 3; ++v) net.wake_at_start(v);
  net.set_fault_model({kLoss, kSeed});
  for (Round r = 0; r < kRounds; ++r) net.step();

  // Replay: same seed, draws only at the successful slots, receivers in
  // touch order (the transmitter's adjacency order: 0 before 2).
  Rng replay(kSeed);
  std::vector<Round> expect0, expect1, expect2;
  std::uint64_t expected_drops = 0;
  for (Round r = 0; r < kRounds; ++r) {
    switch (r % 4) {
      case 0:  // node 0 alone: node 1 has a unique transmitting neighbor
        if (replay.next_bool(kLoss)) ++expected_drops;
        else expect1.push_back(r);
        break;
      case 1:  // 0 and 2 collide at node 1: no draw, no delivery
        break;
      case 2:  // node 1 alone: nodes 0 and 2 each hear it, two draws
        if (replay.next_bool(kLoss)) ++expected_drops;
        else expect0.push_back(r);
        if (replay.next_bool(kLoss)) ++expected_drops;
        else expect2.push_back(r);
        break;
      default:  // silence
        break;
    }
  }

  auto& n0 = static_cast<Scheduled&>(net.protocol(0));
  auto& n1 = static_cast<Scheduled&>(net.protocol(1));
  auto& n2 = static_cast<Scheduled&>(net.protocol(2));
  EXPECT_EQ(n0.received_rounds_, expect0);
  EXPECT_EQ(n1.received_rounds_, expect1);
  EXPECT_EQ(n2.received_rounds_, expect2);
  EXPECT_EQ(net.trace().counters().fault_drops, expected_drops);
  EXPECT_EQ(net.trace().counters().collision_slots, kRounds / 4);
  // Sanity: at 50% loss over 300 successful slots, both outcomes occur.
  EXPECT_GT(expected_drops, 0u);
  EXPECT_GT(expect0.size() + expect1.size() + expect2.size(), 0u);
}

class FaultSweep : public ::testing::TestWithParam<double> {};

TEST_P(FaultSweep, DeliveryDegradesGracefully) {
  const double loss = GetParam();
  Rng grng(30);
  const graph::Graph g = graph::make_gnp_connected(24, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng prng(31);
  const core::Placement placement =
      core::make_placement(24, 12, core::PlacementMode::kRandom, 8, prng);
  FaultModel faults;
  faults.reception_loss_probability = loss;
  faults.seed = 77;
  const core::RunResult r = core::run_kbroadcast(
      g, baselines::coded_config(know), placement, 32, 4'000'000, faults);
  EXPECT_TRUE(r.delivered_all) << "loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(LossRates, FaultSweep, ::testing::Values(0.01, 0.05, 0.1));

}  // namespace
}  // namespace radiocast::radio
