#include "radio/knowledge.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace radiocast::radio {
namespace {

TEST(Knowledge, ExactMatchesGraph) {
  const graph::Graph g = graph::make_grid(4, 5);
  const Knowledge k = Knowledge::exact(g);
  EXPECT_EQ(k.n_hat, 20u);
  EXPECT_EQ(k.delta_hat, 4u);
  EXPECT_EQ(k.d_hat, 7u);
}

TEST(Knowledge, ExactClampsDegenerate) {
  graph::Graph g(1);
  g.finalize();
  const Knowledge k = Knowledge::exact(g);
  EXPECT_GE(k.n_hat, 2u);
  EXPECT_GE(k.delta_hat, 1u);
  EXPECT_GE(k.d_hat, 1u);
}

TEST(Knowledge, LogHelpers) {
  Knowledge k;
  k.n_hat = 256;
  k.delta_hat = 1;
  EXPECT_EQ(k.log_n(), 8u);
  EXPECT_EQ(k.log_delta(), 1u);  // clamped: Δ̂=1 still needs 1-round epochs
  k.delta_hat = 17;
  EXPECT_EQ(k.log_delta(), 5u);
  k.n_hat = 2;
  EXPECT_EQ(k.log_n(), 1u);
}

TEST(Knowledge, PaddedDominatesExact) {
  Rng rng(1);
  for (const std::string& family : graph::named_families()) {
    const graph::Graph g = graph::make_named(family, 40, rng);
    const Knowledge exact = Knowledge::exact(g);
    const Knowledge padded = Knowledge::padded(g, 2.0, 2.0);
    EXPECT_GE(padded.n_hat, exact.n_hat) << family;
    EXPECT_GE(padded.delta_hat, exact.delta_hat) << family;
    EXPECT_GE(padded.d_hat, exact.d_hat) << family;
  }
}

TEST(Knowledge, PaddedIsPolynomial) {
  const graph::Graph g = graph::make_complete(16);
  const Knowledge p = Knowledge::padded(g, 2.0, 3.0);
  EXPECT_EQ(p.n_hat, 256u);
  EXPECT_EQ(p.delta_hat, 225u);
  EXPECT_EQ(p.d_hat, 4u);  // 1 * 3 + 1
}

TEST(Knowledge, PaddedClampsOverflow) {
  const graph::Graph g = graph::make_complete(200);
  const Knowledge p = Knowledge::padded(g, 5.0, 1.0);
  EXPECT_LE(p.n_hat, 1000000000u);
  EXPECT_LE(p.delta_hat, 1000000000u);
}

TEST(Knowledge, Equality) {
  Knowledge a{10, 3, 2};
  Knowledge b{10, 3, 2};
  Knowledge c{10, 3, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace radiocast::radio
