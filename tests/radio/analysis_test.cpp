#include "radio/analysis.hpp"

#include <gtest/gtest.h>

namespace radiocast::radio {
namespace {

Trace make_trace(const std::vector<TraceEvent>& events) {
  Trace t;
  t.enable_events(true);
  for (const TraceEvent& e : events) t.record(e);
  return t;
}

TEST(Analysis, BucketsDeliveriesByRound) {
  const Trace t = make_trace({
      {0, 1, TraceEvent::Kind::kDelivered, "alarm", 0},
      {5, 2, TraceEvent::Kind::kDelivered, "alarm", 0},
      {10, 1, TraceEvent::Kind::kDelivered, "coded", 0},
      {19, 1, TraceEvent::Kind::kCollision, "", 0},
  });
  const ActivityTimeline tl = build_timeline(t, 20, 10);
  ASSERT_EQ(tl.num_buckets(), 2u);
  EXPECT_EQ(tl.deliveries_total[0], 2u);
  EXPECT_EQ(tl.deliveries_total[1], 1u);
  EXPECT_EQ(tl.collisions[0], 0u);
  EXPECT_EQ(tl.collisions[1], 1u);
  // Kind attribution.
  const std::size_t alarm =
      message_kind_index(MessageBody{AlarmMsg{}});
  const std::size_t coded =
      message_kind_index(MessageBody{CodedMsg{}});
  EXPECT_EQ(tl.deliveries_by_kind[0][alarm], 2u);
  EXPECT_EQ(tl.deliveries_by_kind[1][coded], 1u);
}

TEST(Analysis, RoundUpBucketCount) {
  const Trace t = make_trace({});
  EXPECT_EQ(build_timeline(t, 25, 10).num_buckets(), 3u);
  EXPECT_EQ(build_timeline(t, 30, 10).num_buckets(), 3u);
  EXPECT_EQ(build_timeline(t, 0, 10).num_buckets(), 0u);
}

TEST(Analysis, EventsBeyondHorizonIgnored) {
  const Trace t = make_trace({
      {99, 0, TraceEvent::Kind::kDelivered, "alarm", 1},
  });
  const ActivityTimeline tl = build_timeline(t, 10, 5);
  EXPECT_EQ(tl.deliveries_total[0] + tl.deliveries_total[1], 0u);
}

TEST(Analysis, DeafEventsNotCounted) {
  const Trace t = make_trace({
      {1, 0, TraceEvent::Kind::kDeaf, "", 0},
  });
  const ActivityTimeline tl = build_timeline(t, 10, 10);
  EXPECT_EQ(tl.deliveries_total[0], 0u);
  EXPECT_EQ(tl.collisions[0], 0u);
}

TEST(Sparkline, EmptyAndZeroRows) {
  EXPECT_EQ(sparkline({}), "");
  EXPECT_EQ(sparkline({0, 0, 0}), "   ");
}

TEST(Sparkline, MaxGetsDensestGlyph) {
  const std::string s = sparkline({1, 5, 10});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[2], '@');
  EXPECT_NE(s[0], ' ');
  // Monotone density.
  const std::string levels = " .:-=+*#%@";
  EXPECT_LE(levels.find(s[0]), levels.find(s[1]));
  EXPECT_LE(levels.find(s[1]), levels.find(s[2]));
}

TEST(Sparkline, UniformRowIsUniform) {
  const std::string s = sparkline({7, 7, 7, 7});
  EXPECT_EQ(s, std::string(4, '@'));
}

}  // namespace
}  // namespace radiocast::radio
