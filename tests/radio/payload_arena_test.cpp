// Unit tests for the round-scoped payload recycling pool and the typed
// protocol arena that the memory-locality overhaul introduced. The
// engine-level guarantees (bit-identical runs, recycling every round) are
// covered by the differential corpus test; these pin the local contracts:
// acquire hands out logically-empty buffers, recycle_body harvests
// exactly the payload-bearing kinds, copy_body is byte-identical to a
// plain copy, and slab storage is stable and destructed in reverse order.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "radio/message.hpp"
#include "radio/payload_arena.hpp"
#include "radio/protocol_slab.hpp"

namespace radiocast::radio {
namespace {

gf2::Payload bytes(std::initializer_list<std::uint8_t> b) { return gf2::Payload(b); }

TEST(PayloadArena, AcquireReusesRecycledCapacity) {
  PayloadArena arena;
  EXPECT_EQ(arena.pooled(), 0u);

  gf2::Payload buf = arena.acquire();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(arena.misses(), 1u);

  buf.assign(64, 0xab);
  const std::uint8_t* data = buf.data();
  arena.recycle(std::move(buf));
  EXPECT_EQ(arena.pooled(), 1u);

  gf2::Payload again = arena.acquire();
  EXPECT_EQ(arena.hits(), 1u);
  EXPECT_TRUE(again.empty()) << "recycled buffers must come back logically empty";
  EXPECT_GE(again.capacity(), 64u);
  EXPECT_EQ(again.data(), data) << "expected the pooled allocation back";
  EXPECT_EQ(arena.pooled(), 0u);
}

TEST(PayloadArena, RecycleIgnoresCapacityFreeBuffers) {
  PayloadArena arena;
  arena.recycle(gf2::Payload{});
  EXPECT_EQ(arena.pooled(), 0u);
}

TEST(PayloadArena, RecycleBodyHarvestsOnlyPayloadBearingKinds) {
  PayloadArena arena;

  MessageBody plain = PlainPacketMsg{{7, bytes({1, 2, 3})}, 0, 1, 0, 1};
  arena.recycle_body(plain);
  EXPECT_EQ(arena.pooled(), 1u);

  CodedMsg coded;
  coded.payload = bytes({4, 5});
  MessageBody coded_body = coded;
  arena.recycle_body(coded_body);
  EXPECT_EQ(arena.pooled(), 2u);

  MessageBody data = DataMsg{{9, bytes({6})}, 3};
  arena.recycle_body(data);
  EXPECT_EQ(arena.pooled(), 3u);

  MessageBody alarm = AlarmMsg{};
  MessageBody bfs = BfsConstructMsg{1, 2};
  MessageBody ack = AckMsg{11, 4};
  arena.recycle_body(alarm);
  arena.recycle_body(bfs);
  arena.recycle_body(ack);
  EXPECT_EQ(arena.pooled(), 3u) << "payload-free kinds must not pool anything";
}

TEST(PayloadArena, CopyBodyIsByteIdenticalToPlainCopy) {
  PayloadArena arena;
  // Prime the pool so the copies below actually exercise reuse.
  arena.recycle(gf2::Payload(32, 0xff));
  arena.recycle(gf2::Payload(32, 0xee));

  PlainPacketMsg plain;
  plain.packet = {make_packet_id(3, 9), bytes({10, 20, 30})};
  plain.group_id = 2;
  plain.group_count = 5;
  plain.index_in_group = 1;
  plain.group_size = 4;

  const MessageBody src = plain;
  const MessageBody copy = arena.copy_body(src);
  const auto& got = std::get<PlainPacketMsg>(copy);
  EXPECT_EQ(got.packet, plain.packet);
  EXPECT_EQ(got.group_id, plain.group_id);
  EXPECT_EQ(got.group_count, plain.group_count);
  EXPECT_EQ(got.index_in_group, plain.index_in_group);
  EXPECT_EQ(got.group_size, plain.group_size);
  EXPECT_EQ(message_size_bits(copy), message_size_bits(src));

  // Payload-free kinds pass through unchanged.
  const MessageBody ack = AckMsg{17, 2};
  const MessageBody ack_copy = arena.copy_body(ack);
  EXPECT_EQ(std::get<AckMsg>(ack_copy).packet_id, 17u);
  EXPECT_EQ(std::get<AckMsg>(ack_copy).to, 2u);
}

struct SlabProbe {
  explicit SlabProbe(int tag, std::vector<int>* log) : tag(tag), log(log) {}
  ~SlabProbe() { log->push_back(tag); }
  int tag;
  std::vector<int>* log;
};

TEST(ProtocolSlab, PlacesContiguouslyWithStableAddresses) {
  std::vector<int> destroyed;
  {
    ProtocolSlab<SlabProbe> slab(3);
    EXPECT_EQ(slab.capacity(), 3u);
    SlabProbe& a = slab.emplace(1, &destroyed);
    SlabProbe& b = slab.emplace(2, &destroyed);
    SlabProbe& c = slab.emplace(3, &destroyed);
    EXPECT_EQ(slab.size(), 3u);
    // Back-to-back placement: neighbors are exactly sizeof(T) apart.
    EXPECT_EQ(&b, &a + 1);
    EXPECT_EQ(&c, &b + 1);
    EXPECT_EQ(&slab[0], &a);
    EXPECT_EQ(slab[2].tag, 3);
  }
  // Reverse-order destruction, mirroring stack teardown of the protocols.
  EXPECT_EQ(destroyed, (std::vector<int>{3, 2, 1}));
}

TEST(ProtocolSlab, EmptySlabIsValid) {
  ProtocolSlab<SlabProbe> slab(0);
  EXPECT_EQ(slab.size(), 0u);
  EXPECT_EQ(slab.capacity(), 0u);
}

}  // namespace
}  // namespace radiocast::radio
