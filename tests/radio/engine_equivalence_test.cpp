// Equivalence of the awake-list engine against a naive reference model.
//
// Network::step iterates a dense sorted awake list instead of scanning all
// n nodes, and run_until_done uses a monotone completion cursor instead of
// an all-n done() sweep. Both are pure optimizations: this test pins that
// by re-implementing the model rules the slow, obvious way (full scans
// everywhere) and checking that an identically seeded run produces the
// same wake set, callbacks and counters on a random geometric graph.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::radio {
namespace {

/// Probabilistic flood: once awake, transmits an alarm with probability
/// 0.25 each round (own Rng stream). Deterministic given the seed; exactly
/// the kind of load the engine sees from Decay-style protocols.
class FloodNode final : public NodeProtocol {
 public:
  explicit FloodNode(Rng rng) : rng_(rng) {}

  std::optional<MessageBody> on_transmit(Round /*round*/) override {
    ++transmit_calls;
    if (rng_.next_bool(0.25)) return AlarmMsg{};
    return std::nullopt;
  }
  void on_receive(Round /*round*/, const Message& msg) override {
    ++receives;
    last_from = msg.from;
  }
  void on_wake(Round round) override { woke_at = round; }
  bool done() const override { return receives >= 1; }

  std::uint64_t transmit_calls = 0;
  std::uint64_t receives = 0;
  NodeId last_from = 0;
  std::optional<Round> woke_at;

 private:
  Rng rng_;
};

/// Reference semantics: full-n scans, no awake list, no done bookkeeping.
/// Mirrors the model contract in network.hpp to the letter.
struct ReferenceSim {
  const graph::Graph& g;
  std::vector<FloodNode> nodes;
  std::vector<bool> awake;
  Round round = 0;
  std::uint64_t transmissions = 0, deliveries = 0, collisions = 0, deaf = 0,
                wakeups = 0;

  ReferenceSim(const graph::Graph& graph, Rng& master) : g(graph) {
    nodes.reserve(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) nodes.emplace_back(master.split());
    awake.assign(g.num_nodes(), false);
  }

  void wake(NodeId id) {
    if (!awake[id]) {
      awake[id] = true;
      ++wakeups;
      nodes[id].on_wake(round);
    }
  }

  void step() {
    std::vector<bool> transmitting(g.num_nodes(), false);
    std::vector<std::optional<NodeId>> heard_from(g.num_nodes());
    std::vector<std::uint32_t> heard_count(g.num_nodes(), 0);
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      if (!awake[id]) continue;
      if (nodes[id].on_transmit(round).has_value()) transmitting[id] = true;
    }
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      if (!transmitting[id]) continue;
      ++transmissions;
      for (NodeId v : g.neighbors(id)) {
        ++heard_count[v];
        heard_from[v] = id;
      }
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (heard_count[v] == 0) continue;
      if (transmitting[v]) {
        ++deaf;
        continue;
      }
      if (heard_count[v] >= 2) {
        ++collisions;
        continue;
      }
      ++deliveries;
      wake(v);
      nodes[v].on_receive(round, Message{*heard_from[v], AlarmMsg{}});
    }
    ++round;
  }

  bool all_done() const {
    for (const FloodNode& n : nodes) {
      if (!n.done()) return false;
    }
    return true;
  }
};

TEST(EngineEquivalenceTest, AwakeListMatchesFullScanReference) {
  Rng grng(77);
  const graph::Graph g = graph::make_random_geometric(48, 0.3, grng);

  // Two identically seeded protocol populations.
  Rng master_a(1234);
  Rng master_b(1234);
  ReferenceSim ref(g, master_a);

  Network net(g);
  std::vector<FloodNode*> net_nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto node = std::make_unique<FloodNode>(master_b.split());
    net_nodes.push_back(node.get());
    net.set_protocol(v, std::move(node));
  }
  net.wake_at_start(0);
  ref.wake(0);

  for (int r = 0; r < 400; ++r) {
    net.step();
    ref.step();
  }

  const TraceCounters& c = net.trace().counters();
  EXPECT_EQ(c.transmissions, ref.transmissions);
  EXPECT_EQ(c.deliveries, ref.deliveries);
  EXPECT_EQ(c.collision_slots, ref.collisions);
  EXPECT_EQ(c.deaf_slots, ref.deaf);
  EXPECT_EQ(c.wakeups, ref.wakeups);
  EXPECT_GT(c.deliveries, 0u);  // the flood must actually spread

  std::size_t awake_in_ref = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    SCOPED_TRACE("node " + std::to_string(v));
    EXPECT_EQ(net.is_awake(v), static_cast<bool>(ref.awake[v]));
    if (ref.awake[v]) ++awake_in_ref;
    EXPECT_EQ(net_nodes[v]->transmit_calls, ref.nodes[v].transmit_calls);
    EXPECT_EQ(net_nodes[v]->receives, ref.nodes[v].receives);
    EXPECT_EQ(net_nodes[v]->last_from, ref.nodes[v].last_from);
    EXPECT_EQ(net_nodes[v]->woke_at, ref.nodes[v].woke_at);
  }
  EXPECT_EQ(net.num_awake(), awake_in_ref);
}

TEST(EngineEquivalenceTest, RunUntilDoneMatchesReferencePredicate) {
  Rng grng(9);
  const graph::Graph g = graph::make_random_geometric(32, 0.35, grng);

  Rng master_a(555);
  Rng master_b(555);
  ReferenceSim ref(g, master_a);

  Network net(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(v, std::make_unique<FloodNode>(master_b.split()));
  }
  net.wake_at_start(0);
  ref.wake(0);

  // The reference stops at the first round after which every node is done
  // (node 0 never receives if nothing reaches it — cap generously).
  constexpr Round kCap = 20000;
  const bool done = net.run_until_done(kCap);
  Round ref_rounds = 0;
  while (ref_rounds < kCap && !ref.all_done()) {
    ref.step();
    ++ref_rounds;
  }
  EXPECT_EQ(done, ref.all_done());
  EXPECT_EQ(net.current_round(), ref_rounds);
}

/// done() cursor bookkeeping: completion observed regardless of node order,
/// and re-verified from scratch on every run_until_done call.
class SwitchableDone final : public NodeProtocol {
 public:
  std::optional<MessageBody> on_transmit(Round) override { return std::nullopt; }
  void on_receive(Round, const Message&) override {}
  bool done() const override { return done_; }
  bool done_ = false;
};

TEST(EngineEquivalenceTest, DoneCursorHandlesOutOfOrderCompletion) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  Network net(g);
  std::vector<SwitchableDone*> nodes;
  for (NodeId v = 0; v < 3; ++v) {
    auto p = std::make_unique<SwitchableDone>();
    nodes.push_back(p.get());
    net.set_protocol(v, std::move(p));
  }
  net.wake_at_start(0);

  EXPECT_FALSE(net.run_until_done(2));
  // Highest id completes first: the cursor must not get stuck at node 0.
  nodes[2]->done_ = true;
  EXPECT_FALSE(net.run_until_done(2));
  nodes[0]->done_ = true;
  nodes[1]->done_ = true;
  EXPECT_TRUE(net.run_until_done(2));

  // A fresh run_until_done must re-check: flip one node back (legal here —
  // the protocol was mutated externally between runs, which the engine
  // promises to notice).
  nodes[1]->done_ = false;
  EXPECT_FALSE(net.run_until_done(2));
  nodes[1]->done_ = true;
  EXPECT_TRUE(net.run_until_done(0));  // zero budget, already done
}

}  // namespace
}  // namespace radiocast::radio
