#include "obs/recorder.hpp"

#include <gtest/gtest.h>

namespace radiocast::obs {
namespace {

TEST(Recorder, NestingTracksDepthAndParent) {
  SpanRecorder rec;
  const std::uint64_t a = rec.open("stage3", "stage", 100);
  const std::uint64_t b = rec.open("phase", "phase", 100, {{"x", 64}});
  const std::uint64_t c = rec.open("ospg", "epoch", 100);
  EXPECT_EQ(rec.open_depth(), 3u);
  rec.close(c, 150);
  rec.close(b, 180);
  rec.close(a, 200);
  EXPECT_EQ(rec.open_depth(), 0u);

  const std::vector<Span> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Closed spans come back in close order: innermost first.
  EXPECT_EQ(spans[0].name, "ospg");
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_EQ(spans[0].parent_id, b);
  EXPECT_EQ(spans[1].name, "phase");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[1].parent_id, a);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].key, "x");
  EXPECT_EQ(spans[1].attrs[0].value, 64u);
  EXPECT_EQ(spans[2].name, "stage3");
  EXPECT_EQ(spans[2].depth, 0u);
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[2].begin_round, 100u);
  EXPECT_EQ(spans[2].end_round, 200u);
  EXPECT_EQ(spans[2].duration(), 100u);
  EXPECT_TRUE(spans[2].closed);
}

TEST(Recorder, SnapshotIncludesStillOpenSpans) {
  SpanRecorder rec;
  rec.open("outer", "stage", 5);
  const std::vector<Span> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].closed);
  EXPECT_EQ(spans[0].begin_round, 5u);
  EXPECT_EQ(spans[0].end_round, 5u);
}

TEST(Recorder, AddAttrOnOpenSpan) {
  SpanRecorder rec;
  const std::uint64_t id = rec.open("phase", "phase", 0);
  rec.add_attr(id, "alarmed", 1);
  rec.close(id, 10);
  const std::vector<Span> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].key, "alarmed");
  EXPECT_EQ(spans[0].attrs[0].value, 1u);
}

TEST(Recorder, RingBufferEvictsOldestClosedSpans) {
  SpanRecorder::Options opts;
  opts.capacity = 3;
  SpanRecorder rec(opts);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::uint64_t id = rec.open("s" + std::to_string(i), "epoch", i);
    rec.close(id, i + 1);
  }
  EXPECT_EQ(rec.dropped_spans(), 7u);
  const std::vector<Span> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "s7");
  EXPECT_EQ(spans[1].name, "s8");
  EXPECT_EQ(spans[2].name, "s9");
}

TEST(Recorder, DeterministicSamplingKeepsEveryNth) {
  SpanRecorder::Options opts;
  opts.sample_every["epoch"] = 3;  // keep spans 1, 4, 7, ... of the category
  SpanRecorder rec(opts);
  for (std::uint64_t i = 0; i < 9; ++i) {
    const std::uint64_t id = rec.open("e" + std::to_string(i), "epoch", i);
    rec.close(id, i + 1);
  }
  EXPECT_EQ(rec.sampled_out_spans(), 6u);
  EXPECT_EQ(rec.dropped_spans(), 0u);
  const std::vector<Span> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "e0");
  EXPECT_EQ(spans[1].name, "e3");
  EXPECT_EQ(spans[2].name, "e6");
}

TEST(Recorder, SamplingPreservesDepthAndParentOfRetainedChildren) {
  SpanRecorder::Options opts;
  opts.sample_every["phase"] = 2;  // drop every other phase span
  SpanRecorder rec(opts);
  const std::uint64_t stage = rec.open("stage3", "stage", 0);
  const std::uint64_t p0 = rec.open("p0", "phase", 0);  // retained
  const std::uint64_t e0 = rec.open("e0", "epoch", 0);
  rec.close(e0, 4);
  rec.close(p0, 5);
  const std::uint64_t p1 = rec.open("p1", "phase", 5);  // sampled out
  const std::uint64_t e1 = rec.open("e1", "epoch", 5);  // retained child
  rec.close(e1, 9);
  rec.close(p1, 10);
  rec.close(stage, 10);

  EXPECT_EQ(rec.sampled_out_spans(), 1u);
  const std::vector<Span> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // e1's parent id still points at the (dropped) p1 span, and its depth is
  // unchanged — sampling must not re-parent survivors.
  const Span& e1_span = spans[2];
  EXPECT_EQ(e1_span.name, "e1");
  EXPECT_EQ(e1_span.depth, 2u);
  EXPECT_EQ(e1_span.parent_id, p1);
}

TEST(Recorder, IdsAreAssignedToSampledOutSpans) {
  SpanRecorder::Options opts;
  opts.sample_every["epoch"] = 2;
  SpanRecorder rec(opts);
  const std::uint64_t a = rec.open("a", "epoch", 0);  // retained
  rec.close(a, 1);
  const std::uint64_t b = rec.open("b", "epoch", 1);  // sampled out
  rec.close(b, 2);
  const std::uint64_t c = rec.open("c", "epoch", 2);  // retained
  rec.close(c, 3);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  // add_attr on a sampled-out id is a safe no-op.
  const std::uint64_t d = rec.open("d", "epoch", 3);
  rec.add_attr(d, "k", 1);
  rec.close(d, 4);
}

}  // namespace
}  // namespace radiocast::obs
