// LogHistogram: bucket layout, exact side-statistics, nearest-rank
// quantiles, and the deterministic-merge property the telemetry layer's
// thread-invariance rests on (merge is bucket-wise integer addition, so
// any merge order yields the same accumulator).
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"

namespace radiocast::obs {
namespace {

TEST(LogHistogram, BucketLayout) {
  // bucket 0 <- 0; bucket i >= 1 <- [2^(i-1), 2^i - 1].
  EXPECT_EQ(LogHistogram::bucket_index(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_index(2), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(3), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(4), 3u);
  EXPECT_EQ(LogHistogram::bucket_index(7), 3u);
  EXPECT_EQ(LogHistogram::bucket_index(8), 4u);
  EXPECT_EQ(LogHistogram::bucket_index(UINT64_MAX), 64u);
  for (std::size_t b = 0; b < LogHistogram::kNumBuckets; ++b) {
    // Every bucket's own bounds map back into the bucket.
    EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_lower(b)), b);
    EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_upper(b)), b);
  }
  EXPECT_EQ(LogHistogram::bucket_lower(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_upper(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_lower(4), 8u);
  EXPECT_EQ(LogHistogram::bucket_upper(4), 15u);
}

TEST(LogHistogram, EmptyIsAllZero) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(LogHistogram, ExactSideStatistics) {
  LogHistogram h;
  for (std::uint64_t v : {0u, 1u, 5u, 5u, 100u}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 111u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 111.0 / 5.0);
}

TEST(LogHistogram, WeightedAdd) {
  LogHistogram h;
  h.add(4, 3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_EQ(h.buckets()[LogHistogram::bucket_index(4)], 3u);
}

TEST(LogHistogram, QuantileResolvesToBucketUpperClamped) {
  LogHistogram h;
  // 10 values in bucket 3 ([4,7]): nearest-rank lands in that bucket, and
  // the reported value is the bucket's upper edge clamped to max().
  for (int i = 0; i < 10; ++i) h.add(5);
  EXPECT_EQ(h.p50(), 5u);  // upper edge 7 clamps to observed max 5
  h.add(100);              // one outlier in bucket 7 ([64,127])
  EXPECT_EQ(h.quantile(1.0), 100u);
  // max() is now 100, so the p50 bucket's upper edge (7) is unclamped.
  EXPECT_EQ(h.p50(), 7u);
  // p99 of 11 values: rank 11 -> the outlier's bucket, clamped to 100.
  EXPECT_EQ(h.p99(), 100u);
  // Values 0 and 1 have width-1 buckets, so their quantiles are exact.
  LogHistogram z;
  z.add(0, 7);
  z.add(1, 3);
  EXPECT_EQ(z.p50(), 0u);
  EXPECT_EQ(z.p99(), 1u);
}

TEST(LogHistogram, QuantileIsWithinFactorTwoUpperBound) {
  Rng rng(123);
  LogHistogram h;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(100000);
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const std::uint64_t exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const std::uint64_t approx = h.quantile(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact * 2 + 1) << "q=" << q;
  }
}

TEST(LogHistogram, MergeIsOrderInvariant) {
  Rng rng(9);
  LogHistogram parts[4];
  for (int i = 0; i < 400; ++i) parts[rng.next_below(4)].add(rng.next_below(1 << 20));

  LogHistogram forward;
  for (const LogHistogram& p : parts) forward.merge(p);
  LogHistogram backward;
  for (int i = 3; i >= 0; --i) backward.merge(parts[i]);

  EXPECT_EQ(forward.count(), backward.count());
  EXPECT_EQ(forward.sum(), backward.sum());
  EXPECT_EQ(forward.min(), backward.min());
  EXPECT_EQ(forward.max(), backward.max());
  EXPECT_EQ(forward.buckets(), backward.buckets());
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(forward.quantile(q), backward.quantile(q));
}

TEST(LogHistogram, MergeMatchesPooledAdds) {
  Rng rng(42);
  LogHistogram pooled, a, b;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.next_below(1000);
    pooled.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.buckets(), pooled.buckets());
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_EQ(a.sum(), pooled.sum());
  EXPECT_EQ(a.min(), pooled.min());
  EXPECT_EQ(a.max(), pooled.max());
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram h, empty;
  h.add(17);
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 17u);
  EXPECT_EQ(h.max(), 17u);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 17u);
}

}  // namespace
}  // namespace radiocast::obs
