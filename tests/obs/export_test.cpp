#include "obs/export.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.hpp"

namespace radiocast::obs {
namespace {

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, WriterEmitsStableScalars) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object()
      .kv("i", std::uint64_t{42})
      .kv("neg", std::int64_t{-7})
      .kv("whole", 3.0)
      .kv("frac", 1.5)
      .kv("b", true)
      .kv("s", "x")
      .end_object();
  EXPECT_EQ(out.str(),
            R"({"i":42,"neg":-7,"whole":3,"frac":1.5,"b":true,"s":"x"})");
}

TEST(Export, SpanJsonlGolden) {
  SpanRecorder rec;
  const std::uint64_t id = rec.open("stage1.leader", "stage", 0, {{"x", 64}});
  rec.close(id, 10);

  std::ostringstream out;
  write_spans_jsonl(out, rec.snapshot());
  EXPECT_EQ(out.str(),
            "{\"type\":\"span\",\"id\":1,\"parent\":0,\"depth\":0,"
            "\"cat\":\"stage\",\"name\":\"stage1.leader\",\"begin\":0,"
            "\"end\":10,\"rounds\":10,\"closed\":true,\"attrs\":{\"x\":64}}\n");
}

TEST(Export, MetricsJsonlGolden) {
  MetricsRegistry reg;
  reg.counter("a.rounds", {{"stage", "s1"}}).inc(5);
  reg.gauge("b.estimate").set(1.5);
  Histogram& h = reg.histogram("c.hist", {}, {0.0, 2.0});
  h.observe(1.0);
  h.observe(5.0);

  std::ostringstream out;
  write_metrics_jsonl(out, reg.snapshot());
  EXPECT_EQ(
      out.str(),
      "{\"type\":\"counter\",\"name\":\"a.rounds\",\"labels\":{\"stage\":\"s1\"},"
      "\"value\":5}\n"
      "{\"type\":\"gauge\",\"name\":\"b.estimate\",\"labels\":{},\"value\":1.5}\n"
      "{\"type\":\"histogram\",\"name\":\"c.hist\",\"labels\":{},\"count\":2,"
      "\"sum\":6,\"bounds\":[0,2],\"counts\":[0,1,1]}\n");
}

TEST(Export, ChromeTraceShape) {
  SpanRecorder rec;
  const std::uint64_t a = rec.open("stage3.collection", "stage", 100);
  const std::uint64_t b = rec.open("phase", "phase", 100, {{"x", 8}});
  rec.close(b, 150);
  rec.close(a, 200);

  std::ostringstream out;
  write_chrome_trace(out, rec.snapshot());
  const std::string s = out.str();
  // One metadata event + two complete events, valid trace_event fields.
  EXPECT_EQ(s.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(s.find("\"name\":\"process_name\",\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"phase\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":100,"
                   "\"dur\":50"),
            std::string::npos);
  EXPECT_NE(s.find("\"name\":\"stage3.collection\""), std::string::npos);
  EXPECT_NE(s.find("\"args\":{\"x\":8}"), std::string::npos);
  EXPECT_NE(s.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
}

}  // namespace
}  // namespace radiocast::obs
