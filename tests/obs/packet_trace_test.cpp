// PacketTracer unit tests over hand-built delivery streams, plus the
// property the decode tap rests on: gf2::MaskRank fed the same row stream
// as gf2::IncrementalDecoder reaches completeness at the same step.
#include "obs/packet_trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "gf2/solver.hpp"
#include "radio/message.hpp"

namespace radiocast::obs {
namespace {

using radio::make_packet_id;
using Via = PacketTracer::Via;

constexpr std::uint64_t kNever = ~std::uint64_t{0};

std::vector<radio::Packet> make_truth(std::uint32_t k) {
  // Sorted by id, as core::placement_packets guarantees.
  std::vector<radio::Packet> truth;
  for (std::uint32_t i = 0; i < k; ++i)
    truth.push_back({make_packet_id(0, i), {}});
  return truth;
}

radio::Message plain_msg(radio::NodeId from, const radio::Packet& pkt,
                         std::uint32_t group_id, std::uint16_t index_in_group,
                         std::uint16_t group_size) {
  return {from, radio::PlainPacketMsg{pkt, group_id, /*group_count=*/1,
                                      index_in_group, group_size}};
}

radio::Message coded_msg(radio::NodeId from, std::uint32_t group_id,
                         std::uint16_t group_size, std::uint64_t coeffs) {
  return {from, radio::CodedMsg{group_id, /*group_count=*/1, group_size,
                                coeffs, {}}};
}

radio::Message data_msg(radio::NodeId from, const radio::Packet& pkt,
                        radio::NodeId to) {
  return {from, radio::DataMsg{pkt, to}};
}

TEST(PacketTracer, OriginSeedsHoldAtLatencyZero) {
  PacketTracer t;
  const auto truth = make_truth(2);
  t.begin_trial(4, truth, 2);
  t.seed_packet(truth[0].id, 0);
  t.seed_packet(truth[1].id, 1);

  EXPECT_TRUE(t.held(0, 0));
  EXPECT_EQ(t.latency(0, 0), 0u);
  EXPECT_EQ(t.via(0, 0), Via::kOrigin);
  EXPECT_EQ(t.delivered_by(0, 0), 0u);
  EXPECT_EQ(t.hop_depth(0, 0), 0u);
  EXPECT_FALSE(t.held(0, 2));
  EXPECT_EQ(t.latency(0, 2), kNever);
  EXPECT_EQ(t.undelivered(0), 3u);
  EXPECT_EQ(t.undelivered(1), 3u);
  ASSERT_EQ(t.flight_events().size(), 2u);
  EXPECT_EQ(t.flight_events()[0].via, Via::kOrigin);
  // Origin latencies never enter the latency histograms.
  EXPECT_TRUE(t.packet_latencies(0).empty());
  EXPECT_TRUE(t.all_latencies().empty());
}

TEST(PacketTracer, PlainDeliveryRecordsOnlyTheFirstHold) {
  PacketTracer t;
  const auto truth = make_truth(2);
  t.begin_trial(4, truth, 2);
  t.seed_packet(truth[0].id, 0);

  // Reception in round 3 => latency 4.
  t.on_deliver(3, 2, 0, plain_msg(0, truth[0], 0, 0, 2));
  EXPECT_TRUE(t.held(0, 2));
  EXPECT_EQ(t.latency(0, 2), 4u);
  EXPECT_EQ(t.via(0, 2), Via::kPlain);
  EXPECT_EQ(t.delivered_by(0, 2), 0u);
  EXPECT_EQ(t.hop_depth(0, 2), 1u);

  // A later duplicate (different sender) must not overwrite the record.
  t.on_deliver(7, 2, 0, plain_msg(1, truth[0], 0, 0, 2));
  EXPECT_EQ(t.latency(0, 2), 4u);
  EXPECT_EQ(t.delivered_by(0, 2), 0u);

  const LogHistogram h = t.packet_latencies(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 4u);
  EXPECT_EQ(h.max(), 4u);
}

TEST(PacketTracer, DataDeliveriesChainHopDepth) {
  PacketTracer t;
  const auto truth = make_truth(1);
  t.begin_trial(5, truth, 1);
  t.seed_packet(truth[0].id, 0);

  t.on_deliver(0, 1, 0, data_msg(0, truth[0], 1));  // 0 -> 1, depth 1
  t.on_deliver(4, 2, 0, data_msg(1, truth[0], 2));  // 1 -> 2, depth 2
  EXPECT_EQ(t.latency(0, 1), 1u);
  EXPECT_EQ(t.hop_depth(0, 1), 1u);
  EXPECT_EQ(t.via(0, 1), Via::kData);
  EXPECT_EQ(t.latency(0, 2), 5u);
  EXPECT_EQ(t.hop_depth(0, 2), 2u);

  // Sender that never held the packet: defensive depth fallback of 1.
  t.on_deliver(6, 4, 0, data_msg(3, truth[0], 4));
  EXPECT_EQ(t.hop_depth(0, 4), 1u);
  EXPECT_EQ(t.undelivered(0), 1u);  // only node 3 still missing
}

TEST(PacketTracer, CodedRowsFireDecodeAtRankCompleteness) {
  PacketTracer t;
  const auto truth = make_truth(2);
  t.begin_trial(2, truth, 2);
  t.seed_packet(truth[0].id, 0);
  t.seed_packet(truth[1].id, 0);

  // Node 1: rank 1 after the first row — nothing decodable yet.
  t.on_deliver(0, 1, 0, coded_msg(0, 0, 2, 0b01));
  EXPECT_FALSE(t.held(0, 1));
  EXPECT_FALSE(t.held(1, 1));
  // A redundant row must not advance the rank.
  t.on_deliver(1, 1, 0, coded_msg(0, 0, 2, 0b01));
  EXPECT_FALSE(t.held(0, 1));
  // Rank completes in round 2: every packet of the group decodes with
  // latency 3, attributed to the sender of the completing row.
  t.on_deliver(2, 1, 0, coded_msg(0, 0, 2, 0b11));
  EXPECT_TRUE(t.held(0, 1));
  EXPECT_TRUE(t.held(1, 1));
  EXPECT_EQ(t.latency(0, 1), 3u);
  EXPECT_EQ(t.latency(1, 1), 3u);
  EXPECT_EQ(t.via(0, 1), Via::kDecode);
  EXPECT_EQ(t.via(1, 1), Via::kDecode);
  EXPECT_EQ(t.delivered_by(0, 1), 0u);
  EXPECT_EQ(t.undelivered(0), 0u);
}

TEST(PacketTracer, PlainReceptionsDoubleAsUnitDecoderRows) {
  PacketTracer t;
  const auto truth = make_truth(2);
  t.begin_trial(2, truth, 2);
  t.seed_packet(truth[0].id, 0);
  t.seed_packet(truth[1].id, 0);

  // Plain packet 0 in round 0: direct hold AND unit row e0.
  t.on_deliver(0, 1, 0, plain_msg(0, truth[0], 0, 0, 2));
  EXPECT_EQ(t.via(0, 1), Via::kPlain);
  EXPECT_EQ(t.latency(0, 1), 1u);
  EXPECT_FALSE(t.held(1, 1));
  // The mixed row {p0, p1} now completes the group; only packet 1 is new.
  t.on_deliver(2, 1, 0, coded_msg(0, 0, 2, 0b11));
  EXPECT_EQ(t.via(0, 1), Via::kPlain);  // first hold preserved
  EXPECT_EQ(t.latency(0, 1), 1u);
  EXPECT_EQ(t.via(1, 1), Via::kDecode);
  EXPECT_EQ(t.latency(1, 1), 3u);
}

TEST(PacketTracer, TailGroupUsesItsNarrowWidth) {
  // k=3, group_size=2: group 1 holds only packet 2 (width 1), and
  // coefficient bits beyond the width are clamped off the wire mask.
  PacketTracer t;
  const auto truth = make_truth(3);
  t.begin_trial(2, truth, 2);
  for (const auto& p : truth) t.seed_packet(p.id, 0);

  t.on_deliver(0, 1, 0, coded_msg(0, 1, 2, 0b11));
  EXPECT_TRUE(t.held(2, 1));
  EXPECT_EQ(t.via(2, 1), Via::kDecode);
  EXPECT_EQ(t.latency(2, 1), 1u);
  EXPECT_FALSE(t.held(0, 1));
  EXPECT_FALSE(t.held(1, 1));
}

TEST(PacketTracer, FlightLogCapCountsDroppedEvents) {
  PacketTracer::Options opts;
  opts.flight_paths = true;
  opts.max_flight_events = 2;
  PacketTracer t(opts);
  const auto truth = make_truth(2);
  t.begin_trial(4, truth, 2);
  t.seed_packet(truth[0].id, 0);
  t.seed_packet(truth[1].id, 1);
  t.on_deliver(0, 2, 0, plain_msg(0, truth[0], 0, 0, 2));

  EXPECT_EQ(t.flight_events().size(), 2u);
  EXPECT_EQ(t.dropped_flight_events(), 1u);
  // The latency cell is recorded even when the log entry is dropped.
  EXPECT_TRUE(t.held(0, 2));
  EXPECT_EQ(t.latency(0, 2), 1u);
}

TEST(PacketTracer, FlightPathsCanBeDisabled) {
  PacketTracer::Options opts;
  opts.flight_paths = false;
  PacketTracer t(opts);
  const auto truth = make_truth(1);
  t.begin_trial(3, truth, 1);
  t.seed_packet(truth[0].id, 0);
  t.on_deliver(0, 1, 0, plain_msg(0, truth[0], 0, 0, 1));

  EXPECT_TRUE(t.flight_events().empty());
  EXPECT_EQ(t.dropped_flight_events(), 0u);
  EXPECT_TRUE(t.held(0, 1));
}

TEST(PacketTracer, FlightPathFiltersOnePacketInChronologicalOrder) {
  PacketTracer t;
  const auto truth = make_truth(2);
  t.begin_trial(4, truth, 2);
  t.seed_packet(truth[0].id, 0);
  t.seed_packet(truth[1].id, 1);
  t.on_deliver(1, 2, 0, data_msg(0, truth[0], 2));
  t.on_deliver(2, 3, 0, data_msg(1, truth[1], 3));
  t.on_deliver(5, 3, 0, data_msg(2, truth[0], 3));

  const auto path = t.flight_path(0);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0].via, Via::kOrigin);
  EXPECT_EQ(path[1].latency, 2u);
  EXPECT_EQ(path[1].node, 2u);
  EXPECT_EQ(path[2].latency, 6u);
  EXPECT_EQ(path[2].node, 3u);
  EXPECT_EQ(path[2].depth, 2u);
  for (const auto& e : path) EXPECT_EQ(e.packet, 0u);
  EXPECT_EQ(t.flight_path(1).size(), 2u);
}

TEST(PacketTracer, BeginTrialResetsAllState) {
  PacketTracer t;
  const auto truth = make_truth(2);
  t.begin_trial(3, truth, 2);
  t.seed_packet(truth[0].id, 0);
  t.on_deliver(0, 1, 0, plain_msg(0, truth[0], 0, 0, 2));
  ASSERT_FALSE(t.flight_events().empty());

  t.begin_trial(3, truth, 2);
  EXPECT_TRUE(t.flight_events().empty());
  EXPECT_EQ(t.dropped_flight_events(), 0u);
  EXPECT_FALSE(t.held(0, 0));
  EXPECT_EQ(t.undelivered(0), 3u);
}

TEST(PacketTracer, ViaNamesMatchTelemetrySchema) {
  EXPECT_STREQ(PacketTracer::via_name(Via::kOrigin), "origin");
  EXPECT_STREQ(PacketTracer::via_name(Via::kData), "data");
  EXPECT_STREQ(PacketTracer::via_name(Via::kPlain), "plain");
  EXPECT_STREQ(PacketTracer::via_name(Via::kDecode), "decode");
}

// The decode tap is only sound if MaskRank agrees with IncrementalDecoder
// row for row. Feed both the same random mask stream and require identical
// innovative verdicts, ranks, and completion steps.
TEST(PacketTracer, MaskRankMirrorsIncrementalDecoder) {
  Rng rng(0xdec0de);
  for (std::size_t width = 1; width <= 16; ++width) {
    for (int trial = 0; trial < 8; ++trial) {
      gf2::MaskRank mask_rank(width);
      gf2::IncrementalDecoder decoder(width);
      for (int step = 0; step < 200 && !decoder.complete(); ++step) {
        const std::uint64_t mask = rng.next_below(std::uint64_t{1} << width);
        gf2::BitVec coeffs(width);
        for (std::size_t i = 0; i < width; ++i)
          if ((mask >> i) & 1) coeffs.set(i, true);
        const bool mask_innovative = mask_rank.add(mask);
        const bool dec_innovative = decoder.add_row({coeffs, {}});
        ASSERT_EQ(mask_innovative, dec_innovative)
            << "width=" << width << " trial=" << trial << " mask=" << mask;
        ASSERT_EQ(mask_rank.rank(), decoder.rank());
        ASSERT_EQ(mask_rank.complete(), decoder.complete());
      }
      EXPECT_TRUE(decoder.complete()) << "width=" << width;
    }
  }
}

}  // namespace
}  // namespace radiocast::obs
