#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace radiocast::obs {
namespace {

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("rounds");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("tx", {{"stage", "s1"}});
  Counter& b = reg.counter("tx", {{"stage", "s1"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.counter("tx", {{"stage", "s2"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, LabelOrderIsCanonicalized) {
  MetricsRegistry reg;
  Counter& a = reg.counter("tx", {{"kind", "data"}, {"stage", "s3"}});
  Counter& b = reg.counter("tx", {{"stage", "s3"}, {"kind", "data"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("estimate");
  g.set(128.0);
  g.set(256.0);
  EXPECT_DOUBLE_EQ(g.value(), 256.0);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("per_round", {}, {0.0, 1.0, 4.0});
  // 4 buckets: <=0, <=1, <=4, overflow.
  h.observe(0.0);
  h.observe(1.0);
  h.observe(2.0);
  h.observe(100.0);
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
}

TEST(Metrics, Pow2BoundsShape) {
  const std::vector<double> b = Histogram::pow2_bounds(3);
  // 0, 1, 2, 4, 8.
  ASSERT_EQ(b.size(), 5u);
  EXPECT_DOUBLE_EQ(b.front(), 0.0);
  EXPECT_DOUBLE_EQ(b.back(), 8.0);
}

TEST(Metrics, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("z.last").inc(7);
  reg.gauge("a.first").set(1.5);
  reg.histogram("m.mid", {{"stage", "s1"}}, {0.0, 10.0}).observe(3.0);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[0].type, MetricSample::Type::kGauge);
  EXPECT_DOUBLE_EQ(snap[0].value, 1.5);
  EXPECT_EQ(snap[1].name, "m.mid");
  EXPECT_EQ(snap[1].type, MetricSample::Type::kHistogram);
  EXPECT_EQ(snap[1].count, 1u);
  ASSERT_EQ(snap[1].labels.size(), 1u);
  EXPECT_EQ(snap[1].labels[0].first, "stage");
  EXPECT_EQ(snap[2].name, "z.last");
  EXPECT_EQ(snap[2].type, MetricSample::Type::kCounter);
  EXPECT_DOUBLE_EQ(snap[2].value, 7.0);
}

TEST(Metrics, SnapshotOrdersLabelVariantsDeterministically) {
  MetricsRegistry reg;
  reg.counter("tx", {{"stage", "s2"}}).inc(2);
  reg.counter("tx", {{"stage", "s1"}}).inc(1);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].labels[0].second, "s1");
  EXPECT_EQ(snap[1].labels[0].second, "s2");
}

}  // namespace
}  // namespace radiocast::obs
