// End-to-end flight-recorder test: runs the full k-broadcast protocol
// with a RunObserver attached and checks the PR's acceptance criteria —
// the span tree shows all four stages, every Stage-3 phase carries its
// estimate x (doubling phase over phase), siblings tile their parent
// exactly, and attaching the observer does not perturb the run.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "obs/observer.hpp"

namespace radiocast {
namespace {

struct ObservedRun {
  core::RunResult result;
  std::vector<obs::Span> spans;
};

ObservedRun run_observed(std::uint32_t n, std::uint32_t k, std::uint64_t seed,
                         obs::RunObserver& observer) {
  Rng grng(seed);
  const graph::Graph g = graph::make_random_geometric(n, 0.35, grng);
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  Rng prng(seed + 1);
  const core::Placement placement =
      core::make_placement(n, k, core::PlacementMode::kRandom, 16, prng);
  ObservedRun out;
  out.result = core::run_kbroadcast(g, cfg, placement, seed + 2, /*max_rounds=*/0,
                                    /*faults=*/{}, &observer);
  out.spans = observer.spans();
  return out;
}

std::vector<obs::Span> by_category(const std::vector<obs::Span>& spans,
                                   const std::string& cat) {
  std::vector<obs::Span> out;
  for (const obs::Span& s : spans) {
    if (s.category == cat) out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const obs::Span& a, const obs::Span& b) {
    return a.begin_round < b.begin_round;
  });
  return out;
}

std::uint64_t attr(const obs::Span& s, const std::string& key) {
  for (const obs::SpanAttr& a : s.attrs) {
    if (a.key == key) return a.value;
  }
  ADD_FAILURE() << "span " << s.name << " has no attr " << key;
  return 0;
}

TEST(ObserverEndToEnd, SpanTreeTilesTheRun) {
  obs::RunObserver observer;
  const ObservedRun run = run_observed(24, 20, 77, observer);
  ASSERT_TRUE(run.result.delivered_all);

  // All four stages, in order, tiling [0, total_rounds) exactly.
  const std::vector<obs::Span> stages = by_category(run.spans, "stage");
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0].name, "stage1.leader");
  EXPECT_EQ(stages[1].name, "stage2.bfs");
  EXPECT_EQ(stages[2].name, "stage3.collection");
  EXPECT_EQ(stages[3].name, "stage4.dissemination");
  EXPECT_EQ(stages[0].begin_round, 0u);
  std::uint64_t stage_rounds = 0;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    EXPECT_TRUE(stages[i].closed);
    EXPECT_EQ(stages[i].depth, 0u);
    if (i > 0) EXPECT_EQ(stages[i].begin_round, stages[i - 1].end_round);
    stage_rounds += stages[i].duration();
  }
  EXPECT_EQ(stage_rounds, run.result.total_rounds);

  // Phases tile stage 3 and carry a doubling estimate.
  const std::vector<obs::Span> phases = by_category(run.spans, "phase");
  ASSERT_EQ(phases.size(), run.result.collection_phases);
  std::uint64_t phase_rounds = 0;
  std::uint64_t prev_estimate = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    EXPECT_EQ(phases[i].parent_id, stages[2].id);
    EXPECT_EQ(phases[i].depth, 1u);
    if (i > 0) EXPECT_EQ(phases[i].begin_round, phases[i - 1].end_round);
    const std::uint64_t x = attr(phases[i], "estimate");
    if (i > 0) EXPECT_EQ(x, 2 * prev_estimate);
    prev_estimate = x;
    phase_rounds += phases[i].duration();
  }
  EXPECT_EQ(phases.front().begin_round, stages[2].begin_round);
  EXPECT_EQ(phases.back().end_round, stages[2].end_round);
  EXPECT_EQ(phase_rounds, stages[2].duration());
  EXPECT_EQ(prev_estimate, run.result.final_estimate);

  // Epochs tile their phase; per-epoch round counts sum to stage 3, and
  // with the stage spans that reaches total_rounds.
  const std::vector<obs::Span> epochs = by_category(run.spans, "epoch");
  ASSERT_FALSE(epochs.empty());
  std::map<std::uint64_t, std::uint64_t> epoch_rounds_by_phase;
  for (const obs::Span& e : epochs) {
    EXPECT_EQ(e.depth, 2u);
    EXPECT_TRUE(e.name == "ospg" || e.name == "mspg" || e.name == "alarm")
        << e.name;
    epoch_rounds_by_phase[e.parent_id] += e.duration();
  }
  std::uint64_t epoch_rounds = 0;
  for (const obs::Span& p : phases) {
    ASSERT_TRUE(epoch_rounds_by_phase.count(p.id));
    EXPECT_EQ(epoch_rounds_by_phase[p.id], p.duration());
    epoch_rounds += epoch_rounds_by_phase[p.id];
  }
  EXPECT_EQ(epoch_rounds, stages[2].duration());
}

TEST(ObserverEndToEnd, MetricsMatchRunTotals) {
  obs::RunObserver observer;
  const ObservedRun run = run_observed(24, 20, 77, observer);

  // Per-stage sim.rounds counters sum to total_rounds.
  std::uint64_t rounds = 0;
  std::uint64_t deliveries = 0;
  bool saw_estimate = false;
  for (const obs::MetricSample& m : run.result.metrics) {
    if (m.name == "sim.rounds") rounds += static_cast<std::uint64_t>(m.value);
    if (m.name == "sim.deliveries" && m.labels.size() == 1)
      deliveries += static_cast<std::uint64_t>(m.value);
    if (m.name == "collection.estimate") {
      saw_estimate = true;
      EXPECT_DOUBLE_EQ(m.value,
                       static_cast<double>(run.result.final_estimate));
    }
  }
  EXPECT_EQ(rounds, run.result.total_rounds);
  EXPECT_EQ(deliveries, run.result.counters.deliveries);
  EXPECT_TRUE(saw_estimate);

  // Kind-split deliveries sum to the same total as the per-stage split.
  std::uint64_t deliveries_by_kind = 0;
  for (const obs::MetricSample& m : run.result.metrics) {
    if (m.name == "sim.deliveries" && m.labels.size() == 2)
      deliveries_by_kind += static_cast<std::uint64_t>(m.value);
  }
  EXPECT_EQ(deliveries_by_kind, deliveries);
}

TEST(ObserverEndToEnd, AttachingObserverDoesNotPerturbTheRun) {
  Rng grng(77);
  const graph::Graph g = graph::make_random_geometric(24, 0.35, grng);
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  Rng prng(78);
  const core::Placement placement =
      core::make_placement(24, 20, core::PlacementMode::kRandom, 16, prng);

  const core::RunResult plain = core::run_kbroadcast(g, cfg, placement, 79);
  obs::RunObserver observer;
  const core::RunResult observed =
      core::run_kbroadcast(g, cfg, placement, 79, 0, {}, &observer);

  EXPECT_EQ(plain.total_rounds, observed.total_rounds);
  EXPECT_EQ(plain.delivered_all, observed.delivered_all);
  EXPECT_EQ(plain.counters.transmissions, observed.counters.transmissions);
  EXPECT_EQ(plain.counters.deliveries, observed.counters.deliveries);
  EXPECT_TRUE(plain.metrics.empty());
  EXPECT_FALSE(observed.metrics.empty());
}

TEST(ChannelLedger, SilentSlotsArithmetic) {
  obs::RoundStats s;
  s.awake = 10;
  s.transmissions = 2;
  s.deliveries = 3;
  s.collision_slots = 1;
  s.fault_drops = 1;
  // (10 - 2) listeners, minus 3 awake deliveries, 1 collision, 1 fault.
  EXPECT_EQ(obs::ChannelLedger::silent_slots(s), 3u);

  // Wake-up deliveries landed at sleeping nodes: they don't consume
  // listener slots, and wakeups exceeding deliveries clamp to zero
  // (initial wakes, CD collision wakes) rather than inflating silence.
  s.wakeups = 5;
  EXPECT_EQ(obs::ChannelLedger::silent_slots(s), 6u);  // 8 - 0 - 1 - 1
  s.wakeups = 2;
  EXPECT_EQ(obs::ChannelLedger::silent_slots(s), 5u);  // 8 - 1 - 1 - 1

  // The overall result clamps at zero as well.
  obs::RoundStats t;
  t.awake = 2;
  t.deliveries = 5;
  EXPECT_EQ(obs::ChannelLedger::silent_slots(t), 0u);
  obs::RoundStats all_tx;
  all_tx.awake = 4;
  all_tx.transmissions = 4;
  EXPECT_EQ(obs::ChannelLedger::silent_slots(all_tx), 0u);
}

TEST(ChannelLedger, RowsInternNamesAndAggregatesAccumulate) {
  obs::ChannelLedger ledger(/*max_rounds=*/100);
  obs::RoundStats s;
  s.awake = 8;
  s.transmissions = 1;
  s.deliveries = 2;
  for (std::uint64_t r = 0; r < 3; ++r) {
    s.round = r;
    ledger.on_round(s, "stage3.collection", r < 2 ? "ospg" : "mspg");
  }
  s.round = 3;
  ledger.on_round(s, "stage4.dissemination", "");

  ASSERT_EQ(ledger.rows().size(), 4u);
  EXPECT_EQ(ledger.dropped_rows(), 0u);
  // Epoch index 0 is the reserved "no epoch" name.
  EXPECT_EQ(ledger.epoch_names().front(), "");
  const auto& rows = ledger.rows();
  EXPECT_EQ(ledger.stage_names()[rows[0].stage], "stage3.collection");
  EXPECT_EQ(ledger.epoch_names()[rows[0].epoch], "ospg");
  EXPECT_EQ(rows[0].epoch, rows[1].epoch);
  EXPECT_NE(rows[1].epoch, rows[2].epoch);
  EXPECT_EQ(rows[3].epoch, 0u);
  EXPECT_EQ(rows[0].silent, 5u);  // (8-1) - 2

  // Aggregates: one per (stage, epoch) slice, chronological, summed.
  const auto& aggs = ledger.aggregates();
  ASSERT_EQ(aggs.size(), 3u);
  EXPECT_EQ(aggs[0].stage, "stage3.collection");
  EXPECT_EQ(aggs[0].epoch, "ospg");
  EXPECT_EQ(aggs[0].rounds, 2u);
  EXPECT_EQ(aggs[0].awake, 16u);
  EXPECT_EQ(aggs[0].deliveries, 4u);
  EXPECT_EQ(aggs[0].silent, 10u);
  EXPECT_EQ(aggs[1].epoch, "mspg");
  EXPECT_EQ(aggs[1].rounds, 1u);
  EXPECT_EQ(aggs[2].stage, "stage4.dissemination");
  EXPECT_EQ(aggs[2].epoch, "");
}

TEST(ChannelLedger, RowCapCountsDropsButAggregatesCoverTheRun) {
  obs::ChannelLedger ledger(/*max_rounds=*/2);
  obs::RoundStats s;
  s.awake = 4;
  for (std::uint64_t r = 0; r < 5; ++r) {
    s.round = r;
    ledger.on_round(s, "stage1.leader", "");
  }
  EXPECT_EQ(ledger.rows().size(), 2u);
  EXPECT_EQ(ledger.dropped_rows(), 3u);
  ASSERT_EQ(ledger.aggregates().size(), 1u);
  EXPECT_EQ(ledger.aggregates()[0].rounds, 5u);  // never capped
  EXPECT_EQ(ledger.aggregates()[0].awake, 20u);
}

TEST(ChannelLedger, ObserverBuildsLedgerOnlyWhenEnabled) {
  obs::RunObserver off;
  const ObservedRun plain = run_observed(24, 8, 91, off);
  EXPECT_EQ(off.ledger(), nullptr);

  obs::RunObserver::Options opts;
  opts.channel_ledger = true;
  obs::RunObserver on(opts);
  const ObservedRun run = run_observed(24, 8, 91, on);
  ASSERT_NE(on.ledger(), nullptr);
  const obs::ChannelLedger& ledger = *on.ledger();
  // One row per simulated round, each attributed to a known stage.
  EXPECT_EQ(ledger.rows().size(), run.result.total_rounds);
  EXPECT_EQ(ledger.dropped_rows(), 0u);
  std::uint64_t agg_rounds = 0;
  for (const auto& a : ledger.aggregates()) agg_rounds += a.rounds;
  EXPECT_EQ(agg_rounds, run.result.total_rounds);
  // The ledger is an observer-side artifact: results are unperturbed.
  EXPECT_EQ(plain.result.total_rounds, run.result.total_rounds);
  EXPECT_EQ(plain.result.counters.deliveries, run.result.counters.deliveries);
}

}  // namespace
}  // namespace radiocast
