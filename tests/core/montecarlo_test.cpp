// Monte Carlo driver: trial-order reduction and, critically, the
// determinism contract — a sweep run on N threads must be byte-identical
// to the same sweep run sequentially.
#include "core/montecarlo.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "baselines/uncoded_pipeline.hpp"
#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"

namespace radiocast::core {
namespace {

TEST(ThreadsFromEnvTest, EnvOverridesFallback) {
  ::setenv("RADIOCAST_BENCH_THREADS", "3", 1);
  EXPECT_EQ(montecarlo::threads_from_env(7), 3);
  ::unsetenv("RADIOCAST_BENCH_THREADS");
  EXPECT_EQ(montecarlo::threads_from_env(7), 7);
}

TEST(ThreadsFromEnvTest, InvalidEnvFallsThrough) {
  ::setenv("RADIOCAST_BENCH_THREADS", "bogus", 1);
  EXPECT_EQ(montecarlo::threads_from_env(5), 5);
  ::setenv("RADIOCAST_BENCH_THREADS", "-2", 1);
  EXPECT_EQ(montecarlo::threads_from_env(5), 5);
  ::unsetenv("RADIOCAST_BENCH_THREADS");
  EXPECT_GE(montecarlo::threads_from_env(), 1);
}

TEST(ShardsFromEnvTest, EnvOverridesFallback) {
  ::setenv("RADIOCAST_BENCH_SHARDS", "3", 1);
  EXPECT_EQ(montecarlo::shards_from_env(7), 3);
  ::unsetenv("RADIOCAST_BENCH_SHARDS");
  EXPECT_EQ(montecarlo::shards_from_env(7), 7);
}

TEST(ShardsFromEnvTest, InvalidEnvFallsThrough) {
  ::setenv("RADIOCAST_BENCH_SHARDS", "bogus", 1);
  EXPECT_EQ(montecarlo::shards_from_env(5), 5);
  ::setenv("RADIOCAST_BENCH_SHARDS", "-2", 1);
  EXPECT_EQ(montecarlo::shards_from_env(5), 5);
  ::setenv("RADIOCAST_BENCH_SHARDS", "0", 1);
  EXPECT_EQ(montecarlo::shards_from_env(5), 5);
  ::unsetenv("RADIOCAST_BENCH_SHARDS");
  EXPECT_EQ(montecarlo::shards_from_env(), 1);  // default: no sharding
}

TEST(MonteCarloRunTest, ResultsLandInTrialOrder) {
  montecarlo::Options opts;
  opts.threads = 4;
  const std::vector<int> out =
      montecarlo::run(64, [](int t) { return t * t; }, opts);
  ASSERT_EQ(out.size(), 64u);
  for (int t = 0; t < 64; ++t) EXPECT_EQ(out[static_cast<std::size_t>(t)], t * t);
}

TEST(MonteCarloRunTest, ZeroTrialsIsEmpty) {
  EXPECT_TRUE(montecarlo::run(0, [](int) { return 1; }).empty());
}

TEST(MonteCarloRunTest, LowestIndexedFailureIsRethrown) {
  montecarlo::Options opts;
  opts.threads = 4;
  try {
    montecarlo::run_indexed(
        16,
        [](int t) {
          if (t == 3 || t == 11) throw std::runtime_error("trial " + std::to_string(t));
        },
        opts);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 3");
  }
}

TEST(MonteCarloRunTest, SequentialPathAlsoThrows) {
  montecarlo::Options opts;
  opts.threads = 1;
  EXPECT_THROW(
      montecarlo::run_indexed(4, [](int t) { if (t == 2) throw std::logic_error("x"); },
                              opts),
      std::logic_error);
}

TEST(MonteCarloRunTest, ReductionIsTrialOrderedEvenWithInvertedCompletion) {
  // Early trials sleep longest, so completion order is the reverse of
  // trial order; the result vector must still land in trial order.
  montecarlo::Options opts;
  opts.threads = 4;
  const std::vector<int> out = montecarlo::run(
      8,
      [](int t) {
        std::this_thread::sleep_for(std::chrono::milliseconds((8 - t) * 3));
        return t * 10;
      },
      opts);
  ASSERT_EQ(out.size(), 8u);
  for (int t = 0; t < 8; ++t) EXPECT_EQ(out[static_cast<std::size_t>(t)], t * 10);
}

TEST(MonteCarloFailurePaths, FailingTrialDoesNotCancelOthers) {
  // The sweep drains before rethrowing, so one bad trial never suppresses
  // the work (or the observer state) of the others.
  std::array<std::atomic<bool>, 12> ran{};
  montecarlo::Options opts;
  opts.threads = 4;
  EXPECT_THROW(montecarlo::run_indexed(
                   12,
                   [&ran](int t) {
                     if (t == 1) throw std::runtime_error("x");
                     ran[static_cast<std::size_t>(t)] = true;
                   },
                   opts),
               std::runtime_error);
  for (int t = 0; t < 12; ++t) {
    if (t != 1) {
      EXPECT_TRUE(ran[static_cast<std::size_t>(t)]) << "trial " << t;
    }
  }
}

TEST(MonteCarloFailurePaths, ThrowingTrialDoesNotLeakObserverState) {
  Rng grng(31);
  graph::Graph g = graph::make_gnp_connected(20, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);

  constexpr int kTrials = 5;
  constexpr int kPoisoned = 2;
  const auto make_sweep = [&g, &know](std::vector<obs::RunObserver>& observers,
                                      bool poisoned) {
    montecarlo::KBroadcastSweep sweep;
    sweep.graph = &g;
    sweep.cfg = baselines::coded_config(know);
    sweep.k = 6;
    sweep.placement_seed = [](int t) { return 70 + static_cast<std::uint64_t>(t); };
    sweep.run_seed = [poisoned](int t) -> std::uint64_t {
      if (poisoned && t == kPoisoned) throw std::runtime_error("poisoned trial");
      return 170 + static_cast<std::uint64_t>(t);
    };
    sweep.observer = [&observers](int t) { return &observers[static_cast<std::size_t>(t)]; };
    return sweep;
  };

  montecarlo::Options opts;
  opts.threads = 3;
  std::vector<obs::RunObserver> poisoned_obs(kTrials);
  EXPECT_THROW(montecarlo::run_kbroadcast_sweep(make_sweep(poisoned_obs, true),
                                                kTrials, opts),
               std::runtime_error);

  // Reference: the identical sweep with nothing poisoned.
  std::vector<obs::RunObserver> ref_obs(kTrials);
  const std::vector<RunResult> ref = montecarlo::run_kbroadcast_sweep(
      make_sweep(ref_obs, false), kTrials, opts);

  for (int t = 0; t < kTrials; ++t) {
    if (t == kPoisoned) {
      // The poisoned trial died before its run started: its observer must
      // be pristine, not half-written.
      EXPECT_TRUE(poisoned_obs[kPoisoned].spans().empty());
      EXPECT_EQ(poisoned_obs[kPoisoned].current_stage(), "");
      continue;
    }
    // Surviving trials' observers must be byte-identical to an unpoisoned
    // sweep — the failure leaked nothing across trials.
    std::ostringstream got, want;
    obs::write_run_jsonl(got, poisoned_obs[static_cast<std::size_t>(t)],
                         ref[static_cast<std::size_t>(t)].total_rounds);
    obs::write_run_jsonl(want, ref_obs[static_cast<std::size_t>(t)],
                         ref[static_cast<std::size_t>(t)].total_rounds);
    EXPECT_EQ(got.str(), want.str()) << "observer state diverged in trial " << t;
  }
}

// --- Determinism: parallel == sequential, bit for bit. -------------------

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.delivered_all, b.delivered_all);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.nodes_complete, b.nodes_complete);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.stage1_rounds, b.stage1_rounds);
  EXPECT_EQ(a.stage2_rounds, b.stage2_rounds);
  EXPECT_EQ(a.stage3_rounds, b.stage3_rounds);
  EXPECT_EQ(a.stage4_rounds, b.stage4_rounds);
  EXPECT_EQ(a.leader_ok, b.leader_ok);
  EXPECT_EQ(a.bfs_ok, b.bfs_ok);
  EXPECT_EQ(a.collection_phases, b.collection_phases);
  EXPECT_EQ(a.final_estimate, b.final_estimate);
  EXPECT_EQ(a.counters, b.counters);  // TraceCounters::operator==
}

std::vector<RunResult> sweep_with_threads(const graph::Graph& g,
                                          const KBroadcastConfig& cfg, int threads,
                                          double loss, int shards = 1) {
  montecarlo::KBroadcastSweep sweep;
  sweep.graph = &g;
  sweep.cfg = cfg;
  sweep.k = 8;
  sweep.placement_seed = [](int s) { return 70 + static_cast<std::uint64_t>(s); };
  sweep.run_seed = [](int s) { return 170 + static_cast<std::uint64_t>(s); };
  if (loss > 0.0) {
    sweep.faults = [loss](int s) {
      radio::FaultModel fm;
      fm.reception_loss_probability = loss;
      fm.seed = 900 + static_cast<std::uint64_t>(s);
      return fm;
    };
  }
  sweep.shards = shards;
  montecarlo::Options opts;
  opts.threads = threads;
  return montecarlo::run_kbroadcast_sweep(sweep, 4, opts);
}

class SweepDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng grng(21);
    g_ = graph::make_random_geometric(24, 0.35, grng);
    know_ = radio::Knowledge::exact(g_);
  }

  void check(const KBroadcastConfig& cfg, double loss) {
    const std::vector<RunResult> seq = sweep_with_threads(g_, cfg, 1, loss);
    const std::vector<RunResult> par = sweep_with_threads(g_, cfg, 4, loss);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      SCOPED_TRACE("trial " + std::to_string(i));
      // At least one trial must have actually done work, or the
      // comparison is vacuous.
      EXPECT_GT(seq[i].total_rounds, 0u);
      expect_identical(seq[i], par[i]);
    }
  }

  graph::Graph g_;
  radio::Knowledge know_;
};

TEST_F(SweepDeterminismTest, CodedConfig) {
  check(baselines::coded_config(know_), /*loss=*/0.0);
}

TEST_F(SweepDeterminismTest, ShardCountInvariance) {
  // The sharded engine inside each trial is the second parallelism axis;
  // like the thread budget it must never perturb results. The thread
  // budget is split across shards (threads / shards trial workers), so
  // this also exercises the budget split.
  const KBroadcastConfig cfg = baselines::coded_config(know_);
  const std::vector<RunResult> unsharded =
      sweep_with_threads(g_, cfg, /*threads=*/4, /*loss=*/0.02, /*shards=*/1);
  const std::vector<RunResult> sharded =
      sweep_with_threads(g_, cfg, /*threads=*/4, /*loss=*/0.02, /*shards=*/4);
  ASSERT_EQ(unsharded.size(), sharded.size());
  for (std::size_t i = 0; i < unsharded.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    EXPECT_GT(unsharded[i].total_rounds, 0u);
    expect_identical(unsharded[i], sharded[i]);
  }
}

TEST_F(SweepDeterminismTest, UncodedPipelineConfig) {
  check(baselines::uncoded_pipeline_config(know_), /*loss=*/0.0);
}

TEST_F(SweepDeterminismTest, CodedConfigWithFaults) {
  check(baselines::coded_config(know_), /*loss=*/0.05);
}

}  // namespace
}  // namespace radiocast::core
