// Monte Carlo driver: trial-order reduction and, critically, the
// determinism contract — a sweep run on N threads must be byte-identical
// to the same sweep run sequentially.
#include "core/montecarlo.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "baselines/uncoded_pipeline.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

TEST(ThreadsFromEnvTest, EnvOverridesFallback) {
  ::setenv("RADIOCAST_BENCH_THREADS", "3", 1);
  EXPECT_EQ(montecarlo::threads_from_env(7), 3);
  ::unsetenv("RADIOCAST_BENCH_THREADS");
  EXPECT_EQ(montecarlo::threads_from_env(7), 7);
}

TEST(ThreadsFromEnvTest, InvalidEnvFallsThrough) {
  ::setenv("RADIOCAST_BENCH_THREADS", "bogus", 1);
  EXPECT_EQ(montecarlo::threads_from_env(5), 5);
  ::setenv("RADIOCAST_BENCH_THREADS", "-2", 1);
  EXPECT_EQ(montecarlo::threads_from_env(5), 5);
  ::unsetenv("RADIOCAST_BENCH_THREADS");
  EXPECT_GE(montecarlo::threads_from_env(), 1);
}

TEST(MonteCarloRunTest, ResultsLandInTrialOrder) {
  montecarlo::Options opts;
  opts.threads = 4;
  const std::vector<int> out =
      montecarlo::run(64, [](int t) { return t * t; }, opts);
  ASSERT_EQ(out.size(), 64u);
  for (int t = 0; t < 64; ++t) EXPECT_EQ(out[static_cast<std::size_t>(t)], t * t);
}

TEST(MonteCarloRunTest, ZeroTrialsIsEmpty) {
  EXPECT_TRUE(montecarlo::run(0, [](int) { return 1; }).empty());
}

TEST(MonteCarloRunTest, LowestIndexedFailureIsRethrown) {
  montecarlo::Options opts;
  opts.threads = 4;
  try {
    montecarlo::run_indexed(
        16,
        [](int t) {
          if (t == 3 || t == 11) throw std::runtime_error("trial " + std::to_string(t));
        },
        opts);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 3");
  }
}

TEST(MonteCarloRunTest, SequentialPathAlsoThrows) {
  montecarlo::Options opts;
  opts.threads = 1;
  EXPECT_THROW(
      montecarlo::run_indexed(4, [](int t) { if (t == 2) throw std::logic_error("x"); },
                              opts),
      std::logic_error);
}

// --- Determinism: parallel == sequential, bit for bit. -------------------

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.delivered_all, b.delivered_all);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.nodes_complete, b.nodes_complete);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.stage1_rounds, b.stage1_rounds);
  EXPECT_EQ(a.stage2_rounds, b.stage2_rounds);
  EXPECT_EQ(a.stage3_rounds, b.stage3_rounds);
  EXPECT_EQ(a.stage4_rounds, b.stage4_rounds);
  EXPECT_EQ(a.leader_ok, b.leader_ok);
  EXPECT_EQ(a.bfs_ok, b.bfs_ok);
  EXPECT_EQ(a.collection_phases, b.collection_phases);
  EXPECT_EQ(a.final_estimate, b.final_estimate);
  EXPECT_EQ(a.counters, b.counters);  // TraceCounters::operator==
}

std::vector<RunResult> sweep_with_threads(const graph::Graph& g,
                                          const KBroadcastConfig& cfg, int threads,
                                          double loss) {
  montecarlo::KBroadcastSweep sweep;
  sweep.graph = &g;
  sweep.cfg = cfg;
  sweep.k = 8;
  sweep.placement_seed = [](int s) { return 70 + static_cast<std::uint64_t>(s); };
  sweep.run_seed = [](int s) { return 170 + static_cast<std::uint64_t>(s); };
  if (loss > 0.0) {
    sweep.faults = [loss](int s) {
      radio::FaultModel fm;
      fm.reception_loss_probability = loss;
      fm.seed = 900 + static_cast<std::uint64_t>(s);
      return fm;
    };
  }
  montecarlo::Options opts;
  opts.threads = threads;
  return montecarlo::run_kbroadcast_sweep(sweep, 4, opts);
}

class SweepDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng grng(21);
    g_ = graph::make_random_geometric(24, 0.35, grng);
    know_ = radio::Knowledge::exact(g_);
  }

  void check(const KBroadcastConfig& cfg, double loss) {
    const std::vector<RunResult> seq = sweep_with_threads(g_, cfg, 1, loss);
    const std::vector<RunResult> par = sweep_with_threads(g_, cfg, 4, loss);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      SCOPED_TRACE("trial " + std::to_string(i));
      // At least one trial must have actually done work, or the
      // comparison is vacuous.
      EXPECT_GT(seq[i].total_rounds, 0u);
      expect_identical(seq[i], par[i]);
    }
  }

  graph::Graph g_;
  radio::Knowledge know_;
};

TEST_F(SweepDeterminismTest, CodedConfig) {
  check(baselines::coded_config(know_), /*loss=*/0.0);
}

TEST_F(SweepDeterminismTest, UncodedPipelineConfig) {
  check(baselines::uncoded_pipeline_config(know_), /*loss=*/0.0);
}

TEST_F(SweepDeterminismTest, CodedConfigWithFaults) {
  check(baselines::coded_config(know_), /*loss=*/0.05);
}

}  // namespace
}  // namespace radiocast::core
