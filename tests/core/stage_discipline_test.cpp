// Stage message discipline: intercept every transmission of an end-to-end
// run and assert that each message kind only appears in its stage —
// exactly the schedule structure the paper's synchronization argument
// relies on.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "radio/interceptor.hpp"
#include "radio/network.hpp"

namespace radiocast::core {
namespace {

struct StageWindows {
  radio::Round stage2_start = 0;
  radio::Round stage3_start = 0;
};

TEST(StageDiscipline, MessageKindsStayInTheirStages) {
  Rng grng(1);
  const graph::Graph g = graph::make_random_geometric(32, 0.35, grng);
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(cfg);
  Rng prng(2);
  const Placement placement =
      make_placement(g.num_nodes(), 20, PlacementMode::kRandom, 8, prng);

  radio::Network net(g);
  Rng master(3);
  // Kind-by-round accounting, filled by interceptors.
  struct Violation {
    bool any = false;
    std::string detail;
  };
  auto violation = std::make_shared<Violation>();
  std::vector<const KBroadcastNode*> nodes(g.num_nodes());

  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto inner = std::make_unique<KBroadcastNode>(rc, v, placement[v], master.split());
    nodes[v] = inner.get();
    auto wrapper = std::make_unique<radio::InterceptingProtocol>(std::move(inner));
    wrapper->set_transmit_hook(
        [violation, &rc](radio::Round round,
                         const std::optional<radio::MessageBody>& body) {
          if (!body.has_value() || violation->any) return;
          const auto kind = radio::message_kind(*body);
          auto flag = [&](const std::string& why) {
            violation->any = true;
            violation->detail = why + " at round " + std::to_string(round);
          };
          if (round < rc.stage1_rounds) {
            // Stage 1: only alarm probes.
            if (kind != "alarm") flag("non-alarm in stage 1: " + kind);
          } else if (round < rc.stage3_start()) {
            // Stage 2: only BFS construction messages.
            if (kind != "bfs") flag("non-bfs in stage 2: " + kind);
          } else {
            // Stages 3/4 boundaries are per-run; but BFS and probe traffic
            // must never reappear.
            if (kind == "bfs") flag("bfs message after stage 2");
          }
          // Data/ack/plain/coded never appear before stage 3.
          if (round < rc.stage3_start() &&
              (kind == "data" || kind == "ack" || kind == "plain" ||
               kind == "coded")) {
            flag("payload traffic before stage 3: " + kind);
          }
        });
    net.set_protocol(v, std::move(wrapper));
    if (!placement[v].empty()) net.wake_at_start(v);
  }

  ASSERT_TRUE(net.run_until_done(4'000'000));
  EXPECT_FALSE(violation->any) << violation->detail;

  // After the run: stage-3 traffic (data/ack) must be absent AFTER every
  // node's stage-3 end. Verify with the global kind counters: all data
  // deliveries happened, and the leader finished collection before any
  // coded traffic was transmitted (coded first appears in stage 4).
  const auto& counters = net.trace().counters();
  EXPECT_GT(counters.transmissions_by_kind[radio::message_kind_index(
                radio::MessageBody{radio::AlarmMsg{}})],
            0u);
  EXPECT_GT(counters.transmissions_by_kind[radio::message_kind_index(
                radio::MessageBody{radio::CodedMsg{}})],
            0u);
}

TEST(StageDiscipline, CodedTrafficOnlyAfterLeaderStage3End) {
  Rng grng(4);
  const graph::Graph g = graph::make_gnp_connected(24, 0.2, grng);
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(cfg);
  Rng prng(5);
  const Placement placement =
      make_placement(g.num_nodes(), 12, PlacementMode::kRandom, 8, prng);

  radio::Network net(g);
  Rng master(6);
  auto first_coded = std::make_shared<radio::Round>(0);
  std::vector<const KBroadcastNode*> nodes(g.num_nodes());
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto inner = std::make_unique<KBroadcastNode>(rc, v, placement[v], master.split());
    nodes[v] = inner.get();
    auto wrapper = std::make_unique<radio::InterceptingProtocol>(std::move(inner));
    wrapper->set_transmit_hook(
        [first_coded](radio::Round round,
                      const std::optional<radio::MessageBody>& body) {
          if (body.has_value() && *first_coded == 0 &&
              (std::holds_alternative<radio::CodedMsg>(*body) ||
               std::holds_alternative<radio::PlainPacketMsg>(*body))) {
            *first_coded = round;
          }
        });
    net.set_protocol(v, std::move(wrapper));
    if (!placement[v].empty()) net.wake_at_start(v);
  }
  ASSERT_TRUE(net.run_until_done(4'000'000));

  radio::Round leader_stage3_end = 0;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (nodes[v]->is_leader()) leader_stage3_end = nodes[v]->stage3_end();
  }
  ASSERT_GT(leader_stage3_end, 0u);
  ASSERT_GT(*first_coded, 0u);
  EXPECT_GE(*first_coded, leader_stage3_end);
}

TEST(Interceptor, ForwardsEverythingTransparently) {
  // A pass-through interceptor must not change the run outcome.
  Rng grng(7);
  const graph::Graph g = graph::make_gnp_connected(16, 0.3, grng);
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(cfg);
  Rng prng(8);
  const Placement placement =
      make_placement(g.num_nodes(), 8, PlacementMode::kRandom, 8, prng);

  auto run = [&](bool wrapped) {
    radio::Network net(g);
    Rng master(9);
    for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto inner =
          std::make_unique<KBroadcastNode>(rc, v, placement[v], master.split());
      if (wrapped) {
        net.set_protocol(
            v, std::make_unique<radio::InterceptingProtocol>(std::move(inner)));
      } else {
        net.set_protocol(v, std::move(inner));
      }
      if (!placement[v].empty()) net.wake_at_start(v);
    }
    net.run_until_done(2'000'000);
    return net.current_round();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Interceptor, WakeHookFires) {
  const graph::Graph g = graph::make_path(2);
  radio::Network net(g);
  int wakes = 0;
  for (radio::NodeId v = 0; v < 2; ++v) {
    struct Idle final : radio::NodeProtocol {
      std::optional<radio::MessageBody> on_transmit(radio::Round) override {
        return std::nullopt;
      }
      void on_receive(radio::Round, const radio::Message&) override {}
    };
    auto wrapper = std::make_unique<radio::InterceptingProtocol>(
        std::make_unique<Idle>());
    wrapper->set_wake_hook([&wakes](radio::Round) { ++wakes; });
    net.set_protocol(v, std::move(wrapper));
    net.wake_at_start(v);
  }
  net.step();
  EXPECT_EQ(wakes, 2);
}

}  // namespace
}  // namespace radiocast::core
